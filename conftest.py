"""Root test configuration: the fast/slow tier switch.

Tier-1 verification is ``python -m pytest -x -q`` and must complete in
bounded time. Long acceptance campaigns (100+ chaos schedules, full
benchmark sweeps, the paper-reproduction examples) are marked
``@pytest.mark.slow``; they are **skipped by default** and run only when
explicitly requested:

- ``pytest --runslow`` — run everything (the CI full-tests tier);
- ``REPRO_RUN_SLOW=1 pytest`` — same, via the environment;
- ``pytest -m slow`` — run only the slow tier.

Before this hook existed the slow marker was advisory (only CI's
``-m "not slow"`` honoured it), so the plain tier-1 command ran every
acceptance campaign and blew well past five minutes.
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run @pytest.mark.slow acceptance campaigns and benchmark sweeps",
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    if config.getoption("--runslow"):
        return
    if os.environ.get("REPRO_RUN_SLOW", "") not in ("", "0"):
        return
    # An explicit positive ``-m slow`` selection is an opt-in too; the
    # marker expression has already filtered the item list at this point,
    # so skipping here would leave nothing to run.
    markexpr = config.getoption("-m", default="") or ""
    if "slow" in markexpr and "not slow" not in markexpr:
        return
    skip_slow = pytest.mark.skip(
        reason="slow tier: pass --runslow (or REPRO_RUN_SLOW=1) to run"
    )
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
