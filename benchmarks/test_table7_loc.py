"""Table 7 — lines of external-method code per SP-GiST instantiation.

Paper: each instantiation's external methods are < 10 % of the total index
code; the other 90 % is the shared SP-GiST core. We reproduce the same
accounting over this repository (Python compresses the shared core more
than the extensions, so our percentages run a few points higher — the claim
under test is that the developer-written share stays a small fraction).
"""

from conftest import bench_print

from repro.bench.loc import core_lines, table7_rows
from repro.bench.report import format_table


def test_table7_external_method_share(benchmark):
    rows = benchmark(table7_rows)
    bench_print(
        "\n"
        + format_table(
            "Table 7 — external methods' code lines "
            f"(shared core+substrate: {core_lines()} lines)",
            ["index", "external lines", "% of total"],
            [[r.name, r.external_lines, r.percentage] for r in rows],
        )
    )
    assert {r.name for r in rows} == {
        "trie",
        "kd-tree",
        "P quadtree",
        "PMR quadtree",
        "suffix tree",
    }
    for row in rows:
        # Paper: < 10 %. Accept a slightly wider Python band, and require
        # the core to dominate overwhelmingly.
        assert row.percentage < 25.0, row
        assert row.external_lines < core_lines()
