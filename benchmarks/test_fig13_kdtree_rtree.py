"""Figure 13 — kd-tree vs R-tree on 2-D points: insert and search.

Paper series: ``(R-tree/kd-tree) × 100``. Point match: kd-tree wins by
>300 % (the R-tree's overlapping MBRs force multi-path descents); range
search: kd-tree wins by ~125 %; insert: the R-tree wins (the kd-tree's
BucketSize of 1 splits on almost every insert).

The overlap mechanism is scale-dependent; see figures.SPATIAL_DECIMALS for
how the scaled-down sweep restores the paper's overlap regime.
"""

from conftest import print_rows

from repro.bench.figures import SPATIAL_PAGE_CAPACITY, Workbench
from repro.indexes.kdtree import KDTreeIndex
from repro.workloads import random_points

COLUMNS = (
    "point_ratio",
    "range_ratio",
    "insert_ratio",
    "kd_point_cost",
    "rt_point_cost",
)


def test_fig13_shapes(kdtree_rtree_rows, benchmark):
    rows = kdtree_rtree_rows
    print_rows("Figure 13 — (R-tree/kd-tree) x 100, points", rows, COLUMNS)

    # Insert: the R-tree wins at every size.
    for row in rows:
        assert row.values["insert_ratio"] < 100.0, row.size

    last = rows[-1]
    # Point match at the largest size: kd-tree wins decisively and the
    # advantage grew over the sweep (heading to the paper's >300 %).
    assert last.values["point_ratio"] > 150.0
    assert last.values["point_ratio"] > rows[0].values["point_ratio"]
    # Range search: kd-tree ahead at the largest size (paper ~125 %).
    assert last.values["range_ratio"] > 110.0

    bench = Workbench(pool_pages=64)
    kd = KDTreeIndex(bench.buffer, page_capacity=SPATIAL_PAGE_CAPACITY)
    points = random_points(3000, seed=881, decimals=0)
    for i, p in enumerate(points):
        kd.insert(p, i)
    kd.repack()
    probe = points[1234]
    benchmark(lambda: kd.search_point(probe))
