"""Figure 10 — relative index size: B+-tree vs patricia trie.

Paper series: ``(B-tree/trie) × 100`` pages after building, below 100 —
the trie spends more space (many small nodes, clustering trades utilization
for page height) — and declining with size.
"""

from conftest import print_rows

from repro.bench.figures import build_trie
from repro.workloads import random_words

COLUMNS = ("size_ratio", "trie_pages", "btree_pages")


def test_fig10_index_size(insert_size_rows, benchmark):
    rows = insert_size_rows
    print_rows("Figure 10 — (B-tree/trie) x 100, pages after build",
               rows, COLUMNS)

    # At the larger sizes the B+-tree is the smaller index (paper shape);
    # tiny builds may tie.
    assert rows[-1].values["size_ratio"] < 100.0
    assert rows[-1].values["size_ratio"] <= rows[0].values["size_ratio"]
    for row in rows:
        assert row.values["size_ratio"] < 115.0, row.size

    words = random_words(2000, seed=996)

    def build_and_count():
        trie, _bench = build_trie(words)
        return trie.num_pages

    benchmark(build_and_count)
