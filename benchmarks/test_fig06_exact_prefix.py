"""Figure 6 — exact- and prefix-match search: B+-tree vs patricia trie.

Paper series: ``(B-tree/trie) × 100`` per relation size. Exact match: the
trie wins by >150 % at 2M–32M keys; prefix match: the B+-tree wins (sorted
leaves answer prefixes with sequential reads).

At our 1000×-reduced scale the prefix panel reproduces cleanly (ratios
25–45). The exact panel sits at parity with a trie-favourable uptick once
the B+-tree gains its fourth level — the paper's full gap needs the 2M+
regime (see EXPERIMENTS.md, deviation D-fig6).
"""

from conftest import print_rows

from repro.bench.figures import build_btree_bulk, build_trie
from repro.workloads import random_words

COLUMNS = (
    "exact_ratio",
    "prefix_ratio",
    "trie_exact_cost",
    "btree_exact_cost",
    "trie_prefix_cost",
    "btree_prefix_cost",
)


def test_fig06_shapes(string_search_rows, benchmark):
    rows = string_search_rows
    print_rows("Figure 6 — (B-tree/trie) x 100, exact and prefix match",
               rows, COLUMNS)

    # Prefix match: B+-tree wins at every size (paper shape).
    for row in rows:
        assert row.values["prefix_ratio"] < 80.0, row.size

    # Exact match: parity band, never a B+-tree blowout, and the largest
    # size must not regress below the smaller ones' band.
    for row in rows:
        assert 70.0 <= row.values["exact_ratio"] <= 220.0, row.size

    # Representative single operation for the timing harness.
    words = random_words(2000, seed=991)
    trie, _bench = build_trie(words)
    probe = words[123]
    benchmark(lambda: trie.search_equal(probe))


def test_fig06_trie_and_btree_agree(string_search_rows):
    """Sanity: the sweep measured real work (non-zero costs everywhere)."""
    for row in string_search_rows:
        for column in COLUMNS[2:]:
            assert row.values[column] > 0.0
