"""Figure 9 — insert cost: B+-tree vs patricia trie.

Paper series: ``(B-tree/trie) × 100`` for the insertion of 500K–32M keys,
staying below 100 (the B+-tree inserts cheaper — the trie makes many more,
smaller nodes and splits more often) and declining with size.
"""

from conftest import print_rows

from repro.bench.figures import TRIE_BUCKET, STRING_PAGE_CAPACITY, Workbench
from repro.indexes.trie import TrieIndex
from repro.workloads import random_words

COLUMNS = ("insert_ratio", "trie_insert_io", "btree_insert_io")


def test_fig09_insert_cost(insert_size_rows, benchmark):
    rows = insert_size_rows
    print_rows("Figure 9 — (B-tree/trie) x 100, insert I/O per key",
               rows, COLUMNS)

    # The B+-tree wins the build at every size.
    for row in rows:
        assert row.values["insert_ratio"] < 100.0, row.size
    # And never loses its advantage as data grows.
    assert rows[-1].values["insert_ratio"] <= rows[0].values["insert_ratio"] * 1.2

    bench = Workbench(pool_pages=4)
    trie = TrieIndex(bench.buffer, bucket_size=TRIE_BUCKET,
                     page_capacity=STRING_PAGE_CAPACITY)
    words = iter(random_words(200000, seed=995))

    def one_insert():
        trie.insert(next(words), 0)

    benchmark(one_insert)
