"""Figure 11 — maximum tree height in *nodes*.

Paper: the trie, being unbalanced and narrow-noded, is markedly taller in
nodes than the B+-tree (6–8 vs 3–4) — the motivation for the clustering
technique whose payoff Figure 12 shows.
"""

from conftest import print_rows

from repro.bench.figures import build_trie
from repro.workloads import random_words

COLUMNS = ("trie_node_height", "btree_node_height")


def test_fig11_node_heights(insert_size_rows, benchmark):
    rows = insert_size_rows
    print_rows("Figure 11 — max tree height in nodes", rows, COLUMNS)

    for row in rows:
        # The trie is never shallower than the balanced B+-tree...
        assert row.values["trie_node_height"] >= row.values["btree_node_height"]
    # ...and is strictly taller over the sweep as a whole.
    assert sum(r.values["trie_node_height"] for r in rows) > sum(
        r.values["btree_node_height"] for r in rows
    )

    words = random_words(2000, seed=997)

    def node_height():
        trie, _bench = build_trie(words, repack=False)
        return trie.statistics().max_node_height

    benchmark(node_height)
