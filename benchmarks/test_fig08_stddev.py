"""Figure 8 — standard deviation of the trie's exact-match search cost.

Paper: the trie is unbalanced, so per-query search time varies with the
key's depth; the figure reports the standard deviation per relation size
(a few ms, mildly growing). We report the standard deviation of the
modeled per-query cost; the claim under test is that variability exists
(unbalanced paths) but stays small relative to the mean.
"""

from conftest import print_rows

from repro.bench.figures import build_trie
from repro.workloads import random_words

COLUMNS = ("trie_exact_stddev", "trie_exact_cost")


def test_fig08_stddev(string_search_rows, benchmark):
    rows = string_search_rows
    print_rows("Figure 8 — trie exact-match cost standard deviation",
               rows, COLUMNS)

    for row in rows:
        stddev = row.values["trie_exact_stddev"]
        mean = row.values["trie_exact_cost"]
        # Unbalanced tree => nonzero spread...
        assert stddev > 0.0
        # ...but bounded: paths differ by a page or two, not by the tree.
        assert stddev < mean

    words = random_words(2000, seed=994)
    trie, bench = build_trie(words)

    def one_cold_query():
        bench.cold()
        return trie.search_equal(words[42])

    benchmark(one_cold_query)
