"""Figure 15 — PMR quadtree vs R-tree on line segments.

Paper series: ``(R-tree/PMR quadtree) × 100`` for insert, exact-match and
window search — all favouring the R-tree (segment replication makes the
PMR quadtree bigger and costlier to build), with the relative insertion
cost roughly constant in size.

Where we land differently: our PMR quadtree ties or slightly beats the
R-tree on *exact* match (its partitions prune a single segment's quadrants
very hard). The paper itself notes the contested ground here — "under
certain query types ... the quadtree may have a better search performance
than the R-tree" [28] — so the bench asserts the insert and window shapes
strictly and only bounds exact match to a parity band (see EXPERIMENTS.md,
deviation D-fig15).
"""

import pytest

from conftest import print_rows

from repro.bench.figures import (
    SPATIAL_PAGE_CAPACITY,
    Workbench,
    fig15_pmr_rtree,
)
from repro.indexes.pmr import PMRQuadtreeIndex
from repro.workloads import random_segments
from repro.workloads.points import WORLD

COLUMNS = ("insert_ratio", "exact_ratio", "range_ratio", "pmr_pages", "rt_pages")


@pytest.fixture(scope="module")
def rows():
    return fig15_pmr_rtree()


def test_fig15_shapes(rows, benchmark):
    print_rows("Figure 15 — (R-tree/PMR quadtree) x 100, segments",
               rows, COLUMNS)

    for row in rows:
        # Insert: the R-tree wins clearly at every size (paper shape), and
        # the PMR quadtree is the bigger index (segment replication).
        assert row.values["insert_ratio"] < 70.0, row.size
        assert row.values["pmr_pages"] > row.values["rt_pages"]
        # Exact match: parity band (documented deviation).
        assert 60.0 <= row.values["exact_ratio"] <= 180.0, row.size
    # Window search: the R-tree is ahead at the largest size.
    assert rows[-1].values["range_ratio"] < 100.0

    bench = Workbench(pool_pages=64)
    pmr = PMRQuadtreeIndex(bench.buffer, WORLD, threshold=8,
                           page_capacity=SPATIAL_PAGE_CAPACITY)
    segments = random_segments(2000, seed=883, decimals=1)
    for i, s in enumerate(segments):
        pmr.insert(s, i)
    pmr.repack()
    probe = segments[555]
    benchmark(lambda: pmr.search_exact(probe))
