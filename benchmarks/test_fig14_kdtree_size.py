"""Figure 14 — relative index size: R-tree vs kd-tree.

Paper series: ``(R-tree/kd-tree) × 100`` below 100 — the kd-tree's
BucketSize of 1 makes one node (plus empty partitions, NodeShrink=False)
per point, and clustering pays page utilization for page height.
"""

from conftest import print_rows

from repro.bench.figures import SPATIAL_PAGE_CAPACITY, Workbench
from repro.baselines import RTree
from repro.workloads import random_points

COLUMNS = ("size_ratio", "kd_pages", "rt_pages")


def test_fig14_index_size(kdtree_rtree_rows, benchmark):
    rows = kdtree_rtree_rows
    print_rows("Figure 14 — (R-tree/kd-tree) x 100, pages", rows, COLUMNS)

    for row in rows:
        assert row.values["size_ratio"] < 100.0, row.size
        assert row.values["kd_pages"] > row.values["rt_pages"]

    points = random_points(2000, seed=882, decimals=0)

    def build_rtree():
        bench = Workbench(pool_pages=64)
        tree = RTree(bench.buffer, split="linear",
                     page_capacity=SPATIAL_PAGE_CAPACITY)
        for i, p in enumerate(points):
            tree.insert(p, i)
        return tree.num_pages

    benchmark.pedantic(build_rtree, rounds=3, iterations=1)
