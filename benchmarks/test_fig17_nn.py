"""Figure 17 — incremental NN search across instantiations.

Paper: 2M tuples per relation, k swept from 8 to 1024. The kd-tree and
point quadtree answer NN queries fast (Euclidean MINDIST prunes hard); the
trie is much slower — Hamming distance advances in unit steps and most
subtrees can't be pruned, so convergence to the next NN is slow.

The k/n regime matters: at the paper's scale k ≤ 1024 is ≤0.05 % of the
relation. Our bench keeps k ≤ 256 on a 16K-tuple relation (≤1.6 %) for the
strict assertions and reports the full sweep.
"""

import pytest

from conftest import print_rows

from repro.bench.figures import Workbench, fig17_nn_search
from repro.core.nn import nearest
from repro.indexes.kdtree import KDTreeIndex
from repro.geometry import Point
from repro.workloads import random_points

COLUMNS = ("kdtree_cost", "pquadtree_cost", "trie_cost")


@pytest.fixture(scope="module")
def rows():
    return fig17_nn_search(size=16000)


def test_fig17_shapes(rows, benchmark):
    print_rows("Figure 17 — NN search cost vs number of NNs (k)",
               rows, COLUMNS)

    in_regime = [r for r in rows if r.size <= 256]
    for row in in_regime:
        # The trie is far slower than both spatial trees (paper shape).
        assert row.values["trie_cost"] > 2.0 * row.values["kdtree_cost"], row.size
        assert row.values["trie_cost"] > 2.0 * row.values["pquadtree_cost"], row.size

    # Spatial NN cost grows with k.
    kd_costs = [r.values["kdtree_cost"] for r in rows]
    assert kd_costs[-1] > kd_costs[0]

    # kd-tree and point quadtree stay within the same band (paper: the two
    # partition-based trees behave alike).
    for row in in_regime:
        a, b = row.values["kdtree_cost"], row.values["pquadtree_cost"]
        assert 0.3 <= a / b <= 3.0

    bench = Workbench(pool_pages=64)
    kd = KDTreeIndex(bench.buffer)
    for i, p in enumerate(random_points(4000, seed=885)):
        kd.insert(p, i)
    kd.repack()
    benchmark(lambda: nearest(kd, Point(50.0, 50.0), 8))
