"""Figure 12 — maximum tree height in *pages*.

Paper: despite the trie's much greater node height (Figure 11), SP-GiST's
clustering packs nodes so that the trie's page height is almost the same as
the B+-tree's — the headline result for the clustering technique.
"""

from conftest import print_rows

from repro.bench.figures import build_trie
from repro.workloads import random_words

COLUMNS = (
    "trie_page_height",
    "btree_page_height",
    "trie_node_height",
)


def test_fig12_page_heights(insert_size_rows, benchmark):
    rows = insert_size_rows
    print_rows("Figure 12 — max tree height in pages", rows, COLUMNS)

    for row in rows:
        trie_pages = row.values["trie_page_height"]
        btree_pages = row.values["btree_page_height"]
        # "the maximum page-height is almost the same as the B+-tree
        # page-height": within one page at every size.
        assert abs(trie_pages - btree_pages) <= 1.0, row.size
        # Clustering is what achieves it: page height never exceeds node
        # height (and is strictly below it once nodes co-reside on pages).
        assert trie_pages <= row.values["trie_node_height"]

    words = random_words(2000, seed=998)
    trie, _bench = build_trie(words, repack=False)

    def repack_and_measure():
        trie.repack()
        return trie.statistics().max_page_height

    benchmark.pedantic(repack_and_measure, rounds=3, iterations=1)
