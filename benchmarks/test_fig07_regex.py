"""Figure 7 — regular-expression ('?' wildcard) search: B+-tree vs trie.

Paper series: ``log10(B-tree/trie)`` per relation size, reaching 2+ orders
of magnitude. Mechanism: a leading '?' leaves the B+-tree nothing to narrow
with (full leaf-level read), while the trie filters on every non-wildcard
character. The ratio therefore *grows* with relation size — our sweep shows
the growth and the crossover; the paper's 2 orders is its value at 2M–32M.

The side-channel series ``regex_mid_ratio`` reproduces the paper's remark
that the B+-tree is sensitive to the wildcard's position: with the wildcard
mid-word the B+-tree keeps its prefix narrowing and stays competitive.
"""

from conftest import bench_print, print_rows

from repro.bench.figures import build_trie
from repro.bench.report import log10
from repro.workloads import random_words
from repro.workloads.words import regex_queries

COLUMNS = ("regex_ratio", "regex_read_ratio", "regex_mid_ratio",
           "trie_regex_cost", "btree_regex_cost")


def test_fig07_shapes(string_search_rows, benchmark):
    rows = string_search_rows
    print_rows(
        "Figure 7 — B-tree/trie for leading-'?' regex (paper plots log10)",
        rows,
        COLUMNS,
    )
    bench_print(
        "log10 series: "
        + str([round(log10(r.values["regex_ratio"]), 2) for r in rows])
    )

    # The trie must win at the largest size, by raw page reads and by cost.
    last = rows[-1]
    assert last.values["regex_ratio"] > 1.5
    assert last.values["regex_read_ratio"] > 2.0

    # The advantage grows with relation size (the paper's slope).
    ratios = [r.values["regex_ratio"] for r in rows]
    assert ratios[-1] > ratios[0]

    # Wildcard-position sensitivity: with a mid-word wildcard the B+-tree
    # keeps prefix narrowing, so the trie's edge largely disappears.
    for row in rows:
        assert row.values["regex_mid_ratio"] < row.values["regex_ratio"] * 1.1

    words = random_words(2000, seed=992)
    trie, _bench = build_trie(words)
    pattern = regex_queries(words, 1, [0], seed=993)[0]
    benchmark(lambda: trie.search_regex(pattern))
