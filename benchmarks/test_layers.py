"""Per-layer cost attribution table (observability registry columns).

Complements the paper's Section 6 figures: instead of comparing *methods*
on one cost metric, this table breaks one workload per index type down by
*layer* — WAL records/bytes written during the build, then buffer reads,
SP-GiST nodes visited, and page-checksum verifications during a cold-cache
search batch. The indexes live on file-backed disks (WAL and checksums
enabled) since the durability layers are what the table measures.

All counters come from the :data:`repro.obs.METRICS` registry snapshots
taken by :func:`repro.bench.harness.measure`.
"""

import pytest

from conftest import print_rows

from repro.bench.figures import layer_breakdown

COLUMNS = (
    "label",
    "build_wal_records",
    "build_wal_kb",
    "search_reads",
    "search_nodes",
    "search_checksums",
    "search_retries",
)


@pytest.fixture(scope="module")
def rows():
    return layer_breakdown()


def test_layer_columns_present(rows, benchmark):
    print_rows("Per-layer breakdown — build WAL + cold search, per index type",
               rows, COLUMNS)
    assert len(rows) == 6
    labels = {r.values["label"] for r in rows}
    assert labels == {"trie", "kdtree", "pquadtree", "prquadtree", "pmr",
                      "suffix"}


def test_every_layer_observed(rows):
    # Builds are durable: every index type must have written WAL.
    assert all(r.values["build_wal_records"] > 0 for r in rows)
    assert all(r.values["build_wal_kb"] > 0 for r in rows)
    # Cold searches hit the disk, verify checksums, and walk the tree.
    assert all(r.values["search_reads"] > 0 for r in rows)
    assert all(r.values["search_checksums"] > 0 for r in rows)
    assert all(r.values["search_nodes"] > 0 for r in rows)


def test_descent_dominates_for_point_methods(rows):
    # The spatial trees answer window queries by descending partitions:
    # nodes visited should dwarf the number of queries in the batch.
    by_label = {r.values["label"]: r for r in rows}
    for label in ("kdtree", "pquadtree", "prquadtree"):
        assert by_label[label].values["search_nodes"] >= 30
