"""Figure 16 — substring-match search: suffix tree vs sequential scan.

Paper series: ``log10(sequential/suffix-tree)`` per relation size, above 3
(three orders of magnitude) at 250K–4M keys. The mechanism is plain: the
scan reads the whole heap for every query while the suffix tree reads a
prefix path over suffixes, so the ratio grows linearly with relation size.
Our sweep shows that linear growth; extrapolated to the paper's 2M keys it
passes 10³ (see EXPERIMENTS.md).
"""

import pytest

from conftest import bench_print, print_rows

from repro.bench.figures import Workbench, fig16_suffix_vs_seqscan
from repro.bench.report import log10
from repro.indexes.suffix import SuffixTreeIndex
from repro.workloads import random_words

COLUMNS = ("ratio", "read_ratio", "suffix_cost", "seqscan_cost")


@pytest.fixture(scope="module")
def rows():
    return fig16_suffix_vs_seqscan(sizes=(2000, 4000, 8000))


def test_fig16_shapes(rows, benchmark):
    print_rows("Figure 16 — sequential/suffix-tree, substring match",
               rows, COLUMNS)
    bench_print(
        "log10 series: "
        + str([round(log10(r.values["ratio"]), 2) for r in rows])
    )

    ratios = [r.values["ratio"] for r in rows]
    # The suffix tree wins everywhere...
    for ratio in ratios:
        assert ratio > 2.0
    # ...the advantage grows with size (linear in n, as the mechanism says)...
    assert ratios[-1] > ratios[0] * 1.8
    # ...and the largest size is near an order of magnitude already.
    assert ratios[-1] > 6.0

    bench = Workbench(pool_pages=64)
    suffix = SuffixTreeIndex(bench.buffer)
    for i, w in enumerate(random_words(1500, seed=884, min_length=3)):
        suffix.insert_word(w, i)
    suffix.repack()
    benchmark(lambda: suffix.search_substring("ab"))
