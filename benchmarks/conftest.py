"""Shared experiment runs for the benchmark suite.

The expensive sweeps are computed once per session and shared by the
figure-specific benchmark files (Figures 6–8 share one sweep, 9–12 another,
13–14 a third).
"""

from __future__ import annotations

import pytest

from repro.bench.figures import (
    fig6_to_8_string_search,
    fig9_to_12_insert_size_height,
    fig13_14_kdtree_rtree,
)


_BENCH_DIR = __file__.rsplit("/", 1)[0]


def pytest_collection_modifyitems(items):
    """Every benchmark sweep is a slow test; the fast CI tier skips them.

    The hook sees the whole session's items, so scope the mark to files
    under this directory.
    """
    for item in items:
        if str(item.fspath).startswith(_BENCH_DIR):
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def string_search_rows():
    """Figures 6, 7, 8: trie vs B+-tree search sweep."""
    return fig6_to_8_string_search()


@pytest.fixture(scope="session")
def insert_size_rows():
    """Figures 9-12: build-side sweep."""
    return fig9_to_12_insert_size_height()


@pytest.fixture(scope="session")
def kdtree_rtree_rows():
    """Figures 13-14: kd-tree vs R-tree sweep."""
    return fig13_14_kdtree_rtree()


#: All figure tables of one benchmark session are also appended here, so
#: they survive pytest's output capture when the suite runs without ``-s``.
RESULTS_FILE = __file__.rsplit("/", 1)[0] + "/results.txt"

_results_initialized = False


def bench_print(text: str) -> None:
    """Print a figure table and mirror it into ``benchmarks/results.txt``.

    Run the suite with ``-s`` to see the tables live; either way the
    results file holds the full set afterwards.
    """
    global _results_initialized
    print(text)
    mode = "a" if _results_initialized else "w"
    with open(RESULTS_FILE, mode, encoding="utf-8") as f:
        f.write(text + "\n")
    _results_initialized = True


def print_rows(title, rows, columns):
    """Render an ExperimentRow list as the paper-style series table."""
    from repro.bench.report import format_table

    table = format_table(
        title,
        ["size"] + list(columns),
        [[r.size] + [r.values[c] for c in columns] for r in rows],
    )
    bench_print("\n" + table)
