"""Ablations for the design choices called out in DESIGN.md §3.

D1 bucket size — D2 path shrink — D3 node shrink — D4 clustering —
D5 buffer-pool size — D6 PMR splitting threshold.
"""

import pytest

from conftest import print_rows

from repro.bench.figures import (
    ablation_bucket_size,
    ablation_buffer_pool,
    ablation_clustering,
    ablation_equality_methods,
    ablation_node_shrink,
    ablation_path_shrink,
    ablation_pmr_threshold,
    ablation_rtree_split,
)


class TestD1BucketSize:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablation_bucket_size()

    def test_bucket_size_tradeoff(self, rows, benchmark):
        print_rows(
            "Ablation D1 — trie BucketSize (x = B)",
            rows,
            ("exact_cost", "pages", "nodes", "node_height", "page_height"),
        )
        by_bucket = {r.size: r.values for r in rows}
        # Bigger buckets shrink the tree...
        assert by_bucket[128]["nodes"] < by_bucket[1]["nodes"]
        assert by_bucket[128]["pages"] <= by_bucket[1]["pages"]
        # ...and never deepen it.
        assert by_bucket[128]["node_height"] <= by_bucket[1]["node_height"]
        benchmark.pedantic(ablation_bucket_size,
                           kwargs={"bucket_sizes": (8,), "size": 1000},
                           rounds=1, iterations=1)


class TestD2PathShrink:
    def test_patricia_compression_pays(self, benchmark):
        rows = ablation_path_shrink()
        print_rows(
            "Ablation D2 — PathShrink (0 = TreeShrink, 1 = NeverShrink)",
            rows,
            ("exact_cost", "nodes", "node_height", "pages"),
        )
        tree_shrink, never_shrink = rows[0].values, rows[1].values
        assert tree_shrink["node_height"] <= never_shrink["node_height"]
        assert tree_shrink["nodes"] <= never_shrink["nodes"]
        benchmark.pedantic(ablation_path_shrink, kwargs={"size": 1000},
                           rounds=1, iterations=1)


class TestD3NodeShrink:
    def test_empty_partitions_inflate_the_tree(self, benchmark):
        rows = ablation_node_shrink()
        print_rows(
            "Ablation D3 — NodeShrink (1 = drop empty partitions, 0 = keep)",
            rows,
            ("nodes", "leaves", "pages"),
        )
        with_shrink = next(r for r in rows if r.size == 1).values
        without = next(r for r in rows if r.size == 0).values
        assert without["nodes"] > with_shrink["nodes"]
        assert without["pages"] >= with_shrink["pages"]
        benchmark.pedantic(ablation_node_shrink, kwargs={"size": 800},
                           rounds=1, iterations=1)


class TestD4Clustering:
    def test_repack_cuts_page_height_and_cost(self, benchmark):
        rows = ablation_clustering()
        print_rows(
            "Ablation D4 — clustering (0 = incremental only, 1 = repacked)",
            rows,
            ("exact_cost", "page_height", "pages", "fill"),
        )
        incremental = next(r for r in rows if r.size == 0).values
        repacked = next(r for r in rows if r.size == 1).values
        assert repacked["page_height"] <= incremental["page_height"]
        assert repacked["exact_cost"] <= incremental["exact_cost"] * 1.05
        benchmark.pedantic(ablation_clustering, kwargs={"size": 1000},
                           rounds=1, iterations=1)


class TestD5BufferPool:
    def test_bigger_pools_absorb_reads(self, benchmark):
        rows = ablation_buffer_pool()
        print_rows(
            "Ablation D5 — buffer pool frames (x = pool pages)",
            rows,
            ("reads_per_op", "hit_ratio"),
        )
        reads = [r.values["reads_per_op"] for r in rows]
        assert reads == sorted(reads, reverse=True) or reads[-1] < reads[0]
        assert rows[-1].values["hit_ratio"] > rows[0].values["hit_ratio"]
        benchmark.pedantic(ablation_buffer_pool,
                           kwargs={"pool_sizes": (16,), "size": 1000},
                           rounds=1, iterations=1)


class TestD7EqualityMethods:
    def test_hash_wins_equality_but_only_equality(self, benchmark):
        rows = ablation_equality_methods()
        by_name = {r.values["label"]: r.values for r in rows}
        print_rows(
            "Ablation D7 — equality lookup across access methods "
            f"({', '.join(r.values['label'] for r in rows)})",
            rows,
            ("cost", "reads"),
        )
        # Hash is the flat-cost equality specialist...
        assert by_name["hash"]["cost"] < by_name["trie"]["cost"]
        assert by_name["hash"]["cost"] < by_name["btree"]["cost"]
        # ...and every index crushes the sequential scan.
        for name in ("trie", "btree", "hash"):
            assert by_name[name]["cost"] < by_name["seqscan"]["cost"]
        benchmark.pedantic(ablation_equality_methods,
                           kwargs={"size": 1000, "batch": 10},
                           rounds=1, iterations=1)


class TestD8RTreeSplit:
    def test_linear_split_no_better_than_quadratic(self, benchmark):
        rows = ablation_rtree_split()
        print_rows(
            "Ablation D8 — R-tree split policy (0 = linear, 1 = quadratic)",
            rows,
            ("point_cost", "pages", "height"),
        )
        linear = rows[0].values
        quadratic = rows[1].values
        # Quadratic's tighter groups never lose to linear on point search.
        assert quadratic["point_cost"] <= linear["point_cost"] * 1.05
        benchmark.pedantic(ablation_rtree_split,
                           kwargs={"size": 1000, "batch": 10},
                           rounds=1, iterations=1)


class TestD6PMRThreshold:
    def test_threshold_tradeoff(self, benchmark):
        rows = ablation_pmr_threshold()
        print_rows(
            "Ablation D6 — PMR splitting threshold (x = threshold)",
            rows,
            ("window_cost", "pages", "items_stored", "node_height"),
        )
        by_threshold = {r.size: r.values for r in rows}
        # Lower thresholds split deeper: taller trees, more replication.
        assert by_threshold[2]["node_height"] >= by_threshold[16]["node_height"]
        assert by_threshold[2]["items_stored"] >= by_threshold[16]["items_stored"]
        benchmark.pedantic(ablation_pmr_threshold,
                           kwargs={"thresholds": (8,), "size": 800},
                           rounds=1, iterations=1)
