"""Property-based tests for the linear-hashing index and PR quadtree."""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests import hypothesis_max_examples

from repro.baselines import HashIndex
from repro.geometry import Box, Point
from repro.indexes.prquadtree import PRQuadtreeIndex
from repro.storage import BufferPool, DiskManager

SETTINGS = settings(
    max_examples=hypothesis_max_examples(30),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

KEYS = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=10),
    min_size=1,
    max_size=120,
)

COORD = st.floats(0, 100, allow_nan=False).map(lambda v: round(v, 2))
POINTS = st.lists(st.builds(Point, COORD, COORD), min_size=1, max_size=60)
BOXES = st.builds(
    lambda x1, y1, x2, y2: Box(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2)),
    COORD, COORD, COORD, COORD,
)


def fresh_buffer() -> BufferPool:
    return BufferPool(DiskManager(), capacity=128)


class TestHashProperties:
    @SETTINGS
    @given(KEYS)
    def test_every_key_findable_and_invariants_hold(self, keys):
        index = HashIndex(fresh_buffer())
        for i, k in enumerate(keys):
            index.insert(k, i)
        index.check_invariants()
        for i, k in enumerate(keys):
            assert i in index.search(k)

    @SETTINGS
    @given(KEYS, st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=10))
    def test_search_equals_bruteforce(self, keys, probe):
        index = HashIndex(fresh_buffer())
        for i, k in enumerate(keys):
            index.insert(k, i)
        assert sorted(index.search(probe)) == sorted(
            i for i, k in enumerate(keys) if k == probe
        )

    @SETTINGS
    @given(KEYS, st.data())
    def test_delete_removes_exactly_matches(self, keys, data):
        index = HashIndex(fresh_buffer())
        for i, k in enumerate(keys):
            index.insert(k, i)
        victim = keys[data.draw(st.integers(0, len(keys) - 1))]
        assert index.delete(victim) == keys.count(victim)
        assert index.search(victim) == []
        index.check_invariants()

    @SETTINGS
    @given(KEYS)
    def test_items_is_a_permutation_of_inserts(self, keys):
        index = HashIndex(fresh_buffer())
        for i, k in enumerate(keys):
            index.insert(k, i)
        assert sorted(index.items()) == sorted(
            (k, i) for i, k in enumerate(keys)
        )


class TestPRQuadtreeProperties:
    @SETTINGS
    @given(POINTS, BOXES)
    def test_range_equals_bruteforce(self, points, box):
        index = PRQuadtreeIndex(fresh_buffer(), Box(0, 0, 100, 100),
                                bucket_size=3)
        for i, p in enumerate(points):
            index.insert(p, i)
        expected = sorted(
            i for i, p in enumerate(points) if box.contains_point(p)
        )
        assert sorted(v for _, v in index.search_range(box)) == expected

    @SETTINGS
    @given(POINTS)
    def test_point_match_finds_all_occurrences(self, points):
        index = PRQuadtreeIndex(fresh_buffer(), Box(0, 0, 100, 100))
        for i, p in enumerate(points):
            index.insert(p, i)
        probe = points[0]
        expected = sorted(i for i, p in enumerate(points) if p == probe)
        assert sorted(v for _, v in index.search_point(probe)) == expected

    @SETTINGS
    @given(POINTS, st.builds(Point, COORD, COORD))
    def test_nn_first_is_true_nearest(self, points, query):
        from repro.core.nn import nearest
        from repro.geometry.distance import euclidean

        index = PRQuadtreeIndex(fresh_buffer(), Box(0, 0, 100, 100))
        for i, p in enumerate(points):
            index.insert(p, i)
        [(d, _k, _v)] = nearest(index, query, 1)
        assert abs(d - min(euclidean(p, query) for p in points)) < 1e-9

    @SETTINGS
    @given(POINTS)
    def test_bulk_equals_incremental(self, points):
        bulk = PRQuadtreeIndex(fresh_buffer(), Box(0, 0, 100, 100),
                               bucket_size=3)
        bulk.bulk_build([(p, i) for i, p in enumerate(points)])
        incremental = PRQuadtreeIndex(fresh_buffer(), Box(0, 0, 100, 100),
                                      bucket_size=3)
        for i, p in enumerate(points):
            incremental.insert(p, i)
        box = Box(0, 0, 100, 100)
        assert sorted(bulk.search_range(box)) == sorted(
            incremental.search_range(box)
        )
