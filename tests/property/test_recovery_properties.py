"""Property tests: fault schedules and kill-anywhere crash recovery.

Two contracts from the resilience design:

1. Any seeded fault schedule either surfaces a *typed* ``ReproError``
   subclass or leaves an index that passes ``spgist_check`` — silent
   corruption and wrong answers are never acceptable outcomes.
2. After a crash at an arbitrary point, reopening a file-backed store
   recovers every committed page exactly.
"""

import os
import random
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests import hypothesis_max_examples

from repro.errors import ReproError
from repro.indexes import TrieIndex
from repro.resilience import (
    FaultInjectingDiskManager,
    FaultPolicy,
    spgist_check,
)
from repro.storage import BufferPool, DiskManager, FileDiskManager
from repro.workloads import random_words

SETTINGS = settings(
    max_examples=hypothesis_max_examples(25),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

WORDS = random_words(80, seed=71)


def flaky_trie(policy: FaultPolicy) -> tuple[TrieIndex, FaultInjectingDiskManager]:
    disk = FaultInjectingDiskManager(DiskManager(), policy)
    pool = BufferPool(disk, capacity=8, retry_backoff=0.0)
    return TrieIndex(pool, bucket_size=4), disk


class TestFaultScheduleContract:
    @SETTINGS
    @given(
        seed=st.integers(0, 10_000),
        read_rate=st.floats(0.0, 0.25),
        write_rate=st.floats(0.0, 0.25),
        fail_after=st.one_of(st.none(), st.integers(20, 400)),
    )
    def test_transient_schedules_error_or_leave_clean_index(
        self, seed, read_rate, write_rate, fail_after
    ):
        """Transient/fail-stop faults: typed error or a check-clean index."""
        policy = FaultPolicy(
            seed=seed,
            read_error_rate=read_rate,
            write_error_rate=write_rate,
            fail_after_ops=fail_after,
        )
        trie, _disk = flaky_trie(policy)
        try:
            for i, word in enumerate(WORDS):
                trie.insert(word, i)
            for word in WORDS[::7]:
                trie.search_equal(word)
        except ReproError:
            return  # a typed failure surfaced: the acceptable outcome
        report = spgist_check(trie)
        assert report.ok, report.problems

    @SETTINGS
    @given(
        seed=st.integers(0, 10_000),
        bit_flip=st.floats(0.0, 0.05),
        torn=st.floats(0.0, 0.05),
    )
    def test_corruption_is_detected_never_wrong_results(
        self, seed, bit_flip, torn
    ):
        """Bit flips / torn writes: typed error or exactly right answers."""
        policy = FaultPolicy(seed=seed, bit_flip_rate=bit_flip, torn_write_rate=torn)
        trie, _disk = flaky_trie(policy)
        shadow: dict[str, list[int]] = {}
        try:
            for i, word in enumerate(WORDS):
                trie.insert(word, i)
                shadow.setdefault(word, []).append(i)
        except ReproError:
            return  # corruption detected during maintenance — fine
        for word in WORDS[::5]:
            expected = sorted(shadow[word])
            try:
                got = sorted(v for _k, v in trie.search_equal(word))
            except ReproError:
                continue  # detected — fine; wrong answers are not
            assert got == expected


class TestKillAnywhereRecovery:
    @SETTINGS
    @given(seed=st.integers(0, 100_000))
    def test_every_committed_page_survives_a_crash(self, seed):
        """Write/sync/crash at a seeded random point; committed state holds."""
        rng = random.Random(seed)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "pages.dat")
            disk = FileDiskManager(path)
            pids = [disk.allocate_page() for _ in range(5)]
            committed: dict[int, str] = {}
            staged: dict[int, str] = {}
            for step in range(rng.randint(1, 15)):
                pid = rng.choice(pids)
                value = f"v{step}"
                disk.write_page(pid, value)
                staged[pid] = value
                if rng.random() < 0.4:
                    disk.sync()
                    committed.update(staged)
                    staged.clear()
            disk.simulate_crash(seed=seed)
            recovered = FileDiskManager(path)
            for pid, value in committed.items():
                assert recovered.read_page(pid) == value
            recovered.close()
