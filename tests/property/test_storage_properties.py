"""Property-based tests for the storage substrate."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests import hypothesis_max_examples

from repro.storage import BufferPool, DiskManager, HeapFile

SETTINGS = settings(
    max_examples=hypothesis_max_examples(40),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

PAYLOADS = st.lists(
    st.one_of(
        st.integers(),
        st.text(max_size=20),
        st.tuples(st.text(max_size=8), st.integers()),
    ),
    min_size=1,
    max_size=60,
)


class TestBufferPoolTransparency:
    @SETTINGS
    @given(PAYLOADS, st.integers(min_value=1, max_value=8))
    def test_any_capacity_preserves_contents(self, payloads, capacity):
        """A buffer pool is a cache: capacity must never change contents."""
        pool = BufferPool(DiskManager(), capacity=capacity)
        ids = [pool.new_page(p) for p in payloads]
        # Interleave reads to shuffle LRU order.
        for pid in reversed(ids):
            pool.fetch(pid)
        for pid, expected in zip(ids, payloads):
            assert pool.fetch(pid) == expected

    @SETTINGS
    @given(PAYLOADS)
    def test_flush_then_cold_read_roundtrips(self, payloads):
        pool = BufferPool(DiskManager(), capacity=4)
        ids = [pool.new_page(p) for p in payloads]
        pool.clear()
        assert [pool.fetch(pid) for pid in ids] == payloads


class TestHeapProperties:
    @SETTINGS
    @given(PAYLOADS, st.integers(min_value=1, max_value=6))
    def test_scan_returns_live_records_in_order(self, records, capacity):
        heap = HeapFile(BufferPool(DiskManager(), capacity=capacity))
        tids = [heap.insert(r) for r in records]
        assert [r for _, r in heap.scan()] == records
        for tid, r in zip(tids, records):
            assert heap.fetch(tid) == r

    @SETTINGS
    @given(PAYLOADS, st.data())
    def test_deleted_subset_never_reappears(self, records, data):
        heap = HeapFile(BufferPool(DiskManager(), capacity=4))
        tids = [heap.insert(r) for r in records]
        victims = data.draw(
            st.sets(st.integers(0, len(records) - 1), max_size=len(records))
        )
        for i in victims:
            heap.delete(tids[i])
        survivors = [r for i, r in enumerate(records) if i not in victims]
        assert [r for _, r in heap.scan()] == survivors
        assert len(heap) == len(survivors)
