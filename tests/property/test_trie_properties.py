"""Property-based tests (hypothesis) for the patricia trie."""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests import hypothesis_max_examples

from repro.indexes.trie import TrieIndex, regex_matches
from repro.storage import BufferPool, DiskManager

WORDS = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=12),
    min_size=1,
    max_size=80,
)

SETTINGS = settings(
    max_examples=hypothesis_max_examples(40),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_trie(words: list[str], bucket_size: int = 2) -> TrieIndex:
    trie = TrieIndex(
        BufferPool(DiskManager(), capacity=128), bucket_size=bucket_size
    )
    for i, w in enumerate(words):
        trie.insert(w, i)
    return trie


class TestSearchProperties:
    @SETTINGS
    @given(WORDS)
    def test_every_inserted_word_is_findable(self, words):
        trie = build_trie(words)
        for i, w in enumerate(words):
            assert (w, i) in trie.search_equal(w)

    @SETTINGS
    @given(WORDS, st.text(alphabet=string.ascii_lowercase, max_size=4))
    def test_prefix_search_equals_bruteforce(self, words, prefix):
        trie = build_trie(words)
        expected = sorted(
            (w, i) for i, w in enumerate(words) if w.startswith(prefix)
        )
        assert sorted(trie.search_prefix(prefix)) == expected

    @SETTINGS
    @given(
        WORDS,
        st.text(alphabet=string.ascii_lowercase + "?", min_size=1, max_size=8),
    )
    def test_regex_search_equals_bruteforce(self, words, pattern):
        trie = build_trie(words)
        expected = sorted(
            (w, i) for i, w in enumerate(words) if regex_matches(pattern, w)
        )
        assert sorted(trie.search_regex(pattern)) == expected

    @SETTINGS
    @given(WORDS)
    def test_item_count_invariant(self, words):
        trie = build_trie(words)
        assert len(trie) == len(words)
        assert trie.statistics().items == len(words)


class TestDeleteProperties:
    @SETTINGS
    @given(WORDS, st.data())
    def test_delete_then_absent(self, words, data):
        trie = build_trie(words)
        victim_index = data.draw(st.integers(0, len(words) - 1))
        victim = words[victim_index]
        trie.delete(victim, victim_index)
        assert (victim, victim_index) not in trie.search_equal(victim)
        # Every other item remains findable.
        for i, w in enumerate(words):
            if i != victim_index:
                assert (w, i) in trie.search_equal(w)

    @SETTINGS
    @given(WORDS)
    def test_insert_delete_roundtrip_leaves_empty(self, words):
        trie = build_trie(words)
        for i, w in enumerate(words):
            trie.delete(w, i)
        assert len(trie) == 0
        assert trie.search_prefix("") == []


class TestRepackProperties:
    @SETTINGS
    @given(WORDS)
    def test_repack_preserves_every_search(self, words):
        trie = build_trie(words)
        before = sorted(trie.search_prefix(""))
        trie.repack()
        assert sorted(trie.search_prefix("")) == before

    @SETTINGS
    @given(WORDS)
    def test_repack_never_increases_page_height(self, words):
        trie = build_trie(words)
        before = trie.statistics().max_page_height
        trie.repack()
        assert trie.statistics().max_page_height <= before
