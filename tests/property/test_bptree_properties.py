"""Property-based tests for the B+-tree baseline."""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests import hypothesis_max_examples

from repro.baselines import BPlusTree
from repro.storage import BufferPool, DiskManager

KEYS = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=10),
    min_size=1,
    max_size=120,
)

SETTINGS = settings(
    max_examples=hypothesis_max_examples(40),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build(keys: list[str]) -> BPlusTree:
    tree = BPlusTree(BufferPool(DiskManager(), capacity=128))
    for i, k in enumerate(keys):
        tree.insert(k, i)
    return tree


class TestOrderInvariant:
    @SETTINGS
    @given(KEYS)
    def test_scan_all_is_sorted_multiset(self, keys):
        tree = build(keys)
        scanned = [k for k, _ in tree.scan_all()]
        assert scanned == sorted(keys)
        tree.check_invariants()

    @SETTINGS
    @given(KEYS)
    def test_bulk_load_equals_incremental(self, keys):
        incremental = build(keys)
        bulk = BPlusTree(BufferPool(DiskManager(), capacity=128))
        bulk.bulk_load([(k, i) for i, k in enumerate(keys)])
        assert list(bulk.scan_all()) == list(incremental.scan_all())


class TestSearchEquivalence:
    @SETTINGS
    @given(KEYS, st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=10))
    def test_search_equals_bruteforce(self, keys, probe):
        tree = build(keys)
        assert sorted(tree.search(probe)) == sorted(
            i for i, k in enumerate(keys) if k == probe
        )

    @SETTINGS
    @given(
        KEYS,
        st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=5),
        st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=5),
    )
    def test_range_scan_equals_bruteforce(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = build(keys)
        got = sorted(v for _, v in tree.range_scan(lo, hi))
        assert got == sorted(
            i for i, k in enumerate(keys) if lo <= k <= hi
        )

    @SETTINGS
    @given(KEYS, st.text(alphabet=string.ascii_lowercase, max_size=4))
    def test_prefix_scan_equals_bruteforce(self, keys, prefix):
        tree = build(keys)
        got = sorted(v for _, v in tree.prefix_scan(prefix))
        assert got == sorted(
            i for i, k in enumerate(keys) if k.startswith(prefix)
        )


class TestDeleteProperties:
    @SETTINGS
    @given(KEYS, st.data())
    def test_delete_removes_exactly_matches(self, keys, data):
        tree = build(keys)
        victim = keys[data.draw(st.integers(0, len(keys) - 1))]
        expected_removed = keys.count(victim)
        assert tree.delete(victim) == expected_removed
        assert tree.search(victim) == []
        assert len(tree) == len(keys) - expected_removed
        tree.check_invariants()
