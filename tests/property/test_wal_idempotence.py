"""Property tests: WAL replay is idempotent.

The redo primitive (:meth:`FileDiskManager.apply_record`) is used twice in
the system — crash recovery replays the local log, and replication replays
shipped segments — and both callers may legitimately see the same record
more than once (a recovery interrupted by a second crash; a retransmitted
segment racing a duplicate frame). The contract that makes that safe:

    Replaying a committed log — or any prefix of it — any number of
    times, in any prefix-extending order, converges on the same page
    file.

"Same" is checked on the *compacted* image: redo appends a fresh copy of
each page image and repoints the offset table, so the raw append-only file
grows with every replay while the logical state (what :meth:`compact`
canonicalizes: latest image per page, sorted by page id, plus the
allocator's view) must not change.
"""

import os
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests import hypothesis_max_examples

from repro.storage.filedisk import FileDiskManager
from repro.storage.wal import ReplayCursor

SETTINGS = settings(
    max_examples=hypothesis_max_examples(25),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# One logged mutation: (op_selector, page_selector, payload). Selectors are
# reduced modulo the live page population at interpretation time, so every
# drawn sequence is a valid schedule.
_OPS = st.lists(
    st.tuples(
        st.integers(0, 99),
        st.integers(0, 99),
        st.binary(min_size=0, max_size=64),
    ),
    min_size=1,
    max_size=40,
)


def _record_log(dir_path: str, ops: list[tuple[int, int, bytes]]) -> bytes:
    """Run the drawn schedule on a WAL'd manager; return the raw log bytes.

    The manager is never ``sync()``'d (sync checkpoints and resets the
    log), so after the explicit ``wal.commit()`` the ``.wal`` file holds
    every record of the schedule, committed.
    """
    path = os.path.join(dir_path, "source.dat")
    disk = FileDiskManager(path, use_wal=True, fsync=False)
    live: list[int] = []
    for op, page_sel, payload in ops:
        if op < 35 or not live:
            live.append(disk.allocate_page())
        elif op < 85:
            disk.write_page(live[page_sel % len(live)], payload)
        else:
            disk.deallocate_page(live.pop(page_sel % len(live)))
    assert disk.wal is not None
    disk.wal.commit()
    with open(path + ".wal", "rb") as f:
        raw = f.read()
    disk._file.close()
    disk.wal.close()
    return raw


def _fingerprint(disk: FileDiskManager) -> tuple[bytes, tuple, tuple]:
    """The logical state of the page file, canonicalized by compaction."""
    disk.compact()
    with open(disk.path, "rb") as f:
        data = f.read()
    return (
        data,
        tuple(sorted(disk._offsets.items())),
        tuple(sorted(disk._free_list)),
    )


def _fresh_target(dir_path: str, name: str) -> FileDiskManager:
    return FileDiskManager(
        os.path.join(dir_path, name), use_wal=False, fsync=False
    )


def _replay(disk: FileDiskManager, raw: bytes, upto: int | None = None) -> None:
    records = list(ReplayCursor(raw, origin="idempotence-test"))
    for record in records[:upto]:
        disk.apply_record(record)
    disk.sync()


class TestWALReplayIdempotence:
    @SETTINGS
    @given(ops=_OPS)
    def test_replaying_the_same_log_twice_changes_nothing(self, ops):
        with tempfile.TemporaryDirectory(prefix="wal-idem-") as dir_path:
            raw = _record_log(dir_path, ops)
            target = _fresh_target(dir_path, "target.dat")
            _replay(target, raw)
            once = _fingerprint(target)
            _replay(target, raw)
            twice = _fingerprint(target)
            assert once == twice

    @SETTINGS
    @given(ops=_OPS, data=st.data())
    def test_prefix_replay_then_full_replay_converges(self, ops, data):
        """A partial replay (any cut point) followed by a full one lands on
        exactly the state of a single clean replay — the shape of a
        recovery that is itself interrupted and restarted from the top."""
        with tempfile.TemporaryDirectory(prefix="wal-idem-") as dir_path:
            raw = _record_log(dir_path, ops)
            total = len(list(ReplayCursor(raw, origin="idempotence-test")))
            cut = data.draw(st.integers(0, total), label="cut")

            clean = _fresh_target(dir_path, "clean.dat")
            _replay(clean, raw)

            restarted = _fresh_target(dir_path, "restarted.dat")
            _replay(restarted, raw, upto=cut)
            _replay(restarted, raw)
            assert _fingerprint(restarted) == _fingerprint(clean)
