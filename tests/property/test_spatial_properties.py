"""Property-based tests for the spatial indexes (kd-tree, quadtrees, R-tree)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests import hypothesis_max_examples

from repro.baselines import RTree
from repro.geometry import Box, LineSegment, Point
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.pmr import PMRQuadtreeIndex
from repro.indexes.pquadtree import PointQuadtreeIndex
from repro.storage import BufferPool, DiskManager

COORD = st.floats(0, 100, allow_nan=False).map(lambda v: round(v, 2))
POINTS = st.lists(
    st.builds(Point, COORD, COORD), min_size=1, max_size=60
)
BOXES = st.builds(
    lambda x1, y1, x2, y2: Box(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2)),
    COORD, COORD, COORD, COORD,
)
SEGMENTS = st.lists(
    st.builds(LineSegment, st.builds(Point, COORD, COORD),
              st.builds(Point, COORD, COORD)),
    min_size=1,
    max_size=40,
)

SETTINGS = settings(
    max_examples=hypothesis_max_examples(30),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def fresh_buffer() -> BufferPool:
    return BufferPool(DiskManager(), capacity=128)


class TestPointIndexEquivalence:
    @SETTINGS
    @given(POINTS, BOXES)
    def test_kdtree_range_equals_bruteforce(self, points, box):
        index = KDTreeIndex(fresh_buffer())
        for i, p in enumerate(points):
            index.insert(p, i)
        expected = sorted(i for i, p in enumerate(points) if box.contains_point(p))
        assert sorted(v for _, v in index.search_range(box)) == expected

    @SETTINGS
    @given(POINTS, BOXES)
    def test_pquadtree_range_equals_bruteforce(self, points, box):
        index = PointQuadtreeIndex(fresh_buffer())
        for i, p in enumerate(points):
            index.insert(p, i)
        expected = sorted(i for i, p in enumerate(points) if box.contains_point(p))
        assert sorted(v for _, v in index.search_range(box)) == expected

    @SETTINGS
    @given(POINTS)
    def test_kdtree_point_match_finds_all_occurrences(self, points):
        index = KDTreeIndex(fresh_buffer())
        for i, p in enumerate(points):
            index.insert(p, i)
        probe = points[0]
        expected = sorted(i for i, p in enumerate(points) if p == probe)
        assert sorted(v for _, v in index.search_point(probe)) == expected

    @SETTINGS
    @given(POINTS, BOXES)
    def test_three_structures_agree(self, points, box):
        kd = KDTreeIndex(fresh_buffer())
        pq = PointQuadtreeIndex(fresh_buffer())
        rt = RTree(fresh_buffer())
        for i, p in enumerate(points):
            kd.insert(p, i)
            pq.insert(p, i)
            rt.insert(p, i)
        a = sorted(v for _, v in kd.search_range(box))
        b = sorted(v for _, v in pq.search_range(box))
        c = sorted(v for _, v in rt.range_search(box))
        assert a == b == c


class TestNNProperties:
    @SETTINGS
    @given(POINTS, st.builds(Point, COORD, COORD))
    def test_kdtree_nn_first_is_true_nearest(self, points, query):
        from repro.core.nn import nearest
        from repro.geometry.distance import euclidean

        index = KDTreeIndex(fresh_buffer())
        for i, p in enumerate(points):
            index.insert(p, i)
        [(d, _key, _v)] = nearest(index, query, 1)
        assert abs(d - min(euclidean(p, query) for p in points)) < 1e-9

    @SETTINGS
    @given(POINTS, st.builds(Point, COORD, COORD))
    def test_nn_stream_sorted_and_complete(self, points, query):
        index = PointQuadtreeIndex(fresh_buffer())
        for i, p in enumerate(points):
            index.insert(p, i)
        results = list(index.nn_search(query))
        distances = [d for d, _, _ in results]
        assert distances == sorted(distances)
        assert sorted(v for _, _, v in results) == list(range(len(points)))


class TestPMRProperties:
    @SETTINGS
    @given(SEGMENTS, BOXES)
    def test_window_equals_bruteforce(self, segments, window):
        index = PMRQuadtreeIndex(
            fresh_buffer(), Box(0, 0, 100, 100), threshold=3, resolution=10
        )
        for i, s in enumerate(segments):
            index.insert(s, i)
        expected = sorted(
            i for i, s in enumerate(segments) if s.intersects_box(window)
        )
        assert sorted(v for _, v in index.search_window(window)) == expected

    @SETTINGS
    @given(SEGMENTS)
    def test_pmr_and_rtree_agree_on_exact_match(self, segments):
        pmr = PMRQuadtreeIndex(fresh_buffer(), Box(0, 0, 100, 100))
        rt = RTree(fresh_buffer())
        for i, s in enumerate(segments):
            pmr.insert(s, i)
            rt.insert(s, i)
        probe = segments[len(segments) // 2]
        assert sorted(v for _, v in pmr.search_exact(probe)) == sorted(
            v for _, v in rt.search_exact(probe)
        )


class TestRTreeInvariants:
    @SETTINGS
    @given(POINTS)
    def test_mbr_containment_always_holds(self, points):
        tree = RTree(fresh_buffer())
        for i, p in enumerate(points):
            tree.insert(p, i)
        tree.check_invariants()

    @SETTINGS
    @given(SEGMENTS, st.data())
    def test_invariants_survive_deletes(self, segments, data):
        tree = RTree(fresh_buffer())
        for i, s in enumerate(segments):
            tree.insert(s, i)
        count = data.draw(st.integers(0, len(segments) - 1))
        for i in range(count):
            tree.delete(segments[i], i)
        tree.check_invariants()
        assert len(tree) == len(segments) - count
