"""Tests for the synthetic workload generators."""

from repro.geometry import Box
from repro.workloads import (
    clustered_points,
    random_points,
    random_query_boxes,
    random_segments,
    random_words,
    regex_pattern_for,
    sample_prefixes,
)
from repro.workloads.points import WORLD
from repro.workloads.words import regex_queries


class TestWords:
    def test_count_and_alphabet(self):
        words = random_words(500, seed=1)
        assert len(words) == 500
        assert all(w.islower() and w.isalpha() for w in words)

    def test_paper_length_distribution(self):
        words = random_words(2000, seed=2)
        lengths = {len(w) for w in words}
        assert min(lengths) >= 1 and max(lengths) <= 15

    def test_deterministic_per_seed(self):
        assert random_words(50, seed=7) == random_words(50, seed=7)
        assert random_words(50, seed=7) != random_words(50, seed=8)

    def test_sample_prefixes_come_from_data(self):
        words = random_words(200, seed=3)
        for prefix in sample_prefixes(words, 20, length=3, seed=4):
            assert len(prefix) == 3
            assert any(w.startswith(prefix) for w in words)

    def test_regex_pattern_for(self):
        assert regex_pattern_for("abcdef", [0, 3]) == "?bc?ef"
        assert regex_pattern_for("ab", [5]) == "ab"  # out of range ignored

    def test_regex_queries_have_matches(self):
        words = random_words(300, seed=5)
        from repro.indexes.trie import regex_matches

        for pattern in regex_queries(words, 10, [1], seed=6):
            assert any(regex_matches(pattern, w) for w in words)


class TestPoints:
    def test_inside_world(self):
        for p in random_points(300, seed=1):
            assert WORLD.contains_point(p)

    def test_deterministic(self):
        assert random_points(30, seed=9) == random_points(30, seed=9)

    def test_clustered_inside_world(self):
        for p in clustered_points(300, seed=2):
            assert WORLD.contains_point(p)

    def test_clustered_is_actually_clustered(self):
        pts = clustered_points(500, clusters=2, spread=1.0, seed=3)
        uniform = random_points(500, seed=3)
        # Clustered data occupies far less of the plane.
        def spread_of(points):
            return Box.bounding([Box.from_point(p) for p in points]).area()

        # Both fill the world roughly, but local density differs; use mean
        # nearest-cluster-center distance proxy: variance of coordinates.
        import statistics

        cvar = statistics.pvariance([p.x for p in pts])
        uvar = statistics.pvariance([p.x for p in uniform])
        assert cvar < uvar

    def test_query_boxes_in_world(self):
        for b in random_query_boxes(50, side=5.0, seed=4):
            assert WORLD.contains_box(b)
            assert abs(b.width - 5.0) < 1e-9


class TestSegments:
    def test_count_and_world(self):
        segments = random_segments(200, seed=1)
        assert len(segments) == 200
        for s in segments:
            assert WORLD.contains_point(s.a)
            assert WORLD.contains_point(s.b)

    def test_bounded_length(self):
        for s in random_segments(300, max_length=5.0, seed=2):
            assert s.length() <= 5.0 + 1e-6

    def test_deterministic(self):
        assert random_segments(20, seed=5) == random_segments(20, seed=5)
