"""2PC: journals, coordinator log, and the coordinator crash matrix."""

from __future__ import annotations

import os
import tempfile

import pytest

from repro.cluster import Cluster, CoordinatorCrash, TwoPhaseCoordinator
from repro.cluster.twopc import (
    CoordinatorLog,
    PrepareJournal,
    decode_rows,
    encode_rows,
)
from repro.geometry.point import Point
from repro.geometry.segment import LineSegment


def _crash_once():
    state = {"armed": True}

    def hook():
        if state["armed"]:
            state["armed"] = False
            raise CoordinatorCrash("chaos")

    return hook


def _multi_shard_rows(cluster, tag_base, per_shard=2):
    """Rows that straddle every shard, uniquely tagged."""
    groups = {}
    probe = [Point(10.0 + i * 0.37, 10.0 + i * 0.53) for i in range(500)]
    for i, p in enumerate(probe):
        sid = cluster.shard_map.shard_of_key(p)
        rows = groups.setdefault(sid, [])
        if len(rows) < per_shard:
            rows.append((p, tag_base + i))
        if all(len(v) >= per_shard for v in groups.values()) and len(
            groups
        ) == cluster.shard_map.num_shards:
            break
    assert len(groups) > 1
    return groups


@pytest.fixture()
def cluster():
    with tempfile.TemporaryDirectory() as tmp:
        c = Cluster(tmp, kind="kdtree", shards=3, replicas=1, quorum=1, fsync=False)
        yield c
        c.close()


class TestEncoding:
    def test_geometry_round_trip(self):
        rows = [
            (Point(1.5, 2.5), 7),
            (LineSegment(Point(0, 0), Point(3, 4)), "tag"),
            ("plain", 1),
        ]
        assert decode_rows(encode_rows(rows)) == rows


class TestJournal:
    def test_pending_folds_prepares_and_tombstones(self):
        with tempfile.TemporaryDirectory() as tmp:
            journal = PrepareJournal(os.path.join(tmp, "prepared.log"), fsync=False)
            journal.prepare("txn-1", [(Point(1, 1), 1)])
            journal.prepare("txn-2", [(Point(2, 2), 2)])
            journal.forget("txn-1")
            assert set(journal.pending()) == {"txn-2"}

    def test_torn_final_line_never_happened(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "prepared.log")
            journal = PrepareJournal(path, fsync=False)
            journal.prepare("txn-1", [(Point(1, 1), 1)])
            with open(path, "a", encoding="utf-8") as handle:
                handle.write('{"op": "prepare", "gid": "txn-2", "ro')
            assert set(journal.pending()) == {"txn-1"}

    def test_compact_preserves_apply_markers(self):
        with tempfile.TemporaryDirectory() as tmp:
            journal = PrepareJournal(os.path.join(tmp, "prepared.log"), fsync=False)
            journal.prepare("txn-1", [(Point(1, 1), 1)])
            journal.applying("txn-1", 5)
            journal.prepare("txn-2", [(Point(2, 2), 2)])
            journal.applying("txn-2", 6)
            journal.forget("txn-2")
            journal.compact()
            assert set(journal.pending()) == {"txn-1"}
            assert journal.pending_applies() == {"txn-1": 5}

    def test_compact_drops_resolved_entries(self):
        with tempfile.TemporaryDirectory() as tmp:
            journal = PrepareJournal(os.path.join(tmp, "prepared.log"), fsync=False)
            for i in range(10):
                journal.prepare(f"txn-{i}", [(Point(i, i), i)])
                if i % 2 == 0:
                    journal.forget(f"txn-{i}")
            size_before = os.path.getsize(journal.path)
            journal.compact()
            assert os.path.getsize(journal.path) < size_before
            assert set(journal.pending()) == {f"txn-{i}" for i in (1, 3, 5, 7, 9)}


class TestCoordinatorLog:
    def test_in_flight_lifecycle(self):
        with tempfile.TemporaryDirectory() as tmp:
            log = CoordinatorLog(os.path.join(tmp, "coord.log"), fsync=False)
            log.begin("txn-1", [0, 1])
            assert log.in_flight() == {
                "txn-1": {"shards": [0, 1], "committed": False}
            }
            log.commit("txn-1")
            assert log.in_flight()["txn-1"]["committed"] is True
            log.done("txn-1")
            assert log.in_flight() == {}
            assert log.committed_gids() == {"txn-1"}

    def test_gid_counter_continues_from_log(self):
        with tempfile.TemporaryDirectory() as tmp:
            log = CoordinatorLog(os.path.join(tmp, "coord.log"), fsync=False)
            log.begin("txn-000041", [0])
            log.commit("txn-000041")
            log.done("txn-000041")
            coordinator = TwoPhaseCoordinator(log, {})
            assert coordinator.next_gid() == "txn-000042"


class TestCrashMatrix:
    """The coordinator dies at each interesting instant; recovery resolves."""

    def _tags(self, groups):
        return {row for rows in groups.values() for row in rows}

    def test_crash_before_prepare_aborts_cleanly(self, cluster):
        groups = _multi_shard_rows(cluster, 1000)
        cluster.coordinator.crash_before_prepare = _crash_once()
        with pytest.raises(CoordinatorCrash):
            cluster.coordinator.write(groups)
        # reboot: fresh coordinator over the same log
        cluster.coordinator = TwoPhaseCoordinator(
            cluster.coordinator.log, cluster.shards
        )
        outcomes = cluster.recover()
        assert set(outcomes.values()) == {"aborted"}
        assert not set(cluster.all_rows()) & self._tags(groups)
        for shard in cluster.shards.values():
            assert shard.journal.pending() == {}

    def test_crash_after_all_prepares_presumes_abort(self, cluster):
        groups = _multi_shard_rows(cluster, 2000)
        cluster.coordinator.crash_after_prepares = _crash_once()
        with pytest.raises(CoordinatorCrash):
            cluster.coordinator.write(groups)
        # every prepare landed durably...
        journaled = {
            sid for sid, shard in cluster.shards.items() if shard.journal.pending()
        }
        assert journaled == set(groups)
        # ...but no COMMIT record exists, so recovery presumes abort.
        cluster.coordinator = TwoPhaseCoordinator(
            cluster.coordinator.log, cluster.shards
        )
        outcomes = cluster.recover()
        assert set(outcomes.values()) == {"aborted"}
        assert not set(cluster.all_rows()) & self._tags(groups)
        for shard in cluster.shards.values():
            assert shard.journal.pending() == {}

    def test_crash_mid_fanout_completes_on_recovery(self, cluster):
        groups = _multi_shard_rows(cluster, 3000)
        cluster.coordinator.crash_mid_commit_fanout = _crash_once()
        with pytest.raises(CoordinatorCrash):
            cluster.coordinator.write(groups)
        # COMMIT was force-written: the txn is acknowledged. At least one
        # leg applied, at least one did not.
        visible = set(cluster.all_rows()) & self._tags(groups)
        assert visible
        assert visible != self._tags(groups)
        cluster.coordinator = TwoPhaseCoordinator(
            cluster.coordinator.log, cluster.shards
        )
        outcomes = cluster.recover()
        assert set(outcomes.values()) == {"committed"}
        assert self._tags(groups) <= set(cluster.all_rows())
        # idempotent: a second recovery changes nothing
        before = sorted(cluster.all_rows())
        cluster.recover()
        assert sorted(cluster.all_rows()) == before
        for shard in cluster.shards.values():
            assert shard.journal.pending() == {}

    def test_recovery_survives_full_cluster_restart(self, cluster):
        """Kill mid-fanout, reopen the whole cluster from disk: the
        committed txn completes from the durable journals + log alone."""
        directory = cluster.directory
        groups = _multi_shard_rows(cluster, 4000)
        cluster.coordinator.crash_mid_commit_fanout = _crash_once()
        with pytest.raises(CoordinatorCrash):
            cluster.coordinator.write(groups)
        cluster.close()

        reopened = Cluster(
            directory, kind="kdtree", shards=3, replicas=1, quorum=1, fsync=False
        )
        try:
            # Cluster.__init__ ran recover(); in-doubt journals drained.
            assert self._tags(groups) <= set(reopened.all_rows())
            for shard in reopened.shards.values():
                assert shard.journal.pending() == {}
            assert not reopened.coordinator.log.in_flight()
        finally:
            reopened.close()


class TestShardSideResolution:
    def test_restarted_shard_resolves_from_coordinator_log(self, cluster):
        groups = _multi_shard_rows(cluster, 5000)
        gid = cluster.coordinator.write(groups)
        sid = sorted(groups)[0]
        # Fabricate the in-doubt state a crash-before-tombstone leaves:
        # journal entry + apply marker present, rows already applied.
        cluster.shards[sid].journal.prepare(gid, groups[sid])
        cluster.shards[sid].journal.applying(
            gid, cluster.shards[sid].primary.commit_seq
        )
        assert gid in cluster.shards[sid].journal.pending()
        outcomes = cluster.resolve_in_doubt(sid)
        assert outcomes == {gid: "committed"}
        # rows were NOT double-applied
        rows = cluster.shards[sid].primary.rows()
        for row in groups[sid]:
            assert rows.count(row) == 1

    def test_unknown_gid_presumed_abort(self, cluster):
        sid = 0
        cluster.shards[sid].journal.prepare("txn-999999", [(Point(1, 1), 99999)])
        outcomes = cluster.resolve_in_doubt(sid)
        assert outcomes == {"txn-999999": "aborted"}
        assert (Point(1, 1), 99999) not in cluster.shards[sid].primary.rows()


class TestApplyIdempotence:
    """The apply marker, not row-value probing, carries idempotence."""

    def test_identical_preexisting_row_is_not_dropped(self, cluster):
        """A prepared row value-identical to a pre-existing row must
        still apply on recovery — the old row-presence probe would
        conclude 'already applied' and silently drop the txn's copy."""
        groups = _multi_shard_rows(cluster, 7000)
        sids = sorted(groups)
        # The fan-out visits shards in id order and the chaos hook
        # fires before the second leg: pre-seed the SECOND shard with
        # a row identical to the one the txn will prepare there.
        dup_row = groups[sids[1]][0]
        cluster.insert([dup_row])
        cluster.coordinator.crash_mid_commit_fanout = _crash_once()
        with pytest.raises(CoordinatorCrash):
            cluster.coordinator.write(groups)
        cluster.coordinator = TwoPhaseCoordinator(
            cluster.coordinator.log, cluster.shards
        )
        outcomes = cluster.recover()
        assert set(outcomes.values()) == {"committed"}
        rows = cluster.shards[sids[1]].primary.rows()
        assert rows.count(dup_row) == 2  # pre-existing + the txn's copy
        for shard in cluster.shards.values():
            assert shard.journal.pending() == {}

    def test_marker_reached_skips_reapply(self, cluster):
        """Marker seq <= durable commit_seq: the apply committed before
        the crash, so resolution only re-acks — no double insert."""
        sid = 0
        shard = cluster.shards[sid]
        row = (Point(3.25, 4.5), 424242)
        seq = shard.rs.client_write([row])  # the apply that committed
        shard.journal.prepare("txn-777777", [row])
        shard.journal.applying("txn-777777", seq)
        cluster.coordinator.log.begin("txn-777777", [sid])
        cluster.coordinator.log.commit("txn-777777")
        outcomes = cluster.resolve_in_doubt(sid)
        assert outcomes == {"txn-777777": "committed"}
        assert shard.primary.rows().count(row) == 1
        assert shard.journal.pending() == {}

    def test_marker_unreached_reapplies(self, cluster):
        """Marker seq ahead of commit_seq: the crash fell between the
        marker and the commit, so the rows must (re)apply."""
        sid = 0
        shard = cluster.shards[sid]
        row = (Point(6.5, 7.75), 434343)
        shard.journal.prepare("txn-888888", [row])
        shard.journal.applying("txn-888888", shard.primary.commit_seq + 1)
        cluster.coordinator.log.begin("txn-888888", [sid])
        cluster.coordinator.log.commit("txn-888888")
        outcomes = cluster.resolve_in_doubt(sid)
        assert outcomes == {"txn-888888": "committed"}
        assert shard.primary.rows().count(row) == 1
        assert shard.journal.pending() == {}


class TestDurabilityDefaults:
    def test_correctness_logs_always_fsync(self, cluster):
        """The cluster fixture passes fsync=False, yet the 2PC and
        split logs must stay force-written (the documented ack point)."""
        assert cluster.coordinator.log.fsync is True
        assert all(s.journal.fsync for s in cluster.shards.values())
        assert cluster.split_log.fsync is True


class TestAbortOnNoVote:
    def test_dead_shard_vetoes_and_nothing_leaks(self, cluster):
        from repro.cluster.twopc import TwoPhaseError

        groups = _multi_shard_rows(cluster, 6000)
        dead = sorted(groups)[-1]
        cluster.kill_shard(dead)
        with pytest.raises(TwoPhaseError):
            cluster.insert([row for rows in groups.values() for row in rows])
        live_rows = [
            row
            for sid, shard in cluster.shards.items()
            if sid != dead
            for row in shard.primary.rows()
        ]
        assert not set(live_rows) & {
            row for rows in groups.values() for row in rows
        }
