"""Cluster behaviour: routing, scatter-gather, NN merge, split, reopen."""

from __future__ import annotations

import tempfile

import pytest

from repro.cluster import Cluster
from repro.geometry import Box, euclidean
from repro.geometry.point import Point
from repro.workloads import random_points, random_segments, random_words


@pytest.fixture()
def point_cluster():
    with tempfile.TemporaryDirectory() as tmp:
        cluster = Cluster(
            tmp, kind="kdtree", shards=4, replicas=1, quorum=1, fsync=False
        )
        pts = random_points(200, seed=21)
        rows = [(p, i) for i, p in enumerate(pts)]
        cluster.insert(rows)
        yield cluster, rows
        cluster.close()


class TestRouting:
    def test_point_lookup_touches_one_shard(self, point_cluster):
        cluster, rows = point_cluster
        row = rows[7]
        assert cluster.router.shards_for("@", row[0]) == [
            cluster.shard_map.shard_of_key(row[0])
        ]
        assert row in cluster.search("@", row[0])

    def test_every_row_lands_on_its_mapped_shard(self, point_cluster):
        cluster, rows = point_cluster
        for sid, shard in cluster.shards.items():
            for key, _id in shard.primary.rows():
                assert cluster.shard_map.shard_of_key(key) == sid

    def test_window_scatter_matches_model(self, point_cluster):
        cluster, rows = point_cluster
        box = Box(10, 10, 60, 60)
        got = cluster.search("^", box)
        want = [r for r in rows if box.contains_point(r[0])]
        assert sorted(got) == sorted(want)

    def test_scatter_batches_equal_materialized(self, point_cluster):
        cluster, rows = point_cluster
        box = Box(0, 0, 80, 40)
        flat = [
            row
            for batch in cluster.search_batches("^", box, batch_size=7)
            for row in batch
        ]
        assert flat == cluster.search("^", box)


class TestClusterNN:
    def test_nn_merge_equals_global_brute_force(self, point_cluster):
        cluster, rows = point_cluster
        query = Point(33.3, 44.4)
        got = cluster.nn_search(query, limit=25)
        want = sorted(euclidean(r[0], query) for r in rows)[:25]
        assert [euclidean(r[0], query) for r in got] == want

    def test_nn_stream_is_globally_distance_ordered(self, point_cluster):
        cluster, rows = point_cluster
        merged = list(cluster.router.nn_merged(Point(50, 50)))
        assert len(merged) == len(rows)
        distances = [d for d, _t, _s, _r in merged]
        assert distances == sorted(distances)

    def test_nn_limit_pulls_lazily(self, point_cluster):
        """A LIMIT k pull must not drain whole shards."""
        cluster, rows = point_cluster
        pulled = {"n": 0}
        original = cluster.router._shard_nn_stream

        def counting(sid, operand):
            for item in original(sid, operand):
                pulled["n"] += 1
                yield item

        cluster.router._shard_nn_stream = counting  # type: ignore[method-assign]
        cluster.nn_search(Point(10, 10), limit=5)
        # 5 results + at most one extra head per shard held by the merge
        assert pulled["n"] <= 5 + cluster.shard_map.num_shards

    def test_tie_break_is_deterministic_across_runs(self, point_cluster):
        cluster, rows = point_cluster
        # Duplicate a handful of keys into OTHER shards' id space: exact
        # distance ties that straddle shards.
        dupes = [(rows[i][0], 10_000 + i) for i in range(10)]
        cluster.insert(dupes)
        query = rows[3][0]
        first = cluster.nn_search(query, limit=30)
        for _ in range(3):
            assert cluster.nn_search(query, limit=30) == first


class TestSegmentsAndStrings:
    def test_segment_cluster_window_overlap(self):
        with tempfile.TemporaryDirectory() as tmp:
            cluster = Cluster(
                tmp, kind="pmr", shards=2, replicas=1, quorum=1, fsync=False
            )
            segs = random_segments(60, seed=22)
            rows = [(s, i) for i, s in enumerate(segs)]
            cluster.insert(rows)
            box = Box(0, 0, 40, 40)
            got = cluster.search("&&", box)
            want = [
                r for r in rows if r[0].bounding_box().intersects(box)
            ]
            assert sorted(got) == sorted(want)
            cluster.close()

    def test_hash_cluster_equality_and_prefix(self):
        with tempfile.TemporaryDirectory() as tmp:
            cluster = Cluster(
                tmp, kind="trie", shards=3, replicas=1, quorum=1, fsync=False
            )
            words = random_words(120, seed=23)
            rows = [(w, i) for i, w in enumerate(words)]
            cluster.insert(rows)
            assert rows[9] in cluster.search("=", words[9])
            prefix = words[0][:2]
            got = cluster.search("#=", prefix)
            want = [r for r in rows if r[0].startswith(prefix)]
            assert sorted(got) == sorted(want)
            cluster.close()


class TestSplit:
    def test_split_preserves_rows_and_rebalances(self, point_cluster):
        cluster, rows = point_cluster
        source = cluster.shard_map.shard_of_key(rows[0][0])
        before_rows = sorted(cluster.all_rows())
        before_count = len(cluster.shards[source].primary.rows())
        target = cluster.split_shard(source)
        assert sorted(cluster.all_rows()) == before_rows
        moved = len(cluster.shards[target].primary.rows())
        assert moved > 0
        assert len(cluster.shards[source].primary.rows()) == before_count - moved
        # routing agrees with physical placement after the split
        for sid in (source, target):
            for key, _id in cluster.shards[sid].primary.rows():
                assert cluster.shard_map.shard_of_key(key) == sid

    def test_split_leaves_clean_indexes(self, point_cluster):
        cluster, rows = point_cluster
        cluster.split_shard(0)
        assert all(report.ok for report in cluster.check().values())

    def test_queries_correct_after_split(self, point_cluster):
        cluster, rows = point_cluster
        cluster.split_shard(1)
        box = Box(5, 5, 70, 70)
        want = [r for r in rows if box.contains_point(r[0])]
        assert sorted(cluster.search("^", box)) == sorted(want)
        query = Point(40, 40)
        got = cluster.nn_search(query, limit=10)
        assert [euclidean(r[0], query) for r in got] == sorted(
            euclidean(r[0], query) for r in rows
        )[:10]

    def test_maybe_split_triggers_on_threshold(self):
        with tempfile.TemporaryDirectory() as tmp:
            cluster = Cluster(
                tmp, kind="kdtree", shards=2, replicas=1, quorum=1,
                fsync=False, split_threshold=40,
            )
            pts = random_points(150, seed=24)
            cluster.insert([(p, i) for i, p in enumerate(pts)])
            split = cluster.maybe_split()
            assert split  # at least one shard was over 40 rows
            assert cluster.shard_map.num_shards > 2
            assert len(cluster.all_rows()) == 150
            cluster.close()


class TestReopen:
    def test_cluster_reopens_with_map_and_data(self):
        with tempfile.TemporaryDirectory() as tmp:
            cluster = Cluster(
                tmp, kind="kdtree", shards=3, replicas=1, quorum=1, fsync=False
            )
            pts = random_points(90, seed=25)
            rows = [(p, i) for i, p in enumerate(pts)]
            cluster.insert(rows)
            cluster.split_shard(0)
            want = sorted(cluster.all_rows())
            version = cluster.shard_map.version
            cluster.close()

            reopened = Cluster(
                tmp, kind="kdtree", shards=3, replicas=1, quorum=1, fsync=False
            )
            assert reopened.shard_map.version == version
            assert reopened.shard_map.num_shards == 4
            assert sorted(reopened.all_rows()) == want
            assert rows[5] in reopened.search("@", rows[5][0])
            reopened.close()
