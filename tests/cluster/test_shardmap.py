"""Unit tests for the shard map: routing, pruning, splits, persistence."""

from __future__ import annotations

import os
import tempfile

import pytest

from repro.cluster.shardmap import (
    ShardMap,
    ShardMapError,
    hash_bucket,
    prefix_region,
)
from repro.geometry import Box
from repro.geometry.point import Point
from repro.geometry.segment import LineSegment
from repro.workloads import random_points, random_segments, random_words

WORLD = Box(0.0, 0.0, 100.0, 100.0)


class TestSpacePartition:
    def test_leaves_partition_the_world(self):
        """Every point routes to exactly one in-range shard, any N."""
        for n in (1, 2, 3, 4, 5, 7, 16):
            smap = ShardMap.space(n, WORLD)
            assert smap.covers_world(random_points(300, seed=n))
            # all shard ids are actually used
            assert set(smap.prefixes.values()) == set(range(n))

    def test_point_routing_is_stable(self):
        smap = ShardMap.space(4, WORLD)
        for p in random_points(100, seed=2):
            assert smap.shard_of_key(p) == smap.shard_of_key(p)

    def test_segment_routes_by_midpoint(self):
        smap = ShardMap.space(4, WORLD)
        for seg in random_segments(50, seed=3):
            assert smap.shard_of_key(seg) == smap.shard_of_point(seg.midpoint())

    def test_window_pruning_is_sound(self):
        """shards_for('^', box) covers every shard holding a matching point."""
        smap = ShardMap.space(5, WORLD)
        points = random_points(400, seed=4)
        box = Box(20, 20, 55, 70)
        visited = set(smap.shards_for("^", box))
        for p in points:
            if box.contains_point(p):
                assert smap.shard_of_key(p) in visited

    def test_window_pruning_actually_prunes(self):
        smap = ShardMap.space(8, WORLD)
        tiny = Box(1, 1, 2, 2)
        assert len(smap.shards_for("^", tiny)) < smap.num_shards

    def test_segment_overlap_expands_by_half_extent(self):
        """A segment whose midpoint is outside the window is still found."""
        smap = ShardMap.space(4, WORLD)
        # A long segment: midpoint at (75, 75) (shard of the NE region),
        # but it reaches into the SW.
        seg = LineSegment(Point(30.0, 30.0), Point(120.0, 120.0))
        smap.note_key(seg)
        assert smap.max_half_extent == pytest.approx(45.0)
        home = smap.shard_of_key(seg)
        # a window far from the midpoint but touched by the segment
        window = Box(25, 25, 35, 35)
        assert home in smap.shards_for("&&", window)

    def test_nn_and_unknown_ops_scatter(self):
        smap = ShardMap.space(4, WORLD)
        assert smap.shards_for("@@", Point(1, 1)) == [0, 1, 2, 3]

    def test_point_lookup_routes_to_one_shard(self):
        smap = ShardMap.space(4, WORLD)
        assert len(smap.shards_for("@", Point(10, 10))) == 1


class TestHashPartition:
    def test_buckets_cover_all_shards(self):
        smap = ShardMap.hashed(3, 64)
        assert set(smap.buckets) == {0, 1, 2}

    def test_equality_routes_to_one_shard(self):
        smap = ShardMap.hashed(3, 64)
        for word in random_words(50, seed=5):
            route = smap.shards_for("=", word)
            assert route == [smap.shard_of_key(word)]

    def test_prefix_scatter(self):
        smap = ShardMap.hashed(3, 64)
        assert smap.shards_for("#=", "ab") == [0, 1, 2]

    def test_hash_is_stable(self):
        assert hash_bucket("alpha", 64) == hash_bucket("alpha", 64)

    def test_too_few_buckets_rejected(self):
        with pytest.raises(ShardMapError):
            ShardMap.hashed(5, 4)


class TestSplit:
    def test_space_split_moves_half_the_region(self):
        smap = ShardMap.space(1, WORLD)
        smap.split(0, 1)
        assert smap.num_shards == 2
        assert set(smap.prefixes.values()) == {0, 1}
        # still a complete partition
        assert smap.covers_world(random_points(300, seed=6))

    def test_space_split_with_many_prefixes_moves_whole_prefixes(self):
        smap = ShardMap.space(2, WORLD)  # each shard owns 2 quadrants
        owned_before = smap.shard_prefixes(0)
        assert len(owned_before) == 2
        smap.split(0, 2)
        assert len(smap.shard_prefixes(0)) == 1
        assert len(smap.shard_prefixes(2)) == 1
        assert smap.covers_world(random_points(300, seed=7))

    def test_hash_split_moves_half_the_buckets(self):
        smap = ShardMap.hashed(2, 64)
        before = sum(1 for b in smap.buckets if b == 0)
        smap.split(0, 2)
        after = sum(1 for b in smap.buckets if b == 0)
        assert after == before - before // 2
        assert sum(1 for b in smap.buckets if b == 2) == before // 2

    def test_split_into_self_rejected(self):
        smap = ShardMap.space(2, WORLD)
        with pytest.raises(ShardMapError):
            smap.split(0, 0)

    def test_split_bumps_version(self):
        smap = ShardMap.space(2, WORLD)
        assert smap.version == 0
        smap.split(0, 2)
        assert smap.version == 1


class TestPersistence:
    def test_round_trip(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "shardmap.json")
            smap = ShardMap.space(3, WORLD)
            smap.note_key(LineSegment(Point(0, 0), Point(10, 0)))
            smap.split(0, 3)
            smap.save(path)
            loaded = ShardMap.load(path)
            assert loaded == smap
            # identical routing after the round trip
            for p in random_points(100, seed=8):
                assert loaded.shard_of_key(p) == smap.shard_of_key(p)

    def test_hash_round_trip(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "shardmap.json")
            smap = ShardMap.hashed(4, 64)
            smap.save(path)
            assert ShardMap.load(path) == smap


class TestPrefixGeometry:
    def test_prefix_region_recursion(self):
        region = prefix_region("0", WORLD)
        assert (region.xmin, region.ymin, region.xmax, region.ymax) == (
            0.0, 0.0, 50.0, 50.0,
        )
        ne = prefix_region("33", WORLD)
        assert (ne.xmin, ne.ymin) == (75.0, 75.0)

    def test_invalid_digit_rejected(self):
        with pytest.raises(ShardMapError):
            prefix_region("4", WORLD)
