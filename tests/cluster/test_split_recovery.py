"""Split failure atomicity: rollback, intent-log recovery, orphan cleanup.

The REVIEW findings this pins down: a pre-flip failure must leave the
live routing state untouched (no routing to an empty/partial shard),
and a death between the map flip and the source-side delete must not
leave the moved rows permanently visible twice to scatter/NN reads.
"""

from __future__ import annotations

import os
import tempfile
from collections import Counter

import pytest

from repro.cluster import Cluster
from repro.errors import ReplicationError
from repro.geometry import Box
from repro.workloads import random_points


def _mk(tmp, **overrides):
    kwargs = dict(kind="kdtree", shards=3, replicas=1, quorum=1, fsync=False)
    kwargs.update(overrides)
    return Cluster(tmp, **kwargs)


def _seed_rows(cluster, n=120, seed=31):
    pts = random_points(n, seed=seed)
    rows = [(p, i) for i, p in enumerate(pts)]
    cluster.insert(rows)
    return rows


def _arm_step3_failure(cluster, source):
    """Make the source's shrink transaction fail once before it begins,
    modelling a quorum loss in the crash window between the map flip
    and the source-side delete (the rows stay visible on BOTH sides)."""
    node = cluster.shards[source].primary
    real_begin = node.txn.begin
    state = {"armed": True}

    def flaky_begin():
        if state["armed"]:
            state["armed"] = False
            raise ReplicationError("injected: source quorum lost pre-delete")
        return real_begin()

    node.txn.begin = flaky_begin
    return lambda: setattr(node.txn, "begin", real_begin)


@pytest.fixture()
def seeded():
    with tempfile.TemporaryDirectory() as tmp:
        cluster = _mk(tmp)
        rows = _seed_rows(cluster)
        yield tmp, cluster, rows
        cluster.close()


class TestPreFlipRollback:
    def test_dead_source_leaves_routing_intact(self, seeded):
        tmp, cluster, rows = seeded
        source = cluster.shard_map.shard_of_key(rows[0][0])
        target = cluster.shard_map.num_shards
        before = cluster.shard_map.to_json()
        cluster.kill_shard(source)
        with pytest.raises(ReplicationError):
            cluster.split_shard(source)
        # nothing moved: same map, no target shard, no target directory
        assert cluster.shard_map.to_json() == before
        assert target not in cluster.shards
        assert target not in cluster.coordinator.participants
        assert not os.path.exists(os.path.join(tmp, f"shard-{target}"))
        assert not cluster.split_log.pending()
        cluster.restart_shard(source)
        assert rows[0] in cluster.search("@", rows[0][0])

    def test_copy_failure_rolls_back_and_retry_succeeds(
        self, seeded, monkeypatch
    ):
        tmp, cluster, rows = seeded
        source = cluster.shard_map.shard_of_key(rows[0][0])
        target = cluster.shard_map.num_shards
        before = cluster.shard_map.to_json()
        original = Cluster._open_shard

        def sabotaged(self, sid):
            shard = original(self, sid)
            if sid == target:
                def boom(rows_):
                    raise ReplicationError("injected: target quorum lost")

                shard.rs.client_write = boom  # type: ignore[method-assign]
            return shard

        monkeypatch.setattr(Cluster, "_open_shard", sabotaged)
        with pytest.raises(ReplicationError):
            cluster.split_shard(source)
        # the live map still routes everything to the old shards
        assert cluster.shard_map.to_json() == before
        assert target not in cluster.shards
        assert sorted(cluster.search("^", Box(0, 0, 100, 100))) == sorted(rows)
        assert rows[0] in cluster.search("@", rows[0][0])
        monkeypatch.undo()
        # a clean retry moves the rows exactly once
        tgt = cluster.split_shard(source)
        assert len(cluster.shards[tgt].primary.rows()) > 0
        assert sorted(cluster.all_rows()) == sorted(rows)


class TestShrinkWindowRecovery:
    def test_interrupted_shrink_heals_on_tick(self, seeded):
        tmp, cluster, rows = seeded
        source = cluster.shard_map.shard_of_key(rows[0][0])
        disarm = _arm_step3_failure(cluster, source)
        target = cluster.split_shard(source)
        disarm()
        # the dup window is open: moved rows visible on source AND target
        counts = Counter(cluster.all_rows())
        assert any(n == 2 for n in counts.values())
        assert cluster.split_log.pending()
        # ...and one control-loop beat heals it
        cluster.tick()
        assert not cluster.split_log.pending()
        assert sorted(cluster.all_rows()) == sorted(rows)
        assert all(report.ok for report in cluster.check().values())
        for sid in (source, target):
            for key, _id in cluster.shards[sid].primary.rows():
                assert cluster.shard_map.shard_of_key(key) == sid

    def test_interrupted_shrink_heals_on_cold_reopen(self):
        with tempfile.TemporaryDirectory() as tmp:
            cluster = _mk(tmp)
            rows = _seed_rows(cluster, seed=32)
            source = cluster.shard_map.shard_of_key(rows[0][0])
            _arm_step3_failure(cluster, source)
            cluster.split_shard(source)
            assert cluster.split_log.pending()
            cluster.close()

            reopened = _mk(tmp)
            try:
                # __init__ ran recover(): the owed shrink completed
                assert not reopened.split_log.pending()
                counts = Counter(reopened.all_rows())
                assert set(counts.values()) == {1}
                assert sorted(reopened.all_rows()) == sorted(rows)
                assert rows[0] in reopened.search("@", rows[0][0])
                box = Box(0, 0, 100, 100)
                assert sorted(reopened.search("^", box)) == sorted(rows)
                assert all(r.ok for r in reopened.check().values())
            finally:
                reopened.close()

    def test_ack_failure_after_local_delete_converges(self, seeded):
        """The shrink committed locally but the quorum ack failed: the
        resolver must converge (barrier only) without re-deleting."""
        tmp, cluster, rows = seeded
        source = cluster.shard_map.shard_of_key(rows[0][0])
        src_rs = cluster.shards[source].rs
        real_ack = src_rs._commit_and_ack
        state = {"armed": True}

        def flaky_ack():
            if state["armed"]:
                state["armed"] = False
                raise ReplicationError("injected: ack lost after delete")
            return real_ack()

        src_rs._commit_and_ack = flaky_ack  # type: ignore[method-assign]
        cluster.split_shard(source)
        src_rs._commit_and_ack = real_ack  # type: ignore[method-assign]
        assert cluster.split_log.pending()
        cluster.tick()
        assert not cluster.split_log.pending()
        assert sorted(cluster.all_rows()) == sorted(rows)


class TestPreFlipOrphanCleanup:
    def test_orphan_target_discarded_on_reopen(self):
        """Death after copy+intent but before the flip: the old map
        still routes to the source, and the orphan target copies must
        be discarded so the retried split stays exactly-once."""
        with tempfile.TemporaryDirectory() as tmp:
            cluster = _mk(tmp)
            rows = _seed_rows(cluster, n=100, seed=33)
            target = cluster.shard_map.num_shards
            orphan = cluster._open_shard(target)
            orphan.rs.client_write(rows[:10])
            orphan.rs.close()
            cluster.split_log.intent(0, target, cluster.shard_map.version + 1)
            cluster.close()

            reopened = _mk(tmp)
            try:
                assert not reopened.split_log.pending()
                assert target not in reopened.shards
                assert not os.path.exists(
                    os.path.join(tmp, f"shard-{target}")
                )
                assert sorted(reopened.all_rows()) == sorted(rows)
                # the retried split moves each row exactly once
                reopened.split_shard(0)
                counts = Counter(reopened.all_rows())
                assert set(counts.values()) == {1}
                assert sorted(reopened.all_rows()) == sorted(rows)
            finally:
                reopened.close()
