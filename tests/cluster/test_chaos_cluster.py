"""Cluster chaos campaigns: shard kills, coordinator crashes, flaky nets.

The fast campaign keeps tier-1 honest; the 100-schedule acceptance run
(the ISSUE 10 bar) is ``slow`` — run it with ``--runslow`` or via the CI
chaos job.
"""

from __future__ import annotations

import pytest

from repro.resilience.chaos_cluster import (
    run_cluster_campaign,
    run_cluster_schedule,
)


def _describe(summary):
    return "\n".join(
        f"seed={t['seed']}: {'; '.join(t['failures'][:3])}"
        for t in summary["failed"]
    )


class TestClusterChaosFast:
    def test_small_campaign_holds_invariants(self):
        summary = run_cluster_campaign(4, base_seed=0, ops=30, shards=3)
        assert summary["ok"], _describe(summary)
        # the campaign actually exercised the distributed machinery
        totals = summary["totals"]
        assert totals.get("writes_acked_multi", 0) > 0
        assert totals.get("point_reads", 0) + totals.get("scatter_reads", 0) > 0

    def test_single_schedule_is_deterministic(self):
        first = run_cluster_schedule(seed=3, ops=25, shards=3)
        second = run_cluster_schedule(seed=3, ops=25, shards=3)
        assert first["ok"], "; ".join(first["failures"][:3])
        assert first["events"] == second["events"]
        assert first["stats"] == second["stats"]


@pytest.mark.slow
class TestClusterChaosAcceptance:
    def test_hundred_schedule_acceptance(self):
        """ISSUE 10 acceptance: 100 schedules, zero lost acked commits,
        zero dirty cross-shard reads, clean spgist_check throughout."""
        summary = run_cluster_campaign(100, base_seed=0, ops=40, shards=3)
        assert summary["ok"], _describe(summary)
