"""Tests for the kd-tree instantiation."""

import random

import pytest

from repro.core import BLANK, PathShrink, Query
from repro.errors import KeyNotFoundError
from repro.geometry import Box, Point
from repro.indexes.kdtree import KDTreeIndex, KDTreeMethods
from repro.workloads import random_points, random_query_boxes


@pytest.fixture
def loaded(buffer):
    points = random_points(800, seed=51)
    index = KDTreeIndex(buffer)
    for i, p in enumerate(points):
        index.insert(p, i)
    return index, points


class TestParameters:
    def test_paper_parameter_block(self):
        cfg = KDTreeMethods().get_parameters()
        assert cfg.bucket_size == 1
        assert cfg.num_space_partitions == 2
        assert cfg.path_shrink is PathShrink.NEVER_SHRINK
        assert cfg.node_shrink is False
        assert cfg.key_type == "point"


class TestPickSplit:
    def test_old_point_becomes_blank_discriminator(self):
        methods = KDTreeMethods()
        old, new = (Point(5, 5), "old"), (Point(2, 9), "new")
        result = methods.picksplit([old, new], level=0)
        assert result.node_predicate == Point(5, 5)
        partitions = dict(result.partitions)
        assert partitions[BLANK] == [old]
        assert partitions["left"] == [new]  # 2 < 5 on x (level 0)
        assert partitions["right"] == []

    def test_axis_alternates_with_level(self):
        methods = KDTreeMethods()
        old, new = (Point(5, 5), "old"), (Point(2, 9), "new")
        result = methods.picksplit([old, new], level=1)  # y-discriminated
        partitions = dict(result.partitions)
        assert partitions["right"] == [new]  # 9 >= 5 on y

    def test_tie_goes_right(self):
        methods = KDTreeMethods()
        old, new = (Point(5, 5), "old"), (Point(5, 1), "new")
        partitions = dict(methods.picksplit([old, new], level=0).partitions)
        assert partitions["right"] == [new]


class TestPointSearch:
    def test_vs_bruteforce(self, loaded):
        index, points = loaded
        rng = random.Random(0)
        for probe in rng.sample(points, 40):
            expected = sorted(i for i, p in enumerate(points) if p == probe)
            assert sorted(v for _, v in index.search_point(probe)) == expected

    def test_absent_point(self, loaded):
        index, _ = loaded
        assert index.search_point(Point(-1.0, -1.0)) == []

    def test_duplicate_points(self, buffer):
        index = KDTreeIndex(buffer)
        p = Point(10, 10)
        for i in range(5):
            index.insert(p, i)
        assert sorted(v for _, v in index.search_point(p)) == list(range(5))


class TestRangeSearch:
    def test_vs_bruteforce_many_windows(self, loaded):
        index, points = loaded
        for box in random_query_boxes(10, side=8.0, seed=52):
            expected = sorted(
                i for i, p in enumerate(points) if box.contains_point(p)
            )
            assert sorted(v for _, v in index.search_range(box)) == expected

    def test_window_covering_world(self, loaded):
        index, points = loaded
        assert len(index.search_range(Box(0, 0, 100, 100))) == len(points)

    def test_empty_window(self, loaded):
        index, _ = loaded
        assert index.search_range(Box(-10, -10, -5, -5)) == []

    def test_degenerate_window_is_point_query(self, loaded):
        index, points = loaded
        p = points[0]
        box = Box.from_point(p)
        expected = sorted(i for i, q in enumerate(points) if q == p)
        assert sorted(v for _, v in index.search_range(box)) == expected


class TestStructure:
    def test_bucket_one_means_one_item_leaves(self, loaded):
        index, points = loaded
        stats = index.statistics()
        # every point sits in its own leaf (blank or side leaf)
        assert stats.leaf_nodes >= len(points)

    def test_node_height_logarithmic_for_random_data(self, loaded):
        index, points = loaded
        import math

        stats = index.statistics()
        assert stats.max_node_height <= 6 * math.log2(len(points))

    def test_query_api_equality(self, buffer):
        index = KDTreeIndex(buffer)
        index.insert(Point(1, 2), "a")
        assert index.search_list(Query("@", Point(1, 2))) == [(Point(1, 2), "a")]


class TestDelete:
    def test_delete_point(self, loaded):
        index, points = loaded
        assert index.delete(points[3], 3) == 1
        assert 3 not in [v for _, v in index.search_point(points[3])]

    def test_delete_missing_raises(self, buffer):
        index = KDTreeIndex(buffer)
        index.insert(Point(0, 0))
        with pytest.raises(KeyNotFoundError):
            index.delete(Point(9, 9))

    def test_search_after_random_deletes(self, loaded):
        index, points = loaded
        rng = random.Random(1)
        victims = set(rng.sample(range(len(points)), 150))
        for i in victims:
            index.delete(points[i], i)
        box = Box(25, 25, 75, 75)
        expected = sorted(
            i
            for i, p in enumerate(points)
            if i not in victims and box.contains_point(p)
        )
        assert sorted(v for _, v in index.search_range(box)) == expected
