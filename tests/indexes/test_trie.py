"""Tests for the patricia-trie instantiation."""

import random

import pytest

from repro.core import PathShrink, Query
from repro.errors import KeyNotFoundError
from repro.indexes.trie import TrieIndex, TrieMethods, regex_matches
from repro.workloads import random_words


@pytest.fixture
def loaded(buffer):
    words = random_words(800, seed=31)
    trie = TrieIndex(buffer, bucket_size=4)
    for i, w in enumerate(words):
        trie.insert(w, i)
    return trie, words


class TestParameters:
    def test_paper_parameter_block(self):
        cfg = TrieMethods().get_parameters()
        assert cfg.num_space_partitions == 27
        assert cfg.path_shrink is PathShrink.TREE_SHRINK
        assert cfg.node_shrink is True
        assert cfg.key_type == "varchar"

    def test_supported_operators(self):
        assert set(TrieMethods.supported_operators) == {
            "=", "#=", "?=", "*=", "@@",
        }


class TestRegexMatcher:
    def test_exact(self):
        assert regex_matches("abc", "abc")

    def test_wildcards(self):
        assert regex_matches("a?c", "abc")
        assert regex_matches("???", "xyz")

    def test_length_must_match(self):
        assert not regex_matches("a?", "abc")
        assert not regex_matches("a?cd", "abc")

    def test_literal_mismatch(self):
        assert not regex_matches("a?d", "abc")


class TestExactMatch:
    def test_vs_bruteforce(self, loaded):
        trie, words = loaded
        rng = random.Random(0)
        for probe in rng.sample(words, 40):
            expected = sorted(i for i, w in enumerate(words) if w == probe)
            assert sorted(v for _, v in trie.search_equal(probe)) == expected

    def test_absent_word(self, loaded):
        trie, _ = loaded
        assert trie.search_equal("zzzzzzzzzzzzzzz") == []

    def test_single_character_words(self, buffer):
        trie = TrieIndex(buffer, bucket_size=1)
        for ch in "abcxyz":
            trie.insert(ch, ch)
        assert trie.search_equal("x") == [("x", "x")]

    def test_word_that_is_prefix_of_another(self, buffer):
        trie = TrieIndex(buffer, bucket_size=1)
        trie.insert("car", 1)
        trie.insert("cart", 2)
        trie.insert("carts", 3)
        assert trie.search_equal("car") == [("car", 1)]
        assert trie.search_equal("cart") == [("cart", 2)]

    def test_duplicate_words(self, buffer):
        trie = TrieIndex(buffer, bucket_size=2)
        for i in range(7):
            trie.insert("same", i)
        assert sorted(v for _, v in trie.search_equal("same")) == list(range(7))


class TestPrefixMatch:
    def test_vs_bruteforce(self, loaded):
        trie, words = loaded
        for prefix in ["a", "ab", "qx", "zzz", ""]:
            expected = sorted(
                i for i, w in enumerate(words) if w.startswith(prefix)
            )
            assert sorted(v for _, v in trie.search_prefix(prefix)) == expected

    def test_empty_prefix_returns_all(self, loaded):
        trie, words = loaded
        assert len(trie.search_prefix("")) == len(words)

    def test_prefix_longer_than_any_word(self, loaded):
        trie, _ = loaded
        assert trie.search_prefix("q" * 20) == []


class TestRegexMatch:
    def test_vs_bruteforce(self, loaded):
        trie, words = loaded
        rng = random.Random(1)
        candidates = [w for w in words if len(w) >= 4]
        for _ in range(15):
            word = rng.choice(candidates)
            pattern = "".join(
                "?" if rng.random() < 0.4 else ch for ch in word
            )
            expected = sorted(
                i for i, w in enumerate(words) if regex_matches(pattern, w)
            )
            assert sorted(v for _, v in trie.search_regex(pattern)) == expected

    def test_leading_wildcard(self, loaded):
        trie, words = loaded
        pattern = "?" + words[0][1:]
        expected = sorted(
            i for i, w in enumerate(words) if regex_matches(pattern, w)
        )
        assert sorted(v for _, v in trie.search_regex(pattern)) == expected

    def test_all_wildcards_matches_by_length(self, loaded):
        trie, words = loaded
        expected = sorted(i for i, w in enumerate(words) if len(w) == 5)
        assert sorted(v for _, v in trie.search_regex("?????")) == expected


class TestPatriciaStructure:
    def test_tree_shrink_compresses_chains(self, buffer):
        # Words sharing a long prefix: TreeShrink collapses the chain.
        tree_shrunk = TrieIndex(buffer, bucket_size=1)
        plain = TrieIndex(
            buffer, bucket_size=1, path_shrink=PathShrink.NEVER_SHRINK
        )
        words = ["abcdefgh", "abcdefgz", "abcdefxy"]
        for trie in (tree_shrunk, plain):
            for w in words:
                trie.insert(w)
        assert (
            tree_shrunk.statistics().max_node_height
            < plain.statistics().max_node_height
        )

    def test_prefix_split_restructure(self, buffer):
        # Insert a word that diverges inside a collapsed prefix.
        trie = TrieIndex(buffer, bucket_size=1)
        trie.insert("abcdef", 1)
        trie.insert("abcdeg", 2)  # split at last char
        trie.insert("abxy", 3)    # SplitPrefix restructure at 'ab'
        trie.insert("ab", 4)      # ends inside what was the prefix
        for w, v in [("abcdef", 1), ("abcdeg", 2), ("abxy", 3), ("ab", 4)]:
            assert trie.search_equal(w) == [(w, v)]

    def test_never_shrink_ablation_equivalent_results(self, buffer):
        words = random_words(300, seed=32)
        shrunk = TrieIndex(buffer, bucket_size=4)
        plain = TrieIndex(
            buffer, bucket_size=4, path_shrink=PathShrink.NEVER_SHRINK
        )
        for i, w in enumerate(words):
            shrunk.insert(w, i)
            plain.insert(w, i)
        for prefix in ["a", "xy"]:
            assert sorted(shrunk.search_prefix(prefix)) == sorted(
                plain.search_prefix(prefix)
            )


class TestDelete:
    def test_delete_and_prune(self, buffer):
        trie = TrieIndex(buffer, bucket_size=1)
        for i, w in enumerate(["one", "two", "three"]):
            trie.insert(w, i)
        assert trie.delete("two") == 1
        assert trie.search_equal("two") == []
        assert trie.search_equal("one") == [("one", 0)]

    def test_delete_missing_raises(self, buffer):
        trie = TrieIndex(buffer)
        trie.insert("here")
        with pytest.raises(KeyNotFoundError):
            trie.delete("gone")

    def test_mass_delete_random_subset(self, loaded):
        trie, words = loaded
        rng = random.Random(2)
        victims = set(rng.sample(range(len(words)), 200))
        for i in sorted(victims):
            trie.delete(words[i], i)
        survivors = sorted(
            i for i, w in enumerate(words) if i not in victims
        )
        assert sorted(v for _, v in trie.search_prefix("")) == survivors


class TestLevelAccounting:
    def test_level_delta_includes_prefix(self):
        methods = TrieMethods()
        assert methods.level_delta("") == 1
        assert methods.level_delta("abc") == 4
        assert methods.level_delta(None) == 1

    def test_query_api_directly(self, buffer):
        trie = TrieIndex(buffer, bucket_size=2)
        trie.insert("query", 9)
        assert trie.search_list(Query("=", "query")) == [("query", 9)]
