"""Tests for the space-driven PR quadtree instantiation."""

import random

import pytest

from repro.core.nn import nearest
from repro.geometry import Box, Point
from repro.geometry.distance import euclidean
from repro.indexes.prquadtree import PRQuadtreeIndex, PRQuadtreeMethods
from repro.indexes.pquadtree import PointQuadtreeIndex
from repro.workloads import clustered_points, random_points, random_query_boxes
from repro.workloads.points import WORLD


@pytest.fixture
def loaded(buffer):
    points = random_points(800, seed=321)
    index = PRQuadtreeIndex(buffer, WORLD, bucket_size=4)
    for i, p in enumerate(points):
        index.insert(p, i)
    return index, points


class TestConfiguration:
    def test_parameters(self):
        cfg = PRQuadtreeMethods(WORLD, bucket_size=6, resolution=12).get_parameters()
        assert cfg.num_space_partitions == 4
        assert cfg.bucket_size == 6
        assert cfg.resolution == 12
        assert cfg.node_shrink is False  # space-driven: all quadrants exist

    def test_root_predicate_is_world(self):
        assert PRQuadtreeMethods(WORLD).initial_root_predicate() == WORLD


class TestSearch:
    def test_point_match_vs_bruteforce(self, loaded):
        index, points = loaded
        rng = random.Random(0)
        for probe in rng.sample(points, 30):
            expected = sorted(i for i, p in enumerate(points) if p == probe)
            assert sorted(v for _, v in index.search_point(probe)) == expected

    def test_range_vs_bruteforce(self, loaded):
        index, points = loaded
        for box in random_query_boxes(10, side=9.0, seed=322):
            expected = sorted(
                i for i, p in enumerate(points) if box.contains_point(p)
            )
            assert sorted(v for _, v in index.search_range(box)) == expected

    def test_agrees_with_data_driven_quadtree(self, buffer):
        points = clustered_points(600, clusters=4, seed=323)
        space_driven = PRQuadtreeIndex(buffer, WORLD)
        data_driven = PointQuadtreeIndex(buffer)
        for i, p in enumerate(points):
            space_driven.insert(p, i)
            data_driven.insert(p, i)
        box = Box(30, 30, 70, 60)
        assert sorted(space_driven.search_range(box)) == sorted(
            data_driven.search_range(box)
        )

    def test_absent_point(self, loaded):
        index, _ = loaded
        assert index.search_point(Point(-5.0, -5.0)) == []


class TestSpaceDrivenStructure:
    def test_duplicates_spill_at_resolution(self, buffer):
        index = PRQuadtreeIndex(buffer, WORLD, bucket_size=2, resolution=6)
        p = Point(12.0, 34.0)
        for i in range(12):
            index.insert(p, i)
        assert sorted(v for _, v in index.search_point(p)) == list(range(12))
        assert index.statistics().max_node_height <= 7

    def test_out_of_world_points_are_findable(self, buffer):
        index = PRQuadtreeIndex(buffer, Box(0, 0, 10, 10), bucket_size=1)
        outsider = Point(25.0, 25.0)
        index.insert(outsider, 1)
        for i, p in enumerate(random_points(50, seed=324, world=Box(0, 0, 10, 10))):
            index.insert(p, 10 + i)
        assert index.search_point(outsider) == [(outsider, 1)]

    def test_all_four_quadrants_materialized_on_split(self, buffer):
        index = PRQuadtreeIndex(buffer, WORLD, bucket_size=1)
        index.insert(Point(10, 10), 0)
        index.insert(Point(90, 90), 1)  # triggers the first split
        root = index.store.read(index.root)
        assert not root.is_leaf
        assert len(root.entries) == 4  # NodeShrink=False keeps empties


class TestNN:
    def test_matches_bruteforce(self, loaded):
        index, points = loaded
        query = Point(47.0, 12.0)
        expected = sorted(euclidean(p, query) for p in points)[:15]
        got = [d for d, _, _ in nearest(index, query, 15)]
        assert [round(d, 9) for d in got] == [round(d, 9) for d in expected]


class TestMaintenance:
    def test_delete(self, loaded):
        index, points = loaded
        assert index.delete(points[5], 5) == 1
        assert 5 not in [v for _, v in index.search_point(points[5])]

    def test_bulk_build(self, buffer):
        points = random_points(700, seed=325)
        index = PRQuadtreeIndex(buffer, WORLD)
        index.bulk_build([(p, i) for i, p in enumerate(points)])
        box = Box(20, 40, 55, 80)
        expected = sorted(
            i for i, p in enumerate(points) if box.contains_point(p)
        )
        assert sorted(v for _, v in index.search_range(box)) == expected

    def test_repack_preserves(self, loaded):
        index, points = loaded
        box = Box(0, 0, 50, 50)
        before = sorted(index.search_range(box))
        index.repack()
        assert sorted(index.search_range(box)) == before

    def test_engine_opclass_registered(self):
        from repro.engine import Database

        db = Database()
        db.execute("CREATE TABLE pts (p POINT);")
        db.execute("INSERT INTO pts VALUES ('(3,4)');")
        db.execute(
            "CREATE INDEX pr ON pts USING SP_GiST (p SP_GiST_prquadtree);"
        )
        assert db.execute("SELECT * FROM pts WHERE p @ '(3,4)';") == [
            (Point(3, 4),)
        ]
