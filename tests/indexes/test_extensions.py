"""Tests for the extension features: bulk build and glob matching.

Both extend the paper: bulk operations are its cited companion work
(Ghanem et al.), and richer patterns than the single-character ``?`` are
its stated future work.
"""

import random

import pytest

from repro.core import Query
from repro.errors import IndexCorruptionError
from repro.geometry import Box, Point
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.pmr import PMRQuadtreeIndex
from repro.indexes.pquadtree import PointQuadtreeIndex
from repro.indexes.suffix import SuffixTreeIndex
from repro.indexes.trie import TrieIndex, glob_matches
from repro.baselines import BPlusTree
from repro.workloads import random_points, random_segments, random_words
from repro.workloads.points import WORLD


class TestGlobMatcher:
    @pytest.mark.parametrize(
        "pattern,text,expected",
        [
            ("abc", "abc", True),
            ("abc", "abd", False),
            ("a?c", "abc", True),
            ("a*", "a", True),
            ("a*", "abcdef", True),
            ("*c", "abc", True),
            ("*c", "abd", False),
            ("a*c", "abbbc", True),
            ("a*c", "ac", True),
            ("a*b*c", "aXbYc", True),
            ("a*b*c", "acb", False),
            ("*", "", True),
            ("*", "anything", True),
            ("", "", True),
            ("", "x", False),
            ("?*", "", False),
            ("?*", "x", True),
            ("a**b", "ab", True),
        ],
    )
    def test_cases(self, pattern, text, expected):
        assert glob_matches(pattern, text) is expected


class TestTrieGlobSearch:
    @pytest.fixture
    def loaded(self, buffer):
        words = random_words(600, seed=301)
        trie = TrieIndex(buffer, bucket_size=4)
        for i, w in enumerate(words):
            trie.insert(w, i)
        return trie, words

    def test_vs_bruteforce(self, loaded):
        trie, words = loaded
        rng = random.Random(0)
        pool = [w for w in words if len(w) >= 4]
        for _ in range(15):
            w = rng.choice(pool)
            cut = rng.randint(1, len(w) - 1)
            pattern = w[:cut] + "*"
            if rng.random() < 0.5:
                pattern = pattern + w[-1]
            expected = sorted(
                i for i, word in enumerate(words) if glob_matches(pattern, word)
            )
            got = sorted(v for _, v in trie.search_glob(pattern))
            assert got == expected, pattern

    def test_leading_star(self, loaded):
        trie, words = loaded
        suffix = words[0][-2:]
        pattern = "*" + suffix
        expected = sorted(
            i for i, w in enumerate(words) if w.endswith(suffix)
        )
        assert sorted(v for _, v in trie.search_glob(pattern)) == expected

    def test_star_only_matches_everything(self, loaded):
        trie, words = loaded
        assert len(trie.search_glob("*")) == len(words)

    def test_mixed_wildcards(self, loaded):
        trie, words = loaded
        pattern = "?a*"
        expected = sorted(
            i for i, w in enumerate(words) if glob_matches(pattern, w)
        )
        assert sorted(v for _, v in trie.search_glob(pattern)) == expected

    def test_no_star_behaves_like_regex(self, loaded):
        trie, words = loaded
        pattern = "?" + words[0][1:]
        assert sorted(trie.search_glob(pattern)) == sorted(
            trie.search_regex(pattern)
        )

    def test_glob_prunes_versus_full_scan(self, buffer):
        # The literal prefix before '*' must actually narrow the traversal.
        words = random_words(3000, seed=302)
        trie = TrieIndex(buffer, bucket_size=8)
        for i, w in enumerate(words):
            trie.insert(w, i)
        trie.repack()
        buffer.clear()
        before = buffer.stats.misses
        trie.search_glob("qx*")
        narrowed = buffer.stats.misses - before
        buffer.clear()
        before = buffer.stats.misses
        trie.search_glob("*qx")
        full = buffer.stats.misses - before
        assert narrowed < full


class TestBTreeGlobScan:
    def test_vs_bruteforce(self, buffer):
        words = random_words(1000, seed=303)
        tree = BPlusTree(buffer)
        tree.bulk_load([(w, i) for i, w in enumerate(words)])
        for pattern in ["a*", "ab*z", "*z", "q?r*"]:
            expected = sorted(
                i for i, w in enumerate(words) if glob_matches(pattern, w)
            )
            got = sorted(v for _, v in tree.glob_scan(pattern))
            assert got == expected, pattern


class TestEngineGlobOperator:
    def test_sql_glob_query(self):
        from repro.engine import Database

        db = Database()
        db.execute("CREATE TABLE t (name VARCHAR(30));")
        for w in ["banana", "bandana", "cabana", "bane"]:
            db.execute(f"INSERT INTO t VALUES ('{w}');")
        db.execute("CREATE INDEX i ON t USING SP_GiST (name SP_GiST_trie);")
        rows = db.execute("SELECT * FROM t WHERE name *= 'ban*';")
        assert sorted(r[0] for r in rows) == ["banana", "bandana", "bane"]


class TestBulkBuild:
    def test_trie_bulk_equals_incremental(self, buffer):
        words = random_words(1500, seed=304)
        bulk = TrieIndex(buffer, bucket_size=8)
        bulk.bulk_build([(w, i) for i, w in enumerate(words)])
        incremental = TrieIndex(buffer, bucket_size=8)
        for i, w in enumerate(words):
            incremental.insert(w, i)
        for probe in words[::100]:
            assert sorted(bulk.search_equal(probe)) == sorted(
                incremental.search_equal(probe)
            )
        assert len(bulk) == len(words)

    def test_kdtree_bulk(self, buffer):
        points = random_points(1200, seed=305)
        index = KDTreeIndex(buffer)
        index.bulk_build([(p, i) for i, p in enumerate(points)])
        box = Box(10, 10, 60, 70)
        expected = sorted(
            i for i, p in enumerate(points) if box.contains_point(p)
        )
        assert sorted(v for _, v in index.search_range(box)) == expected

    def test_pquadtree_bulk(self, buffer):
        points = random_points(800, seed=306)
        index = PointQuadtreeIndex(buffer)
        index.bulk_build([(p, i) for i, p in enumerate(points)])
        probe = points[17]
        expected = sorted(i for i, p in enumerate(points) if p == probe)
        assert sorted(v for _, v in index.search_point(probe)) == expected

    def test_pmr_bulk_spanning(self, buffer):
        segments = random_segments(600, seed=307)
        index = PMRQuadtreeIndex(buffer, WORLD)
        index.bulk_build([(s, i) for i, s in enumerate(segments)])
        window = Box(25, 25, 60, 55)
        expected = sorted(
            i for i, s in enumerate(segments) if s.intersects_box(window)
        )
        assert sorted(v for _, v in index.search_window(window)) == expected

    def test_bulk_on_nonempty_index_rejected(self, buffer):
        trie = TrieIndex(buffer)
        trie.insert("existing")
        with pytest.raises(IndexCorruptionError):
            trie.bulk_build([("new", 1)])

    def test_bulk_empty_is_noop(self, buffer):
        trie = TrieIndex(buffer)
        trie.bulk_build([])
        assert trie.root is None and len(trie) == 0

    def test_bulk_with_duplicates_spills(self, buffer):
        trie = TrieIndex(buffer, bucket_size=2)
        trie.bulk_build([("same", i) for i in range(10)])
        assert sorted(v for _, v in trie.search_equal("same")) == list(range(10))

    def test_bulk_writes_fewer_pages_than_inserts(self):
        from repro.bench import Workbench, measure

        words = random_words(2500, seed=308)
        items = [(w, i) for i, w in enumerate(words)]

        bench_bulk = Workbench(pool_pages=8)
        bulk = TrieIndex(bench_bulk.buffer, bucket_size=8)
        _, bulk_cost = measure(
            bench_bulk.buffer, lambda: bulk.bulk_build(items, cluster=False)
        )

        bench_inc = Workbench(pool_pages=8)
        incremental = TrieIndex(bench_inc.buffer, bucket_size=8)

        def insert_all():
            for w, i in items:
                incremental.insert(w, i)

        _, inc_cost = measure(bench_inc.buffer, insert_all)
        assert bulk_cost.io_reads + bulk_cost.io_writes < (
            inc_cost.io_reads + inc_cost.io_writes
        )

    def test_nn_after_bulk(self, buffer):
        from repro.core.nn import nearest
        from repro.geometry.distance import euclidean

        points = random_points(700, seed=309)
        index = KDTreeIndex(buffer)
        index.bulk_build([(p, i) for i, p in enumerate(points)])
        query = Point(33, 44)
        best = min(euclidean(p, query) for p in points)
        assert abs(nearest(index, query, 1)[0][0] - best) < 1e-9

    def test_suffix_bulk_words(self, buffer):
        from repro.indexes.suffix import SuffixTreeMethods

        words = random_words(300, seed=310, min_length=3)
        index = SuffixTreeIndex(buffer)
        items = [
            (suffix, (w, i))
            for i, w in enumerate(words)
            for suffix in SuffixTreeMethods.extract_keys(w)
        ]
        index.bulk_build(items)
        needle = words[0][:2]
        expected = sorted(
            (w, i) for i, w in enumerate(words) if needle in w
        )
        assert sorted(index.search_substring(needle)) == expected
