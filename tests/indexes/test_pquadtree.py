"""Tests for the point-quadtree instantiation."""

import random

import pytest

from repro.core import BLANK
from repro.geometry import Box, Point
from repro.indexes.pquadtree import (
    PointQuadtreeIndex,
    PointQuadtreeMethods,
    quadrant_of,
    quadrant_region,
)
from repro.workloads import clustered_points, random_points, random_query_boxes


@pytest.fixture
def loaded(buffer):
    points = random_points(800, seed=61)
    index = PointQuadtreeIndex(buffer)
    for i, p in enumerate(points):
        index.insert(p, i)
    return index, points


class TestQuadrantGeometry:
    def test_quadrant_of_all_four(self):
        c = Point(50, 50)
        assert quadrant_of(Point(60, 60), c) == "NE"
        assert quadrant_of(Point(40, 60), c) == "NW"
        assert quadrant_of(Point(40, 40), c) == "SW"
        assert quadrant_of(Point(60, 40), c) == "SE"

    def test_ties_go_east_north(self):
        c = Point(50, 50)
        assert quadrant_of(Point(50, 50), c) == "NE"
        assert quadrant_of(Point(50, 40), c) == "SE"
        assert quadrant_of(Point(40, 50), c) == "NW"

    def test_quadrant_region_clips(self):
        region = Box(0, 0, 100, 100)
        c = Point(30, 70)
        ne = quadrant_region(region, c, "NE")
        assert ne == Box(30, 70, 100, 100)
        sw = quadrant_region(region, c, "SW")
        assert sw == Box(0, 0, 30, 70)

    def test_parameters(self):
        cfg = PointQuadtreeMethods().get_parameters()
        assert cfg.num_space_partitions == 4
        assert cfg.bucket_size == 1


class TestSearch:
    def test_point_match_vs_bruteforce(self, loaded):
        index, points = loaded
        rng = random.Random(0)
        for probe in rng.sample(points, 40):
            expected = sorted(i for i, p in enumerate(points) if p == probe)
            assert sorted(v for _, v in index.search_point(probe)) == expected

    def test_range_vs_bruteforce(self, loaded):
        index, points = loaded
        for box in random_query_boxes(10, side=10.0, seed=62):
            expected = sorted(
                i for i, p in enumerate(points) if box.contains_point(p)
            )
            assert sorted(v for _, v in index.search_range(box)) == expected

    def test_clustered_data(self, buffer):
        points = clustered_points(600, clusters=5, seed=63)
        index = PointQuadtreeIndex(buffer)
        for i, p in enumerate(points):
            index.insert(p, i)
        box = Box(40, 40, 60, 60)
        expected = sorted(
            i for i, p in enumerate(points) if box.contains_point(p)
        )
        assert sorted(v for _, v in index.search_range(box)) == expected

    def test_bucketed_variant(self, buffer):
        points = random_points(400, seed=64)
        index = PointQuadtreeIndex(buffer, bucket_size=8)
        for i, p in enumerate(points):
            index.insert(p, i)
        box = Box(10, 10, 30, 30)
        expected = sorted(
            i for i, p in enumerate(points) if box.contains_point(p)
        )
        assert sorted(v for _, v in index.search_range(box)) == expected
        # Bigger buckets → fewer nodes than the bucket-1 default.
        small = PointQuadtreeIndex(buffer, name="b1")
        for i, p in enumerate(points):
            small.insert(p, i)
        assert index.statistics().total_nodes < small.statistics().total_nodes


class TestPickSplit:
    def test_first_point_becomes_center(self):
        methods = PointQuadtreeMethods()
        items = [(Point(50, 50), 0), (Point(60, 60), 1), (Point(10, 10), 2)]
        result = methods.picksplit(items, level=0)
        assert result.node_predicate == Point(50, 50)
        partitions = dict(result.partitions)
        assert partitions[BLANK] == [items[0]]
        assert partitions["NE"] == [items[1]]
        assert partitions["SW"] == [items[2]]

    def test_duplicates_of_center_terminate(self, buffer):
        index = PointQuadtreeIndex(buffer)
        p = Point(42, 42)
        for i in range(6):
            index.insert(p, i)
        assert sorted(v for _, v in index.search_point(p)) == list(range(6))


class TestDelete:
    def test_delete_and_requery(self, loaded):
        index, points = loaded
        index.delete(points[11], 11)
        assert 11 not in [v for _, v in index.search_point(points[11])]
        # neighbours unaffected
        assert sorted(v for _, v in index.search_point(points[12])) == sorted(
            i for i, p in enumerate(points) if p == points[12] and i != 11
        )
