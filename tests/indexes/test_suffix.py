"""Tests for the suffix-tree instantiation (substring search)."""

import random

import pytest

from repro.indexes.suffix import SuffixTreeIndex, SuffixTreeMethods
from repro.workloads import random_words


@pytest.fixture
def loaded(buffer):
    words = random_words(300, seed=41, min_length=3, max_length=10)
    index = SuffixTreeIndex(buffer, bucket_size=8)
    for i, w in enumerate(words):
        index.insert_word(w, i)
    return index, words


class TestKeyExtraction:
    def test_all_suffixes(self):
        assert list(SuffixTreeMethods.extract_keys("abc")) == ["abc", "bc", "c"]

    def test_empty_word_has_no_suffixes(self):
        assert list(SuffixTreeMethods.extract_keys("")) == []

    def test_operator_set_includes_substring(self):
        assert "@=" in SuffixTreeMethods.supported_operators


class TestSubstringSearch:
    def test_vs_bruteforce(self, loaded):
        index, words = loaded
        rng = random.Random(0)
        for _ in range(20):
            w = rng.choice(words)
            start = rng.randrange(len(w))
            needle = w[start : start + rng.randint(1, 3)]
            expected = sorted(i for i, word in enumerate(words) if needle in word)
            got = sorted(v for _word, v in index.search_substring(needle))
            assert got == expected, needle

    def test_word_reported_once_despite_repeats(self, buffer):
        index = SuffixTreeIndex(buffer)
        index.insert_word("abab", 1)  # 'ab' occurs at two offsets
        assert index.search_substring("ab") == [("abab", 1)]

    def test_full_word_as_substring(self, loaded):
        index, words = loaded
        probe = words[0]
        hits = [w for w, _ in index.search_substring(probe)]
        assert probe in hits

    def test_absent_substring(self, loaded):
        index, _ = loaded
        assert index.search_substring("qqqqqqqq") == []

    def test_single_char_needle(self, loaded):
        index, words = loaded
        expected = sorted(i for i, w in enumerate(words) if "q" in w)
        got = sorted(v for _w, v in index.search_substring("q"))
        assert got == expected


class TestMaintenance:
    def test_word_count(self, buffer):
        index = SuffixTreeIndex(buffer)
        index.insert_word("one", 1)
        index.insert_word("two", 2)
        assert index.word_count == 2
        assert len(index) == len("one") + len("two")

    def test_delete_word_removes_all_suffixes(self, buffer):
        index = SuffixTreeIndex(buffer)
        index.insert_word("banana", 1)
        index.insert_word("bandana", 2)
        index.delete_word("banana", 1)
        assert index.search_substring("ana") == [("bandana", 2)]
        assert index.word_count == 1

    def test_values_carry_word_and_payload(self, buffer):
        from repro.storage.heap import TupleId

        index = SuffixTreeIndex(buffer)
        index.insert_word("hello", TupleId(3, 7))
        [(word, payload)] = index.search_substring("ell")
        assert word == "hello"
        assert payload == TupleId(3, 7)
