"""Tests for the PMR-quadtree instantiation (spanning line segments)."""

import random

import pytest

from repro.core import Query
from repro.core.external import DescendMultiple
from repro.geometry import Box, LineSegment, Point
from repro.indexes.pmr import PMRQuadtreeIndex, PMRQuadtreeMethods
from repro.workloads import random_segments
from repro.workloads.points import WORLD


@pytest.fixture
def loaded(buffer):
    segments = random_segments(600, seed=71)
    index = PMRQuadtreeIndex(buffer, WORLD, threshold=6, resolution=12)
    for i, s in enumerate(segments):
        index.insert(s, i)
    return index, segments


def seg(ax, ay, bx, by) -> LineSegment:
    return LineSegment(Point(ax, ay), Point(bx, by))


class TestConfiguration:
    def test_parameters(self):
        methods = PMRQuadtreeMethods(WORLD, threshold=8, resolution=16)
        cfg = methods.get_parameters()
        assert cfg.num_space_partitions == 4
        assert cfg.bucket_size == 8
        assert cfg.resolution == 16
        assert cfg.node_shrink is False

    def test_root_predicate_is_world(self):
        methods = PMRQuadtreeMethods(WORLD)
        assert methods.initial_root_predicate() == WORLD

    def test_spanning_flag(self):
        assert PMRQuadtreeMethods(WORLD).spanning is True


class TestChoose:
    def test_segment_descends_into_all_crossed_quadrants(self):
        methods = PMRQuadtreeMethods(WORLD)
        quadrants = list(WORLD.quadrants())
        crossing = seg(10, 10, 90, 90)  # SW through NE
        result = methods.choose(WORLD, quadrants, crossing, level=0)
        assert isinstance(result, DescendMultiple)
        assert len(result.entry_indexes) >= 2

    def test_small_segment_descends_once(self):
        methods = PMRQuadtreeMethods(WORLD)
        quadrants = list(WORLD.quadrants())
        local = seg(10, 10, 12, 12)  # strictly inside SW
        result = methods.choose(WORLD, quadrants, local, level=0)
        assert len(result.entry_indexes) == 1

    def test_out_of_world_segment_clamps_to_nearest(self):
        methods = PMRQuadtreeMethods(Box(0, 0, 10, 10))
        quadrants = list(Box(0, 0, 10, 10).quadrants())
        outside = seg(20, 20, 25, 25)
        result = methods.choose(Box(0, 0, 10, 10), quadrants, outside, level=0)
        assert len(result.entry_indexes) == 1


class TestPMRSplittingRule:
    def test_split_not_recursive(self):
        result = PMRQuadtreeMethods(WORLD).picksplit(
            [(seg(1, 1, 2, 2), i) for i in range(9)], level=0,
            parent_predicate=WORLD,
        )
        assert result.recurse_overfull is False

    def test_all_quadrants_materialized(self):
        result = PMRQuadtreeMethods(WORLD).picksplit(
            [(seg(1, 1, 2, 2), 0)], level=0, parent_predicate=WORLD
        )
        assert len(result.partitions) == 4  # NodeShrink=False keeps empties

    def test_spanning_segment_copied_to_multiple_partitions(self):
        crossing = seg(10, 50, 90, 50)  # crosses the vertical midline
        result = PMRQuadtreeMethods(WORLD).picksplit(
            [(crossing, 0)], level=0, parent_predicate=WORLD
        )
        holders = [p for p, items in result.partitions if items]
        assert len(holders) >= 2

    def test_resolution_bounds_depth(self, buffer):
        index = PMRQuadtreeIndex(buffer, WORLD, threshold=1, resolution=4)
        # Many segments stabbing the same tiny spot cannot split past depth 4.
        for i in range(30):
            index.insert(seg(50.0, 50.0, 50.5, 50.5), i)
        assert index.statistics().max_node_height <= 5


class TestSearch:
    def test_exact_match_vs_bruteforce(self, loaded):
        index, segments = loaded
        rng = random.Random(0)
        for i in rng.sample(range(len(segments)), 25):
            probe = segments[i]
            expected = sorted(j for j, s in enumerate(segments) if s == probe)
            assert sorted(v for _, v in index.search_exact(probe)) == expected

    def test_window_vs_bruteforce(self, loaded):
        index, segments = loaded
        for win in [Box(20, 20, 45, 40), Box(0, 0, 10, 10), Box(60, 60, 99, 99)]:
            expected = sorted(
                i for i, s in enumerate(segments) if s.intersects_box(win)
            )
            assert sorted(v for _, v in index.search_window(win)) == expected

    def test_no_duplicate_reports_for_spanning_segments(self, buffer):
        index = PMRQuadtreeIndex(buffer, WORLD, threshold=1)
        long_one = seg(5, 5, 95, 95)
        index.insert(long_one, 0)
        for i in range(1, 10):
            index.insert(seg(i * 9, 3, i * 9 + 2, 6), i)
        hits = index.search_window(Box(0, 0, 100, 100))
        assert [v for _, v in hits].count(0) == 1

    def test_query_api(self, loaded):
        index, segments = loaded
        got = index.search_list(Query("=", segments[0]))
        assert (segments[0], 0) in got


class TestDelete:
    def test_delete_removes_all_copies(self, buffer):
        index = PMRQuadtreeIndex(buffer, WORLD, threshold=1)
        spanner = seg(5, 50, 95, 50)
        index.insert(spanner, 0)
        for i in range(1, 8):
            index.insert(seg(i * 10, 20, i * 10 + 4, 24), i)
        assert index.delete(spanner, 0) == 1  # one logical item
        assert index.search_exact(spanner) == []

    def test_survivors_intact_after_delete(self, loaded):
        index, segments = loaded
        index.delete(segments[2], 2)
        win = Box(0, 0, 100, 100)
        expected = sorted(
            i for i, s in enumerate(segments)
            if i != 2 and s.intersects_box(win)
        )
        assert sorted(v for _, v in index.search_window(win)) == expected
