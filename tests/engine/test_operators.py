"""Tests for operator procedures (paper Table 4)."""

import pytest

from repro.engine.operators import (
    Operator,
    builtin_operators,
    kdpoint_equal,
    kdpoint_inside,
    segment_equal,
    segment_overlaps,
    suffix_substring,
    trieword_equal,
    trieword_prefix,
    trieword_regex,
)
from repro.errors import OperatorError
from repro.geometry import Box, LineSegment, Point


class TestStringProcedures:
    def test_trieword_equal(self):
        assert trieword_equal("abc", "abc")
        assert not trieword_equal("abc", "abd")

    def test_trieword_prefix(self):
        assert trieword_prefix("abcdef", "abc")
        assert not trieword_prefix("abc", "abcd")

    def test_trieword_regex(self):
        assert trieword_regex("random", "r?nd?m")
        assert not trieword_regex("random", "r?nd?")

    def test_suffix_substring(self):
        assert suffix_substring("bandana", "dan")
        assert not suffix_substring("bandana", "nad")


class TestSpatialProcedures:
    def test_kdpoint_equal(self):
        assert kdpoint_equal(Point(1, 2), Point(1, 2))
        assert not kdpoint_equal(Point(1, 2), Point(2, 1))

    def test_kdpoint_inside(self):
        assert kdpoint_inside(Point(1, 1), Box(0, 0, 5, 5))
        assert not kdpoint_inside(Point(9, 1), Box(0, 0, 5, 5))

    def test_segment_equal(self):
        s = LineSegment(Point(0, 0), Point(1, 1))
        assert segment_equal(s, LineSegment(Point(0, 0), Point(1, 1)))

    def test_segment_overlaps(self):
        s = LineSegment(Point(-1, 2), Point(9, 2))
        assert segment_overlaps(s, Box(0, 0, 5, 5))
        assert not segment_overlaps(s, Box(0, 5, 5, 9))


class TestOperatorObject:
    def test_apply(self):
        op = Operator("=", "varchar", "varchar", trieword_equal)
        assert op.apply("x", "x")

    def test_apply_type_error_wrapped(self):
        op = Operator("^", "point", "box", kdpoint_inside)
        with pytest.raises(OperatorError):
            op.apply("not a point", Box(0, 0, 1, 1))

    def test_commutator_recorded(self):
        [eq] = [
            op
            for op in builtin_operators()
            if op.name == "=" and op.left_type == "varchar"
        ]
        assert eq.commutator == "="

    def test_builtin_set_covers_paper_tables(self):
        names = {(op.name, op.left_type) for op in builtin_operators()}
        for expected in [
            ("=", "varchar"),
            ("#=", "varchar"),
            ("?=", "varchar"),
            ("@=", "varchar"),
            ("@", "point"),
            ("^", "point"),
            ("=", "lseg"),
            ("&&", "lseg"),
        ]:
            assert expected in names

    def test_restrict_clauses_match_paper(self):
        by_key = {(op.name, op.left_type): op for op in builtin_operators()}
        assert by_key[("=", "varchar")].restrict == "eqsel"
        assert by_key[("?=", "varchar")].restrict == "likesel"
        assert by_key[("^", "point")].restrict == "contsel"
