"""Tests for selectivity estimators and cost functions."""

from repro.engine.cost import (
    btree_cost_estimate,
    rtree_cost_estimate,
    seqscan_cost,
    spgist_cost_estimate,
)
from repro.engine.selectivity import (
    DEFAULT_CONT_SEL,
    DEFAULT_EQ_SEL,
    TableStats,
    contsel,
    eqsel,
    estimate_selectivity,
    likesel,
)


class TestSelectivity:
    def test_eqsel_defaults_without_stats(self):
        assert eqsel(None) == DEFAULT_EQ_SEL

    def test_eqsel_uses_distinct_count(self):
        stats = TableStats(row_count=1000, distinct_count=500)
        assert eqsel(stats) == 1 / 500

    def test_eqsel_floor_at_one_row(self):
        stats = TableStats(row_count=10, distinct_count=100000)
        assert eqsel(stats) == 1 / 10

    def test_contsel_constant(self):
        assert contsel(None) == DEFAULT_CONT_SEL

    def test_likesel_decays_with_literal_chars(self):
        s1 = likesel(None, "a????")
        s3 = likesel(None, "abc??")
        assert s3 < s1 < 1.0

    def test_likesel_all_wildcards_keeps_everything(self):
        assert likesel(None, "????") == 1.0

    def test_likesel_position_of_wildcard_irrelevant(self):
        assert likesel(None, "?bcde") == likesel(None, "abcd?")

    def test_dispatch_clamps_to_unit_interval(self):
        assert 0.0 <= estimate_selectivity("likesel", None, "x" * 50) <= 1.0
        assert estimate_selectivity("unknown-proc", None) == DEFAULT_EQ_SEL

    def test_inequality_default_third(self):
        assert abs(estimate_selectivity("scalarltsel", None) - 1 / 3) < 1e-9


class TestCosts:
    STATS = TableStats(row_count=100_000, distinct_count=90_000)

    def test_seqscan_scales_with_pages_and_rows(self):
        small = seqscan_cost(10, 1_000)
        large = seqscan_cost(1_000, 100_000)
        assert large.total_cost > small.total_cost
        assert small.selectivity == 1.0

    def test_spgist_correlation_is_zero(self):
        est = spgist_cost_estimate(100, 3, self.STATS, 500, "eqsel")
        assert est.correlation == 0.0  # paper Section 4.2 item 2

    def test_btree_correlation_is_one(self):
        est = btree_cost_estimate(100, 3, self.STATS, 500, "eqsel")
        assert est.correlation == 1.0

    def test_startup_cost_tracks_page_height(self):
        shallow = spgist_cost_estimate(100, 2, self.STATS, 500, "eqsel")
        deep = spgist_cost_estimate(100, 6, self.STATS, 500, "eqsel")
        assert deep.startup_cost > shallow.startup_cost

    def test_selective_index_beats_seqscan(self):
        index = spgist_cost_estimate(100, 3, self.STATS, 2_000, "eqsel")
        seq = seqscan_cost(2_000, 100_000)
        assert index.total_cost < seq.total_cost

    def test_leading_wildcard_forces_full_btree_leaf_read(self):
        narrowed = btree_cost_estimate(
            500, 3, self.STATS, 2_000, "likesel", "ab???"
        )
        full = btree_cost_estimate(
            500, 3, self.STATS, 2_000, "likesel", "?b???", leading_wildcard=True
        )
        assert full.total_cost > narrowed.total_cost

    def test_rtree_cost_mirrors_spgist_shape(self):
        r = rtree_cost_estimate(100, 3, self.STATS, 500, "contsel")
        s = spgist_cost_estimate(100, 3, self.STATS, 500, "contsel")
        assert r.total_cost == s.total_cost

    def test_cost_ordering_operator(self):
        a = seqscan_cost(10, 100)
        b = seqscan_cost(100, 10_000)
        assert a < b
