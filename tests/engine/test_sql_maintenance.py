"""The SQL maintenance surface: CHECK INDEX and repro_incidents().

Both are operator-facing windows into the resilience layer — the
reproduction's analogues of PostgreSQL's ``amcheck`` extension and an
incident-log set-returning function.
"""

import pytest

from repro.engine.sql import Database
from repro.errors import SQLError
from repro.resilience.incidents import INCIDENTS


@pytest.fixture
def db():
    INCIDENTS.reset()
    database = Database()
    database.execute("CREATE TABLE word_data (name VARCHAR(50), id INT)")
    database.execute(
        "CREATE INDEX sp_trie_index ON word_data "
        "USING SP_GiST (name SP_GiST_trie)"
    )
    database.execute(
        "INSERT INTO word_data VALUES ('random', 1), ('ransom', 2)"
    )
    yield database
    INCIDENTS.reset()


class TestCheckIndex:
    def test_clean_index_reports_ok(self, db):
        report = db.execute("CHECK INDEX sp_trie_index;")
        assert "OK" in report
        assert "sp_trie_index" in report

    def test_unknown_index_is_an_error(self, db):
        with pytest.raises(SQLError):
            db.execute("CHECK INDEX no_such_index")

    def test_non_spgist_index_is_rejected(self, db):
        db.execute(
            "CREATE INDEX btree_idx ON word_data USING btree (name)"
        )
        with pytest.raises(SQLError):
            db.execute("CHECK INDEX btree_idx")

    def test_corruption_is_reported_not_raised(self, db):
        index = db.table("word_data").indexes["sp_trie_index"]
        index.structure._item_count += 5  # bookkeeping out of step: bad
        report = db.execute("CHECK INDEX sp_trie_index")
        assert "PROBLEM" in report


class TestReproIncidents:
    def test_empty_log_returns_no_rows(self, db):
        assert db.execute("SELECT * FROM repro_incidents()") == []

    def test_incident_rows_have_the_documented_shape(self, db):
        INCIDENTS.record(
            "index-scan-degraded", "sp_trie_index", ValueError("bad page")
        )
        rows = db.execute("SELECT * FROM repro_incidents();")
        assert rows == [
            ("index-scan-degraded", "sp_trie_index", "ValueError", "bad page")
        ]
