"""EXPLAIN ANALYZE acceptance: every paper index type, counters reconciled.

For each of the paper's index types (trie, kd-tree, point quadtree, PR
quadtree, PMR quadtree — plus the suffix-tree extension) one paper-shaped
query runs under ``explain_analyze`` and the report must carry: the chosen
index-scan node, an actual row count equal to what the query really
returns, a per-node wall time, and buffer counters that reconcile exactly
with the pool's own ``BufferStats`` delta.
"""

import pytest

from repro.engine import Database, explain, explain_analyze
from repro.engine.explain import ExplainReport
from repro.obs import reset_observability
from repro.workloads import random_points, random_segments, random_words


@pytest.fixture(autouse=True)
def fresh_observability():
    reset_observability()
    yield
    reset_observability()


def _word_db(count=1500):
    db = Database(buffer_capacity=512)
    db.execute("CREATE TABLE word_data (name VARCHAR(50), id INT);")
    table = db.table("word_data")
    for i, w in enumerate(random_words(count, seed=31)):
        table.insert((w, i))
    return db, table


def _point_db(opclass, index_name, count=1500):
    db = Database(buffer_capacity=512)
    db.execute("CREATE TABLE point_data (p POINT, id INT);")
    table = db.table("point_data")
    for i, p in enumerate(random_points(count, seed=32)):
        table.insert((p, i))
    db.execute(
        f"CREATE INDEX {index_name} ON point_data USING SP_GiST "
        f"(p {opclass});"
    )
    db.execute("ANALYZE point_data;")
    return db, table


def _assert_reconciled(report: ExplainReport):
    """Registry delta and BufferStats delta must agree sample for sample."""
    assert report.buffers is not None
    assert report.metric("buffer_hits_total") == report.buffers.hits
    assert report.metric("buffer_misses_total") == report.buffers.misses
    assert report.metric("buffer_evictions_total") == report.buffers.evictions
    assert (
        report.metric("buffer_dirty_writebacks_total")
        == report.buffers.dirty_writebacks
    )
    assert report.metric("buffer_retries_total") == (
        report.buffers.read_retries + report.buffers.write_retries
    )


def _scan_node(report: ExplainReport):
    return report.root.children[0] if report.root.children else report.root


class TestExplainAnalyzePerIndexType:
    def _check(self, db, sql, index_name):
        rows = db.execute(sql)
        report = explain_analyze(db, sql)
        node = _scan_node(report)
        assert "Index Scan" in node.label and index_name in node.label
        assert node.actual_rows == len(rows)
        assert node.wall_ms is not None and node.wall_ms >= 0.0
        assert report.execution_ms is not None
        _assert_reconciled(report)
        text = report.render()
        assert f"actual rows={node.actual_rows}" in text
        assert "buffers:" in text and "time=" in text
        return report

    def test_trie_equality(self):
        db, table = self._trie_db()
        probe = table.scan().__next__()[1][0]
        self._check(
            db, f"SELECT * FROM word_data WHERE name = '{probe}'",
            "sp_trie_index",
        )

    def _trie_db(self):
        db, table = _word_db()
        db.execute(
            "CREATE INDEX sp_trie_index ON word_data USING SP_GiST "
            "(name SP_GiST_trie);"
        )
        db.execute("ANALYZE word_data;")
        return db, table

    def test_kdtree_range(self):
        db, _ = _point_db("SP_GiST_kdtree", "sp_kd_index")
        self._check(
            db, "SELECT * FROM point_data WHERE p ^ '(10,10,25,25)'",
            "sp_kd_index",
        )

    def test_pquadtree_range(self):
        db, _ = _point_db("SP_GiST_pquadtree", "sp_pq_index")
        self._check(
            db, "SELECT * FROM point_data WHERE p ^ '(10,10,25,25)'",
            "sp_pq_index",
        )

    def test_prquadtree_range(self):
        db, _ = _point_db("SP_GiST_prquadtree", "sp_prq_index")
        self._check(
            db, "SELECT * FROM point_data WHERE p ^ '(10,10,25,25)'",
            "sp_prq_index",
        )

    def test_pmr_window(self):
        db = Database(buffer_capacity=512)
        db.execute("CREATE TABLE seg_data (s LSEG, id INT);")
        table = db.table("seg_data")
        for i, seg in enumerate(random_segments(1200, seed=33)):
            table.insert((seg, i))
        db.execute(
            "CREATE INDEX sp_pmr_index ON seg_data USING SP_GiST "
            "(s SP_GiST_pmr);"
        )
        db.execute("ANALYZE seg_data;")
        self._check(
            db, "SELECT * FROM seg_data WHERE s && '(10,10,20,20)'",
            "sp_pmr_index",
        )

    def test_suffix_substring(self):
        db, table = _word_db(1200)
        db.execute(
            "CREATE INDEX sp_sfx_index ON word_data USING SP_GiST "
            "(name SP_GiST_suffix);"
        )
        db.execute("ANALYZE word_data;")
        probe = next(row[0] for _tid, row in table.scan() if len(row[0]) >= 8)
        needle = probe[2:6]  # selective interior substring
        self._check(
            db, f"SELECT * FROM word_data WHERE name @= '{needle}'",
            "sp_sfx_index",
        )


class TestExplainAnalyzeNNAndLimit:
    def test_nn_limit_has_limit_node_and_correct_actuals(self):
        db, _ = _point_db("SP_GiST_kdtree", "sp_kd_index")
        sql = "SELECT * FROM point_data WHERE p @@ '(50,50)' LIMIT 6"
        rows = db.execute(sql)
        assert len(rows) == 6
        report = explain_analyze(db, sql)
        assert report.root.label == "Limit (rows=6)"
        assert report.root.actual_rows == 6
        node = _scan_node(report)
        assert "NN" in node.label
        # The scan under a LIMIT is consumed lazily: exactly 6 rows pulled.
        assert node.actual_rows == 6
        _assert_reconciled(report)

    def test_estimated_vs_actual_rows_both_reported(self):
        db, _ = _point_db("SP_GiST_kdtree", "sp_kd_index")
        report = explain_analyze(
            db, "SELECT * FROM point_data WHERE p ^ '(0,0,50,50)'"
        )
        node = _scan_node(report)
        assert node.est_rows is not None and node.est_rows > 0
        assert node.actual_rows is not None
        text = report.render()
        assert "est rows=" in text and "actual rows=" in text


class TestExplainOnly:
    def test_explain_does_no_execution_io(self):
        db, _ = _point_db("SP_GiST_kdtree", "sp_kd_index")
        before = db.buffer.stats.snapshot()
        report = explain(db, "SELECT * FROM point_data WHERE p ^ '(0,0,9,9)'")
        assert not report.analyzed
        assert report.root.actual_rows is None
        assert "actual rows" not in report.render()
        # Planning may read catalog stats but must not run the scan: the
        # only acceptable buffer traffic is zero misses from the heap scan.
        delta = db.buffer.stats.delta(before)
        assert delta.misses == 0


class TestFileBackedLayers:
    def test_wal_and_checksums_surface_in_report(self, tmp_path):
        from repro.storage import BufferPool, FileDiskManager

        disk = FileDiskManager(str(tmp_path / "cluster.pages"))
        db = Database(buffer=BufferPool(disk, capacity=8))
        db.execute("CREATE TABLE word_data (name VARCHAR(50), id INT);")
        table = db.table("word_data")
        for i, w in enumerate(random_words(300, seed=34)):
            table.insert((w, i))
        db.execute(
            "CREATE INDEX sp_trie_index ON word_data USING SP_GiST "
            "(name SP_GiST_trie);"
        )
        db.execute("ANALYZE word_data;")
        db.buffer.clear()  # cold cache: the scan must read + verify pages

        report = explain_analyze(
            db, "SELECT COUNT(*) FROM word_data WHERE name #= 'a'"
        )
        assert report.metric("checksum_verifications_total") > 0
        assert report.buffers.misses > 0
        _assert_reconciled(report)
        text = report.render()
        assert "checksums:" in text and "wal:" in text
        disk.close()
