"""Tests for the exception hierarchy and error paths across the engine."""

import pytest

from repro import errors
from repro.engine import Database
from repro.errors import (
    CatalogError,
    KeyNotFoundError,
    OperatorError,
    PageNotFoundError,
    PlannerError,
    ReproError,
    SQLError,
    StorageError,
)


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, ReproError), name

    def test_storage_family(self):
        assert issubclass(PageNotFoundError, StorageError)

    def test_page_not_found_carries_id(self):
        err = PageNotFoundError(42)
        assert err.page_id == 42
        assert "42" in str(err)

    def test_key_not_found_carries_key(self):
        err = KeyNotFoundError("missing")
        assert err.key == "missing"

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise SQLError("x")
        with pytest.raises(ReproError):
            raise PlannerError("x")
        with pytest.raises(ReproError):
            raise OperatorError("x")


class TestSQLErrorPaths:
    @pytest.fixture
    def db(self):
        return Database()

    def test_select_unknown_table(self, db):
        with pytest.raises(SQLError):
            db.execute("SELECT * FROM ghost;")

    def test_unknown_operator_for_type(self, db):
        db.execute("CREATE TABLE t (a INT);")
        db.execute("INSERT INTO t VALUES (1);")
        with pytest.raises(SQLError):
            db.execute("SELECT * FROM t WHERE a #= '1';")

    def test_create_index_unknown_opclass(self, db):
        db.execute("CREATE TABLE t (a VARCHAR(5));")
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX i ON t USING SP_GiST (a NoSuchClass);")

    def test_create_index_unknown_column(self, db):
        db.execute("CREATE TABLE t (a VARCHAR(5));")
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX i ON t USING SP_GiST (ghost);")

    def test_bad_point_literal(self, db):
        db.execute("CREATE TABLE t (p POINT);")
        with pytest.raises((SQLError, ValueError)):
            db.execute("INSERT INTO t VALUES ('(1,2,3)');")

    def test_analyze_unknown_table(self, db):
        with pytest.raises(SQLError):
            db.execute("ANALYZE ghost;")

    def test_explain_non_select(self, db):
        with pytest.raises(SQLError):
            db.execute("EXPLAIN DROP TABLE t;")
