"""Unit tests for the MVCC transaction layer (xids, snapshots, clog).

These pin the visibility rules the differential oracle relies on:
``HeapTupleSatisfiesMVCC`` semantics, first-updater-wins conflicts, the
vacuum horizon, and the replication state round-trip.
"""

import pytest

from repro.engine.txn import (
    ABORTED,
    COMMITTED,
    FIRST_XID,
    IN_PROGRESS,
    XID_FROZEN,
    XID_INVALID,
    CommitLog,
    TransactionManager,
)
from repro.errors import TxnError
from repro.storage.heap import HeapTuple


def _tuple(xmin=XID_FROZEN, xmax=XID_INVALID):
    return HeapTuple(record=("row",), xmin=xmin, xmax=xmax)


class TestCommitLog:
    def test_frozen_is_always_committed(self):
        assert CommitLog().is_committed(XID_FROZEN)

    def test_unknown_xid_defaults_to_in_progress(self):
        clog = CommitLog()
        assert clog.status(97) == IN_PROGRESS
        assert not clog.is_committed(97)
        assert not clog.is_aborted(97)

    def test_verdicts_stick(self):
        clog = CommitLog()
        clog.set_committed(5)
        clog.set_aborted(6)
        assert clog.is_committed(5)
        assert clog.is_aborted(6)

    def test_closed_verdicts_exclude_in_progress(self):
        clog = CommitLog()
        clog.set_in_progress(4)
        clog.set_committed(5)
        clog.set_aborted(6)
        assert clog.closed_verdicts() == {5: COMMITTED, 6: ABORTED}

    def test_load_replaces_history(self):
        clog = CommitLog()
        clog.set_committed(5)
        clog.load({"7": COMMITTED, "8": ABORTED})
        assert clog.status(5) == IN_PROGRESS  # old verdict gone
        assert clog.is_committed(7)
        assert clog.is_aborted(8)


class TestSnapshotVisibility:
    def test_own_writes_visible(self):
        manager = TransactionManager()
        txn = manager.begin()
        assert txn.snapshot.tuple_visible(_tuple(xmin=txn.xid))

    def test_uncommitted_other_invisible(self):
        manager = TransactionManager()
        writer = manager.begin()
        reader = manager.begin()
        assert not reader.snapshot.tuple_visible(_tuple(xmin=writer.xid))

    def test_commit_after_snapshot_invisible(self):
        """Snapshot isolation: a later commit never leaks in."""
        manager = TransactionManager()
        reader = manager.begin()
        writer = manager.begin()
        manager.commit(writer)
        assert not reader.snapshot.tuple_visible(_tuple(xmin=writer.xid))
        # ...but a fresh snapshot sees it.
        assert manager.read_snapshot().tuple_visible(_tuple(xmin=writer.xid))

    def test_commit_before_snapshot_visible(self):
        manager = TransactionManager()
        writer = manager.begin()
        manager.commit(writer)
        reader = manager.begin()
        assert reader.snapshot.tuple_visible(_tuple(xmin=writer.xid))

    def test_aborted_insert_invisible_everywhere(self):
        manager = TransactionManager()
        writer = manager.begin()
        manager.abort(writer)
        assert not manager.read_snapshot().tuple_visible(
            _tuple(xmin=writer.xid)
        )

    def test_delete_by_committed_xid_hides_tuple(self):
        manager = TransactionManager()
        deleter = manager.begin()
        tup = _tuple(xmax=deleter.xid)
        # The deleter's own snapshot no longer sees the row...
        assert not deleter.snapshot.tuple_visible(tup)
        # ...a concurrent snapshot still does (delete uncommitted)...
        concurrent = manager.read_snapshot()
        manager.commit(deleter)
        assert concurrent.tuple_visible(tup)
        # ...and a post-commit snapshot does not.
        assert not manager.read_snapshot().tuple_visible(tup)

    def test_aborted_delete_is_undone(self):
        manager = TransactionManager()
        deleter = manager.begin()
        tup = _tuple(xmax=deleter.xid)
        manager.abort(deleter)
        assert manager.read_snapshot().tuple_visible(tup)

    def test_frozen_and_invalid_sentinels(self):
        snapshot = TransactionManager().read_snapshot()
        assert snapshot.sees(XID_FROZEN)
        assert not snapshot.sees(XID_INVALID)


class TestLifecycle:
    def test_xids_monotone_from_first(self):
        manager = TransactionManager()
        a, b = manager.begin(), manager.begin()
        assert (a.xid, b.xid) == (FIRST_XID, FIRST_XID + 1)

    def test_double_close_raises(self):
        manager = TransactionManager()
        txn = manager.begin()
        manager.commit(txn)
        with pytest.raises(TxnError):
            manager.commit(txn)
        with pytest.raises(TxnError):
            manager.abort(txn)

    def test_quiescent_tracks_active(self):
        manager = TransactionManager()
        assert manager.quiescent()
        txn = manager.begin()
        assert not manager.quiescent()
        manager.commit(txn)
        assert manager.quiescent()

    def test_drain_recent_commits(self):
        manager = TransactionManager()
        a, b, c = manager.begin(), manager.begin(), manager.begin()
        manager.commit(a)
        manager.abort(b)
        manager.commit(c)
        assert manager.drain_recent_commits() == [a.xid, c.xid]
        assert manager.drain_recent_commits() == []


class TestConflicts:
    def test_first_updater_wins(self):
        manager = TransactionManager()
        first = manager.begin()
        second = manager.begin()
        tup = _tuple(xmax=first.xid)
        with pytest.raises(TxnError):
            manager.check_delete_conflict(tup, second)
        # The conflict persists even after the first writer commits.
        manager.commit(first)
        with pytest.raises(TxnError):
            manager.check_delete_conflict(tup, second)

    def test_aborted_claim_is_void(self):
        manager = TransactionManager()
        first = manager.begin()
        second = manager.begin()
        tup = _tuple(xmax=first.xid)
        manager.abort(first)
        manager.check_delete_conflict(tup, second)  # no raise

    def test_own_claim_and_unclaimed_pass(self):
        manager = TransactionManager()
        txn = manager.begin()
        manager.check_delete_conflict(_tuple(), txn)
        manager.check_delete_conflict(_tuple(xmax=txn.xid), txn)


class TestHorizonAndVacuum:
    def test_horizon_advances_past_closed_txns(self):
        manager = TransactionManager()
        txn = manager.begin()
        assert manager.horizon() <= txn.xid
        manager.commit(txn)
        assert manager.horizon() == manager.next_xid

    def test_open_snapshot_pins_horizon(self):
        manager = TransactionManager()
        old = manager.begin()
        deleter = manager.begin()
        manager.commit(deleter)
        tup = _tuple(xmax=deleter.xid)
        # The old snapshot can still see the row: not dead yet.
        assert not manager.tuple_dead(tup)
        manager.commit(old)
        assert manager.tuple_dead(tup)

    def test_aborted_insert_is_dead_immediately(self):
        manager = TransactionManager()
        writer = manager.begin()
        manager.abort(writer)
        assert manager.tuple_dead(_tuple(xmin=writer.xid))

    def test_in_progress_versions_never_dead(self):
        manager = TransactionManager()
        writer = manager.begin()
        assert not manager.tuple_dead(_tuple(xmin=writer.xid))
        assert not manager.tuple_dead(_tuple(xmax=writer.xid))

    def test_live_tuple_never_dead(self):
        manager = TransactionManager()
        assert not manager.tuple_dead(_tuple())


class TestReplicationState:
    def test_state_round_trip_ships_only_closed_verdicts(self):
        primary = TransactionManager()
        committed = primary.begin()
        aborted = primary.begin()
        in_flight = primary.begin()
        primary.commit(committed)
        primary.abort(aborted)

        standby = TransactionManager()
        standby.load_state(primary.state_snapshot())
        assert standby.next_xid == primary.next_xid
        assert standby.clog.is_committed(committed.xid)
        assert standby.clog.is_aborted(aborted.xid)
        # The in-flight xid never ships: the standby treats it as
        # in-progress, i.e. invisible — no dirty reads after failover.
        assert standby.clog.status(in_flight.xid) == IN_PROGRESS
        assert standby.quiescent()

    def test_statuses_of(self):
        manager = TransactionManager()
        txn = manager.begin()
        manager.commit(txn)
        assert manager.statuses_of([txn.xid, 99]) == {
            txn.xid: COMMITTED,
            99: IN_PROGRESS,
        }
