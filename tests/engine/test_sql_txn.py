"""SQL-level tests for transactions, UPDATE, VACUUM, and literal fixes.

Covers the statement surface the MVCC layer added: BEGIN/COMMIT/ROLLBACK
blocks, the UPDATE verb, explicit VACUUM, the ``repro_heap_stats`` SRF,
doubled-quote string literals, and the autocommit eager-prune behaviour
that keeps DELETE's legacy index-cleanup semantics.
"""

import pytest

from repro.engine import Database
from repro.errors import SQLError


@pytest.fixture
def db():
    return Database(buffer_capacity=256)


@pytest.fixture
def word_db(db):
    db.execute("CREATE TABLE words (name VARCHAR(50), id INT);")
    for i, w in enumerate(["alpha", "beta", "gamma", "beta"]):
        db.execute(f"INSERT INTO words VALUES ('{w}', {i});")
    db.execute(
        "CREATE INDEX words_idx ON words USING SP_GiST (name SP_GiST_trie);"
    )
    return db


def names(db, table="words"):
    return sorted(r[0] for r in db.execute(f"SELECT * FROM {table};"))


class TestTransactionControl:
    def test_begin_commit_makes_writes_durable(self, word_db):
        assert word_db.execute("BEGIN;") == "BEGIN"
        word_db.execute("INSERT INTO words VALUES ('delta', 9);")
        assert word_db.execute("COMMIT;") == "COMMIT"
        assert "delta" in names(word_db)

    def test_rollback_undoes_inserts(self, word_db):
        word_db.execute("BEGIN;")
        word_db.execute("INSERT INTO words VALUES ('delta', 9);")
        assert word_db.execute("ROLLBACK;") == "ROLLBACK"
        assert "delta" not in names(word_db)

    def test_rollback_undoes_deletes(self, word_db):
        word_db.execute("BEGIN;")
        word_db.execute("DELETE FROM words WHERE name = 'alpha';")
        assert "alpha" not in sorted(
            r[0] for r in word_db.execute("SELECT * FROM words;")
        )  # own delete visible inside the block
        word_db.execute("ROLLBACK;")
        assert "alpha" in names(word_db)

    def test_select_inside_block_sees_own_writes(self, word_db):
        word_db.execute("BEGIN;")
        word_db.execute("INSERT INTO words VALUES ('delta', 9);")
        assert "delta" in sorted(
            r[0] for r in word_db.execute("SELECT * FROM words;")
        )
        word_db.execute("ROLLBACK;")

    def test_index_scan_inside_block_matches(self, word_db):
        word_db.execute("BEGIN;")
        word_db.execute("INSERT INTO words VALUES ('betsy', 9);")
        word_db.execute("DELETE FROM words WHERE name = 'gamma';")
        rows = word_db.execute("SELECT * FROM words WHERE name #= 'bet';")
        assert sorted(r[0] for r in rows) == ["beta", "beta", "betsy"]
        word_db.execute("COMMIT;")

    def test_nested_begin_rejected(self, word_db):
        word_db.execute("BEGIN;")
        with pytest.raises(SQLError, match="already in progress"):
            word_db.execute("BEGIN;")
        word_db.execute("ROLLBACK;")

    def test_commit_without_begin_rejected(self, db):
        with pytest.raises(SQLError, match="no transaction"):
            db.execute("COMMIT;")
        with pytest.raises(SQLError, match="no transaction"):
            db.execute("ROLLBACK;")

    def test_end_is_commit_alias(self, word_db):
        word_db.execute("BEGIN TRANSACTION;")
        word_db.execute("INSERT INTO words VALUES ('delta', 9);")
        assert word_db.execute("END;") == "COMMIT"
        assert "delta" in names(word_db)


class TestUpdate:
    def test_update_rewrites_matching_rows(self, word_db):
        status = word_db.execute(
            "UPDATE words SET name = 'betamax' WHERE name = 'beta';"
        )
        assert status == "UPDATE 2"
        assert names(word_db) == ["alpha", "betamax", "betamax", "gamma"]

    def test_update_maintains_index(self, word_db):
        word_db.execute("UPDATE words SET name = 'omega' WHERE id = 0;")
        rows = word_db.execute("SELECT * FROM words WHERE name = 'omega';")
        assert [r for r in rows] == [("omega", 0)]
        assert word_db.execute("SELECT * FROM words WHERE name = 'alpha';") == []

    def test_update_zero_rows(self, word_db):
        assert (
            word_db.execute(
                "UPDATE words SET name = 'x' WHERE name = 'missing';"
            )
            == "UPDATE 0"
        )

    def test_update_rolls_back(self, word_db):
        word_db.execute("BEGIN;")
        word_db.execute("UPDATE words SET name = 'omega' WHERE id = 0;")
        word_db.execute("ROLLBACK;")
        assert "omega" not in names(word_db)
        assert "alpha" in names(word_db)

    def test_update_non_indexed_column(self, word_db):
        word_db.execute("UPDATE words SET id = 77 WHERE name = 'alpha';")
        rows = word_db.execute("SELECT * FROM words WHERE name = 'alpha';")
        assert rows == [("alpha", 77)]


class TestVacuumAndHeapStats:
    def test_vacuum_reports_and_reclaims(self, word_db):
        word_db.execute("BEGIN;")
        word_db.execute("DELETE FROM words WHERE name = 'beta';")
        word_db.execute("COMMIT;")
        status = word_db.execute("VACUUM words;")
        assert status.startswith("VACUUM words:")
        stats = dict(word_db.execute("SELECT * FROM repro_heap_stats('words');"))
        assert stats["dead_versions"] == 0
        assert stats["versions"] == stats["visible_rows"] == 2

    def test_vacuum_inside_block_rejected(self, word_db):
        word_db.execute("BEGIN;")
        with pytest.raises(SQLError, match="transaction block"):
            word_db.execute("VACUUM words;")
        word_db.execute("ROLLBACK;")

    def test_vacuum_unknown_table(self, db):
        with pytest.raises(SQLError, match="unknown table"):
            db.execute("VACUUM ghosts;")

    def test_heap_stats_counts_dead_versions(self, word_db):
        # Keep a block open on a *different* connection path is not
        # possible here (one session), so exercise dead-version
        # accounting by deleting inside an open block: the old versions
        # are dead-to-us but not yet vacuumable.
        word_db.execute("DELETE FROM words WHERE name = 'alpha';")
        stats = dict(word_db.execute("SELECT * FROM repro_heap_stats('words');"))
        # Autocommit eager pruning already reclaimed the version.
        assert stats["visible_rows"] == 3
        assert stats["dead_versions"] == 0

    def test_autocommit_delete_prunes_index_eagerly(self, word_db):
        word_db.execute("DELETE FROM words WHERE name = 'beta';")
        index = word_db.table("words").indexes["words_idx"]
        assert list(index.scan("=", "beta")) == []

    def test_block_delete_defers_prune_to_vacuum(self, word_db):
        word_db.execute("BEGIN;")
        word_db.execute("DELETE FROM words WHERE name = 'beta';")
        word_db.execute("COMMIT;")
        stats = dict(word_db.execute("SELECT * FROM repro_heap_stats('words');"))
        if stats["dead_versions"]:
            word_db.execute("VACUUM words;")
            stats = dict(
                word_db.execute("SELECT * FROM repro_heap_stats('words');")
            )
        assert stats["dead_versions"] == 0
        assert stats["visible_rows"] == 2


class TestStringLiterals:
    def test_doubled_quote_insert_and_select(self, db):
        db.execute("CREATE TABLE people (name VARCHAR(30), id INT);")
        db.execute("INSERT INTO people VALUES ('O''Brien', 1);")
        rows = db.execute("SELECT * FROM people WHERE name = 'O''Brien';")
        assert rows == [("O'Brien", 1)]

    def test_doubled_quote_in_multi_row_insert(self, db):
        db.execute("CREATE TABLE people (name VARCHAR(30), id INT);")
        db.execute(
            "INSERT INTO people VALUES ('O''Brien', 1), ('D''Arcy', 2);"
        )
        assert sorted(r[0] for r in db.execute("SELECT * FROM people;")) == [
            "D'Arcy",
            "O'Brien",
        ]

    def test_doubled_quote_update_and_delete(self, db):
        db.execute("CREATE TABLE people (name VARCHAR(30), id INT);")
        db.execute("INSERT INTO people VALUES ('smith', 1);")
        db.execute("UPDATE people SET name = 'O''Brien' WHERE id = 1;")
        assert db.execute("SELECT * FROM people;") == [("O'Brien", 1)]
        assert (
            db.execute("DELETE FROM people WHERE name = 'O''Brien';")
            == "DELETE 1"
        )

    def test_unterminated_literal_is_clean_error(self, db):
        db.execute("CREATE TABLE people (name VARCHAR(30), id INT);")
        with pytest.raises(SQLError, match="unterminated string literal"):
            db.execute("SELECT * FROM people WHERE name = 'O'Brien';")


class TestWriteConflictAbortsBlock:
    def test_txn_error_surfaces_and_aborts(self, word_db):
        """A serialization failure aborts the block, like PostgreSQL."""
        from repro.errors import TxnAbortedError, TxnError

        table = word_db.table("words")
        # Claim a row from a side transaction on the same manager.
        side = word_db.txn.begin()
        victim = next(
            tid for tid, row in table.scan(side.snapshot)
            if row[0] == "alpha"
        )
        table.mvcc_delete(victim, side)

        word_db.execute("BEGIN;")
        word_db.execute("INSERT INTO words VALUES ('delta', 9);")
        with pytest.raises(TxnError):
            word_db.execute("DELETE FROM words WHERE name = 'alpha';")
        # The block is in the aborted state: statements are refused with
        # the typed error until COMMIT/ROLLBACK, both of which end it as
        # a rollback (PostgreSQL's "current transaction is aborted").
        with pytest.raises(TxnAbortedError, match="current transaction is aborted"):
            word_db.execute("SELECT * FROM words;")
        assert word_db.execute("COMMIT;") == "ROLLBACK"
        word_db.txn.commit(side)
        assert "delta" not in names(word_db)
        assert "alpha" not in names(word_db)
        # The session is usable again after the block ends.
        word_db.execute("INSERT INTO words VALUES ('echo', 10);")
        assert "echo" in names(word_db)
