"""Tests for the mini-SQL front end (paper Table 6 statements)."""

import pytest

from repro.engine import Database
from repro.errors import SQLError
from repro.geometry import LineSegment, Point


@pytest.fixture
def db():
    return Database(buffer_capacity=256)


@pytest.fixture
def word_db(db):
    db.execute("CREATE TABLE word_data (name VARCHAR(50), id INT);")
    for i, w in enumerate(
        ["random", "randy", "rindom", "banana", "bandana", "ran", "random"]
    ):
        db.execute(f"INSERT INTO word_data VALUES ('{w}', {i});")
    db.execute(
        "CREATE INDEX sp_trie_index ON word_data USING SP_GiST "
        "(name SP_GiST_trie);"
    )
    return db


class TestDDL:
    def test_create_table_status(self, db):
        assert db.execute("CREATE TABLE t (a VARCHAR(10));") == "CREATE TABLE t"

    def test_duplicate_table_rejected(self, db):
        db.execute("CREATE TABLE t (a INT);")
        with pytest.raises(SQLError):
            db.execute("CREATE TABLE t (a INT);")

    def test_unknown_type_rejected(self, db):
        with pytest.raises(SQLError):
            db.execute("CREATE TABLE t (a BLOB);")

    def test_paper_table6_ddl_verbatim(self, db):
        db.execute("CREATE TABLE word_data ( name VARCHAR(50), id INT);")
        assert (
            db.execute(
                "CREATE INDEX sp_trie_index ON word_data USING SP_GiST "
                "(name SP_GiST_trie);"
            )
            == "CREATE INDEX sp_trie_index"
        )
        db.execute("CREATE TABLE point_data ( p POINT , id INT);")
        assert (
            db.execute(
                "CREATE INDEX sp_kdtree_index ON point_data USING SP_GiST "
                "(p SP_GiST_kdtree);"
            )
            == "CREATE INDEX sp_kdtree_index"
        )

    def test_drop_table(self, db):
        db.execute("CREATE TABLE t (a INT);")
        db.execute("DROP TABLE t;")
        with pytest.raises(SQLError):
            db.execute("SELECT * FROM t;")

    def test_drop_index(self, word_db):
        word_db.execute("DROP INDEX sp_trie_index ON word_data;")
        assert word_db.table("word_data").indexes == {}

    def test_garbage_rejected(self, db):
        with pytest.raises(SQLError):
            db.execute("FROBNICATE THE DATABASE;")


class TestQueriesTable6:
    def test_equality_query(self, word_db):
        rows = word_db.execute(
            "SELECT * FROM word_data WHERE name = 'random';"
        )
        assert sorted(rows) == [("random", 0), ("random", 6)]

    def test_regex_query(self, word_db):
        rows = word_db.execute(
            "SELECT * FROM word_data WHERE name ?= 'r?nd?m';"
        )
        assert sorted(r[0] for r in rows) == ["random", "random", "rindom"]

    def test_prefix_query(self, word_db):
        rows = word_db.execute("SELECT * FROM word_data WHERE name #= 'ban';")
        assert sorted(r[0] for r in rows) == ["banana", "bandana"]

    def test_point_equality_and_range(self, db):
        db.execute("CREATE TABLE point_data (p POINT, id INT);")
        db.execute("INSERT INTO point_data VALUES ('(0,1)', 1);")
        db.execute("INSERT INTO point_data VALUES ('(3,3)', 2);")
        db.execute(
            "CREATE INDEX kd ON point_data USING SP_GiST (p SP_GiST_kdtree);"
        )
        assert db.execute("SELECT * FROM point_data WHERE p @ '(0,1)';") == [
            (Point(0, 1), 1)
        ]
        rows = db.execute("SELECT * FROM point_data WHERE p ^ '(0,0,5,5)';")
        assert len(rows) == 2

    def test_substring_query(self, db):
        db.execute("CREATE TABLE docs (body VARCHAR(100));")
        for w in ["bandana", "cabana", "xyz"]:
            db.execute(f"INSERT INTO docs VALUES ('{w}');")
        db.execute(
            "CREATE INDEX sfx ON docs USING SP_GiST (body SP_GiST_suffix);"
        )
        rows = db.execute("SELECT * FROM docs WHERE body @= 'ana';")
        assert sorted(r[0] for r in rows) == ["bandana", "cabana"]

    def test_segment_window_query(self, db):
        db.execute("CREATE TABLE segs (s LSEG, id INT);")
        db.execute("INSERT INTO segs VALUES ('[(1,1),(4,4)]', 1);")
        db.execute("INSERT INTO segs VALUES ('[(90,90),(95,95)]', 2);")
        db.execute("CREATE INDEX pm ON segs USING SP_GiST (s SP_GiST_pmr);")
        rows = db.execute("SELECT * FROM segs WHERE s && '(0,0,10,10)';")
        assert rows == [(LineSegment(Point(1, 1), Point(4, 4)), 1)]

    def test_nn_query_with_limit(self, word_db):
        rows = word_db.execute(
            "SELECT * FROM word_data WHERE name @@ 'randy' LIMIT 2;"
        )
        assert rows[0][0] == "randy"
        assert len(rows) == 2

    def test_limit_applies_to_plain_select(self, word_db):
        rows = word_db.execute("SELECT * FROM word_data LIMIT 3;")
        assert len(rows) == 3

    def test_select_all(self, word_db):
        assert len(word_db.execute("SELECT * FROM word_data;")) == 7

    def test_projection_single_column(self, word_db):
        rows = word_db.execute(
            "SELECT name FROM word_data WHERE name #= 'ban';"
        )
        assert sorted(rows) == [("banana",), ("bandana",)]

    def test_projection_reorders_columns(self, word_db):
        rows = word_db.execute(
            "SELECT id, name FROM word_data WHERE name = 'randy';"
        )
        assert rows == [(1, "randy")]

    def test_projection_unknown_column(self, word_db):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            word_db.execute("SELECT ghost FROM word_data;")

    def test_count_star(self, word_db):
        assert word_db.execute("SELECT COUNT(*) FROM word_data;") == [(7,)]

    def test_count_with_predicate(self, word_db):
        # 'random' (×2), 'randy', and 'ran' all start with 'ran'.
        assert word_db.execute(
            "SELECT COUNT(*) FROM word_data WHERE name #= 'ran';"
        ) == [(4,)]

    def test_count_respects_limit(self, word_db):
        assert word_db.execute(
            "SELECT COUNT(*) FROM word_data LIMIT 3;"
        ) == [(3,)]


class TestDML:
    def test_insert_status(self, db):
        db.execute("CREATE TABLE t (a VARCHAR(5), b INT);")
        assert db.execute("INSERT INTO t VALUES ('x', 1);") == "INSERT 0 1"

    def test_insert_arity_mismatch(self, db):
        db.execute("CREATE TABLE t (a VARCHAR(5), b INT);")
        with pytest.raises(SQLError):
            db.execute("INSERT INTO t VALUES ('x');")

    def test_unquoted_varchar_rejected(self, db):
        db.execute("CREATE TABLE t (a VARCHAR(5));")
        with pytest.raises(SQLError):
            db.execute("INSERT INTO t VALUES (abc);")

    def test_delete_removes_from_heap_and_index(self, word_db):
        assert (
            word_db.execute("DELETE FROM word_data WHERE name = 'banana';")
            == "DELETE 1"
        )
        assert word_db.execute(
            "SELECT * FROM word_data WHERE name = 'banana';"
        ) == []
        # the index agrees
        idx = word_db.table("word_data").indexes["sp_trie_index"]
        assert list(idx.scan("=", "banana")) == []

    def test_delete_count_for_duplicates(self, word_db):
        assert (
            word_db.execute("DELETE FROM word_data WHERE name = 'random';")
            == "DELETE 2"
        )


class TestExplainAnalyze:
    def test_explain_shows_plan(self, word_db):
        text = word_db.execute(
            "EXPLAIN SELECT * FROM word_data WHERE name = 'random';"
        )
        assert "Scan" in text and "cost=" in text

    def test_analyze_status(self, word_db):
        assert word_db.execute("ANALYZE word_data;") == "ANALYZE word_data"

    def test_explain_nn(self, word_db):
        text = word_db.execute(
            "EXPLAIN SELECT * FROM word_data WHERE name @@ 'randy';"
        )
        assert "NN" in text

    def test_explain_analyze_reports_actuals(self, word_db):
        text = word_db.execute(
            "EXPLAIN ANALYZE SELECT * FROM word_data WHERE name = 'random';"
        )
        assert "actual rows=2" in text
        assert "buffers:" in text and "time=" in text

    def test_explain_analyze_respects_limit(self, word_db):
        text = word_db.execute(
            "EXPLAIN ANALYZE SELECT * FROM word_data LIMIT 3;"
        )
        assert "actual rows=3" in text

    def test_explain_analyze_actually_executes(self, word_db):
        # The reported row count must match a real execution's.
        rows = word_db.execute("SELECT * FROM word_data WHERE name #= 'ban';")
        text = word_db.execute(
            "EXPLAIN ANALYZE SELECT * FROM word_data WHERE name #= 'ban';"
        )
        assert f"actual rows={len(rows)}" in text


class TestLiteralBinding:
    def test_point_literal(self, db):
        db.execute("CREATE TABLE t (p POINT);")
        db.execute("INSERT INTO t VALUES ('(1.5,-2)');")
        [(p,)] = db.execute("SELECT * FROM t;")
        assert p == Point(1.5, -2.0)

    def test_segment_literal(self, db):
        db.execute("CREATE TABLE t (s LSEG);")
        db.execute("INSERT INTO t VALUES ('[(0,0),(1,2)]');")
        [(s,)] = db.execute("SELECT * FROM t;")
        assert s == LineSegment(Point(0, 0), Point(1, 2))

    def test_int_and_float(self, db):
        db.execute("CREATE TABLE t (a INT, b FLOAT);")
        db.execute("INSERT INTO t VALUES (7, 2.5);")
        assert db.execute("SELECT * FROM t;") == [(7, 2.5)]
