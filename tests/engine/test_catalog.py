"""Tests for the system catalog (pg_am / pg_operator / pg_opclass analogue)."""

import pytest

from repro.engine.catalog import (
    AccessMethodEntry,
    SystemCatalog,
    default_catalog,
    spgist_am_entry,
)
from repro.engine.opclass import NN_STRATEGY, OperatorClass
from repro.engine.operators import Operator, trieword_equal
from repro.errors import CatalogError


class TestPgAmEntry:
    def test_paper_table2_row(self):
        entry = spgist_am_entry()
        assert entry.amname == "SP_GiST"
        assert entry.amstrategies == 20
        assert entry.amsupport == 20
        assert entry.amorderstrategy == 0  # no ordering of index entries
        assert entry.amcanunique is False
        assert entry.amcanmulticol is False
        assert entry.amindexnulls is False
        assert entry.amconcurrent is True
        assert entry.amgettuple == "spgistgettuple"
        assert entry.aminsert == "spgistinsert"
        assert entry.ambuild == "spgistbuild"
        assert entry.ambulkdelete == "spgistbulkdelete"
        assert entry.amcostestimate == "spgistcostestimate"
        assert entry.amvacuumcleanup == "-"


class TestRegistration:
    def test_register_and_lookup_access_method(self):
        catalog = SystemCatalog()
        catalog.register_access_method(AccessMethodEntry(amname="myam"))
        assert catalog.access_method("MYAM").amname == "myam"

    def test_duplicate_access_method_rejected(self):
        catalog = SystemCatalog()
        catalog.register_access_method(AccessMethodEntry(amname="x"))
        with pytest.raises(CatalogError):
            catalog.register_access_method(AccessMethodEntry(amname="X"))

    def test_unknown_access_method_raises(self):
        with pytest.raises(CatalogError):
            SystemCatalog().access_method("nope")

    def test_operator_registration(self):
        catalog = SystemCatalog()
        op = Operator("=", "varchar", "varchar", trieword_equal)
        catalog.register_operator(op)
        assert catalog.operator("=", "varchar", "varchar") is op
        with pytest.raises(CatalogError):
            catalog.register_operator(op)

    def test_opclass_requires_existing_am(self):
        catalog = SystemCatalog()
        with pytest.raises(CatalogError):
            catalog.register_opclass(
                OperatorClass("oc", "ghost_am", "varchar")
            )

    def test_opclass_roundtrip(self):
        catalog = SystemCatalog()
        catalog.register_access_method(AccessMethodEntry(amname="am"))
        oc = OperatorClass("MyClass", "am", "varchar", {1: "="})
        catalog.register_opclass(oc)
        assert catalog.opclass("myclass") is oc


class TestDefaultCatalog:
    def test_paper_access_methods_present(self):
        catalog = default_catalog()
        for name in ("heap", "btree", "rtree", "SP_GiST"):
            assert catalog.access_method(name) is not None

    def test_paper_opclasses_present(self):
        catalog = default_catalog()
        for name in (
            "SP_GiST_trie",
            "SP_GiST_kdtree",
            "SP_GiST_suffix",
            "SP_GiST_pquadtree",
            "SP_GiST_pmr",
        ):
            oc = catalog.opclass(name)
            assert oc.access_method == "SP_GiST"

    def test_trie_opclass_matches_table5(self):
        oc = default_catalog().opclass("SP_GiST_trie")
        assert oc.operators[1] == "="
        assert oc.operators[2] == "#="
        assert oc.operators[3] == "?="
        assert oc.operators[NN_STRATEGY] == "@@"
        assert oc.for_type == "varchar"

    def test_kdtree_opclass_matches_table5(self):
        oc = default_catalog().opclass("SP_GiST_kdtree")
        assert oc.operators[1] == "@"
        assert oc.operators[2] == "^"
        assert oc.for_type == "point"

    def test_suffix_opclass_has_extractor(self):
        oc = default_catalog().opclass("SP_GiST_suffix")
        assert oc.operators[1] == "@="
        assert list(oc.key_extractor("ab")) == ["ab", "b"]

    def test_default_opclass_resolution(self):
        catalog = default_catalog()
        assert catalog.default_opclass("SP_GiST", "varchar").name == "SP_GiST_trie"
        assert catalog.default_opclass("rtree", "point").name == "rtree_point"
        with pytest.raises(CatalogError):
            catalog.default_opclass("btree", "lseg")

    def test_opclass_support_functions_numbered_as_table5(self):
        oc = default_catalog().opclass("SP_GiST_trie")
        support = oc.support_functions()
        assert set(support.keys()) == {1, 2, 3, 4}
        assert callable(support[1]) and callable(support[2])

    def test_make_methods_builds_external_methods(self):
        oc = default_catalog().opclass("SP_GiST_trie")
        methods = oc.make_methods(bucket_size=7)
        assert methods.get_parameters().bucket_size == 7

    def test_non_spgist_opclass_has_no_support_functions(self):
        oc = default_catalog().opclass("btree_varchar")
        with pytest.raises(TypeError):
            oc.make_methods()

    def test_operators_named(self):
        catalog = default_catalog()
        eq_varchar = catalog.operators_named("=", "varchar")
        assert len(eq_varchar) == 1
        assert eq_varchar[0].restrict == "eqsel"
