"""Tests for access-path planning and plan execution."""

import pytest

from repro.engine.catalog import default_catalog
from repro.engine.executor import execute_plan
from repro.engine.planner import (
    IndexScanPlan,
    NNIndexScanPlan,
    NNSortScanPlan,
    Predicate,
    SeqScanPlan,
    plan_query,
)
from repro.engine.table import Column, Table
from repro.errors import PlannerError
from repro.geometry import Box, Point
from repro.workloads import random_points, random_words


@pytest.fixture
def big_word_table(buffer):
    table = Table(
        "words",
        [Column("name", "varchar"), Column("id", "int")],
        buffer,
        default_catalog(),
    )
    for i, w in enumerate(random_words(3000, seed=131)):
        table.insert((w, i))
    return table


class TestPlanSelection:
    def test_no_predicate_is_seqscan(self, big_word_table):
        plan = plan_query(big_word_table, None)
        assert isinstance(plan, SeqScanPlan)

    def test_no_index_means_seqscan(self, big_word_table):
        plan = plan_query(big_word_table, Predicate("name", "=", "abc"))
        assert isinstance(plan, SeqScanPlan)

    def test_equality_uses_index_after_analyze(self, big_word_table):
        big_word_table.create_index("trie", "name", "SP_GiST", "SP_GiST_trie")
        big_word_table.analyze()
        plan = plan_query(big_word_table, Predicate("name", "=", "abc"))
        assert isinstance(plan, IndexScanPlan)

    def test_index_on_other_column_not_considered(self, big_word_table):
        big_word_table.create_index("bt_id", "id", "btree", "btree_int")
        big_word_table.analyze()
        plan = plan_query(big_word_table, Predicate("name", "=", "abc"))
        assert isinstance(plan, SeqScanPlan)

    def test_operator_not_in_opclass_not_considered(self, big_word_table):
        big_word_table.create_index("trie", "name", "SP_GiST", "SP_GiST_trie")
        big_word_table.analyze()
        # '@=' (substring) is not in the trie opclass.
        with pytest.raises(PlannerError):
            plan_query(big_word_table, Predicate("name", "@@@", "x"))

    def test_cheapest_path_wins(self, big_word_table):
        big_word_table.create_index("trie", "name", "SP_GiST", "SP_GiST_trie")
        big_word_table.create_index("bt", "name", "btree", "btree_varchar")
        big_word_table.analyze()
        plan = plan_query(big_word_table, Predicate("name", "=", "abc"))
        assert isinstance(plan, IndexScanPlan)
        seq_cost = plan_query(big_word_table, None).cost.total_cost
        assert plan.cost.total_cost < seq_cost

    def test_describe_mentions_index(self, big_word_table):
        big_word_table.create_index("trie", "name", "SP_GiST", "SP_GiST_trie")
        big_word_table.analyze()
        plan = plan_query(big_word_table, Predicate("name", "=", "abc"))
        text = plan.describe()
        assert "trie" in text and "cost=" in text


class TestNNPlanning:
    def test_nn_uses_capable_index(self, buffer):
        table = Table("pts", [Column("p", "point")], buffer, default_catalog())
        for p in random_points(150, seed=132):
            table.insert((p,))
        table.create_index("kd", "p", "SP_GiST", "SP_GiST_kdtree")
        plan = plan_query(table, Predicate("p", "@@", Point(5, 5)))
        assert isinstance(plan, NNIndexScanPlan)

    def test_nn_falls_back_to_sort(self, buffer):
        table = Table("pts", [Column("p", "point")], buffer, default_catalog())
        for p in random_points(50, seed=133):
            table.insert((p,))
        plan = plan_query(table, Predicate("p", "@@", Point(5, 5)))
        assert isinstance(plan, NNSortScanPlan)


class TestExecution:
    def test_index_and_seq_agree(self, big_word_table):
        words = [row[0] for _t, row in big_word_table.scan()]
        probe = words[100]
        seq_plan = plan_query(big_word_table, Predicate("name", "=", probe))
        seq_rows = sorted(execute_plan(seq_plan))
        big_word_table.create_index("trie", "name", "SP_GiST", "SP_GiST_trie")
        big_word_table.analyze()
        idx_plan = plan_query(big_word_table, Predicate("name", "=", probe))
        assert isinstance(idx_plan, IndexScanPlan)
        assert sorted(execute_plan(idx_plan)) == seq_rows

    def test_nn_index_and_sort_agree(self, buffer):
        table = Table("pts", [Column("p", "point")], buffer, default_catalog())
        points = random_points(250, seed=134)
        for p in points:
            table.insert((p,))
        query = Predicate("p", "@@", Point(42, 17))
        sort_rows = list(execute_plan(plan_query(table, query)))[:10]
        table.create_index("kd", "p", "SP_GiST", "SP_GiST_kdtree")
        nn_rows = []
        plan = plan_query(table, query)
        assert isinstance(plan, NNIndexScanPlan)
        for row in execute_plan(plan):
            nn_rows.append(row)
            if len(nn_rows) == 10:
                break
        from repro.geometry.distance import euclidean

        d_sort = [euclidean(r[0], query.operand) for r in sort_rows]
        d_nn = [euclidean(r[0], query.operand) for r in nn_rows]
        assert [round(d, 9) for d in d_nn] == [round(d, 9) for d in d_sort]

    def test_range_query_through_executor(self, buffer):
        table = Table("pts", [Column("p", "point")], buffer, default_catalog())
        points = random_points(300, seed=135)
        for p in points:
            table.insert((p,))
        table.create_index("kd", "p", "SP_GiST", "SP_GiST_kdtree")
        table.analyze()
        box = Box(20, 20, 60, 60)
        plan = plan_query(table, Predicate("p", "^", box))
        rows = list(execute_plan(plan))
        assert sorted(r[0] for r in rows) == sorted(
            p for p in points if box.contains_point(p)
        )

    def test_full_scan_no_predicate(self, big_word_table):
        rows = list(execute_plan(plan_query(big_word_table, None)))
        assert len(rows) == len(big_word_table)
