"""Batched insert path: multi-row SQL INSERT, Table.insert_many, index sync.

The batch path must be purely a throughput feature — the rows, the heap,
and every index end up exactly as if each row had been inserted alone.
"""

from __future__ import annotations

import pytest

from repro.engine import Database
from repro.engine.catalog import default_catalog
from repro.engine.table import Column, Table
from repro.errors import SQLError
from repro.workloads import random_words


@pytest.fixture
def db():
    return Database(buffer_capacity=256)


class TestMultiRowSQL:
    def test_multi_row_insert_status_counts_rows(self, db):
        db.execute("CREATE TABLE t (a VARCHAR(10), b INT);")
        status = db.execute(
            "INSERT INTO t VALUES ('x', 1), ('y', 2), ('z', 3);"
        )
        assert status == "INSERT 0 3"
        assert sorted(db.execute("SELECT * FROM t;")) == [
            ("x", 1), ("y", 2), ("z", 3),
        ]

    def test_single_row_path_unchanged(self, db):
        db.execute("CREATE TABLE t (a VARCHAR(10), b INT);")
        assert db.execute("INSERT INTO t VALUES ('x', 1);") == "INSERT 0 1"

    def test_commas_inside_quotes_are_not_row_separators(self, db):
        db.execute("CREATE TABLE t (a VARCHAR(20), b INT);")
        db.execute("INSERT INTO t VALUES ('a, (b), c', 1), ('d', 2);")
        rows = sorted(db.execute("SELECT * FROM t;"))
        assert rows == [("a, (b), c", 1), ("d", 2)]

    def test_nested_parens_in_geometry_rows(self, db):
        db.execute("CREATE TABLE pts (p POINT, id INT);")
        db.execute(
            "INSERT INTO pts VALUES ((1.0, 2.0), 1), ((3.5, 4.5), 2);"
        )
        assert db.execute("SELECT COUNT(*) FROM pts;") == [(2,)]

    def test_unbalanced_rows_rejected(self, db):
        db.execute("CREATE TABLE t (a INT);")
        with pytest.raises(SQLError):
            db.execute("INSERT INTO t VALUES (1), (2;")

    def test_garbage_between_rows_rejected(self, db):
        db.execute("CREATE TABLE t (a INT);")
        with pytest.raises(SQLError):
            db.execute("INSERT INTO t VALUES (1) junk (2);")

    def test_arity_checked_before_any_row_lands(self, db):
        db.execute("CREATE TABLE t (a VARCHAR(5), b INT);")
        with pytest.raises(SQLError):
            db.execute("INSERT INTO t VALUES ('x', 1), ('y');")
        # All-or-nothing: the valid first row must not have landed.
        assert db.execute("SELECT COUNT(*) FROM t;") == [(0,)]


class TestTableInsertMany:
    def _table(self, buffer, with_index: bool) -> Table:
        table = Table(
            "words",
            [Column("name", "varchar"), Column("id", "int")],
            buffer,
            default_catalog(),
        )
        if with_index:
            table.create_index("trie", "name", "SP_GiST", "SP_GiST_trie")
        return table

    def test_batch_equals_singles(self, buffer, small_buffer):
        words = random_words(300, seed=47)
        single = self._table(buffer, with_index=True)
        for i, w in enumerate(words):
            single.insert((w, i))
        batched = self._table(small_buffer, with_index=True)
        tids = batched.insert_many([(w, i) for i, w in enumerate(words)])
        assert len(tids) == len(words)
        assert sorted(r for _t, r in single.scan()) == sorted(
            r for _t, r in batched.scan()
        )
        # The index sees every batched row.
        idx = batched.indexes["trie"]
        for w in words[::13]:
            expected = sorted(i for i, x in enumerate(words) if x == w)
            found = sorted(
                batched.fetch(tid)[1] for tid in idx.scan("=", w)
            )
            assert found == expected

    def test_index_created_after_batch_sees_rows(self, buffer):
        table = self._table(buffer, with_index=False)
        words = random_words(120, seed=48)
        table.insert_many([(w, i) for i, w in enumerate(words)])
        table.create_index("trie", "name", "SP_GiST", "SP_GiST_trie")
        idx = table.indexes["trie"]
        target = words[5]
        expected = sorted(i for i, w in enumerate(words) if w == target)
        found = sorted(table.fetch(tid)[1] for tid in idx.scan("=", target))
        assert found == expected

    def test_empty_batch_is_a_noop(self, buffer):
        table = self._table(buffer, with_index=True)
        assert table.insert_many([]) == []
        assert len(table) == 0
