"""SQL surface added by the batch executor PR: cursors + REPACK INDEX.

DECLARE/FETCH/CLOSE pagination (batch-boundary-agnostic counts, WITH
HOLD materialization in autocommit, transaction-scoped cursors dying at
block end) and the online clustering maintenance statement, including
its refusal cases.
"""

from __future__ import annotations

import pytest

from repro.engine import Database
from repro.errors import SQLError
from repro.settings import SETTINGS


@pytest.fixture
def db():
    return Database(buffer_capacity=256)


@pytest.fixture
def word_db(db):
    db.execute("CREATE TABLE word_data (name VARCHAR(50), id INT);")
    words = [f"w{i:03d}" for i in range(40)] + ["ran", "randy", "random"]
    for i, word in enumerate(words):
        db.execute(f"INSERT INTO word_data VALUES ('{word}', {i});")
    db.execute(
        "CREATE INDEX sp_trie_index ON word_data USING SP_GiST "
        "(name SP_GiST_trie);"
    )
    return db


class TestCursors:
    def test_declare_fetch_close_roundtrip(self, word_db):
        assert (
            word_db.execute(
                "DECLARE c CURSOR FOR SELECT * FROM word_data;"
            )
            == "DECLARE c"
        )
        first = word_db.execute("FETCH 10 FROM c;")
        assert len(first) == 10
        rest = word_db.execute("FETCH ALL FROM c;")
        assert len(rest) == 33
        assert word_db.execute("FETCH 5 FROM c;") == []
        assert word_db.execute("CLOSE c;") == "CLOSE c"

    def test_fetch_counts_cross_batch_boundaries(self, word_db):
        word_db.execute(
            "DECLARE c CURSOR FOR SELECT id FROM word_data;"
        )
        # 7 does not divide the executor batch size; the carry buffer
        # must hand out exactly 7 rows per FETCH with no gaps or repeats.
        seen: list = []
        while True:
            rows = word_db.execute("FETCH 7 FROM c;")
            if not rows:
                break
            assert len(rows) <= 7
            seen.extend(rows)
        expected = word_db.execute("SELECT id FROM word_data;")
        assert seen == expected

    def test_fetch_without_count_returns_one_batch(self, word_db):
        word_db.execute("DECLARE c CURSOR FOR SELECT * FROM word_data;")
        rows = word_db.execute("FETCH FROM c;")
        assert len(rows) == min(43, SETTINGS.batch_size)

    def test_cursor_ordering_matches_plain_select(self, word_db):
        word_db.execute(
            "DECLARE c CURSOR FOR SELECT name FROM word_data "
            "WHERE name #= 'ran';"
        )
        rows = word_db.execute("FETCH ALL FROM c;")
        assert rows == word_db.execute(
            "SELECT name FROM word_data WHERE name #= 'ran';"
        )

    def test_held_cursor_survives_later_statements(self, word_db):
        word_db.execute("DECLARE c CURSOR FOR SELECT * FROM word_data;")
        # An autocommit cursor is materialized at DECLARE: maintenance
        # that rewrites the index cannot invalidate it.
        word_db.execute("REPACK INDEX sp_trie_index;")
        word_db.execute("INSERT INTO word_data VALUES ('zzz', 999);")
        assert len(word_db.execute("FETCH ALL FROM c;")) == 43

    def test_block_cursor_dies_with_transaction(self, word_db):
        word_db.execute("BEGIN;")
        word_db.execute("DECLARE c CURSOR FOR SELECT * FROM word_data;")
        assert len(word_db.execute("FETCH 3 FROM c;")) == 3
        word_db.execute("COMMIT;")
        with pytest.raises(SQLError):
            word_db.execute("FETCH 3 FROM c;")

    def test_duplicate_and_unknown_cursor_names(self, word_db):
        word_db.execute("DECLARE c CURSOR FOR SELECT * FROM word_data;")
        with pytest.raises(SQLError):
            word_db.execute("DECLARE c CURSOR FOR SELECT * FROM word_data;")
        with pytest.raises(SQLError):
            word_db.execute("FETCH 1 FROM nope;")
        with pytest.raises(SQLError):
            word_db.execute("CLOSE nope;")


class TestRepackIndex:
    def test_repack_reports_and_preserves_answers(self, word_db):
        before = word_db.execute(
            "SELECT name FROM word_data WHERE name #= 'ran';"
        )
        status = word_db.execute("REPACK INDEX sp_trie_index;")
        assert status.startswith("REPACK INDEX sp_trie_index")
        assert "fill" in status
        assert (
            word_db.execute("SELECT name FROM word_data WHERE name #= 'ran';")
            == before
        )

    def test_repack_improves_fill_after_churn(self, word_db):
        for i in range(43):
            if i % 3 != 0:
                word_db.execute(f"DELETE FROM word_data WHERE id = {i};")
        index = word_db.table("word_data").indexes["sp_trie_index"]
        degraded = index.structure.store.fill_factor()
        word_db.execute("REPACK INDEX sp_trie_index;")
        assert index.structure.store.fill_factor() >= degraded

    def test_repack_refused_inside_transaction_block(self, word_db):
        word_db.execute("BEGIN;")
        with pytest.raises(SQLError, match="transaction block"):
            word_db.execute("REPACK INDEX sp_trie_index;")
        word_db.execute("ROLLBACK;")

    def test_repack_unknown_index_rejected(self, word_db):
        with pytest.raises(SQLError, match="unknown index"):
            word_db.execute("REPACK INDEX nope;")

    def test_repack_non_spgist_index_rejected(self, db):
        db.execute("CREATE TABLE t (a VARCHAR(10), b INT);")
        db.execute("CREATE INDEX t_btree ON t USING btree (a);")
        with pytest.raises(SQLError, match="SP-GiST"):
            db.execute("REPACK INDEX t_btree;")

    def test_find_index_locates_owner(self, word_db):
        table, index = word_db.find_index("sp_trie_index")
        assert table.name == "word_data"
        assert index.name == "sp_trie_index"


class TestExplainAnalyzeBatches:
    def test_batch_counts_reported_per_node(self, word_db):
        plan_text = word_db.execute(
            "EXPLAIN ANALYZE SELECT * FROM word_data;"
        )
        assert "batches=" in plan_text

    def test_batch_count_matches_row_math(self, word_db):
        plan_text = word_db.execute(
            "EXPLAIN ANALYZE SELECT * FROM word_data;"
        )
        # 43 visible rows at the engine batch size => ceil(43/size) batches.
        expected = -(-43 // SETTINGS.batch_size)
        assert f"batches={expected}" in plan_text
