"""Tests for Table / TableIndex (heap + secondary index maintenance)."""

import pytest

from repro.engine.catalog import default_catalog
from repro.engine.table import Column, Table
from repro.errors import CatalogError
from repro.geometry import Box, Point
from repro.workloads import random_points, random_words


@pytest.fixture
def catalog():
    return default_catalog()


@pytest.fixture
def word_table(buffer, catalog):
    table = Table(
        "word_data",
        [Column("name", "varchar"), Column("id", "int")],
        buffer,
        catalog,
    )
    for i, w in enumerate(random_words(400, seed=121)):
        table.insert((w, i))
    return table


class TestSchema:
    def test_column_lookup(self, word_table):
        assert word_table.column_index("name") == 0
        assert word_table.column("id").type_name == "int"

    def test_unknown_column_raises(self, word_table):
        with pytest.raises(CatalogError):
            word_table.column_index("ghost")

    def test_arity_check_on_insert(self, word_table):
        with pytest.raises(ValueError):
            word_table.insert(("only-one",))


class TestIndexLifecycle:
    def test_create_index_builds_from_existing_rows(self, word_table):
        index = word_table.create_index("trie_idx", "name", "SP_GiST",
                                        "SP_GiST_trie")
        rows = {w for _tid, (w, _i) in word_table.scan()}
        probe = next(iter(rows))
        tids = list(index.scan("=", probe))
        assert tids
        assert all(word_table.fetch(t)[0] == probe for t in tids)

    def test_duplicate_index_name_rejected(self, word_table):
        word_table.create_index("idx", "name", "SP_GiST", "SP_GiST_trie")
        with pytest.raises(CatalogError):
            word_table.create_index("idx", "name", "SP_GiST", "SP_GiST_trie")

    def test_type_mismatch_rejected(self, word_table):
        with pytest.raises(CatalogError):
            word_table.create_index("idx", "id", "SP_GiST", "SP_GiST_trie")

    def test_am_mismatch_rejected(self, word_table):
        with pytest.raises(CatalogError):
            word_table.create_index("idx", "name", "btree", "SP_GiST_trie")

    def test_default_opclass_selected(self, word_table):
        index = word_table.create_index("idx", "name", "SP_GiST")
        assert index.opclass.name == "SP_GiST_trie"

    def test_drop_index(self, word_table):
        word_table.create_index("idx", "name", "SP_GiST")
        word_table.drop_index("idx")
        assert "idx" not in word_table.indexes
        with pytest.raises(CatalogError):
            word_table.drop_index("idx")


class TestIndexMaintenance:
    def test_insert_maintains_all_indexes(self, word_table):
        trie = word_table.create_index("t", "name", "SP_GiST", "SP_GiST_trie")
        bt = word_table.create_index("b", "name", "btree", "btree_varchar")
        word_table.insert(("freshword", 999))
        assert list(trie.scan("=", "freshword"))
        assert list(bt.scan("=", "freshword"))

    def test_delete_maintains_all_indexes(self, word_table):
        trie = word_table.create_index("t", "name", "SP_GiST", "SP_GiST_trie")
        tid = word_table.insert(("victimword", 1000))
        word_table.delete_tid(tid)
        assert list(trie.scan("=", "victimword")) == []

    def test_suffix_index_key_extraction(self, buffer, catalog):
        table = Table("docs", [Column("body", "varchar")], buffer, catalog)
        table.insert(("bandana",))
        idx = table.create_index("sfx", "body", "SP_GiST", "SP_GiST_suffix")
        tids = list(idx.scan("@=", "dan"))
        assert len(tids) == 1
        # deletion must remove every suffix
        table.delete_tid(tids[0])
        assert list(idx.scan("@=", "dan")) == []


class TestSpatialIndexes(object):
    def test_kdtree_and_rtree_agree(self, buffer, catalog):
        table = Table("pts", [Column("p", "point")], buffer, catalog)
        for p in random_points(300, seed=122):
            table.insert((p,))
        kd = table.create_index("kd", "p", "SP_GiST", "SP_GiST_kdtree")
        rt = table.create_index("rt", "p", "rtree", "rtree_point")
        box = Box(10, 10, 40, 40)
        assert sorted(kd.scan("^", box)) == sorted(rt.scan("^", box))

    def test_nn_scan_streams_by_distance(self, buffer, catalog):
        table = Table("pts", [Column("p", "point")], buffer, catalog)
        points = random_points(200, seed=123)
        for p in points:
            table.insert((p,))
        kd = table.create_index("kd", "p", "SP_GiST", "SP_GiST_kdtree")
        assert kd.supports_nn()
        from repro.geometry.distance import euclidean

        query = Point(50, 50)
        tids = list(kd.nn_scan(query))
        dists = [euclidean(table.fetch(t)[0], query) for t in tids]
        assert dists == sorted(dists)
        assert len(tids) == len(points)

    def test_rtree_does_not_support_nn(self, buffer, catalog):
        table = Table("pts", [Column("p", "point")], buffer, catalog)
        table.insert((Point(1, 1),))
        rt = table.create_index("rt", "p", "rtree", "rtree_point")
        assert not rt.supports_nn()


class TestStats:
    def test_stats_before_analyze_has_no_distinct(self, word_table):
        assert word_table.stats("name").distinct_count is None

    def test_analyze_populates_distinct(self, word_table):
        counts = word_table.analyze()
        assert counts["id"] == len(word_table)
        assert word_table.stats("name").distinct_count == counts["name"]

    def test_row_count_tracks_len(self, word_table):
        assert word_table.stats().row_count == len(word_table) == 400
