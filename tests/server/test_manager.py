"""SessionManager tests: admission control, shedding, ordering, lifecycle."""

from __future__ import annotations

import threading

import pytest

from repro.engine.sql import Database
from repro.errors import (
    ServerOverloadedError,
    SessionClosedError,
    SQLError,
)
from repro.server.manager import SessionManager
from repro.settings import SETTINGS


def _db() -> Database:
    db = Database()
    db.execute("CREATE TABLE t (key VARCHAR(20), id INT);")
    db.execute("CREATE INDEX t_idx ON t USING SP_GiST (key SP_GiST_trie);")
    db.execute("INSERT INTO t VALUES ('alpha', 1), ('beta', 2);")
    return db


class TestBasics:
    def test_execute_round_trip(self):
        with SessionManager(_db()) as mgr:
            s = mgr.connect()
            assert mgr.execute(s, "SELECT * FROM t WHERE id = 1;") == [("alpha", 1)]
            assert mgr.execute(s, "INSERT INTO t VALUES ('gamma', 3);") == "INSERT 0 1"

    def test_errors_propagate_through_future(self):
        with SessionManager(_db()) as mgr:
            s = mgr.connect()
            with pytest.raises(SQLError):
                mgr.execute(s, "SELECT * FROM nowhere;")

    def test_auto_session_names_are_unique(self):
        with SessionManager(_db()) as mgr:
            names = {mgr.connect().name for _ in range(5)}
            assert len(names) == 5

    def test_duplicate_name_refused(self):
        with SessionManager(_db()) as mgr:
            mgr.connect("dup")
            with pytest.raises(ServerOverloadedError):
                mgr.connect("dup")

    def test_per_session_statement_order(self):
        """A session's statements run strictly in submission order."""
        with SessionManager(_db()) as mgr:
            s = mgr.connect()
            pendings = [
                mgr.submit(s, f"INSERT INTO t VALUES ('o{i:02d}', {100 + i});")
                for i in range(20)
            ]
            pendings.append(mgr.submit(s, "SELECT * FROM t WHERE key >= 'o';"))
            rows = pendings[-1].wait(timeout=30)
            # The final SELECT must observe every preceding INSERT.
            assert len(rows) == 20


class TestAdmissionControl:
    def test_session_table_bounded(self):
        settings = SETTINGS.replace(max_sessions=3, worker_threads=2)
        with SessionManager(_db(), settings=settings) as mgr:
            for _ in range(3):
                mgr.connect()
            with pytest.raises(ServerOverloadedError):
                mgr.connect()

    def test_disconnect_frees_a_slot(self):
        settings = SETTINGS.replace(max_sessions=1, worker_threads=1)
        with SessionManager(_db(), settings=settings) as mgr:
            s = mgr.connect()
            with pytest.raises(ServerOverloadedError):
                mgr.connect()
            mgr.disconnect(s)
            mgr.connect()  # slot is free again

    def test_full_queue_rejects_with_backpressure(self):
        settings = SETTINGS.replace(
            max_queue=2, worker_threads=1, shed_threshold=1000
        )
        db = _db()
        gate = threading.Lock()
        with SessionManager(db, settings=settings) as mgr:
            blocker = mgr.connect("blocker")
            others = [mgr.connect() for _ in range(4)]
            with gate:
                # Park the single worker on a statement that waits on `gate`
                # via the engine mutex.
                with mgr.engine_mutex:
                    first = mgr.submit(blocker, "SELECT * FROM t;")
                    import time

                    time.sleep(0.1)  # worker picks it up, blocks on mutex
                    # Fill the queue to max_queue.
                    queued = [
                        mgr.submit(others[i], "SELECT * FROM t;")
                        for i in range(2)
                    ]
                    with pytest.raises(ServerOverloadedError):
                        mgr.submit(others[2], "SELECT * FROM t;")
                    assert mgr.stats["rejected"] == 1
            first.wait(timeout=10)
            for pending in queued:
                pending.wait(timeout=10)

    def test_rejected_submission_does_not_poison_session(self):
        settings = SETTINGS.replace(
            max_queue=1, worker_threads=1, shed_threshold=1000
        )
        with SessionManager(_db(), settings=settings) as mgr:
            a, b = mgr.connect(), mgr.connect()
            with mgr.engine_mutex:
                first = mgr.submit(a, "SELECT * FROM t;")
                import time

                time.sleep(0.1)
                held = mgr.submit(b, "SELECT * FROM t;")
                with pytest.raises(ServerOverloadedError):
                    mgr.submit(b, "SELECT * FROM t;")
            first.wait(timeout=10)
            held.wait(timeout=10)
            # The rejected client retries and succeeds once load drops.
            assert mgr.execute(b, "SELECT * FROM t WHERE id = 1;") == [("alpha", 1)]


class TestShedding:
    def test_read_only_sheds_to_standby_reader(self):
        calls = []

        def reader(sql):
            calls.append(sql)
            return [("standby", 0)]

        settings = SETTINGS.replace(
            max_queue=64, worker_threads=1, shed_threshold=0
        )
        with SessionManager(_db(), settings=settings, shed_reader=reader) as mgr:
            s = mgr.connect()
            # threshold 0: every eligible read sheds immediately.
            rows = mgr.execute(s, "SELECT * FROM t WHERE id = 1;")
            assert rows == [("standby", 0)]
            assert calls and mgr.stats["shed"] == 1

    def test_writes_and_txn_statements_never_shed(self):
        def reader(sql):  # pragma: no cover - must not be called
            raise AssertionError("write was shed")

        settings = SETTINGS.replace(
            max_queue=64, worker_threads=2, shed_threshold=0
        )
        with SessionManager(_db(), settings=settings, shed_reader=reader) as mgr:
            s = mgr.connect()
            assert mgr.execute(s, "INSERT INTO t VALUES ('w', 9);") == "INSERT 0 1"
            # Reads inside a transaction need the primary snapshot.
            mgr.execute(s, "BEGIN;")
            rows = mgr.execute(s, "SELECT * FROM t WHERE id = 9;")
            assert rows == [("w", 9)]
            mgr.execute(s, "COMMIT;")
            assert mgr.stats["shed"] == 0

    def test_declined_shed_falls_back_to_queue(self):
        settings = SETTINGS.replace(
            max_queue=64, worker_threads=2, shed_threshold=0
        )
        with SessionManager(
            _db(), settings=settings, shed_reader=lambda sql: None
        ) as mgr:
            s = mgr.connect()
            # Reader declines (returns None): statement runs on the primary.
            assert mgr.execute(s, "SELECT * FROM t WHERE id = 1;") == [("alpha", 1)]
            assert mgr.stats["shed"] == 0


class TestLifecycle:
    def test_stop_fails_queued_statements(self):
        settings = SETTINGS.replace(max_queue=64, worker_threads=1)
        db = _db()
        mgr = SessionManager(db, settings=settings)
        s = mgr.connect()
        with mgr.engine_mutex:
            first = mgr.submit(s, "SELECT * FROM t;")
            import time

            time.sleep(0.1)
            second = mgr.submit(s, "SELECT * FROM t;")
            stopper = threading.Thread(target=mgr.stop)
            stopper.start()
            time.sleep(0.1)
        stopper.join(timeout=10)
        with pytest.raises(SessionClosedError):
            second.wait(timeout=5)
        # `first` was already running; it completes or fails, never hangs.
        assert first.done() or first.wait(timeout=5) is not None

    def test_submit_after_stop_refused(self):
        mgr = SessionManager(_db())
        s = mgr.connect()
        mgr.stop()
        with pytest.raises(SessionClosedError):
            mgr.submit(s, "SELECT * FROM t;")
