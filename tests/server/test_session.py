"""Session tests: 2PL over the engine, typed aborts, timeout taxonomy."""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine.sql import Database
from repro.errors import (
    DeadlockError,
    LockTimeoutError,
    SessionClosedError,
    SQLError,
    StatementTimeoutError,
    TxnAbortedError,
    TxnError,
)
from repro.server.locks import LockManager, LockMode, table_key
from repro.server.session import Session, _classify, is_read_only
from repro.settings import SETTINGS


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (key VARCHAR(20), id INT);")
    database.execute(
        "CREATE INDEX t_idx ON t USING SP_GiST (key SP_GiST_trie);"
    )
    database.execute("INSERT INTO t VALUES ('alpha', 1), ('beta', 2);")
    return database


@pytest.fixture
def stack(db):
    locks = LockManager()
    mutex = threading.RLock()

    def make(name):
        return Session(name, db, locks, engine_mutex=mutex, settings=SETTINGS)

    return db, locks, make


class TestClassification:
    def test_select_takes_shared(self):
        assert _classify("SELECT * FROM t WHERE key = 'x';") == [
            (table_key("t"), LockMode.SHARED)
        ]

    def test_dml_takes_row(self):
        for sql in (
            "INSERT INTO t VALUES ('x', 1);",
            "DELETE FROM t WHERE id = 1;",
            "UPDATE t SET key = 'y' WHERE id = 1;",
        ):
            assert _classify(sql) == [(table_key("t"), LockMode.ROW)]

    def test_vacuum_and_ddl_take_exclusive(self):
        assert _classify("VACUUM t;") == [(table_key("t"), LockMode.EXCLUSIVE)]
        assert _classify("DROP TABLE t;") == [
            (table_key("t"), LockMode.EXCLUSIVE)
        ]
        assert _classify(
            "CREATE INDEX i ON t USING SP_GiST (key SP_GiST_trie);"
        ) == [(table_key("t"), LockMode.EXCLUSIVE)]

    def test_txn_control_takes_nothing(self):
        assert _classify("BEGIN;") == []
        assert _classify("COMMIT;") == []
        assert _classify("ROLLBACK;") == []

    def test_explain_classifies_inner(self):
        assert _classify("EXPLAIN SELECT * FROM t;") == [
            (table_key("t"), LockMode.SHARED)
        ]

    def test_read_only_detector(self):
        assert is_read_only("SELECT * FROM t;")
        assert is_read_only("  explain select * from t;")
        assert not is_read_only("INSERT INTO t VALUES ('x', 1);")
        assert not is_read_only("VACUUM t;")


class TestBasicExecution:
    def test_autocommit_releases_locks(self, stack):
        _, locks, make = stack
        session = make("s1")
        session.execute("INSERT INTO t VALUES ('gamma', 3);")
        assert locks.stats()["held"] == 0

    def test_block_holds_locks_until_commit(self, stack):
        _, locks, make = stack
        session = make("s1")
        session.execute("BEGIN;")
        session.execute("UPDATE t SET key = 'alpha2' WHERE id = 1;")
        held = locks.stats()["held"]
        assert held >= 2  # table ROW lock + the TID lock
        session.execute("COMMIT;")
        assert locks.stats()["held"] == 0

    def test_closed_session_refuses_work(self, stack):
        _, _, make = stack
        session = make("s1")
        session.close()
        with pytest.raises(SessionClosedError):
            session.execute("SELECT * FROM t;")

    def test_close_aborts_open_txn_and_releases(self, stack):
        db, locks, make = stack
        session = make("s1")
        session.execute("BEGIN;")
        session.execute("INSERT INTO t VALUES ('temp', 99);")
        session.close()
        assert locks.stats()["held"] == 0
        assert db.execute("SELECT * FROM t WHERE id = 99;") == []


class TestAbortedBlockTaxonomy:
    def test_error_in_block_aborts_until_rollback(self, stack):
        _, _, make = stack
        session = make("s1")
        session.execute("BEGIN;")
        with pytest.raises(SQLError):
            session.execute("SELECT * FROM missing_table;")
        with pytest.raises(TxnAbortedError, match="current transaction is aborted"):
            session.execute("SELECT * FROM t;")
        assert session.execute("COMMIT;") == "ROLLBACK"
        # Usable again afterwards.
        assert session.execute("SELECT * FROM t WHERE id = 1;") != []

    def test_write_conflict_is_first_updater_wins(self, stack):
        """Two blocks updating the same row: waiter gets TxnError on retry."""
        _, _, make = stack
        s1, s2 = make("s1"), make("s2")
        s1.execute("BEGIN;")
        s2.execute("BEGIN;")
        s1.execute("UPDATE t SET key = 'one' WHERE id = 1;")
        result = {}

        def second_updater():
            try:
                s2.execute("UPDATE t SET key = 'two' WHERE id = 1;")
                result["s2"] = "updated"
            except TxnError as exc:
                result["s2"] = type(exc).__name__

        thread = threading.Thread(target=second_updater)
        thread.start()
        time.sleep(0.1)
        s1.execute("COMMIT;")
        thread.join(timeout=10)
        # s2's snapshot predates s1's commit: first-updater-wins fires.
        assert result["s2"] == "TxnError"
        assert s2.execute("ROLLBACK;") == "ROLLBACK"

    def test_autocommit_conflict_retries_cleanly(self, stack):
        """Autocommit DML re-runs with a fresh snapshot after the wait."""
        _, _, make = stack
        s1, s2 = make("s1"), make("s2")
        s1.execute("BEGIN;")
        s1.execute("UPDATE t SET key = 'held' WHERE id = 1;")
        result = {}

        def second_updater():
            result["s2"] = s2.execute("UPDATE t SET key = 'after' WHERE id = 1;")

        thread = threading.Thread(target=second_updater)
        thread.start()
        time.sleep(0.1)
        s1.execute("COMMIT;")
        thread.join(timeout=10)
        assert result["s2"] == "UPDATE 1"
        assert s2.execute("SELECT * FROM t WHERE id = 1;") == [("after", 1)]


class TestTimeouts:
    def test_lock_timeout_aborts_cleanly(self, stack):
        _, locks, make = stack
        s1, s2 = make("s1"), make("s2")
        s1.execute("BEGIN;")
        s1.execute("UPDATE t SET key = 'held' WHERE id = 1;")
        with pytest.raises(LockTimeoutError):
            s2.execute(
                "UPDATE t SET key = 'x' WHERE id = 1;", lock_timeout=0.05
            )
        # s2 was autocommit: no failed block, session immediately usable.
        assert s2.execute("SELECT * FROM t WHERE id = 2;") == [("beta", 2)]
        s1.execute("COMMIT;")
        assert locks.stats()["held"] == 0

    def test_statement_timeout_during_lock_wait(self, stack):
        _, _, make = stack
        s1, s2 = make("s1"), make("s2")
        s1.execute("BEGIN;")
        s1.execute("UPDATE t SET key = 'held' WHERE id = 1;")
        with pytest.raises(StatementTimeoutError):
            s2.execute(
                "UPDATE t SET key = 'x' WHERE id = 1;", statement_timeout=0.05
            )
        s1.execute("ROLLBACK;")

    def test_statement_timeout_in_block_aborts_block(self, stack):
        _, _, make = stack
        s1, s2 = make("s1"), make("s2")
        s1.execute("BEGIN;")
        s1.execute("UPDATE t SET key = 'held' WHERE id = 1;")
        s2.execute("BEGIN;")
        with pytest.raises(StatementTimeoutError):
            s2.execute(
                "UPDATE t SET key = 'x' WHERE id = 1;", statement_timeout=0.05
            )
        with pytest.raises(TxnAbortedError):
            s2.execute("SELECT * FROM t;")
        assert s2.execute("ROLLBACK;") == "ROLLBACK"
        s1.execute("COMMIT;")

    def test_deadline_check_interrupts_long_scan(self, stack):
        db, _, make = stack
        session = make("s1")
        rows = ", ".join(f"('bulk{i:04d}', {1000 + i})" for i in range(600))
        session.execute(f"INSERT INTO t VALUES {rows};")
        # A deadline that has already passed: the cooperative check in the
        # scan fires within one deadline_check_interval of rows.
        with pytest.raises(StatementTimeoutError):
            session.execute("SELECT * FROM t;", statement_timeout=1e-9)
        # Session stays healthy (autocommit, nothing to roll back).
        assert session.execute("SELECT * FROM t WHERE id = 1;") != []


class TestDeadlockThroughSessions:
    def test_sql_level_deadlock_victim(self, stack):
        _, _, make = stack
        s1, s2 = make("s1"), make("s2")
        s1.execute("BEGIN;")
        s2.execute("BEGIN;")
        s1.execute("UPDATE t SET key = 'a1' WHERE id = 1;")
        s2.execute("UPDATE t SET key = 'b2' WHERE id = 2;")
        results = {}

        def cross(session, tag, sql):
            try:
                session.execute(sql)
                session.execute("COMMIT;")
                results[tag] = "committed"
            except DeadlockError:
                results[tag] = "deadlock"
                session.execute("ROLLBACK;")
            except TxnError as exc:
                results[tag] = type(exc).__name__
                session.execute("ROLLBACK;")

        t1 = threading.Thread(
            target=cross, args=(s1, "s1", "UPDATE t SET key = 'a2' WHERE id = 2;")
        )
        t2 = threading.Thread(
            target=cross, args=(s2, "s2", "UPDATE t SET key = 'b1' WHERE id = 1;")
        )
        t1.start()
        time.sleep(0.05)
        t2.start()
        t1.join(timeout=15)
        t2.join(timeout=15)
        assert sorted(results.values()) == ["committed", "deadlock"]
