"""Threaded chaos schedules through the session server.

The fast test runs a small seeded schedule on every CI run; the slow
test is the ISSUE's acceptance criterion — a 100-session mixed schedule
with injected deadlocks, statement timeouts, and one mid-schedule
failover — asserting zero acked-commit loss, no snapshot-isolation
violation, and clean ``spgist_check`` across all five opclasses.
"""

from __future__ import annotations

import pytest

from repro.resilience.chaos_mt import run_threaded_schedule


def _assert_clean(transcript):
    assert transcript["ok"], "\n".join(transcript["failures"])
    stats = transcript["stats"]
    # The schedule must actually have exercised the machinery it claims to:
    assert stats.get("replicated_acked", 0) > 0
    assert stats.get("local_acked", 0) > 0
    assert stats.get("deadlocks", 0) >= 1
    assert stats.get("lock_timeouts", 0) >= 1
    assert stats.get("statement_timeouts", 0) >= 1
    assert stats.get("failovers", 0) >= 1
    for side in ("replicated", "local"):
        lock_stats = transcript["lock_stats"][side]
        assert lock_stats["held"] == 0 and lock_stats["waiters"] == 0


def test_small_threaded_schedule():
    transcript = run_threaded_schedule(seed=42, sessions=14, statements=8)
    _assert_clean(transcript)


def test_schedules_are_seed_deterministic_in_outcome():
    """Two runs of the same seed both converge to a clean verdict.

    Thread interleavings differ run to run; the invariants (no acked
    loss, SI holds, structures clean) must hold under every one of them.
    """
    for _ in range(2):
        transcript = run_threaded_schedule(seed=7, sessions=12, statements=6)
        assert transcript["ok"], "\n".join(transcript["failures"])


@pytest.mark.slow
def test_acceptance_100_session_schedule():
    """ISSUE acceptance: 100 concurrent sessions, mixed chaos, one failover."""
    transcript = run_threaded_schedule(seed=2026, sessions=100, statements=10)
    _assert_clean(transcript)
    # At 100 sessions the schedule must have driven real concurrency.
    stats = transcript["stats"]
    assert stats.get("replicated_acked", 0) + stats.get("local_acked", 0) >= 100
