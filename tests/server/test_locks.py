"""LockManager unit tests: matrix, fairness, deadlocks, timeouts, accounting."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import DeadlockError, LockTimeoutError, StatementTimeoutError
from repro.server.locks import (
    LockManager,
    LockMode,
    LockOwner,
    compatible,
    row_key,
    table_key,
)


@pytest.fixture
def lm():
    return LockManager()


def _owner(name: str, birth: int) -> LockOwner:
    return LockOwner(name, birth)


class TestCompatibilityMatrix:
    def test_shared_and_row_coexist(self):
        assert compatible(LockMode.SHARED, LockMode.SHARED)
        assert compatible(LockMode.SHARED, LockMode.ROW)
        assert compatible(LockMode.ROW, LockMode.ROW)

    def test_exclusive_conflicts_with_everything(self):
        for mode in LockMode:
            assert not compatible(LockMode.EXCLUSIVE, mode)
            assert not compatible(mode, LockMode.EXCLUSIVE)

    def test_concurrent_shared_grants(self, lm):
        a, b = _owner("a", 1), _owner("b", 2)
        key = table_key("t")
        assert lm.try_acquire(a, key, LockMode.SHARED)
        assert lm.try_acquire(b, key, LockMode.SHARED)
        assert not lm.try_acquire(_owner("c", 3), key, LockMode.EXCLUSIVE)

    def test_reentrant_same_mode(self, lm):
        a = _owner("a", 1)
        key = row_key("t", 7)
        assert lm.try_acquire(a, key, LockMode.EXCLUSIVE)
        assert lm.try_acquire(a, key, LockMode.EXCLUSIVE)
        assert lm.stats()["held"] == 1


class TestFIFOFairness:
    def test_no_barging_past_waiters(self, lm):
        """A reader arriving behind a queued EXCLUSIVE must queue too."""
        reader1, vac, reader2 = _owner("r1", 1), _owner("v", 2), _owner("r2", 3)
        key = table_key("t")
        assert lm.try_acquire(reader1, key, LockMode.SHARED)

        granted = []
        threads = []

        def worker(owner, mode, tag):
            lm.acquire(owner, key, mode, lock_timeout=10)
            granted.append(tag)

        t_vac = threading.Thread(target=worker, args=(vac, LockMode.EXCLUSIVE, "vac"))
        t_vac.start()
        time.sleep(0.05)  # vac is queued behind reader1's grant
        # reader2 is compatible with reader1 but must NOT barge past vac.
        assert not lm.try_acquire(reader2, key, LockMode.SHARED)
        t_r2 = threading.Thread(target=worker, args=(reader2, LockMode.SHARED, "r2"))
        t_r2.start()
        time.sleep(0.05)
        assert granted == []
        lm.release_all(reader1)
        t_vac.join(timeout=5)
        assert granted == ["vac"]
        lm.release_all(vac)
        t_r2.join(timeout=5)
        assert granted == ["vac", "r2"]
        lm.release_all(reader2)

    def test_upgrade_jumps_queue(self, lm):
        """A holder upgrading must not deadlock behind its own queue."""
        holder, other = _owner("h", 1), _owner("o", 2)
        key = table_key("t")
        assert lm.try_acquire(holder, key, LockMode.SHARED)
        done = []

        def want_exclusive():
            lm.acquire(other, key, LockMode.EXCLUSIVE, lock_timeout=10)
            done.append("other")

        thread = threading.Thread(target=want_exclusive)
        thread.start()
        time.sleep(0.05)
        # holder upgrades SHARED -> EXCLUSIVE past the queued waiter.
        lm.acquire(holder, key, LockMode.EXCLUSIVE, lock_timeout=5)
        assert lm.held_by(holder)[key] is LockMode.EXCLUSIVE
        lm.release_all(holder)
        thread.join(timeout=5)
        assert done == ["other"]
        lm.release_all(other)


class TestDeadlockDetection:
    def test_two_cycle_youngest_victim(self, lm):
        old, young = _owner("old", 1), _owner("young", 2)
        k1, k2 = row_key("t", 1), row_key("t", 2)
        assert lm.try_acquire(old, k1, LockMode.EXCLUSIVE)
        assert lm.try_acquire(young, k2, LockMode.EXCLUSIVE)

        outcome = {}

        def older_waits():
            try:
                lm.acquire(old, k2, LockMode.EXCLUSIVE, lock_timeout=10)
                outcome["old"] = "granted"
            except DeadlockError:
                outcome["old"] = "deadlock"
                lm.release_all(old)

        thread = threading.Thread(target=older_waits)
        thread.start()
        time.sleep(0.05)
        # young closes the cycle and, being youngest, is the victim.
        with pytest.raises(DeadlockError):
            lm.acquire(young, k1, LockMode.EXCLUSIVE, lock_timeout=10)
        lm.release_all(young)
        thread.join(timeout=5)
        assert outcome["old"] == "granted"
        lm.release_all(old)
        assert lm.stats()["deadlocks"] == 1

    def test_doomed_waiter_wakes_with_deadlock_error(self, lm):
        """The victim can be a transaction already waiting (not the newest)."""
        a, b, c = _owner("a", 1), _owner("b", 2), _owner("c", 3)
        k1, k2, k3 = row_key("t", 1), row_key("t", 2), row_key("t", 3)
        assert lm.try_acquire(a, k1, LockMode.EXCLUSIVE)
        assert lm.try_acquire(b, k2, LockMode.EXCLUSIVE)
        assert lm.try_acquire(c, k3, LockMode.EXCLUSIVE)

        results = {}

        def wait(owner, key, tag):
            try:
                lm.acquire(owner, key, LockMode.EXCLUSIVE, lock_timeout=10)
                results[tag] = "granted"
            except DeadlockError:
                results[tag] = "deadlock"
            # Transaction over either way: strict 2PL releases at the end,
            # which is also what lets the remaining waiters drain.
            lm.release_all(owner)

        # c (youngest) waits first: c -> a. Then b -> c's held key? No:
        # build cycle a -> b -> c -> a with c already parked when a closes it.
        t_c = threading.Thread(target=wait, args=(c, k1, "c"))
        t_c.start()
        time.sleep(0.05)
        t_b = threading.Thread(target=wait, args=(b, k3, "b"))
        t_b.start()
        time.sleep(0.05)
        t_a = threading.Thread(target=wait, args=(a, k2, "a"))
        t_a.start()
        for thread in (t_c, t_b, t_a):
            thread.join(timeout=10)
        # Exactly one victim, and it is the youngest in the cycle: c.
        assert results["c"] == "deadlock"
        assert results["a"] == "granted"
        assert results["b"] == "granted"
        assert lm.stats()["held"] == 0

    def test_no_false_positives_on_plain_contention(self, lm):
        a, b = _owner("a", 1), _owner("b", 2)
        key = row_key("t", 1)
        assert lm.try_acquire(a, key, LockMode.EXCLUSIVE)

        def release_soon():
            time.sleep(0.05)
            lm.release_all(a)

        thread = threading.Thread(target=release_soon)
        thread.start()
        lm.acquire(b, key, LockMode.EXCLUSIVE, lock_timeout=5)
        thread.join()
        lm.release_all(b)
        assert lm.stats()["deadlocks"] == 0


class TestTimeouts:
    def test_lock_timeout(self, lm):
        a, b = _owner("a", 1), _owner("b", 2)
        key = row_key("t", 1)
        assert lm.try_acquire(a, key, LockMode.EXCLUSIVE)
        start = time.monotonic()
        with pytest.raises(LockTimeoutError):
            lm.acquire(b, key, LockMode.EXCLUSIVE, lock_timeout=0.1)
        assert time.monotonic() - start < 2.0
        assert lm.stats()["timeouts"] == 1
        # The timed-out waiter is fully dequeued.
        assert lm.stats()["waiters"] == 0
        lm.release_all(a)

    def test_statement_deadline_beats_lock_timeout(self, lm):
        a, b = _owner("a", 1), _owner("b", 2)
        key = row_key("t", 1)
        assert lm.try_acquire(a, key, LockMode.EXCLUSIVE)
        with pytest.raises(StatementTimeoutError):
            lm.acquire(
                b, key, LockMode.EXCLUSIVE,
                lock_timeout=5.0, deadline=time.monotonic() + 0.1,
            )
        lm.release_all(a)

    def test_release_unblocks_waiter_before_timeout(self, lm):
        a, b = _owner("a", 1), _owner("b", 2)
        key = row_key("t", 1)
        assert lm.try_acquire(a, key, LockMode.EXCLUSIVE)

        def release_soon():
            time.sleep(0.05)
            lm.release_all(a)

        threading.Thread(target=release_soon).start()
        lm.acquire(b, key, LockMode.EXCLUSIVE, lock_timeout=5.0)
        assert lm.held_by(b)[key] is LockMode.EXCLUSIVE
        lm.release_all(b)


class TestAccounting:
    def test_release_all_is_complete(self, lm):
        a = _owner("a", 1)
        for i in range(5):
            assert lm.try_acquire(a, row_key("t", i), LockMode.EXCLUSIVE)
        assert lm.try_acquire(a, table_key("t"), LockMode.ROW)
        assert lm.stats()["held"] == 6
        lm.release_all(a)
        assert lm.stats()["held"] == 0
        assert lm.held_by(a) == {}

    def test_stats_reconcile_with_metrics(self, lm):
        """Dual accounting: stats() vs. the Prometheus text endpoint."""
        from repro.obs import METRICS

        a, b = _owner("a", 1), _owner("b", 2)
        key = row_key("t", 1)
        assert lm.try_acquire(a, key, LockMode.EXCLUSIVE)

        def blocked():
            try:
                lm.acquire(b, key, LockMode.EXCLUSIVE, lock_timeout=0.5)
            except LockTimeoutError:
                pass

        thread = threading.Thread(target=blocked)
        thread.start()
        time.sleep(0.1)
        stats = lm.stats()
        gauges = _lock_gauges(METRICS.render())
        assert gauges["lock_manager_held"] == stats["held"] == 1
        assert gauges["lock_manager_waiters"] == stats["waiters"] == 1
        assert gauges["lock_manager_wait_edges"] == stats["wait_edges"] == 1
        thread.join(timeout=5)
        lm.release_all(a)
        stats = lm.stats()
        assert stats["held"] == 0 and stats["waiters"] == 0
        gauges = _lock_gauges(METRICS.render())
        assert gauges["lock_manager_held"] == 0.0
        assert gauges["lock_manager_waiters"] == 0.0


def _lock_gauges(rendered: str) -> dict[str, float]:
    """Parse the lock-manager gauges out of the Prometheus text format."""
    gauges = {}
    for line in rendered.splitlines():
        if line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        # Strip the registry namespace prefix ("repro_").
        short = name.split("_", 1)[1] if "_" in name else name
        if short.startswith("lock_manager_"):
            gauges[short] = float(value)
    return gauges
