"""AutoRepacker: background re-clustering under the server's 2PL.

Covers candidate selection (most degraded first), the bounded step
(lock in, repack hottest subtree, commit, lock out), autovacuum-style
back-off on contention, the daemon loop, the lock classification of the
new statements, and the per-waiter wakeup accounting the step relies on.
"""

from __future__ import annotations

import threading
import time

from repro.engine.sql import Database
from repro.server.locks import LockManager, LockMode, LockOwner, table_key
from repro.server.repack import AutoRepacker
from repro.server.session import _classify


def _degraded_db(rows: int = 180) -> Database:
    """A words table whose trie index has been churned below 0.6 fill."""
    db = Database(buffer_capacity=256)
    db.execute("CREATE TABLE t (key VARCHAR(30), id INT);")
    for i in range(rows):
        db.execute(f"INSERT INTO t VALUES ('word{i:04d}', {i});")
    db.execute("CREATE INDEX t_idx ON t USING SP_GiST (key SP_GiST_trie);")
    for i in range(rows):
        if i % 3 != 0:
            db.execute(f"DELETE FROM t WHERE id = {i};")
    return db


def _fill(db: Database) -> float:
    return db.table("t").indexes["t_idx"].structure.store.fill_factor()


class TestCandidates:
    def test_degraded_index_is_a_candidate(self):
        db = _degraded_db()
        repacker = AutoRepacker(db, LockManager())
        found = list(repacker.candidates())
        assert [(t, i) for t, i, _f in found] == [("t", "t_idx")]
        assert found[0][2] < repacker.fill_threshold

    def test_healthy_index_is_not_a_candidate(self):
        db = Database(buffer_capacity=256)
        db.execute("CREATE TABLE t (key VARCHAR(30), id INT);")
        for i in range(60):
            db.execute(f"INSERT INTO t VALUES ('word{i:04d}', {i});")
        db.execute(
            "CREATE INDEX t_idx ON t USING SP_GiST (key SP_GiST_trie);"
        )
        repacker = AutoRepacker(db, LockManager())
        assert list(repacker.candidates()) == []

    def test_most_degraded_index_sorts_first(self):
        db = _degraded_db()
        db.execute("CREATE TABLE u (key VARCHAR(30), id INT);")
        for i in range(60):
            db.execute(f"INSERT INTO u VALUES ('other{i:04d}', {i});")
        db.execute(
            "CREATE INDEX u_idx ON u USING SP_GiST (key SP_GiST_trie);"
        )
        db.execute("DELETE FROM u WHERE id = 5;")  # barely touched
        repacker = AutoRepacker(db, LockManager(), fill_threshold=1.01)
        found = list(repacker.candidates())
        assert len(found) == 2
        assert found[0][2] <= found[1][2]


class TestStep:
    def test_step_improves_fill_and_releases_locks(self):
        db = _degraded_db()
        locks = LockManager()
        repacker = AutoRepacker(db, locks)
        before = _fill(db)
        stats = repacker.step()
        assert stats is not None
        assert stats.subtrees_repacked == 1
        assert repacker.steps == 1
        assert locks.stats()["held"] == 0  # lock dropped after the step
        # One bounded step need not cross the threshold, but repeated
        # steps must converge above it.
        for _ in range(40):
            if repacker.step() is None:
                break
        assert _fill(db) >= min(repacker.fill_threshold, before + 0.01)

    def test_step_returns_none_when_nothing_degraded(self):
        db = Database(buffer_capacity=256)
        db.execute("CREATE TABLE t (key VARCHAR(30), id INT);")
        for i in range(60):
            db.execute(f"INSERT INTO t VALUES ('word{i:04d}', {i});")
        db.execute(
            "CREATE INDEX t_idx ON t USING SP_GiST (key SP_GiST_trie);"
        )
        repacker = AutoRepacker(db, LockManager())
        assert repacker.step() is None
        assert repacker.steps == 0

    def test_step_backs_off_when_table_is_locked(self):
        db = _degraded_db()
        locks = LockManager()
        repacker = AutoRepacker(db, locks, lock_timeout=0.01)
        reader = LockOwner("session-1", 1)
        locks.acquire(reader, table_key("t"), LockMode.SHARED)
        try:
            assert repacker.step() is None  # skipped, not blocked
            assert repacker.skips == 1
            assert repacker.steps == 0
        finally:
            locks.release_all(reader)
        assert repacker.step() is not None  # proceeds once the reader left

    def test_repacker_is_the_preferred_deadlock_victim(self):
        # The background repacker's birth stamp is far above any session's,
        # so it can never doom a real transaction on its behalf.
        from repro.server.repack import _REPACK_BIRTH

        assert _REPACK_BIRTH > 1 << 40

    def test_queries_unchanged_after_steps(self):
        db = _degraded_db()
        repacker = AutoRepacker(db, LockManager())
        before = db.execute("SELECT key FROM t WHERE key #= 'word';")
        for _ in range(10):
            if repacker.step() is None:
                break
        assert db.execute("SELECT key FROM t WHERE key #= 'word';") == before


class TestDaemon:
    def test_daemon_repacks_in_background(self):
        db = _degraded_db()
        engine_mutex = threading.RLock()
        with AutoRepacker(
            db, LockManager(), engine_mutex, interval=0.005
        ) as repacker:
            deadline = time.monotonic() + 10.0
            while repacker.steps == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert repacker.steps > 0
        assert _fill(db) > 0.0
        # Stopped: no further steps accrue.
        steps = repacker.steps
        time.sleep(0.05)
        assert repacker.steps == steps


class TestClassification:
    def test_repack_takes_exclusive_on_owning_table(self):
        db = _degraded_db()
        assert _classify("REPACK INDEX t_idx;", db) == [
            (table_key("t"), LockMode.EXCLUSIVE)
        ]

    def test_repack_unknown_index_locks_nothing(self):
        db = _degraded_db()
        assert _classify("REPACK INDEX nope;", db) == []
        assert _classify("REPACK INDEX t_idx;", None) == []

    def test_declare_cursor_takes_shared_via_inner_select(self):
        assert _classify("DECLARE c CURSOR FOR SELECT * FROM t;") == [
            (table_key("t"), LockMode.SHARED)
        ]

    def test_fetch_and_close_lock_nothing(self):
        assert _classify("FETCH 10 FROM c;") == []
        assert _classify("FETCH ALL FROM c;") == []
        assert _classify("CLOSE c;") == []


class TestPerWaiterWakeups:
    def _park_two_waiters(self, manager: LockManager):
        """Two holders, two parked waiters on distinct keys."""
        holder_a = LockOwner("hold-a", 1)
        holder_b = LockOwner("hold-b", 2)
        manager.acquire(holder_a, "k1", LockMode.EXCLUSIVE)
        manager.acquire(holder_b, "k2", LockMode.EXCLUSIVE)
        done: dict[str, bool] = {}

        def wait_on(key: str, name: str, birth: int) -> None:
            owner = LockOwner(name, birth)
            manager.acquire(owner, key, LockMode.EXCLUSIVE)
            done[name] = True
            manager.release_all(owner)

        threads = [
            threading.Thread(
                target=wait_on, args=("k1", "wait-1", 3), daemon=True
            ),
            threading.Thread(
                target=wait_on, args=("k2", "wait-2", 4), daemon=True
            ),
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 5.0
        while (
            manager.stats()["waiters"] < 2 and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        assert manager.stats()["waiters"] == 2
        return holder_a, holder_b, threads, done

    def test_release_wakes_only_the_affected_waiter(self):
        manager = LockManager()
        holder_a, holder_b, threads, done = self._park_two_waiters(manager)
        manager.release_all(holder_a)
        threads[0].join(timeout=5.0)
        assert done.get("wait-1") is True
        time.sleep(0.05)  # give a stray wakeup time to show up
        # Only k1's waiter ran; k2's waiter never left wait().
        assert manager.stats()["wakeups"] == 1
        assert done.get("wait-2") is None
        manager.release_all(holder_b)
        threads[1].join(timeout=5.0)
        assert manager.stats()["wakeups"] == 2

    def test_broadcast_mode_wakes_the_herd(self):
        manager = LockManager(broadcast=True)
        holder_a, holder_b, threads, done = self._park_two_waiters(manager)
        manager.release_all(holder_a)
        threads[0].join(timeout=5.0)
        deadline = time.monotonic() + 5.0
        # notify_all also wakes k2's waiter, which re-checks and re-sleeps.
        while (
            manager.stats()["wakeups"] < 2 and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        assert manager.stats()["wakeups"] >= 2
        assert done.get("wait-2") is None  # woken, but not granted
        manager.release_all(holder_b)
        threads[1].join(timeout=5.0)

    def test_stats_expose_wakeups(self):
        manager = LockManager()
        assert manager.stats()["wakeups"] == 0
