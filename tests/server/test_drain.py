"""Graceful drain: refuse -> grace -> abort, with goodbyes on the wire."""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.engine.sql import Database
from repro.errors import ServerDrainingError
from repro.server.manager import DedupCache, SessionManager
from repro.server.net import SQLClient, SQLServer
from repro.settings import SETTINGS


def make_stack(**settings_overrides):
    db = Database()
    db.execute("CREATE TABLE t (key VARCHAR(20), id INT);")
    db.execute("INSERT INTO t VALUES ('alpha', 1);")
    settings = SETTINGS.replace(
        worker_threads=2, drain_timeout=0.5, **settings_overrides)
    dedup = DedupCache(64)
    manager = SessionManager(db, settings=settings, dedup=dedup)
    server = SQLServer(manager).start()
    return db, manager, server, dedup


class TestManagerDrain:
    def test_drain_reports_finished_and_aborted(self) -> None:
        db, manager, server, _ = make_stack()
        try:
            session = manager.connect("c1")
            manager.execute(session, "INSERT INTO t VALUES ('pre', 2);")
            stats = server.drain(timeout=0.5)
            assert set(stats) == {"finished", "aborted"}
            assert stats["aborted"] >= 0
        finally:
            manager.stop()

    def test_connect_refused_while_draining(self) -> None:
        db, manager, server, _ = make_stack()
        try:
            server.drain(timeout=0.2)
            with pytest.raises(ServerDrainingError):
                manager.connect("late")
        finally:
            manager.stop()

    def test_open_transaction_counted_aborted_and_rolled_back(self) -> None:
        db, manager, server, _ = make_stack()
        try:
            session = manager.connect("txn")
            manager.execute(session, "BEGIN")
            manager.execute(session, "INSERT INTO t VALUES ('open', 3);")
            stats = server.drain(timeout=0.3)
            assert stats["aborted"] >= 1
            # The uncommitted insert must not survive the drain.
            assert db.execute("SELECT * FROM t WHERE key = 'open';") == []
        finally:
            manager.stop()

    def test_drain_releases_keyed_reservations_for_queued_statements(
        self,
    ) -> None:
        # A statement aborted before running never applied: its dedup
        # reservation must be released so a retry elsewhere can run.
        db, manager, server, dedup = make_stack()
        try:
            session = manager.connect("keyed")
            pending = manager.submit(
                session, "INSERT INTO t VALUES ('k', 4);", key="drain-key")
            pending.wait(timeout=5)
            server.drain(timeout=0.2)
            # Completed key stays recorded; an *unrun* key would be gone.
            assert dedup.lookup("drain-key") is not None
        finally:
            manager.stop()


class TestWireDrain:
    def test_idle_connection_gets_close_frame(self) -> None:
        db, manager, server, _ = make_stack()
        try:
            peer = socket.create_connection(server.address, timeout=5.0)
            reader = peer.makefile("rb")
            # Let the handler reach its blocking readline before draining.
            done = threading.Event()

            def drain() -> None:
                server.drain(timeout=0.3)
                done.set()

            thread = threading.Thread(target=drain)
            thread.start()
            frame = json.loads(reader.readline().decode())
            assert frame["ok"] is False
            assert frame["error"] == "ServerDrainingError"
            assert frame.get("close") is True
            assert reader.readline() == b""  # orderly close after goodbye
            thread.join(timeout=5)
            assert done.is_set()
            peer.close()
        finally:
            manager.stop()

    def test_client_marks_connection_closed_on_drain_frame(self) -> None:
        db, manager, server, _ = make_stack()
        try:
            host, port = server.address
            client = SQLClient(host, port)
            client.execute("SELECT * FROM t WHERE key = 'alpha';")
            thread = threading.Thread(target=server.drain, args=(0.3,))
            thread.start()
            # The goodbye either arrives as a close frame (the clean path,
            # setting server_closed) or the socket dies first with an RST
            # (ConnectionLostError) — both are typed, retryable signals.
            from repro.errors import ConnectionLostError

            with pytest.raises((ServerDrainingError, ConnectionLostError)) as exc:
                for _ in range(500):
                    client.execute("SELECT * FROM t;")
            if isinstance(exc.value, ServerDrainingError):
                assert client.server_closed
            thread.join(timeout=5)
            client.close()
        finally:
            manager.stop()

    def test_connect_after_drain_is_refused(self) -> None:
        db, manager, server, _ = make_stack()
        try:
            address = server.address
            server.drain(timeout=0.2)
            with pytest.raises(OSError):
                socket.create_connection(address, timeout=0.5)
        finally:
            manager.stop()

    def test_dedup_survives_drain_into_successor(self) -> None:
        db, manager, server, dedup = make_stack()
        try:
            host, port = server.address
            with SQLClient(host, port) as client:
                client.execute(
                    "INSERT INTO t VALUES ('sticky', 5);", key="restart-key")
            server.drain(timeout=0.3)
            manager.stop()
            # Successor shares the dedup cache: the resend dedups.
            manager = SessionManager(
                db, settings=SETTINGS.replace(worker_threads=2), dedup=dedup)
            server = SQLServer(manager).start()
            host, port = server.address
            with SQLClient(host, port) as client:
                client.execute(
                    "INSERT INTO t VALUES ('sticky', 5);", key="restart-key")
            rows = db.execute("SELECT * FROM t WHERE key = 'sticky';")
            assert len(rows) == 1
            server.stop()
        finally:
            manager.stop()
