"""TCP protocol tests: round trips, typed error re-raise, session-per-conn."""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine.sql import Database
from repro.errors import LockTimeoutError, SQLError, TxnAbortedError
from repro.server.manager import SessionManager
from repro.server.net import SQLClient, SQLServer
from repro.settings import SETTINGS


@pytest.fixture
def server():
    db = Database()
    db.execute("CREATE TABLE t (key VARCHAR(20), id INT);")
    db.execute("CREATE INDEX t_idx ON t USING SP_GiST (key SP_GiST_trie);")
    db.execute("INSERT INTO t VALUES ('alpha', 1), ('beta', 2);")
    settings = SETTINGS.replace(
        worker_threads=4, lock_timeout=0.5, statement_timeout=5.0
    )
    manager = SessionManager(db, settings=settings)
    with SQLServer(manager) as srv:
        yield srv
    manager.stop()


def _client(server) -> SQLClient:
    host, port = server.address
    return SQLClient(host, port)


class TestRoundTrip:
    def test_select_and_dml(self, server):
        with _client(server) as client:
            assert client.execute("SELECT * FROM t WHERE id = 1;") == [("alpha", 1)]
            assert client.execute("INSERT INTO t VALUES ('gamma', 3);") == "INSERT 0 1"
            rows = client.execute("SELECT * FROM t WHERE key = 'gamma';")
            assert rows == [("gamma", 3)]

    def test_status_strings(self, server):
        with _client(server) as client:
            assert client.execute("BEGIN;") == "BEGIN"
            assert client.execute("COMMIT;") == "COMMIT"

    def test_typed_sql_error(self, server):
        with _client(server) as client:
            with pytest.raises(SQLError):
                client.execute("SELECT * FROM nowhere;")

    def test_aborted_block_error_crosses_the_wire(self, server):
        with _client(server) as client:
            client.execute("BEGIN;")
            with pytest.raises(SQLError):
                client.execute("SELECT * FROM nowhere;")
            with pytest.raises(TxnAbortedError, match="current transaction is aborted"):
                client.execute("SELECT * FROM t;")
            assert client.execute("COMMIT;") == "ROLLBACK"

    def test_lock_timeout_crosses_the_wire(self, server):
        with _client(server) as holder, _client(server) as waiter:
            holder.execute("BEGIN;")
            holder.execute("UPDATE t SET key = 'held' WHERE id = 1;")
            with pytest.raises(LockTimeoutError):
                waiter.execute("UPDATE t SET key = 'x' WHERE id = 1;")
            holder.execute("ROLLBACK;")


class TestSessionPerConnection:
    def test_connections_are_isolated_transactions(self, server):
        with _client(server) as a, _client(server) as b:
            a.execute("BEGIN;")
            a.execute("INSERT INTO t VALUES ('uncommitted', 50);")
            # b's snapshot must not see a's in-flight insert.
            assert b.execute("SELECT * FROM t WHERE id = 50;") == []
            a.execute("COMMIT;")
            assert b.execute("SELECT * FROM t WHERE id = 50;") == [
                ("uncommitted", 50)
            ]

    def test_disconnect_rolls_back_and_releases(self, server):
        a = _client(server)
        a.execute("BEGIN;")
        a.execute("UPDATE t SET key = 'locked' WHERE id = 1;")
        a.close()  # drops the connection: rollback + lock release
        deadline = time.monotonic() + 5
        with _client(server) as b:
            while time.monotonic() < deadline:
                try:
                    b.execute("UPDATE t SET key = 'won' WHERE id = 1;")
                    break
                except LockTimeoutError:
                    continue
            else:
                pytest.fail("disconnect did not release the row lock")
            assert b.execute("SELECT * FROM t WHERE id = 1;") == [("won", 1)]

    def test_concurrent_clients(self, server):
        def insert_batch(base):
            with _client(server) as client:
                for i in range(5):
                    client.execute(
                        f"INSERT INTO t VALUES ('c{base + i:03d}', {base + i});"
                    )

        threads = [
            threading.Thread(target=insert_batch, args=(100 + j * 10,))
            for j in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        with _client(server) as client:
            rows = client.execute("SELECT * FROM t WHERE key >= 'c';")
            assert len(rows) == 20
