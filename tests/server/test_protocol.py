"""Framing hardening: misbehaving raw sockets against the line protocol.

Satellite of PR 9: lines over ``max_message_bytes``, partial frames
(mid-frame EOF), and malformed JSON request objects must surface as a
typed :class:`ProtocolError` — and a partial statement must NEVER
execute — instead of hanging the handler or leaking a json traceback.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.engine.sql import Database
from repro.server.manager import SessionManager
from repro.server.net import SQLClient, SQLServer
from repro.settings import SETTINGS

LIMIT = 4096  # small max_message_bytes so oversize tests stay cheap


@pytest.fixture
def stack():
    db = Database()
    db.execute("CREATE TABLE t (key VARCHAR(20), id INT);")
    db.execute("INSERT INTO t VALUES ('alpha', 1);")
    settings = SETTINGS.replace(worker_threads=2, max_message_bytes=LIMIT)
    manager = SessionManager(db, settings=settings)
    with SQLServer(manager) as srv:
        yield srv, db
    manager.stop()


class RawSocket:
    """A deliberately misbehaving peer: sends bytes, reads JSON lines."""

    def __init__(self, server: SQLServer) -> None:
        self.sock = socket.create_connection(server.address, timeout=5.0)
        self.file = self.sock.makefile("rwb")

    def send(self, data: bytes) -> None:
        self.file.write(data)
        self.file.flush()

    def recv_frame(self) -> dict:
        raw = self.file.readline()
        assert raw.endswith(b"\n"), f"truncated server frame: {raw!r}"
        return json.loads(raw.decode())

    def eof(self) -> bool:
        return self.file.readline() == b""

    def close(self) -> None:
        try:
            self.file.close()
        except OSError:
            pass
        self.sock.close()


class TestOversizedFrames:
    def test_oversized_line_refused_with_close_frame(self, stack) -> None:
        server, _ = stack
        peer = RawSocket(server)
        try:
            peer.send(b"SELECT '" + b"x" * (LIMIT + 100) + b"';\n")
            frame = peer.recv_frame()
            assert frame["ok"] is False
            assert frame["error"] == "ProtocolError"
            assert "max_message_bytes" in frame["message"]
            assert frame.get("close") is True
            assert peer.eof()  # server hung up after the goodbye
        finally:
            peer.close()


class TestPartialFrames:
    def test_mid_frame_eof_never_executes(self, stack) -> None:
        server, db = stack
        peer = RawSocket(server)
        try:
            # Die mid-line: no trailing newline, then shut down the
            # write side so the server sees EOF inside the frame.
            peer.send(b"INSERT INTO t VALUES ('partial', 9)")
            peer.sock.shutdown(socket.SHUT_WR)
            frame = peer.recv_frame()
            assert frame["ok"] is False
            assert frame["error"] == "ProtocolError"
            assert "partial" in frame["message"]
            assert frame.get("close") is True
        finally:
            peer.close()
        # The half-received statement must not have run.
        assert db.execute("SELECT * FROM t WHERE key = 'partial';") == []


class TestMalformedJsonFrames:
    @pytest.mark.parametrize(
        "line",
        [
            b'{"sql": "SELECT 1;"\n',        # truncated JSON
            b"{}\n",                          # missing sql
            b'{"sql": 42}\n',                 # sql not a string
            b'{"sql": "   "}\n',              # blank sql
            b'{"sql": "SELECT 1;", "key": 7}\n',        # key not a string
            b'{"sql": "SELECT 1;", "timeout": "soon"}\n',  # timeout not a number
        ],
    )
    def test_bad_frame_reports_and_keeps_serving(self, stack, line) -> None:
        server, _ = stack
        peer = RawSocket(server)
        try:
            peer.send(line)
            frame = peer.recv_frame()
            assert frame["ok"] is False
            assert frame["error"] == "ProtocolError"
            # The line framed correctly, so the connection stays usable.
            peer.send(b"SELECT * FROM t WHERE key = 'alpha';\n")
            frame = peer.recv_frame()
            assert frame["ok"] is True
            assert frame["rows"] == [["alpha", 1]]
        finally:
            peer.close()


class TestWellFormedFrames:
    def test_ping_pong(self, stack) -> None:
        server, _ = stack
        peer = RawSocket(server)
        try:
            peer.send(b'{"op": "ping"}\n')
            assert peer.recv_frame() == {"ok": True, "pong": True}
        finally:
            peer.close()

    def test_keyed_json_frame_round_trip(self, stack) -> None:
        server, _ = stack
        peer = RawSocket(server)
        try:
            req = {"sql": "INSERT INTO t VALUES ('keyed', 2);", "key": "rk-1"}
            peer.send(json.dumps(req).encode() + b"\n")
            assert peer.recv_frame() == {"ok": True, "status": "INSERT 0 1"}
            # Resend: dedup answers without applying again.
            peer.send(json.dumps(req).encode() + b"\n")
            assert peer.recv_frame() == {"ok": True, "status": "INSERT 0 1"}
            peer.send(b"SELECT * FROM t WHERE key = 'keyed';\n")
            assert peer.recv_frame()["rows"] == [["keyed", 2]]
        finally:
            peer.close()


class TestClientSideHardening:
    def test_client_raises_protocol_error_on_oversized_response(
        self, stack
    ) -> None:
        server, db = stack
        rows = ", ".join(f"('bulk{i:04d}', {i})" for i in range(20))
        db.execute(f"INSERT INTO t VALUES {rows};")
        host, port = server.address
        with SQLClient(host, port) as client:
            client.max_message_bytes = 64  # shrink the client's own limit
            from repro.errors import ProtocolError

            with pytest.raises(ProtocolError):
                client.execute("SELECT * FROM t;")  # 21-row frame >> 64 bytes

    def test_client_connection_lost_on_abrupt_server_close(self, stack) -> None:
        server, _ = stack
        host, port = server.address
        client = SQLClient(host, port)
        try:
            client._sock.shutdown(socket.SHUT_RDWR)
            from repro.errors import ConnectionLostError

            with pytest.raises(ConnectionLostError):
                client.execute("SELECT * FROM t;")
        finally:
            client.close()
