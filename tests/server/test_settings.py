"""Settings.from_env: REPRO_* parsing and the ConfigError matrix."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.settings import SETTINGS, Settings


class TestOverrides:
    def test_no_env_gives_defaults(self) -> None:
        assert Settings.from_env({}) == Settings()

    def test_int_and_float_fields_parse(self) -> None:
        settings = Settings.from_env({
            "REPRO_WORKER_THREADS": "2",
            "REPRO_LOCK_TIMEOUT": "0.25",
            "REPRO_MAX_MESSAGE_BYTES": "65536",
            "REPRO_CLIENT_BACKOFF_BASE": "0.001",
        })
        assert settings.worker_threads == 2
        assert settings.lock_timeout == 0.25
        assert settings.max_message_bytes == 65536
        assert settings.client_backoff_base == 0.001

    def test_unknown_variables_ignored(self) -> None:
        assert Settings.from_env({"REPRO_NO_SUCH_KNOB": "banana"}) == Settings()

    def test_zero_allowed_where_it_means_disabled(self) -> None:
        assert Settings.from_env({"REPRO_LOCK_TIMEOUT": "0"}).lock_timeout == 0


class TestConfigErrors:
    @pytest.mark.parametrize(
        ("var", "raw"),
        [
            ("REPRO_WORKER_THREADS", "four"),       # not an integer
            ("REPRO_WORKER_THREADS", "2.5"),        # int field, float value
            ("REPRO_LOCK_TIMEOUT", "fast"),         # not a number
            ("REPRO_MAX_QUEUE", ""),                # empty string
            ("REPRO_DEDUP_CACHE_SIZE", "1e3x"),     # trailing garbage
        ],
    )
    def test_malformed_value_raises_naming_the_variable(
        self, var: str, raw: str
    ) -> None:
        with pytest.raises(ConfigError) as excinfo:
            Settings.from_env({var: raw})
        assert var in str(excinfo.value)
        assert repr(raw) in str(excinfo.value)

    @pytest.mark.parametrize(
        ("var", "raw"),
        [
            ("REPRO_WORKER_THREADS", "0"),          # must be positive
            ("REPRO_MAX_QUEUE", "-1"),
            ("REPRO_CLIENT_POOL_SIZE", "0"),
            ("REPRO_MAX_MESSAGE_BYTES", "-4096"),
            ("REPRO_BREAKER_FAILURE_THRESHOLD", "0"),
        ],
    )
    def test_nonpositive_bound_raises(self, var: str, raw: str) -> None:
        with pytest.raises(ConfigError) as excinfo:
            Settings.from_env({var: raw})
        assert var in str(excinfo.value)

    @pytest.mark.parametrize(
        ("var", "raw"),
        [
            ("REPRO_LOCK_TIMEOUT", "-0.5"),         # timeouts may be 0, not < 0
            ("REPRO_CLIENT_BACKOFF_BASE", "-1"),
            ("REPRO_DRAIN_TIMEOUT", "-2"),
        ],
    )
    def test_negative_nonnegative_field_raises(self, var: str, raw: str) -> None:
        with pytest.raises(ConfigError) as excinfo:
            Settings.from_env({var: raw})
        assert var in str(excinfo.value)


class TestProcessDefaults:
    def test_module_singleton_is_a_settings(self) -> None:
        assert isinstance(SETTINGS, Settings)

    def test_replace_does_not_mutate_the_singleton(self) -> None:
        before = SETTINGS.lock_timeout
        tightened = SETTINGS.replace(lock_timeout=before + 1.0)
        assert tightened.lock_timeout == before + 1.0
        assert SETTINGS.lock_timeout == before
        assert tightened is not SETTINGS
