"""Exactly-once server machinery: DedupCache, keyed statements, shedding
under failover.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine.sql import Database
from repro.errors import ReplicationError, ReproError, ServerOverloadedError
from repro.server.bridge import ReplicatedDatabase
from repro.server.manager import DedupCache, PendingStatement, SessionManager
from repro.replication.replicaset import ReplicaSet
from repro.settings import SETTINGS


def _db() -> Database:
    db = Database()
    db.execute("CREATE TABLE t (key VARCHAR(20), id INT);")
    db.execute("INSERT INTO t VALUES ('alpha', 1);")
    return db


def _pending(sql: str = "INSERT INTO t VALUES ('x', 1);") -> PendingStatement:
    return PendingStatement(session=None, sql=sql)


class TestDedupCacheUnit:
    def test_fresh_key_reserves(self) -> None:
        cache = DedupCache(8)
        assert cache.begin("k1", _pending()) is None

    def test_inflight_duplicate_joins_the_original(self) -> None:
        cache = DedupCache(8)
        original = _pending()
        cache.begin("k1", original)
        joined = cache.begin("k1", _pending())
        assert joined is original
        assert cache.stats["joined"] == 1

    def test_completed_key_replays_the_outcome(self) -> None:
        cache = DedupCache(8)
        cache.begin("k1", _pending())
        cache.finish("k1", ("ok", "INSERT 0 1"))
        assert cache.begin("k1", _pending()) == ("ok", "INSERT 0 1")
        assert cache.stats["hits"] == 1

    def test_release_forgets_the_reservation(self) -> None:
        cache = DedupCache(8)
        cache.begin("k1", _pending())
        cache.release("k1")
        assert cache.begin("k1", _pending()) is None  # fresh again
        assert cache.lookup("k1") is None

    def test_lru_eviction_is_bounded(self) -> None:
        cache = DedupCache(2)
        for i in range(3):
            key = f"k{i}"
            cache.begin(key, _pending())
            cache.finish(key, ("ok", i))
        assert len(cache) == 2
        assert cache.lookup("k0") is None  # oldest evicted
        assert cache.lookup("k2") == ("ok", 2)
        assert cache.stats["evicted"] == 1

    def test_recent_hit_refreshes_lru_position(self) -> None:
        cache = DedupCache(2)
        for i in range(2):
            cache.begin(f"k{i}", _pending())
            cache.finish(f"k{i}", ("ok", i))
        cache.begin("k0", _pending())  # hit refreshes k0
        cache.begin("k2", _pending())
        cache.finish("k2", ("ok", 2))
        assert cache.lookup("k0") == ("ok", 0)  # survived
        assert cache.lookup("k1") is None       # k1 paid for k2

    def test_indoubt_outcome_round_trips(self) -> None:
        cache = DedupCache(8)
        cache.begin("k1", _pending())
        cache.finish("k1", ("indoubt", "quorum unreachable"))
        assert cache.begin("k1", _pending()) == ("indoubt", "quorum unreachable")


class TestManagerExactlyOnce:
    def test_keyed_resend_applies_once(self) -> None:
        with SessionManager(_db(), settings=SETTINGS.replace(worker_threads=2)) as mgr:
            s = mgr.connect()
            first = mgr.execute(
                s, "INSERT INTO t VALUES ('once', 2);", key="mk-1")
            again = mgr.execute(
                s, "INSERT INTO t VALUES ('once', 2);", key="mk-1")
            assert first == again == "INSERT 0 1"
            rows = mgr.execute(s, "SELECT * FROM t WHERE key = 'once';")
            assert len(rows) == 1
            assert mgr.stats["dedup_hits"] == 1

    def test_poisoned_key_reraises_instead_of_reexecuting(self) -> None:
        dedup = DedupCache(8)
        dedup.begin("poisoned", _pending())
        dedup.finish("poisoned", ("indoubt", "quorum unreachable"))
        with SessionManager(
            _db(), settings=SETTINGS.replace(worker_threads=2), dedup=dedup
        ) as mgr:
            s = mgr.connect()
            with pytest.raises(ReplicationError):
                mgr.execute(
                    s, "INSERT INTO t VALUES ('never', 3);", key="poisoned")
            # Never executed: the row is absent.
            assert mgr.execute(s, "SELECT * FROM t WHERE key = 'never';") == []

    def test_failed_keyed_statement_releases_the_key(self) -> None:
        dedup = DedupCache(8)
        with SessionManager(
            _db(), settings=SETTINGS.replace(worker_threads=2), dedup=dedup
        ) as mgr:
            s = mgr.connect()
            with pytest.raises(ReproError):
                mgr.execute(s, "SELECT * FROM no_such;", key="failing")
            # A failed attempt never applied: the key must be reusable.
            assert dedup.lookup("failing") is None
            assert mgr.execute(
                s, "INSERT INTO t VALUES ('retry', 4);", key="failing"
            ) == "INSERT 0 1"

    def test_keyed_reads_never_shed(self) -> None:
        def reader(sql):  # pragma: no cover - must not be called
            raise AssertionError("keyed statement was shed")

        settings = SETTINGS.replace(
            max_queue=64, worker_threads=2, shed_threshold=0)
        with SessionManager(
            _db(), settings=settings, shed_reader=reader
        ) as mgr:
            s = mgr.connect()
            # shed_threshold=0 sheds every eligible read — but a keyed
            # statement must take the dedup path on the primary.
            rows = mgr.execute(
                s, "SELECT * FROM t WHERE id = 1;", key="keyed-read")
            assert rows == [("alpha", 1)]
            assert mgr.stats["shed"] == 0


class TestShedUnderFailover:
    """shed_threshold standby reads keep answering across a failover."""

    def test_standby_reads_survive_primary_crash(self, tmp_path) -> None:
        settings = SETTINGS.replace(
            worker_threads=2, max_queue=64, shed_threshold=0,
            statement_timeout=10.0)
        rs = ReplicaSet(
            str(tmp_path), kind="trie", replicas=2, quorum=1, fsync=False)
        rdb = ReplicatedDatabase(rs)
        mgr = SessionManager(rdb, settings=settings)

        def locked_shed(sql):
            with mgr.engine_mutex:
                return rdb.standby_reader(sql)

        mgr.shed_reader = locked_shed
        try:
            s = mgr.connect("writer")
            mgr.execute(s, "INSERT INTO data VALUES ('pivot', 1);", key="w-1")
            with mgr.engine_mutex:
                rs.tick()  # let the standby apply the shipped commit

            read_sql = "SELECT * FROM data WHERE key = 'pivot';"
            assert mgr.execute(s, read_sql) == [("pivot", 1)]
            assert mgr.stats["shed"] >= 1

            # Readers hammer the shed path while the primary dies and a
            # standby is promoted underneath them.
            errors: list[BaseException] = []
            results: list[int] = []
            stop = threading.Event()

            def reader_loop() -> None:
                r = mgr.connect()
                while not stop.is_set():
                    try:
                        rows = mgr.execute(r, read_sql)
                        results.append(len(rows))
                    except ReproError as exc:
                        errors.append(exc)  # typed, retryable — acceptable
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)
                        stop.set()
                        raise

            threads = [threading.Thread(target=reader_loop) for _ in range(2)]
            for thread in threads:
                thread.start()
            with mgr.engine_mutex:
                rs.primary.crash()
            for _ in range(12):
                with mgr.engine_mutex:
                    rs.tick()
            stop.set()
            for thread in threads:
                thread.join(timeout=10)

            # Every successful read through the window saw the row, and
            # only typed errors (never a raw crash) escaped.
            assert results and all(n == 1 for n in results)
            assert all(isinstance(e, ReproError) for e in errors)
            # After promotion the shed path still answers.
            assert mgr.execute(s, read_sql) == [("pivot", 1)]
        finally:
            mgr.stop()


class TestBackpressureRecovery:
    def test_rejected_keyed_write_is_retryable(self) -> None:
        # An admission rejection must release the dedup reservation so
        # the client's retry (same key) is not treated as a duplicate.
        settings = SETTINGS.replace(
            max_queue=1, worker_threads=1, shed_threshold=1000)
        dedup = DedupCache(8)
        with SessionManager(_db(), settings=settings, dedup=dedup) as mgr:
            a, b = mgr.connect(), mgr.connect()
            import time

            with mgr.engine_mutex:
                first = mgr.submit(a, "SELECT * FROM t;")
                time.sleep(0.1)  # worker picks it up, blocks on the mutex
                held = mgr.submit(b, "SELECT * FROM t;")
                with pytest.raises(ServerOverloadedError):
                    mgr.submit(
                        b, "INSERT INTO t VALUES ('bp', 5);", key="bp-key")
                assert dedup.lookup("bp-key") is None
            first.wait(timeout=10)
            held.wait(timeout=10)
            # The retry with the same key succeeds once load drops.
            assert mgr.execute(
                b, "INSERT INTO t VALUES ('bp', 5);", key="bp-key"
            ) == "INSERT 0 1"
            rows = mgr.execute(b, "SELECT * FROM t WHERE key = 'bp';")
            assert len(rows) == 1
