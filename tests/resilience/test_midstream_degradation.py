"""Mid-stream index death: the fallback must not duplicate emitted rows.

The executor's graceful degradation catches corruption *after* an index
scan has already yielded rows. The seq-scan (or sort-scan) fallback must
skip exactly the TIDs already produced — no duplicates, no gaps. These
tests force the failure deterministically with a stub index that yields
``k`` genuine TIDs and then dies, and once more with real page corruption
on the NN path.
"""

import collections

import pytest

from repro.engine.catalog import default_catalog
from repro.engine.cost import seqscan_cost
from repro.engine.executor import execute_plan
from repro.engine.planner import (
    IndexScanPlan,
    NNIndexScanPlan,
    Predicate,
    plan_query,
)
from repro.engine.table import Column, Table
from repro.errors import IndexCorruptionError
from repro.geometry import Point
from repro.geometry.distance import euclidean
from repro.resilience import INCIDENTS, corrupt_page
from repro.workloads import random_points, random_words


@pytest.fixture(autouse=True)
def clean_incident_log():
    INCIDENTS.reset()
    yield
    INCIDENTS.reset()


@pytest.fixture
def word_table(buffer):
    table = Table(
        "words",
        [Column("name", "varchar"), Column("id", "int")],
        buffer,
        default_catalog(),
    )
    for i, w in enumerate(random_words(1000, seed=71)):
        table.insert((w, i))
    table.analyze()
    return table


@pytest.fixture
def point_table(buffer):
    table = Table(
        "pts",
        [Column("p", "point"), Column("id", "int")],
        buffer,
        default_catalog(),
    )
    for i, p in enumerate(random_points(1000, seed=72)):
        table.insert((p, i))
    table.analyze()
    return table


class _DyingIndex:
    """Stub index: yields ``k`` genuine TIDs, then raises corruption."""

    def __init__(self, name, tids, k):
        self.name = name
        self.quarantined = False
        self._tids = tids
        self._k = k

    def scan(self, op, operand):
        return self._emit()

    def nn_scan(self, query):
        return self._emit()

    def _emit(self):
        for tid in self._tids[: self._k]:
            yield tid
        raise IndexCorruptionError(self.name, "page torn mid-scan")


class TestIndexScanMidStreamDedup:
    def _plan_with_dying_index(self, table, predicate, k):
        position = table.column_index(predicate.column)
        matching = [
            tid for tid, row in table.scan()
            if row[position] == predicate.operand
        ]
        assert len(matching) > k, "need the index to die mid-stream"
        index = _DyingIndex("dying", matching, k)
        cost = seqscan_cost(table.heap_pages, len(table))
        return IndexScanPlan(table, predicate, cost, index=index)

    def test_no_duplicates_after_k_rows(self, word_table):
        # Pick the most frequent word so several TIDs match.
        counts = collections.Counter(r[0] for _t, r in word_table.scan())
        target, n = counts.most_common(1)[0]
        assert n >= 2
        predicate = Predicate("name", "=", target)
        plan = self._plan_with_dying_index(word_table, predicate, k=1)

        rows = list(execute_plan(plan))
        expected = [r for _t, r in word_table.scan() if r[0] == target]
        assert collections.Counter(rows) == collections.Counter(expected)
        assert INCIDENTS.of_kind("index-scan-degraded")
        assert plan.index.quarantined

    def test_zero_rows_before_death_still_complete(self, word_table):
        counts = collections.Counter(r[0] for _t, r in word_table.scan())
        target, n = counts.most_common(1)[0]
        predicate = Predicate("name", "=", target)
        plan = self._plan_with_dying_index(word_table, predicate, k=0)
        rows = list(execute_plan(plan))
        expected = [r for _t, r in word_table.scan() if r[0] == target]
        assert collections.Counter(rows) == collections.Counter(expected)


class TestNNMidStreamDedup:
    def _nn_plan_with_dying_index(self, table, query, k):
        ranked = sorted(
            ((euclidean(row[0], query), tid) for tid, row in table.scan()),
            key=lambda item: (item[0], item[1]),
        )
        tids = [tid for _d, tid in ranked]
        index = _DyingIndex("dying-nn", tids, k)
        cost = seqscan_cost(table.heap_pages, len(table))
        return NNIndexScanPlan(
            table, Predicate("p", "@@", query), cost, index=index
        )

    def test_stream_continues_in_distance_order_without_dupes(
        self, point_table
    ):
        query = Point(50, 50)
        plan = self._nn_plan_with_dying_index(point_table, query, k=5)
        rows = list(execute_plan(plan))

        expected = [r for _t, r in point_table.scan()]
        assert collections.Counter(rows) == collections.Counter(expected)
        distances = [euclidean(r[0], query) for r in rows]
        assert distances == sorted(distances)  # order survives the splice
        assert INCIDENTS.of_kind("nn-scan-degraded")
        assert plan.index.quarantined

    def test_real_corruption_on_nn_path(self, point_table):
        point_table.create_index("kd", "p", "SP_GiST", "SP_GiST_kdtree")
        point_table.analyze()
        query = Point(25, 75)
        plan = plan_query(point_table, Predicate("p", "@@", query))
        assert isinstance(plan, NNIndexScanPlan)

        index = point_table.indexes["kd"]
        point_table.buffer.clear()
        for page_id in index.structure.store.page_ids:
            corrupt_page(point_table.buffer.disk, page_id, seed=page_id)

        rows = list(execute_plan(plan))
        expected = [r for _t, r in point_table.scan()]
        assert collections.Counter(rows) == collections.Counter(expected)
        distances = [euclidean(r[0], query) for r in rows]
        assert distances == sorted(distances)
        assert INCIDENTS.count >= 1
        assert index.quarantined
