"""The end-to-end chaos campaign: seeded schedules over a live replica set.

The fast tier runs 25 schedules on every PR (the CI ``chaos-smoke`` job);
the full 200-schedule campaign — the acceptance bar for the replication
subsystem — runs behind the ``slow`` marker. Every schedule asserts, after
healing: zero loss of acknowledged commits, logical equivalence of all
nodes, per-node index/heap agreement, ``spgist_check`` cleanliness, and
failover within the heartbeat-timeout bound.
"""

import json

import pytest

from repro.resilience.chaos import main, run_campaign, run_schedule

FAST_SCHEDULES = 25
FULL_SCHEDULES = 200


def _assert_green(summary):
    assert summary["ok"], "; ".join(
        f"seed {t['seed']}: {t['failures']}" for t in summary["failed"]
    )
    # The campaign must actually have exercised the machinery it verifies.
    assert summary["totals"]["acked_rows"] > 0
    assert summary["totals"]["failovers"] > 0


class TestChaosCampaign:
    def test_fast_campaign_is_green(self):
        _assert_green(run_campaign(FAST_SCHEDULES, base_seed=0))

    @pytest.mark.slow
    def test_full_campaign_is_green(self):
        _assert_green(run_campaign(FULL_SCHEDULES, base_seed=0))

    def test_schedules_are_deterministic(self):
        first = run_schedule(1234)
        second = run_schedule(1234)
        assert first["events"] == second["events"]
        assert first["stats"] == second["stats"]
        assert first["ok"] and second["ok"]

    def test_transcript_carries_the_reproduction_context(self):
        transcript = run_schedule(7)
        assert transcript["seed"] == 7
        assert transcript["kind"] in ("trie", "pquad")
        assert transcript["events"], "a schedule must record its events"
        assert "failures" in transcript and "stats" in transcript
        json.dumps(transcript, default=repr)  # artifact-serializable


class TestChaosCLI:
    def test_cli_green_run_exits_zero(self, capsys):
        assert main(["--schedules", "3", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "all schedules green" in out

    def test_cli_writes_single_schedule_transcript(self, tmp_path):
        out_path = tmp_path / "transcript.json"
        assert main(
            ["--schedules", "1", "--seed", "42", "--transcript", str(out_path)]
        ) == 0
        transcript = json.loads(out_path.read_text())
        assert transcript["seed"] == 42
