"""Crash-safety of online REPACK: kill-anywhere recovery + standby equivalence.

The online repack rewrites index extents through the buffer pool, so its
WAL protocol is the ordinary one — every touched page ships as a full
page image at the next commit. These tests pin the two halves of that
claim:

- a primary killed *mid-repack* (pages rewritten in memory, commit never
  issued) recovers to the last committed layout: no acknowledged row is
  lost, ``spgist_check`` is clean, and index and heap still agree;
- a *committed* repack replicates byte-correctly: after catch-up the
  standby holds the same rows, the same page fill, and a clean structure
  — and a standby promoted after the primary dies post-repack serves the
  re-clustered index.

A seeded mini-campaign also drives the chaos harness's ``repack`` event
(the 0.90–0.95 roll slice) to make sure bounded background steps compose
with crashes, faulty channels, and failover.
"""

import random

import pytest

from repro.replication import ReplicaSet
from repro.resilience.chaos import run_campaign
from repro.resilience.check import spgist_check


def _fresh_set(tmp_path, replicas=2):
    return ReplicaSet(
        str(tmp_path),
        kind="trie",
        replicas=replicas,
        quorum=1,
        heartbeat_timeout=3,
        max_lag=2,
        fsync=False,
    )


def _churn(rs, rows=240, keep_every=3, seed=7):
    """Insert ``rows`` rows, delete all but every ``keep_every``-th key,
    vacuum, and replicate — leaving a fragmented, low-fill index."""
    rng = random.Random(seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    keys = [
        "".join(rng.choice(alphabet) for _ in range(rng.randint(4, 9))) + str(i)
        for i in range(rows)
    ]
    for start in range(0, rows, 16):
        rs.client_write([(key, start + i) for i, key in
                         enumerate(keys[start:start + 16])])
    doomed = {key for i, key in enumerate(keys) if i % keep_every}
    primary = rs.primary
    txn = primary.txn.begin()
    for tid, row in list(primary.table.scan()):
        if row[0] in doomed:
            primary.table.mvcc_delete(tid, txn)
    primary.txn.commit(txn)
    rs.client_vacuum()
    assert rs.catch_up()
    return [key for i, key in enumerate(keys) if i % keep_every == 0]


class TestMidRepackCrash:
    def test_crash_before_commit_recovers_committed_layout(self, tmp_path):
        """Kill-anywhere: an uncommitted repack must vanish on recovery."""
        rs = _fresh_set(tmp_path)
        try:
            survivors = _churn(rs)
            committed_rows = set(rs.primary.rows())
            fill_committed = rs.primary.index.store.fill_factor()

            # Rewrite the whole index in memory, then die without committing.
            stats = rs.primary.repack_index()
            assert stats.nodes_moved > 0
            rs.primary.crash(seed=1234)
            rs.rejoin(rs.primary)
            assert not rs.primary.crashed

            # Recovery lands on the last committed layout, not the torn one.
            assert set(rs.primary.rows()) == committed_rows
            report = spgist_check(rs.primary.index)
            assert report.ok, report.describe()
            assert rs.primary.index.store.fill_factor() == pytest.approx(
                fill_committed, abs=0.05
            )
            equality = rs.primary.index.methods.equality_operator
            for key in survivors[:20]:
                assert list(rs.primary.search(equality, key)), key
            # The cluster keeps working: repack again, commit, replicate.
            rs.client_repack()
            assert rs.catch_up()
            assert set(rs.primary.rows()) == committed_rows
        finally:
            rs.close()

    def test_crash_between_bounded_steps(self, tmp_path):
        """Each committed step is durable; the uncommitted one is not."""
        rs = _fresh_set(tmp_path)
        try:
            _churn(rs)
            committed_rows = set(rs.primary.rows())
            for _ in range(3):  # autovacuum-style bounded steps, committed
                rs.client_repack(max_subtrees=1)
            stepped_fill = rs.primary.index.store.fill_factor()

            rs.primary.repack_index(max_subtrees=1)  # uncommitted step
            rs.primary.crash(seed=99)
            rs.rejoin(rs.primary)

            assert set(rs.primary.rows()) == committed_rows
            assert rs.primary.index.store.fill_factor() == pytest.approx(
                stepped_fill, abs=0.05
            )
            assert spgist_check(rs.primary.index).ok
        finally:
            rs.close()


class TestRepackReplication:
    def test_committed_repack_is_byte_equivalent_on_standby(self, tmp_path):
        rs = _fresh_set(tmp_path)
        try:
            survivors = _churn(rs)
            before = rs.primary.index.store.fill_factor()
            rs.client_repack()
            assert rs.catch_up()
            after = rs.primary.index.store.fill_factor()
            assert after > before

            standby = rs.standbys[0].node
            # Pages replicate as images: the standby's index is the
            # primary's, fill factor and all.
            assert standby.index.store.fill_factor() == pytest.approx(after)
            assert set(standby.rows()) == set(rs.primary.rows())
            assert spgist_check(standby.index).ok
            equality = standby.index.methods.equality_operator
            for key in survivors[:20]:
                assert sorted(standby.search(equality, key), key=repr) == sorted(
                    rs.primary.search(equality, key), key=repr
                ), key
        finally:
            rs.close()

    def test_promoted_standby_serves_the_repacked_index(self, tmp_path):
        rs = _fresh_set(tmp_path)
        try:
            survivors = _churn(rs)
            rs.client_repack()
            assert rs.catch_up()
            expected = set(rs.primary.rows())

            rs.primary.crash(seed=5)
            for _ in range(rs.heartbeat_timeout + 2):
                rs.tick()
            assert not rs.primary.crashed, "failover must elect a standby"

            assert set(rs.primary.rows()) == expected
            assert spgist_check(rs.primary.index).ok
            equality = rs.primary.index.methods.equality_operator
            for key in survivors[:20]:
                assert list(rs.primary.search(equality, key)), key
        finally:
            rs.close()


class TestRepackChaosCampaign:
    def test_campaign_with_repack_events_is_green(self):
        """Seeded schedules now draw ``repack`` events from the roll slice
        0.90–0.95; the invariants (zero acked loss, node equivalence,
        clean spgist_check) must hold with them in the mix."""
        summary = run_campaign(12, base_seed=800)
        assert summary["ok"], "; ".join(
            f"seed {t['seed']}: {t['failures']}" for t in summary["failed"]
        )
