"""Executor graceful degradation: corrupted index → seq scan + quarantine."""

import pytest

from repro.engine.catalog import default_catalog
from repro.engine.executor import execute_plan
from repro.engine.planner import (
    IndexScanPlan,
    Predicate,
    SeqScanPlan,
    plan_query,
)
from repro.engine.table import Column, Table
from repro.resilience import INCIDENTS, corrupt_page
from repro.workloads import random_words


@pytest.fixture(autouse=True)
def clean_incident_log():
    INCIDENTS.reset()
    yield
    INCIDENTS.reset()


@pytest.fixture
def word_table(buffer):
    table = Table(
        "words",
        [Column("name", "varchar"), Column("id", "int")],
        buffer,
        default_catalog(),
    )
    for i, w in enumerate(random_words(2000, seed=61)):
        table.insert((w, i))
    table.create_index("trie", "name", "SP_GiST", "SP_GiST_trie")
    table.analyze()
    return table


def corrupt_index(table: Table, index_name: str) -> None:
    """Flip bits in every node page of the index (heap pages untouched)."""
    index = table.indexes[index_name]
    table.buffer.clear()
    for page_id in index.structure.store.page_ids:
        corrupt_page(table.buffer.disk, page_id, seed=page_id)


class TestDegradation:
    def test_corrupted_scan_falls_back_to_seq_scan(self, word_table):
        target = random_words(2000, seed=61)[7]
        predicate = Predicate("name", "=", target)
        expected = sorted(
            row for _tid, row in word_table.scan() if row[0] == target
        )
        plan = plan_query(word_table, predicate)
        assert isinstance(plan, IndexScanPlan)
        corrupt_index(word_table, "trie")
        rows = sorted(execute_plan(plan))
        assert rows == expected  # complete, correct answer despite the index
        assert INCIDENTS.count == 1
        incident = INCIDENTS.of_kind("index-scan-degraded")[0]
        assert incident.subject == "trie"
        assert word_table.indexes["trie"].quarantined

    def test_quarantined_index_not_planned_again(self, word_table):
        predicate = Predicate("name", "=", "anything")
        plan = plan_query(word_table, predicate)
        assert isinstance(plan, IndexScanPlan)
        corrupt_index(word_table, "trie")
        list(execute_plan(plan))  # triggers the quarantine
        replanned = plan_query(word_table, predicate)
        assert isinstance(replanned, SeqScanPlan)

    def test_planner_quarantines_index_it_cannot_cost(self, word_table):
        # Costing walks the index (page height), so corruption can surface
        # during planning, before any scan exists. The planner must skip
        # the index, not crash the query.
        corrupt_index(word_table, "trie")
        target = random_words(2000, seed=61)[3]
        plan = plan_query(word_table, Predicate("name", "=", target))
        assert isinstance(plan, SeqScanPlan)
        expected = sorted(
            row for _tid, row in word_table.scan() if row[0] == target
        )
        assert sorted(execute_plan(plan)) == expected
        assert INCIDENTS.of_kind("index-cost-degraded")
        assert word_table.indexes["trie"].quarantined

    def test_sql_select_survives_corrupted_index(self, word_table):
        from repro.engine.sql import Database

        db = Database(buffer=word_table.buffer, catalog=word_table.catalog)
        db.tables["words"] = word_table
        target = random_words(2000, seed=61)[11]
        before = db.execute(f"SELECT * FROM words WHERE name = '{target}'")
        corrupt_index(word_table, "trie")
        after = db.execute(f"SELECT * FROM words WHERE name = '{target}'")
        assert sorted(after) == sorted(before)
        assert INCIDENTS.count >= 1

    def test_healthy_scan_records_nothing(self, word_table):
        predicate = Predicate("name", "=", random_words(2000, seed=61)[0])
        plan = plan_query(word_table, predicate)
        list(execute_plan(plan))
        assert INCIDENTS.count == 0
        assert not word_table.indexes["trie"].quarantined
