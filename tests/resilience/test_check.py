"""The amcheck-style SP-GiST verifier (spgist_check)."""

import pytest

from repro.core.node import LeafNode
from repro.errors import IndexCorruptionError
from repro.geometry import Box
from repro.indexes import (
    KDTreeIndex,
    PMRQuadtreeIndex,
    PointQuadtreeIndex,
    SuffixTreeIndex,
    TrieIndex,
)
from repro.resilience import corrupt_page, spgist_check
from repro.storage import BufferPool, DiskManager
from repro.workloads import random_points, random_segments, random_words


def fresh_pool() -> BufferPool:
    return BufferPool(DiskManager(), capacity=128)


def build(kind: str):
    pool = fresh_pool()
    if kind == "trie":
        index = TrieIndex(pool, bucket_size=2)
        items = random_words(300, seed=51)
    elif kind == "suffix":
        index = SuffixTreeIndex(pool, bucket_size=2)
        items = random_words(80, seed=52)
    elif kind == "kdtree":
        index = KDTreeIndex(pool)
        items = random_points(300, seed=53)
    elif kind == "pquad":
        index = PointQuadtreeIndex(pool, bucket_size=2)
        items = random_points(300, seed=54)
    else:  # pmr
        index = PMRQuadtreeIndex(
            pool, Box(0.0, 0.0, 100.0, 100.0), threshold=8
        )
        items = random_segments(150, seed=55)
    for i, item in enumerate(items):
        index.insert(item, i)
    return index


ALL_KINDS = ["trie", "suffix", "kdtree", "pquad", "pmr"]


class TestHealthyIndexes:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_all_five_instantiations_pass(self, kind):
        report = spgist_check(build(kind))
        assert report.ok, report.problems
        assert report.leaf_nodes > 0
        assert report.logical_items > 0

    def test_empty_index_passes(self):
        report = spgist_check(TrieIndex(fresh_pool()))
        assert report.ok

    def test_report_helpers(self):
        index = build("trie")
        report = spgist_check(index)
        report.raise_if_failed()  # no-op when clean
        assert "OK" in report.describe()
        assert index.check().ok  # the SPGiSTIndex.check() convenience

    def test_survives_repack(self):
        index = build("trie")
        index.repack()
        assert spgist_check(index).ok


class TestCorruptionFindings:
    def test_checksum_corruption_is_a_finding_not_a_crash(self):
        index = build("trie")
        pool = index.buffer
        pool.clear()  # push every node page to disk, empty the cache
        corrupt_page(pool.disk, index.store.page_ids[0], seed=3)
        report = spgist_check(index)
        assert not report.ok
        assert any("unreadable" in p for p in report.problems)
        with pytest.raises(IndexCorruptionError):
            report.raise_if_failed()
        assert "PROBLEM" in report.describe()

    def test_item_count_drift_detected(self):
        index = build("trie")
        index._item_count += 3  # simulated lost-update bookkeeping bug
        report = spgist_check(index)
        assert any("len(index)" in p for p in report.problems)

    def test_orphaned_node_detected(self):
        index = build("trie")
        # A live node nothing points at — the amcheck "orphaned page" case.
        index.store.create(LeafNode(items=[("zzz", 999)]))
        report = spgist_check(index)
        assert any("orphaned" in p for p in report.problems)
