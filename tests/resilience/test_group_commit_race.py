"""WAL group-commit torn-tail truncation racing concurrent commit.

The group-commit buffer means a crash can land while one thread's
records sit half-written in the log file (the torn tail) and other
threads are mid-commit. Kill-anywhere recovery must (a) keep every page
whose ``sync()`` returned before the crash, (b) discard the torn tail
as a clean end-of-log rather than an error, and (c) never resurrect an
unsynced write. Parametrized over buffered (group-commit) and unbuffered
WAL modes, with in-flight sessions at the moment of the crash.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.engine.sql import Database
from repro.server.manager import SessionManager
from repro.settings import SETTINGS
from repro.storage import BufferPool, FileDiskManager


class TestConcurrentCommitCrash:
    @pytest.mark.parametrize("group_commit", [True, False])
    @pytest.mark.parametrize("seed", range(4))
    def test_kill_anywhere_with_racing_committers(
        self, tmp_path, group_commit, seed
    ):
        """Concurrent committer threads, seeded crash, full page audit."""
        path = str(tmp_path / "race.dat")
        # A tiny flush threshold forces mid-commit group flushes, so the
        # unsynced WAL tail is non-empty and tears mid-record.
        disk = FileDiskManager(path, group_commit=group_commit)
        if disk.wal is not None:
            disk.wal.flush_threshold = 64
        disk_mu = threading.Lock()  # the server's engine-mutex role
        committed: dict[int, str] = {}
        crashed = threading.Event()
        rng = random.Random(seed)
        with disk_mu:
            pids = [disk.allocate_page() for _ in range(12)]

        def committer(tid: int) -> None:
            thread_rng = random.Random(seed * 101 + tid)
            step = 0
            while not crashed.is_set():
                batch = {
                    thread_rng.choice(pids): f"t{tid}-s{step}-{i}"
                    for i in range(thread_rng.randint(1, 3))
                }
                step += 1
                try:
                    with disk_mu:
                        if crashed.is_set():
                            return
                        for pid, value in batch.items():
                            disk.write_page(pid, value)
                        disk.sync()
                        # sync() returned: this batch is acked-durable.
                        committed.update(batch)
                except (OSError, ValueError):
                    return  # the crash closed the file under us

        threads = [
            threading.Thread(target=committer, args=(tid,)) for tid in range(4)
        ]
        for thread in threads:
            thread.start()
        # Kill anywhere: after a seeded number of completed commits.
        target = rng.randint(1, 30)
        while True:
            with disk_mu:
                if len(committed) >= min(target, len(pids)) or crashed.is_set():
                    crashed.set()
                    disk.simulate_crash(seed=seed)
                    break
        for thread in threads:
            thread.join(timeout=10)

        recovered = FileDiskManager(path, group_commit=group_commit)
        for pid, value in committed.items():
            assert recovered.read_page(pid) == value, (
                f"acked page {pid} lost (group_commit={group_commit})"
            )
        # The torn tail, if any, was discarded cleanly — scan() already
        # succeeded during recovery; it must also be repeatable.
        records, _ = recovered.wal.scan()
        assert isinstance(records, list)
        recovered.close()

    @pytest.mark.parametrize("group_commit", [True, False])
    def test_crash_with_in_flight_sessions(self, tmp_path, group_commit):
        """Session traffic in flight at the crash: recovery stays clean.

        Sessions drive the engine while a checkpointer commits at page
        level; the crash lands with statements queued and running. The
        assertion is storage-level: everything the last completed
        ``sync()`` covered reads back, and the WAL recovers cleanly.
        """
        path = str(tmp_path / "sessions.dat")
        disk = FileDiskManager(path, group_commit=group_commit)
        if disk.wal is not None:
            disk.wal.flush_threshold = 64
        pool = BufferPool(disk, capacity=64)
        db = Database(buffer=pool)
        settings = SETTINGS.replace(
            worker_threads=4, statement_timeout=10.0, lock_timeout=5.0
        )
        manager = SessionManager(db, settings=settings)
        boot = manager.connect("boot")
        manager.execute(boot, "CREATE TABLE r (key VARCHAR(24), id INT);")
        manager.execute(
            boot, "CREATE INDEX r_idx ON r USING SP_GiST (key SP_GiST_trie);"
        )
        manager.disconnect(boot)

        stop = threading.Event()

        def writer(tid: int) -> None:
            session = manager.connect(f"w{tid}")
            i = 0
            while not stop.is_set():
                i += 1
                try:
                    manager.execute(
                        session, f"INSERT INTO r VALUES ('k{tid}x{i}', {i});"
                    )
                except Exception:
                    return

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(3)]
        for thread in threads:
            thread.start()

        synced_pages: dict[int, object] = {}
        # Two checkpoints while sessions keep writing, then crash with
        # statements still in flight.
        for _ in range(2):
            with manager.engine_mutex:
                pool.flush_all()
                disk.sync()
                synced_pages = {
                    pid: disk.read_page(pid) for pid in list(disk._offsets)
                }
        with manager.engine_mutex:
            disk.simulate_crash(seed=7)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        manager.stop()

        recovered = FileDiskManager(path, group_commit=group_commit)
        for pid, value in synced_pages.items():
            assert recovered.read_page(pid) == value
        records, _ = recovered.wal.scan()
        assert isinstance(records, list)
        recovered.close()
