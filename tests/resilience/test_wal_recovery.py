"""Crash-safety: WAL scan semantics, kill-anywhere crashes, index recovery."""

import os
import random

import pytest

from repro.geometry import Box
from repro.indexes import (
    KDTreeIndex,
    PMRQuadtreeIndex,
    PointQuadtreeIndex,
    SuffixTreeIndex,
    TrieIndex,
)
from repro.core.external import Query
from repro.resilience import spgist_check
from repro.storage import BufferPool, FileDiskManager, WriteAheadLog
from repro.storage.wal import REC_ALLOC, REC_PAGE_IMAGE
from repro.workloads import random_points, random_segments, random_words


@pytest.fixture
def disk_path(tmp_path):
    return str(tmp_path / "pages.dat")


class TestWALScan:
    def test_only_committed_records_returned(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "t.wal"))
        wal.log_alloc(1)
        wal.log_page_image(2, b"image-bytes")
        commit_lsn = wal.commit()
        wal.log_dealloc(3)  # never committed
        records, last_commit = wal.scan()
        assert last_commit == commit_lsn
        assert [r.rec_type for r in records] == [REC_ALLOC, REC_PAGE_IMAGE]
        assert records[1].page_id == 2
        assert records[1].image == b"image-bytes"
        wal.close()

    def test_torn_tail_is_a_clean_end_of_log(self, tmp_path):
        path = str(tmp_path / "t.wal")
        wal = WriteAheadLog(path)
        wal.log_page_image(1, b"first")
        wal.commit()
        wal.log_page_image(2, b"second")
        wal.commit()
        wal.close()
        # Tear into the middle of the second page-image record.
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(size - 10)
        reopened = WriteAheadLog(path)
        records, _ = reopened.scan()
        assert [r.page_id for r in records] == [1]
        assert reopened.stats.torn_tail_discarded == 1
        reopened.close()

    def test_lsns_stay_monotonic_across_reset(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "t.wal"))
        first = wal.commit()
        wal.reset()
        second = wal.commit()
        assert second > first
        wal.close()


class TestCrashRecovery:
    def test_crash_between_commit_and_map_write_replays_wal(self, disk_path):
        disk = FileDiskManager(disk_path)
        pid = disk.allocate_page()
        disk.write_page(pid, "v1")
        disk.sync()
        disk.write_page(pid, "v2")
        # Crash exactly after the WAL commit fsync but before the page
        # table is rewritten: the committed record must be replayed.
        disk._file.flush()
        os.fsync(disk._file.fileno())
        disk.wal.commit()
        disk._file.close()
        disk.wal.close()
        recovered = FileDiskManager(disk_path)
        assert recovered.read_page(pid) == "v2"
        assert recovered.wal.stats.records_replayed > 0
        recovered.close()

    def test_crash_before_commit_reverts_to_last_sync(self, disk_path):
        disk = FileDiskManager(disk_path)
        pid = disk.allocate_page()
        disk.write_page(pid, "committed")
        disk.sync()
        disk.write_page(pid, "uncommitted")
        disk.simulate_crash(seed=11)
        recovered = FileDiskManager(disk_path)
        assert recovered.read_page(pid) == "committed"
        recovered.close()

    @pytest.mark.parametrize("seed", range(8))
    def test_kill_anywhere_recovers_every_committed_page(self, tmp_path, seed):
        path = str(tmp_path / f"d{seed}.dat")
        rng = random.Random(seed)
        disk = FileDiskManager(path)
        pids = [disk.allocate_page() for _ in range(6)]
        committed: dict[int, str] = {}
        staged: dict[int, str] = {}
        for step in range(rng.randint(2, 12)):
            pid = rng.choice(pids)
            value = f"value-{seed}-{step}"
            disk.write_page(pid, value)
            staged[pid] = value
            if rng.random() < 0.5:
                disk.sync()
                committed.update(staged)
                staged.clear()
        disk.simulate_crash(seed=seed)
        recovered = FileDiskManager(path)
        for pid, value in committed.items():
            assert recovered.read_page(pid) == value
        recovered.close()


def _snapshot(index):
    """Capture the in-memory index state matching the synced disk state."""
    return (
        index.root,
        list(index.store.page_ids),
        index.store.num_nodes,
        index._item_count,
    )


def _revive(index, snapshot):
    """Re-attach a freshly constructed index object to recovered pages."""
    index.root, page_ids, num_nodes, items = snapshot
    index.store.page_ids = page_ids
    index.store.num_nodes = num_nodes
    index._item_count = items
    return index


def _index_builders():
    words = random_words(220, seed=41)
    points = random_points(220, seed=42)
    segments = random_segments(120, seed=43)
    world = Box(0.0, 0.0, 100.0, 100.0)
    return {
        "trie": (lambda pool: TrieIndex(pool, bucket_size=2), words),
        "suffix": (lambda pool: SuffixTreeIndex(pool, bucket_size=2), words[:60]),
        "kdtree": (lambda pool: KDTreeIndex(pool), points),
        "pquad": (lambda pool: PointQuadtreeIndex(pool, bucket_size=2), points),
        "pmr": (
            lambda pool: PMRQuadtreeIndex(pool, world, threshold=8),
            segments,
        ),
    }


class TestIndexRecovery:
    @pytest.mark.parametrize("kind", sorted(_index_builders()))
    def test_crash_recovered_index_passes_spgist_check(self, tmp_path, kind):
        builder, items = _index_builders()[kind]
        path = str(tmp_path / f"{kind}.dat")
        disk = FileDiskManager(path)
        pool = BufferPool(disk, capacity=64)
        index = builder(pool)
        half = len(items) // 2
        for i, item in enumerate(items[:half]):
            index.insert(item, i)
        pool.flush_all()
        disk.sync()  # commit point: everything so far must survive
        snapshot = _snapshot(index)
        for i, item in enumerate(items[half:]):
            index.insert(item, half + i)
        pool.flush_all()  # written but never synced: may be lost
        disk.simulate_crash(seed=17)

        recovered_disk = FileDiskManager(path)
        recovered_pool = BufferPool(recovered_disk, capacity=64)
        recovered = _revive(builder(recovered_pool), snapshot)
        report = spgist_check(recovered)
        assert report.ok, report.problems
        # A committed key is still findable through the recovered structure.
        probe = items[0]
        query = Query(recovered.methods.equality_operator, probe)
        assert any(key == probe for key, _ in recovered.search(query))
        recovered_disk.close()
