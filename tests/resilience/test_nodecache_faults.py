"""Node cache under faults: corruption must purge, not serve stale nodes.

The deserialized-node cache sits *above* the checksummed page store, so a
cached node could outlive the corruption of its backing page. These tests
pin down the purge contract: every path that discovers a bad page —
``NodeStore.read``, executor quarantine, recovery — must leave the cache
without any node from that page.
"""

from __future__ import annotations

import pytest

from repro.core.clustering import NodeStore
from repro.core.node import LeafNode
from repro.engine.catalog import default_catalog
from repro.engine.executor import execute_plan
from repro.engine.planner import IndexScanPlan, Predicate, plan_query
from repro.engine.table import Column, Table
from repro.errors import IndexCorruptionError, TransientIOError
from repro.resilience import INCIDENTS, corrupt_page
from repro.resilience.faults import FaultInjectingDiskManager, FaultPolicy
from repro.storage import BufferPool, DiskManager
from repro.workloads import random_words


@pytest.fixture(autouse=True)
def clean_incident_log():
    INCIDENTS.reset()
    yield
    INCIDENTS.reset()


@pytest.fixture
def word_table(buffer):
    table = Table(
        "words",
        [Column("name", "varchar"), Column("id", "int")],
        buffer,
        default_catalog(),
    )
    for i, w in enumerate(random_words(2000, seed=29)):
        table.insert((w, i))
    table.create_index("trie", "name", "SP_GiST", "SP_GiST_trie")
    table.analyze()
    return table


def _corrupt_index(table: Table, index_name: str) -> None:
    index = table.indexes[index_name]
    table.buffer.clear()
    for page_id in index.structure.store.page_ids:
        corrupt_page(table.buffer.disk, page_id, seed=page_id)


class TestQuarantinePurge:
    def test_scan_quarantine_purges_node_cache(self, word_table):
        store = word_table.indexes["trie"].structure.store
        target = random_words(2000, seed=29)[11]
        plan = plan_query(word_table, Predicate("name", "=", target))
        assert isinstance(plan, IndexScanPlan)
        # Warm the cache, then corrupt the pages underneath it. Note that
        # _corrupt_index clears the pool, which already empties the cache
        # via the eviction listener — re-warm from a *partially* corrupt
        # read to make the purge observable.
        _corrupt_index(word_table, "trie")
        store.cache.put(999_999, 0, LeafNode(items=[("stale", 0)]))
        assert len(store.cache) == 1
        rows = sorted(execute_plan(plan))
        expected = sorted(
            row for _tid, row in word_table.scan() if row[0] == target
        )
        assert rows == expected
        assert word_table.indexes["trie"].quarantined
        assert INCIDENTS.of_kind("index-scan-degraded")
        # The quarantine purged every cached node, stale plant included.
        assert len(store.cache) == 0

    def test_cache_never_holds_nodes_of_corrupt_pages(self, word_table):
        """After degradation, no cached node may map to an index page."""
        _corrupt_index(word_table, "trie")
        target = random_words(2000, seed=29)[3]
        plan = plan_query(word_table, Predicate("name", "=", target))
        list(execute_plan(plan))
        store = word_table.indexes["trie"].structure.store
        index_pages = set(store.page_ids)
        if store.cache is not None:
            for page_id in store.cache.cached_page_ids():
                assert page_id not in index_pages

    def test_purge_node_cache_is_idempotent(self, word_table):
        index = word_table.indexes["trie"]
        index.purge_node_cache()
        index.purge_node_cache()  # second purge of an empty cache: no-op
        assert len(index.structure.store.cache) == 0


class TestReadFailureInvalidation:
    def test_failed_fetch_drops_cached_page(self):
        flaky = FaultInjectingDiskManager(DiskManager(), FaultPolicy(seed=3))
        pool = BufferPool(flaky, capacity=4, max_retries=1, retry_backoff=0.0)
        store = NodeStore(pool)
        ref = store.create(LeafNode(items=[("k", 1)]))
        store.read(ref)  # cached
        assert store.cache.holds(ref.page_id, ref.slot)
        pool.clear()  # eject the frame so the next read must hit the disk
        assert not store.cache.holds(ref.page_id, ref.slot)
        # Plant a (deliberately) stale entry, then make the device fail:
        # the failed fetch must purge the page rather than serve the plant.
        store.cache.put(ref.page_id, ref.slot, LeafNode(items=[("k", 1)]))
        flaky.policy = FaultPolicy(seed=3, read_error_rate=1.0)
        with pytest.raises(TransientIOError):
            store.read(ref)
        assert not store.cache.holds(ref.page_id, ref.slot)

    def test_dangling_slot_purges_page(self, buffer):
        store = NodeStore(buffer)
        ref = store.create(LeafNode(items=[("k", 1)]))
        store.read(ref)
        store.free(ref)
        with pytest.raises(IndexCorruptionError):
            store.read(ref)
        assert ref.page_id not in set(store.cache.cached_page_ids())

    def test_transient_faults_keep_cache_coherent(self):
        """Retried reads under a flaky disk never leave stale entries."""
        policy = FaultPolicy(seed=17, read_error_rate=0.05)
        flaky = FaultInjectingDiskManager(DiskManager(), policy)
        pool = BufferPool(flaky, capacity=8, retry_backoff=0.0)
        store = NodeStore(pool)
        refs = [
            store.create(LeafNode(items=[(f"w{i}" * 30, i)] * 10))
            for i in range(12)
        ]
        for ref in refs * 3:
            node = store.read(ref)
            assert node.items
        resident = set(pool.resident_page_ids())
        for page_id in store.cache.cached_page_ids():
            assert page_id in resident
