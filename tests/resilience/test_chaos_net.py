"""Network-edge chaos: exactly-once through wire kills, crashes, drains.

The fast tier runs a handful of seeded schedules through the flaky
proxy (both the crash and drain scenarios land, since scenario is
``seed % 2``). The slow tier is the PR 9 acceptance run: 100+ schedules
asserting **zero lost acked commits and zero duplicate idempotency-key
applies**.
"""

from __future__ import annotations

import pytest

from repro.resilience.chaos_net import run_net_campaign, run_net_schedule


def _explain(transcript: dict) -> str:
    return (
        f"seed={transcript['seed']} failures: "
        + "; ".join(transcript["failures"][:5])
    )


class TestSingleSchedules:
    def test_crash_scenario_schedule(self) -> None:
        transcript = run_net_schedule(0, clients=3, statements=8)
        assert transcript["scenario"] == "crash"
        assert transcript["ok"], _explain(transcript)
        assert transcript["stats"]["acked_writes"] > 0

    def test_drain_scenario_schedule(self) -> None:
        transcript = run_net_schedule(1, clients=3, statements=8)
        assert transcript["scenario"] == "drain"
        assert transcript["ok"], _explain(transcript)
        assert transcript["stats"]["acked_writes"] > 0


class TestFastCampaign:
    def test_six_schedules_zero_violations(self) -> None:
        summary = run_net_campaign(6, base_seed=100, clients=3, statements=8)
        assert summary["ok"], [_explain(t) for t in summary["failed"]]
        totals = summary["totals"]
        # The chaos actually bit: wire kills happened and the dedup
        # cache absorbed at least one re-send across the campaign.
        assert (
            totals.get("proxy_dropped_requests", 0)
            + totals.get("proxy_dropped_responses", 0)
        ) > 0
        assert totals.get("acked_writes", 0) > 0


@pytest.mark.slow
class TestAcceptanceCampaign:
    def test_hundred_schedules_exactly_once(self) -> None:
        summary = run_net_campaign(100, base_seed=0, clients=4, statements=12)
        assert summary["ok"], [_explain(t) for t in summary["failed"]]
        totals = summary["totals"]
        assert totals.get("acked_writes", 0) > 0
        assert totals.get("acked_txns", 0) > 0
        # Both halves of the exactly-once window were exercised.
        assert totals.get("proxy_dropped_responses", 0) > 0
        assert totals.get("dedup_hits", 0) > 0
