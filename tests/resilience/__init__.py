"""Tests for the storage-resilience subsystem (repro.resilience)."""
