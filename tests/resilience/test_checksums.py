"""Page-image checksum framing and end-to-end corruption detection."""

import pickle

import pytest

from repro.errors import PageChecksumError
from repro.storage import (
    DiskManager,
    FileDiskManager,
    decode_page_image,
    encode_page_image,
)
from repro.storage.page import PAGE_IMAGE_HEADER


def body_of(payload) -> bytes:
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


class TestImageFraming:
    def test_roundtrip(self):
        body = body_of(("k", [1, 2, 3]))
        assert decode_page_image(encode_page_image(body), 0) == body

    def test_truncated_header_rejected(self):
        with pytest.raises(PageChecksumError):
            decode_page_image(b"\x00\x01", 7)

    def test_bad_magic_rejected(self):
        raw = bytearray(encode_page_image(body_of("x")))
        raw[0] ^= 0xFF
        with pytest.raises(PageChecksumError):
            decode_page_image(bytes(raw), 7)

    def test_flipped_body_bit_rejected(self):
        raw = bytearray(encode_page_image(body_of("x")))
        raw[PAGE_IMAGE_HEADER.size] ^= 0x01
        with pytest.raises(PageChecksumError):
            decode_page_image(bytes(raw), 7)

    def test_truncated_body_rejected(self):
        raw = encode_page_image(body_of(list(range(50))))
        with pytest.raises(PageChecksumError):
            decode_page_image(raw[:-3], 7)

    def test_error_names_the_page(self):
        with pytest.raises(PageChecksumError) as excinfo:
            decode_page_image(b"", 42)
        assert excinfo.value.page_id == 42
        assert "42" in str(excinfo.value)


class TestEndToEndDetection:
    def test_in_memory_bit_flip_raises_on_read(self):
        disk = DiskManager()
        pid = disk.allocate_page()
        disk.write_page(pid, {"key": "value"})
        raw = bytearray(disk.raw_page_image(pid))
        raw[len(raw) // 2] ^= 0x10
        disk.store_raw_page_image(pid, bytes(raw))
        with pytest.raises(PageChecksumError):
            disk.read_page(pid)

    def test_file_backed_torn_write_raises_after_reopen(self, tmp_path):
        path = str(tmp_path / "pages.dat")
        disk = FileDiskManager(path)
        pid = disk.allocate_page()
        disk.write_page(pid, list(range(200)))
        raw = disk.raw_page_image(pid)
        # A torn write persists only a prefix; the stale tail bytes behind
        # it keep the recorded length, so only the checksum can tell.
        disk.store_raw_page_image(pid, raw[: len(raw) // 2])
        disk.close()
        reopened = FileDiskManager(path)
        with pytest.raises(PageChecksumError):
            reopened.read_page(pid)
        reopened.close()

    def test_intact_pages_still_read_fine(self, tmp_path):
        disk = FileDiskManager(str(tmp_path / "pages.dat"))
        good = disk.allocate_page()
        bad = disk.allocate_page()
        disk.write_page(good, "good")
        disk.write_page(bad, "bad")
        raw = bytearray(disk.raw_page_image(bad))
        raw[-1] ^= 0x01
        disk.store_raw_page_image(bad, bytes(raw))
        assert disk.read_page(good) == "good"  # corruption is contained
        with pytest.raises(PageChecksumError):
            disk.read_page(bad)
        disk.close()
