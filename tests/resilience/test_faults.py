"""Seeded fault injection and the buffer pool's bounded retry."""

import pytest

from repro.errors import DiskFaultError, PageChecksumError, TransientIOError
from repro.resilience import (
    FaultInjectingDiskManager,
    FaultPolicy,
    corrupt_page,
)
from repro.storage import BufferPool, DiskManager, FileDiskManager


def flaky(policy: FaultPolicy) -> FaultInjectingDiskManager:
    return FaultInjectingDiskManager(DiskManager(), policy)


class TestFaultPolicy:
    def test_rates_are_validated(self):
        with pytest.raises(ValueError):
            FaultPolicy(read_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPolicy(bit_flip_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPolicy(fail_after_ops=-1)

    def test_default_policy_is_silent(self):
        disk = flaky(FaultPolicy())
        for _ in range(50):
            pid = disk.allocate_page()
            disk.write_page(pid, "payload")
            assert disk.read_page(pid) == "payload"
        assert disk.injected.total == 0


class TestTransientFaults:
    def test_certain_read_error_exhausts_retries(self):
        disk = flaky(FaultPolicy(seed=1, read_error_rate=1.0))
        pool = BufferPool(disk, capacity=4, retry_backoff=0.0)
        pid = pool.new_page("v")
        pool.clear()
        with pytest.raises(TransientIOError):
            pool.fetch(pid)
        # Initial attempt + max_retries further attempts, all injected.
        assert disk.injected.transient_read_errors == 1 + pool.max_retries
        assert pool.stats.read_retries == pool.max_retries

    def test_isolated_read_faults_are_absorbed(self):
        disk = flaky(FaultPolicy(seed=3, read_error_rate=0.2))
        pool = BufferPool(disk, capacity=4, retry_backoff=0.0)
        pids = [pool.new_page(i) for i in range(25)]
        pool.clear()
        values = [pool.fetch(pid) for pid in pids]  # deterministic by seed
        assert values == list(range(25))
        assert disk.injected.transient_read_errors > 0
        assert pool.stats.read_retries == disk.injected.transient_read_errors

    def test_write_back_faults_are_absorbed(self):
        disk = flaky(FaultPolicy(seed=5, write_error_rate=0.2))
        pool = BufferPool(disk, capacity=4, retry_backoff=0.0)
        pids = [pool.new_page(i) for i in range(25)]
        pool.clear()
        assert [pool.fetch(pid) for pid in pids] == list(range(25))
        assert disk.injected.transient_write_errors > 0
        assert pool.stats.write_retries == disk.injected.transient_write_errors

    def test_permanent_failure_is_not_retried(self):
        disk = flaky(FaultPolicy(fail_after_ops=2))
        pool = BufferPool(disk, capacity=4, retry_backoff=0.0)
        pid = pool.new_page("v")  # op 1: allocate (write stays in the pool)
        pool.clear()  # op 2: write-back
        with pytest.raises(DiskFaultError):
            pool.fetch(pid)  # op 3: past the budget — the device is dead
        assert pool.stats.retries == 0
        assert disk.injected.permanent_failures == 1


class TestCorruptionFaults:
    def test_bit_flip_detected_as_checksum_error(self):
        disk = flaky(FaultPolicy(seed=2, bit_flip_rate=1.0))
        pid = disk.allocate_page()
        disk.write_page(pid, {"k": "v"})
        assert disk.injected.bit_flips == 1
        with pytest.raises(PageChecksumError) as excinfo:
            disk.read_page(pid)
        assert excinfo.value.page_id == pid

    def test_torn_write_detected_as_checksum_error(self):
        disk = flaky(FaultPolicy(seed=2, torn_write_rate=1.0))
        pid = disk.allocate_page()
        disk.write_page(pid, list(range(100)))
        assert disk.injected.torn_writes == 1
        with pytest.raises(PageChecksumError):
            disk.read_page(pid)

    def test_corrupt_page_helper_flips_one_bit(self):
        disk = DiskManager()
        pid = disk.allocate_page()
        disk.write_page(pid, "payload")
        corrupt_page(disk, pid, seed=9)
        with pytest.raises(PageChecksumError):
            disk.read_page(pid)


class TestDelegation:
    def test_counters_and_pages_pass_through(self):
        inner = DiskManager()
        disk = flaky(FaultPolicy())
        disk.inner = inner
        pid = disk.allocate_page()
        disk.write_page(pid, "x")
        assert disk.num_pages == inner.num_pages == 1
        assert disk.stats is inner.stats
        assert disk.page_exists(pid)
        disk.reset_stats()
        assert inner.stats.writes == 0

    def test_file_backed_methods_reachable_through_wrapper(self, tmp_path):
        inner = FileDiskManager(str(tmp_path / "pages.dat"))
        disk = FaultInjectingDiskManager(inner, FaultPolicy())
        pid = disk.allocate_page()
        disk.write_page(pid, "x")
        disk.sync()  # __getattr__ delegation
        assert disk.file_bytes > 0
        disk.close()
