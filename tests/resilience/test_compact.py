"""Crash-window coverage for the two-phase compaction protocol."""

import os

import pytest

from repro.storage import FileDiskManager
from repro.storage.filedisk import FileDiskManager as _FDM


@pytest.fixture
def disk_path(tmp_path):
    return str(tmp_path / "pages.dat")


def populate(disk, versions: int = 5) -> dict[int, str]:
    expected = {}
    for pid in [disk.allocate_page() for _ in range(8)]:
        for v in range(versions):  # dead versions make compaction worthwhile
            expected[pid] = f"p{pid}-v{v}"
            disk.write_page(pid, expected[pid])
    disk.sync()
    return expected


def hard_kill(disk) -> None:
    """Close the raw handles without flushing anything (simulated death)."""
    try:
        disk._file.close()
    except OSError:  # pragma: no cover - already closed
        pass
    if disk.wal is not None:
        try:
            disk.wal.close()
        except OSError:  # pragma: no cover - already closed
            pass


class TestOrdering:
    def test_new_map_committed_before_data_file_replace(
        self, disk_path, monkeypatch
    ):
        disk = FileDiskManager(disk_path)
        populate(disk)
        events = []
        real_write_map = _FDM._write_map
        real_replace = os.replace

        def spy_write_map(self, pending_compact=False):
            events.append(("map", pending_compact))
            real_write_map(self, pending_compact=pending_compact)

        def spy_replace(src, dst):
            events.append(("replace", os.path.basename(dst)))
            real_replace(src, dst)

        monkeypatch.setattr(_FDM, "_write_map", spy_write_map)
        monkeypatch.setattr(os, "replace", spy_replace)
        disk.compact()
        # The pending-flagged page table must be durable before the data
        # file is swapped; the old ordering corrupted the store when a
        # crash landed between the two steps.
        flagged_map = events.index(("map", True))
        data_swap = events.index(("replace", os.path.basename(disk_path)))
        assert flagged_map < data_swap
        monkeypatch.undo()
        disk.close()

    def test_compact_reclaims_and_preserves(self, disk_path):
        disk = FileDiskManager(disk_path)
        expected = populate(disk)
        reclaimed = disk.compact()
        assert reclaimed > 0
        for pid, value in expected.items():
            assert disk.read_page(pid) == value
        disk.close()


class TestCrashWindows:
    def test_crash_before_new_map_keeps_old_state(self, disk_path, monkeypatch):
        disk = FileDiskManager(disk_path)
        expected = populate(disk)
        real_write_map = _FDM._write_map

        def dying_write_map(self, pending_compact=False):
            if pending_compact:
                raise RuntimeError("injected crash before the new page table")
            real_write_map(self, pending_compact=pending_compact)

        monkeypatch.setattr(_FDM, "_write_map", dying_write_map)
        with pytest.raises(RuntimeError):
            disk.compact()
        monkeypatch.undo()
        hard_kill(disk)
        assert os.path.exists(disk_path + ".compact")  # orphan left behind
        recovered = FileDiskManager(disk_path)
        assert not os.path.exists(disk_path + ".compact")
        for pid, value in expected.items():
            assert recovered.read_page(pid) == value
        recovered.close()

    def test_crash_between_map_and_replace_is_finished(
        self, disk_path, monkeypatch
    ):
        disk = FileDiskManager(disk_path)
        expected = populate(disk)
        real_replace = os.replace

        def dying_replace(src, dst):
            if dst == disk_path:
                raise RuntimeError("injected crash before the file swap")
            real_replace(src, dst)

        monkeypatch.setattr(os, "replace", dying_replace)
        with pytest.raises(RuntimeError):
            disk.compact()
        monkeypatch.undo()
        hard_kill(disk)
        # The committed page table already describes the compacted file;
        # recovery must finish the rename, not roll back.
        recovered = FileDiskManager(disk_path)
        assert not os.path.exists(disk_path + ".compact")
        for pid, value in expected.items():
            assert recovered.read_page(pid) == value
        recovered.close()

    def test_crash_after_replace_clears_flag(self, disk_path, monkeypatch):
        disk = FileDiskManager(disk_path)
        expected = populate(disk)

        def dying_reopen(self):
            raise RuntimeError("injected crash after the file swap")

        monkeypatch.setattr(_FDM, "_reopen_data_file", dying_reopen)
        with pytest.raises(RuntimeError):
            disk.compact()
        monkeypatch.undo()
        hard_kill(disk)
        recovered = FileDiskManager(disk_path)
        assert recovered._pending_compact is False
        for pid, value in expected.items():
            assert recovered.read_page(pid) == value
        recovered.close()
        # The durable map no longer carries the flag either.
        reopened = FileDiskManager(disk_path)
        assert reopened._pending_compact is False
        reopened.close()
