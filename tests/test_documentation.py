"""Deliverable check: every public item in the library carries a docstring."""

import importlib
import inspect
import pkgutil

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", None) == module.__name__:
                yield name, obj


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        undocumented = [
            m.__name__ for m in _walk_modules() if not (m.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in _walk_modules():
            for name, obj in _public_members(module):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_public_methods_documented(self):
        # inspect.getdoc follows the MRO, so an override inherits its
        # contract's docstring from the ABC — that counts as documented.
        undocumented = []
        for module in _walk_modules():
            for _name, cls in _public_members(module):
                if not inspect.isclass(cls):
                    continue
                for method_name, method in vars(cls).items():
                    if method_name.startswith("_"):
                        continue
                    if not inspect.isfunction(method):
                        continue
                    if not (inspect.getdoc(getattr(cls, method_name)) or "").strip():
                        undocumented.append(
                            f"{module.__name__}.{cls.__name__}.{method_name}"
                        )
        assert undocumented == []

    def test_package_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name
