"""Edge cases: boundary values and unusual-but-legal inputs."""

import pytest

from repro.core import Query
from repro.geometry import Box, LineSegment, Point
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.pmr import PMRQuadtreeIndex
from repro.indexes.suffix import SuffixTreeIndex
from repro.indexes.trie import TrieIndex
from repro.baselines import BPlusTree


class TestStringEdgeCases:
    def test_empty_string_key(self, buffer):
        trie = TrieIndex(buffer, bucket_size=2)
        trie.insert("", 0)
        trie.insert("a", 1)
        trie.insert("aa", 2)
        trie.insert("b", 3)
        assert trie.search_equal("") == [("", 0)]
        assert sorted(v for _, v in trie.search_prefix("")) == [0, 1, 2, 3]

    def test_unicode_keys(self, buffer):
        trie = TrieIndex(buffer, bucket_size=1)
        words = ["straße", "stra", "façade", "фон", "日本語", "日本"]
        for i, w in enumerate(words):
            trie.insert(w, i)
        for i, w in enumerate(words):
            assert trie.search_equal(w) == [(w, i)]
        assert sorted(v for _, v in trie.search_prefix("日本")) == [4, 5]

    def test_very_long_keys(self, buffer):
        trie = TrieIndex(buffer, bucket_size=1)
        long_a = "a" * 500
        trie.insert(long_a, 1)
        trie.insert(long_a[:-1] + "b", 2)
        assert trie.search_equal(long_a) == [(long_a, 1)]

    def test_single_character_alphabet(self, buffer):
        # Keys that differ only in length: a, aa, aaa, ... (pure chains).
        trie = TrieIndex(buffer, bucket_size=1)
        for n in range(1, 20):
            trie.insert("a" * n, n)
        for n in (1, 10, 19):
            assert trie.search_equal("a" * n) == [("a" * n, n)]
        assert len(trie.search_prefix("a" * 5)) == 15

    def test_btree_empty_string(self, buffer):
        tree = BPlusTree(buffer)
        tree.insert("", 0)
        tree.insert("a", 1)
        assert tree.search("") == [0]
        assert [k for k, _ in tree.scan_all()] == ["", "a"]

    def test_suffix_tree_single_char_words(self, buffer):
        index = SuffixTreeIndex(buffer)
        for i, w in enumerate(["a", "b", "ab"]):
            index.insert_word(w, i)
        assert sorted(w for w, _ in index.search_substring("a")) == ["a", "ab"]


class TestSpatialEdgeCases:
    def test_points_on_world_corners(self, buffer):
        kd = KDTreeIndex(buffer)
        corners = [Point(0, 0), Point(100, 0), Point(0, 100), Point(100, 100)]
        for i, p in enumerate(corners):
            kd.insert(p, i)
        for i, p in enumerate(corners):
            assert kd.search_point(p) == [(p, i)]
        assert len(kd.search_range(Box(0, 0, 100, 100))) == 4

    def test_all_collinear_points(self, buffer):
        kd = KDTreeIndex(buffer)
        points = [Point(50.0, float(y)) for y in range(50)]
        for i, p in enumerate(points):
            kd.insert(p, i)
        assert sorted(v for _, v in kd.search_range(Box(50, 10, 50, 20))) == \
            list(range(10, 21))

    def test_negative_coordinates(self, buffer):
        kd = KDTreeIndex(buffer)
        points = [Point(-10.5, -20.25), Point(-1, -1), Point(5, -3)]
        for i, p in enumerate(points):
            kd.insert(p, i)
        assert kd.search_point(Point(-10.5, -20.25)) == [(points[0], 0)]
        box = Box(-100, -100, 0, 0)
        assert sorted(v for _, v in kd.search_range(box)) == [0, 1]

    def test_zero_length_segment(self, buffer):
        index = PMRQuadtreeIndex(buffer, Box(0, 0, 100, 100))
        dot = LineSegment(Point(50, 50), Point(50, 50))
        index.insert(dot, 1)
        assert index.search_exact(dot) == [(dot, 1)]
        assert index.search_window(Box(49, 49, 51, 51)) == [(dot, 1)]

    def test_segment_spanning_whole_world(self, buffer):
        index = PMRQuadtreeIndex(buffer, Box(0, 0, 100, 100), threshold=2)
        diagonal = LineSegment(Point(0, 0), Point(100, 100))
        index.insert(diagonal, 0)
        for i in range(1, 10):
            index.insert(
                LineSegment(Point(i * 10, 1), Point(i * 10 + 1, 2)), i
            )
        hits = index.search_window(Box(40, 40, 60, 60))
        assert (diagonal, 0) in hits

    def test_query_window_degenerate_line(self, buffer):
        kd = KDTreeIndex(buffer)
        kd.insert(Point(5, 5), 1)
        kd.insert(Point(5, 7), 2)
        # Zero-width window = vertical line query.
        line = Box(5, 0, 5, 10)
        assert sorted(v for _, v in kd.search_range(line)) == [1, 2]


class TestValueEdgeCases:
    def test_none_values_throughout(self, buffer):
        trie = TrieIndex(buffer, bucket_size=2)
        for w in ["one", "two", "three"]:
            trie.insert(w)  # value defaults to None
        assert trie.search_equal("two") == [("two", None)]
        assert trie.delete("two") == 1

    def test_tuple_values(self, buffer):
        kd = KDTreeIndex(buffer)
        kd.insert(Point(1, 1), ("payload", 42))
        assert kd.search_point(Point(1, 1)) == [(Point(1, 1), ("payload", 42))]

    def test_same_key_many_distinct_values(self, buffer):
        trie = TrieIndex(buffer, bucket_size=2)
        for i in range(30):
            trie.insert("shared", i)
        assert trie.delete("shared", 13) == 1
        remaining = sorted(v for _, v in trie.search_equal("shared"))
        assert remaining == [i for i in range(30) if i != 13]


class TestQueryValidation:
    def test_wrong_operand_types_fail_loudly_or_return_nothing(self, buffer):
        trie = TrieIndex(buffer)
        trie.insert("word", 1)
        with pytest.raises((TypeError, AttributeError, KeyError)):
            list(trie.search(Query("^", Box(0, 0, 1, 1))))

    def test_operator_check_happens_before_traversal(self, buffer):
        kd = KDTreeIndex(buffer)
        with pytest.raises(KeyError):
            list(kd.search(Query("#=", "nope")))
