"""Targeted coverage for cross-cutting behaviours not owned by one module."""

import pytest

from repro.core import Query
from repro.engine import Database
from repro.engine.catalog import default_catalog
from repro.engine.table import Column, Table
from repro.geometry import Box, LineSegment, Point
from repro.indexes.pmr import PMRQuadtreeIndex
from repro.storage import BufferPool, DiskManager
from repro.workloads import random_points, random_words
from repro.workloads.points import WORLD


class TestBufferPoolResizing:
    def test_shrinking_capacity_evicts_on_next_admit(self):
        pool = BufferPool(DiskManager(), capacity=16)
        ids = [pool.new_page(i) for i in range(10)]
        pool.capacity = 4  # as the bench harness does between phases
        pool.new_page("trigger")
        assert pool.resident_count <= 4
        # Contents survive through the disk.
        assert pool.fetch(ids[0]) == 0

    def test_growing_capacity_admits_more(self):
        pool = BufferPool(DiskManager(), capacity=2)
        ids = [pool.new_page(i) for i in range(6)]
        pool.capacity = 8
        for pid in ids:
            pool.fetch(pid)
        assert pool.resident_count > 2


class TestSpanningDedupControls:
    @pytest.fixture
    def pmr(self, buffer):
        index = PMRQuadtreeIndex(buffer, WORLD, threshold=1)
        index.insert(LineSegment(Point(5, 5), Point(95, 95)), 0)
        for i in range(1, 6):
            index.insert(
                LineSegment(Point(i * 12, 3), Point(i * 12 + 2, 5)), i
            )
        return index

    def test_default_scan_dedups(self, pmr):
        hits = [v for _, v in pmr.search_window(Box(0, 0, 100, 100))]
        assert hits.count(0) == 1

    def test_raw_scan_shows_replicas(self, pmr):
        raw = [
            v
            for _, v in pmr.search(
                Query("&&", Box(0, 0, 100, 100)), dedup=False
            )
        ]
        assert raw.count(0) > 1  # the spanning segment's physical copies

    def test_cursor_over_spanning_index_dedups(self, pmr):
        with pmr.begin_scan(Query("&&", Box(0, 0, 100, 100))) as cursor:
            hits = [v for _, v in iter(cursor)]
        assert hits.count(0) == 1


class TestPlannerWithHashIndex:
    def test_hash_cost_uses_flat_height(self, buffer):
        table = Table("t", [Column("name", "varchar")], buffer,
                      default_catalog())
        for w in random_words(1500, seed=351):
            table.insert((w,))
        index = table.create_index("h", "name", "hash", "hash_varchar")
        assert index.page_height == 1
        table.analyze()
        from repro.engine.planner import IndexScanPlan, Predicate, plan_query

        plan = plan_query(table, Predicate("name", "=", "abc"))
        assert isinstance(plan, IndexScanPlan)

    def test_hash_not_considered_for_prefix(self, buffer):
        table = Table("t", [Column("name", "varchar")], buffer,
                      default_catalog())
        for w in random_words(300, seed=352):
            table.insert((w,))
        table.create_index("h", "name", "hash", "hash_varchar")
        from repro.engine.planner import Predicate, SeqScanPlan, plan_query

        plan = plan_query(table, Predicate("name", "#=", "ab"))
        assert isinstance(plan, SeqScanPlan)  # hash opclass lacks '#='


class TestMixedIndexesOneTable:
    def test_four_access_methods_stay_consistent(self, buffer):
        db = Database(buffer=BufferPool(DiskManager(), capacity=512))
        db.execute("CREATE TABLE t (name VARCHAR(30), id INT);")
        table = db.table("t")
        words = random_words(600, seed=353)
        for i, w in enumerate(words):
            table.insert((w, i))
        db.execute("CREATE INDEX i1 ON t USING SP_GiST (name SP_GiST_trie);")
        db.execute("CREATE INDEX i2 ON t USING btree (name btree_varchar);")
        db.execute("CREATE INDEX i3 ON t USING hash (name hash_varchar);")
        probe = words[123]
        expected = sorted(i for i, w in enumerate(words) if w == probe)
        for index_name in ("i1", "i2", "i3"):
            index = table.indexes[index_name]
            got = sorted(table.fetch(t)[1] for t in index.scan("=", probe))
            assert got == expected, index_name
        # Delete through the table; every index must agree afterwards.
        db.execute(f"DELETE FROM t WHERE name = '{probe}';")
        for index_name in ("i1", "i2", "i3"):
            assert list(table.indexes[index_name].scan("=", probe)) == []


class TestSpatialDeleteThroughSQL:
    def test_delete_points(self, buffer):
        db = Database()
        db.execute("CREATE TABLE pts (p POINT, id INT);")
        table = db.table("pts")
        points = random_points(200, seed=354)
        for i, p in enumerate(points):
            table.insert((p, i))
        db.execute("CREATE INDEX kd ON pts USING SP_GiST (p SP_GiST_kdtree);")
        victim = points[0]
        status = db.execute(f"DELETE FROM pts WHERE p @ '{victim}';")
        expected = sum(1 for p in points if p == victim)
        assert status == f"DELETE {expected}"
        assert db.execute(f"SELECT * FROM pts WHERE p @ '{victim}';") == []


class TestGlobThroughPlanner:
    def test_glob_prefers_an_index_when_selective(self, buffer):
        db = Database(buffer=BufferPool(DiskManager(), capacity=512))
        db.execute("CREATE TABLE t (name VARCHAR(30));")
        table = db.table("t")
        for w in random_words(4000, seed=355):
            table.insert((w,))
        db.execute("CREATE INDEX tr ON t USING SP_GiST (name SP_GiST_trie);")
        db.execute("ANALYZE t;")
        rows_idx = sorted(db.execute("SELECT * FROM t WHERE name *= 'abc*';"))
        db.execute("DROP INDEX tr ON t;")
        rows_seq = sorted(db.execute("SELECT * FROM t WHERE name *= 'abc*';"))
        assert rows_idx == rows_seq
