"""The example scripts must run clean — they are the public face of the API."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "trie exact" in result.stdout
        assert "PMR window" in result.stdout

    @pytest.mark.slow
    def test_text_search(self):
        result = run_example("text_search.py")
        assert result.returncode == 0, result.stderr
        assert "plan:" in result.stdout
        assert "'random'" in result.stdout

    @pytest.mark.slow
    def test_spatial_gis(self):
        result = run_example("spatial_gis.py")
        assert result.returncode == 0, result.stderr
        assert "nearest cities" in result.stdout
        assert "page reads" in result.stdout

    def test_engine_tour(self):
        result = run_example("engine_tour.py")
        assert result.returncode == 0, result.stderr
        assert "SP_GiST_bittrie" in result.stdout
        assert "without index" in result.stdout

    @pytest.mark.slow
    def test_reproduce_paper_quick(self):
        result = run_example("reproduce_paper.py", "--quick")
        assert result.returncode == 0, result.stderr
        assert "Figure 17" in result.stdout
        assert "done in" in result.stdout
