"""Integration: all access methods answer identical queries identically."""

import random

import pytest

from repro.baselines import BPlusTree, RTree, substring_scan
from repro.geometry import Box
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.pmr import PMRQuadtreeIndex
from repro.indexes.pquadtree import PointQuadtreeIndex
from repro.indexes.suffix import SuffixTreeIndex
from repro.indexes.trie import TrieIndex
from repro.storage import HeapFile
from repro.workloads import (
    random_points,
    random_query_boxes,
    random_segments,
    random_words,
)
from repro.workloads.points import WORLD


class TestStringMethodsAgree:
    @pytest.fixture
    def string_world(self, buffer):
        words = random_words(1200, seed=141)
        trie = TrieIndex(buffer, bucket_size=8)
        btree = BPlusTree(buffer)
        for i, w in enumerate(words):
            trie.insert(w, i)
            btree.insert(w, i)
        return words, trie, btree

    def test_exact_match_agree(self, string_world):
        words, trie, btree = string_world
        for probe in random.Random(0).sample(words, 30):
            assert sorted(v for _, v in trie.search_equal(probe)) == sorted(
                btree.search(probe)
            )

    def test_prefix_match_agree(self, string_world):
        words, trie, btree = string_world
        for prefix in ["a", "ab", "xyz", "q"]:
            assert sorted(v for _, v in trie.search_prefix(prefix)) == sorted(
                v for _, v in btree.prefix_scan(prefix)
            )

    def test_regex_match_agree(self, string_world):
        words, trie, btree = string_world
        rng = random.Random(1)
        pool = [w for w in words if len(w) >= 4]
        for _ in range(10):
            w = rng.choice(pool)
            pattern = "".join("?" if rng.random() < 0.3 else c for c in w)
            assert sorted(v for _, v in trie.search_regex(pattern)) == sorted(
                v for _, v in btree.regex_scan(pattern)
            )


class TestSubstringMethodsAgree:
    def test_suffix_tree_equals_seqscan(self, buffer):
        words = random_words(400, seed=142, min_length=3)
        heap = HeapFile(buffer)
        suffix = SuffixTreeIndex(buffer)
        for w in words:
            tid = heap.insert(w)
            suffix.insert_word(w, tid)
        for needle in ["ab", "qx", "zzz", "a"]:
            via_index = sorted(w for w, _tid in suffix.search_substring(needle))
            via_scan = sorted(r for _tid, r in substring_scan(heap, needle))
            assert via_index == via_scan


class TestPointMethodsAgree:
    def test_three_way_agreement(self, buffer):
        points = random_points(1000, seed=143)
        kd = KDTreeIndex(buffer)
        pq = PointQuadtreeIndex(buffer)
        rt = RTree(buffer)
        for i, p in enumerate(points):
            kd.insert(p, i)
            pq.insert(p, i)
            rt.insert(p, i)
        for box in random_query_boxes(12, side=7.5, seed=144):
            a = sorted(v for _, v in kd.search_range(box))
            b = sorted(v for _, v in pq.search_range(box))
            c = sorted(v for _, v in rt.range_search(box))
            assert a == b == c

    def test_nn_agreement_kd_vs_pq(self, buffer):
        from repro.core.nn import nearest
        from repro.geometry import Point

        points = random_points(600, seed=145)
        kd = KDTreeIndex(buffer)
        pq = PointQuadtreeIndex(buffer)
        for i, p in enumerate(points):
            kd.insert(p, i)
            pq.insert(p, i)
        query = Point(31.0, 77.0)
        d_kd = [round(d, 9) for d, _, _ in nearest(kd, query, 64)]
        d_pq = [round(d, 9) for d, _, _ in nearest(pq, query, 64)]
        assert d_kd == d_pq


class TestSegmentMethodsAgree:
    def test_pmr_equals_rtree(self, buffer):
        segments = random_segments(700, seed=146)
        pmr = PMRQuadtreeIndex(buffer, WORLD, threshold=8)
        rt = RTree(buffer)
        for i, s in enumerate(segments):
            pmr.insert(s, i)
            rt.insert(s, i)
        for win in [Box(5, 5, 25, 25), Box(40, 60, 70, 90), Box(0, 0, 100, 100)]:
            assert sorted(v for _, v in pmr.search_window(win)) == sorted(
                v for _, v in rt.range_search(win)
            )


class TestDynamicWorkload:
    def test_interleaved_insert_delete_search(self, buffer):
        """Random operation stream applied to index + Python-dict oracle."""
        rng = random.Random(147)
        words = random_words(300, seed=148)
        trie = TrieIndex(buffer, bucket_size=4)
        oracle: dict[int, str] = {}
        next_id = 0
        for _step in range(1500):
            action = rng.random()
            if action < 0.55 or not oracle:
                w = rng.choice(words)
                trie.insert(w, next_id)
                oracle[next_id] = w
                next_id += 1
            elif action < 0.8:
                victim = rng.choice(list(oracle))
                trie.delete(oracle.pop(victim), victim)
            else:
                probe = rng.choice(words)
                expected = sorted(i for i, w in oracle.items() if w == probe)
                got = sorted(v for _, v in trie.search_equal(probe))
                assert got == expected
        assert len(trie) == len(oracle)
