"""Integration: the full engine stack, SQL to storage and back.

Recreates the paper's Table 6 workflow end-to-end and stresses mixed DDL /
DML / query sequences across every index type.
"""

import random

import pytest

from repro.engine import Database
from repro.geometry import Point
from repro.workloads import random_points, random_words


@pytest.fixture
def db():
    return Database(buffer_capacity=512)


class TestPaperWorkflow:
    def test_table6_end_to_end(self, db):
        db.execute("CREATE TABLE word_data (name VARCHAR(50), id INT);")
        words = random_words(1500, seed=161)
        table = db.table("word_data")
        for i, w in enumerate(words):
            table.insert((w, i))
        db.execute(
            "CREATE INDEX sp_trie_index ON word_data USING SP_GiST "
            "(name SP_GiST_trie);"
        )
        db.execute("ANALYZE word_data;")

        probe = words[7]
        rows = db.execute(f"SELECT * FROM word_data WHERE name = '{probe}';")
        assert sorted(rows) == sorted(
            (w, i) for i, w in enumerate(words) if w == probe
        )

        plan = db.execute(
            f"EXPLAIN SELECT * FROM word_data WHERE name = '{probe}';"
        )
        assert "Index Scan" in plan and "sp_trie_index" in plan

    def test_point_workflow(self, db):
        db.execute("CREATE TABLE point_data (p POINT, id INT);")
        points = random_points(800, seed=162)
        table = db.table("point_data")
        for i, p in enumerate(points):
            table.insert((p, i))
        db.execute(
            "CREATE INDEX sp_kdtree_index ON point_data USING SP_GiST "
            "(p SP_GiST_kdtree);"
        )
        db.execute("ANALYZE point_data;")
        rows = db.execute("SELECT * FROM point_data WHERE p ^ '(0,0,25,25)';")
        from repro.geometry import Box

        box = Box(0, 0, 25, 25)
        assert sorted(r[1] for r in rows) == sorted(
            i for i, p in enumerate(points) if box.contains_point(p)
        )

    def test_nn_cursor_semantics(self, db):
        db.execute("CREATE TABLE point_data (p POINT, id INT);")
        points = random_points(500, seed=163)
        table = db.table("point_data")
        for i, p in enumerate(points):
            table.insert((p, i))
        db.execute(
            "CREATE INDEX kd ON point_data USING SP_GiST (p SP_GiST_kdtree);"
        )
        # the paper: "number of required NNs is controlled ... using cursors"
        for k in (1, 8, 32):
            rows = db.execute(
                f"SELECT * FROM point_data WHERE p @@ '(50,50)' LIMIT {k};"
            )
            assert len(rows) == k
        from repro.geometry.distance import euclidean

        rows = db.execute(
            "SELECT * FROM point_data WHERE p @@ '(50,50)' LIMIT 16;"
        )
        dists = [euclidean(r[0], Point(50, 50)) for r in rows]
        assert dists == sorted(dists)


class TestMixedWorkload:
    def test_insert_query_delete_cycle_keeps_indexes_consistent(self, db):
        db.execute("CREATE TABLE w (name VARCHAR(30), id INT);")
        db.execute("CREATE INDEX t ON w USING SP_GiST (name SP_GiST_trie);")
        db.execute("CREATE INDEX b ON w USING btree (name btree_varchar);")
        rng = random.Random(164)
        alive: dict[int, str] = {}
        words = random_words(120, seed=165)
        table = db.table("w")
        for step in range(600):
            move = rng.random()
            if move < 0.6 or not alive:
                w = rng.choice(words)
                table.insert((w, step))
                alive[step] = w
            elif move < 0.85:
                victim_id = rng.choice(list(alive))
                victim_word = alive.pop(victim_id)
                db.execute(
                    f"DELETE FROM w WHERE name = '{victim_word}';"
                )
                alive = {
                    i: w for i, w in alive.items() if w != victim_word
                }
            else:
                probe = rng.choice(words)
                rows = db.execute(f"SELECT * FROM w WHERE name = '{probe}';")
                assert sorted(r[1] for r in rows) == sorted(
                    i for i, w in alive.items() if w == probe
                )
        # Final consistency check across both indexes and the heap.
        trie_idx = table.indexes["t"]
        btree_idx = table.indexes["b"]
        for probe in words[:20]:
            heap_hits = sorted(
                i for i, w in alive.items() if w == probe
            )
            trie_hits = sorted(
                table.fetch(t)[1] for t in trie_idx.scan("=", probe)
            )
            btree_hits = sorted(
                table.fetch(t)[1] for t in btree_idx.scan("=", probe)
            )
            assert trie_hits == btree_hits == heap_hits


class TestMultipleTables:
    def test_independent_tables_share_buffer(self, db):
        db.execute("CREATE TABLE a (x VARCHAR(10));")
        db.execute("CREATE TABLE b (y INT);")
        db.execute("INSERT INTO a VALUES ('hello');")
        db.execute("INSERT INTO b VALUES (42);")
        assert db.execute("SELECT * FROM a;") == [("hello",)]
        assert db.execute("SELECT * FROM b;") == [(42,)]
