"""Integration: the I/O accounting that underpins every experiment.

These tests pin down the cost-model facts the paper's figures rely on:
searches through a small buffer pool miss; clustering cuts per-search page
reads; bulk-built B+-tree leaves scan sequentially (cheap) where trie
subtrees scatter; and a leading wildcard collapses the B+-tree's regex
narrowing but not the trie's.
"""

from repro.baselines import BPlusTree
from repro.bench import Workbench, measure, measure_many
from repro.indexes.trie import TrieIndex
from repro.workloads import random_words, sample_prefixes


def build_pair(n: int = 3000, pool_pages: int = 16):
    """One trie and one B+-tree over the same words, each on its own disk.

    Separate disks keep page allocation physically contiguous per structure
    (as separate index files are), which the sequential-read classification
    depends on.
    """
    words = random_words(n, seed=151)
    trie_bench = Workbench(pool_pages=pool_pages)
    trie = TrieIndex(trie_bench.buffer, bucket_size=32)
    for i, w in enumerate(words):
        trie.insert(w, i)
    trie.repack()
    btree_bench = Workbench(pool_pages=pool_pages)
    btree = BPlusTree(btree_bench.buffer)
    btree.bulk_load([(w, i) for i, w in enumerate(words)])
    return words, (trie, trie_bench), (btree, btree_bench)


class TestMeasurementPlumbing:
    def test_measure_counts_misses_and_cpu(self):
        words, (trie, bench), _ = build_pair(n=2000, pool_pages=8)
        bench.cold()
        _result, cost = measure(bench.buffer, lambda: trie.search_equal(words[0]))
        assert cost.io_reads > 0
        assert cost.io_reads == cost.seq_reads + cost.random_reads
        assert cost.cpu_ops > 0
        assert cost.operations == 1
        assert cost.cost > 0.0

    def test_measure_many_accumulates(self):
        words, (trie, bench), _ = build_pair(n=2000, pool_pages=8)
        batch = [lambda w=w: trie.search_equal(w) for w in words[:20]]
        total = measure_many(bench.buffer, batch)
        assert total.operations == 20
        assert total.reads_per_op >= 0.0
        assert total.cost_per_op >= 0.0

    def test_cold_each_costs_more_than_warm(self):
        words, (trie, bench), _ = build_pair(n=2000, pool_pages=64)
        probes = words[:30]
        warm = measure_many(
            bench.buffer, [lambda w=w: trie.search_equal(w) for w in probes]
        )
        cold = measure_many(
            bench.buffer,
            [lambda w=w: trie.search_equal(w) for w in probes],
            cold_each=True,
        )
        assert cold.io_reads >= warm.io_reads


class TestClusteringIOEffect:
    def test_repack_reduces_search_reads(self):
        bench = Workbench(pool_pages=16)
        words = random_words(4000, seed=152)
        trie = TrieIndex(bench.buffer, bucket_size=32)
        for i, w in enumerate(words):
            trie.insert(w, i)
        probes = words[::200]
        before = measure_many(
            bench.buffer,
            [lambda w=w: trie.search_equal(w) for w in probes],
            cold_each=True,
        )
        trie.repack()
        after = measure_many(
            bench.buffer,
            [lambda w=w: trie.search_equal(w) for w in probes],
            cold_each=True,
        )
        assert after.io_reads <= before.io_reads


class TestPaperIOFacts:
    def test_btree_prefix_beats_trie_prefix_cost(self):
        # Figure 6, prefix panel: bulk-built (CREATE INDEX) leaves are
        # physically sequential, so a prefix scan pays mostly cheap
        # sequential reads; the trie forks into scattered subtree pages.
        words, (trie, trie_bench), (btree, bt_bench) = build_pair(n=8000)
        prefixes = sample_prefixes(words, 15, length=1, seed=153)
        trie_cost = measure_many(
            trie_bench.buffer,
            [lambda p=p: trie.search_prefix(p) for p in prefixes],
            cold_each=True,
        )
        btree_cost = measure_many(
            bt_bench.buffer,
            [lambda p=p: list(btree.prefix_scan(p)) for p in prefixes],
            cold_each=True,
        )
        assert btree_cost.cost < trie_cost.cost
        # ...and sequential leaf reads are why:
        assert btree_cost.seq_reads > trie_cost.seq_reads

    def test_leading_wildcard_explodes_btree_reads_not_trie(self):
        # Figure 7's mechanism: '?' first char forces a full leaf-level
        # read in the B+-tree; the trie still filters on later characters.
        words, (trie, trie_bench), (btree, bt_bench) = build_pair(n=16000)
        sample = [w for w in words if len(w) >= 6][:10]
        patterns = ["?" + w[1:] for w in sample]
        trie_cost = measure_many(
            trie_bench.buffer,
            [lambda p=p: trie.search_regex(p) for p in patterns],
            cold_each=True,
        )
        btree_cost = measure_many(
            bt_bench.buffer,
            [lambda p=p: list(btree.regex_scan(p)) for p in patterns],
            cold_each=True,
        )
        assert btree_cost.io_reads > 2 * trie_cost.io_reads
        # The wildcard costs the B+-tree key comparisons on every entry too.
        assert btree_cost.cpu_ops > 2 * trie_cost.cpu_ops
