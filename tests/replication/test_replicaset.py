"""ReplicaSet: quorum writes, routed reads, failover, rejoin, fault channels."""

import pytest

from repro.errors import PrimaryUnavailableError, ReplicationError
from repro.replication import ReplicaSet
from repro.resilience.check import spgist_check
from repro.resilience.faults import ChannelFaultPolicy


@pytest.fixture
def rs(tmp_path):
    replica_set = ReplicaSet(
        str(tmp_path), kind="trie", replicas=2, quorum=1,
        heartbeat_timeout=3, max_lag=2, fsync=False,
    )
    yield replica_set
    replica_set.close()


class TestQuorumWrites:
    def test_acknowledged_write_is_on_a_quorum_of_standbys(self, rs):
        seq = rs.client_write([("alpha", 1), ("beta", 2)])
        applied = [
            entry.node
            for entry in rs.standbys
            if entry.node.applied_seq >= seq
        ]
        assert len(applied) >= rs.quorum
        assert sorted(applied[0].rows()) == [("alpha", 1), ("beta", 2)]

    def test_write_without_primary_raises(self, rs):
        rs.primary.crash(seed=1)
        with pytest.raises(PrimaryUnavailableError):
            rs.client_write([("alpha", 1)])

    def test_quorum_failure_is_an_unacknowledged_write(self, tmp_path):
        replica_set = ReplicaSet(
            str(tmp_path), kind="trie", replicas=1, quorum=1, fsync=False
        )
        replica_set.standbys[0].node.crash(seed=1)
        with pytest.raises(ReplicationError):
            replica_set.client_write([("alpha", 1)])
        replica_set.close()

    def test_writes_survive_lossy_channels(self, tmp_path):
        policy = ChannelFaultPolicy(
            seed=11, drop_rate=0.25, corrupt_rate=0.1,
            reorder_rate=0.25, duplicate_rate=0.1,
        )
        replica_set = ReplicaSet(
            str(tmp_path), kind="trie", replicas=2, quorum=2,
            fsync=False, channel_policies=[policy, policy],
        )
        rows = [(f"word{i}", i) for i in range(30)]
        for row in rows:
            replica_set.client_write([row])
        assert replica_set.catch_up()
        for entry in replica_set.standbys:
            assert sorted(entry.node.rows()) == sorted(rows)
        replica_set.close()


class TestRoutedReads:
    def test_reads_round_robin_over_standbys(self, rs):
        rs.client_write([("alpha", 1)])
        rs.catch_up()
        served = set()
        for _ in range(4):
            rows = rs.client_read("=", "alpha")
            assert rows == [("alpha", 1)]
            served.add(rs.last_served_by)
        assert served == {"node-1", "node-2"}

    def test_lagging_standby_is_skipped(self, tmp_path):
        replica_set = ReplicaSet(
            str(tmp_path), kind="trie", replicas=2, quorum=1,
            max_lag=0, fsync=False,
        )
        replica_set.client_write([("alpha", 1)])
        replica_set.catch_up()
        # node-1 falls one commit behind a zero-lag bound: never routed to.
        replica_set.standbys[0].node.applied_seq -= 1
        for _ in range(3):
            rows = replica_set.client_read("=", "alpha")
            assert rows == [("alpha", 1)]
            assert replica_set.last_served_by == "node-2"
        replica_set.close()

    def test_primary_serves_degraded_when_no_standby_qualifies(self, rs):
        rs.client_write([("alpha", 1)])
        rs.catch_up()
        for entry in rs.standbys:
            entry.node.needs_resync = True  # no ticks: flags stay until read
        rows = rs.client_read("=", "alpha")
        assert rows == [("alpha", 1)]
        assert rs.last_served_by == "node-0"

    def test_no_primary_and_no_standby_raises(self, rs):
        for entry in rs.standbys:
            entry.node.crash(seed=1)
        rs.primary.crash(seed=2)
        with pytest.raises(PrimaryUnavailableError):
            rs.client_read("=", "alpha")


class TestFailover:
    def test_failover_elects_most_caught_up_standby(self, rs):
        rs.client_write([("alpha", 1)])
        rs.catch_up()
        behind, ahead = rs.standbys[0].node, rs.standbys[1].node
        rs.client_write([("beta", 2)])
        rs.catch_up()
        behind.applied_seq -= 1  # model a node that lost its last apply
        rs.primary.crash(seed=5)
        for _ in range(rs.heartbeat_timeout):
            rs.tick()
        assert rs.primary is ahead
        assert len(rs.failover_log) == 1
        entry = rs.failover_log[0]
        assert entry["elected"] == ahead.name
        assert entry["missed_heartbeats"] == rs.heartbeat_timeout

    def test_writes_resume_after_failover(self, rs):
        rs.client_write([("alpha", 1)])
        old_primary = rs.primary
        rs.primary.crash(seed=5)
        with pytest.raises(PrimaryUnavailableError):
            rs.client_write([("beta", 2)])  # the mid-failover write window
        for _ in range(rs.heartbeat_timeout):
            rs.tick()
        assert rs.primary is not old_primary
        rs.client_write([("gamma", 3)])
        assert ("gamma", 3) in rs.primary.rows()
        assert ("alpha", 1) in rs.primary.rows()

    def test_deposed_primary_rejoins_as_standby(self, rs):
        rs.client_write([("alpha", 1)])
        old_primary = rs.primary
        old_primary.crash(seed=5)
        for _ in range(rs.heartbeat_timeout):
            rs.tick()
        rs.client_write([("beta", 2)])
        rs.rejoin(old_primary)
        assert old_primary.role == "standby"
        assert rs.catch_up()
        assert sorted(old_primary.rows()) == [("alpha", 1), ("beta", 2)]
        for node in rs.nodes:
            assert spgist_check(node.index).ok

    def test_current_primary_rejoins_as_primary_before_timeout(self, rs):
        rs.client_write([("alpha", 1)])
        rs.primary.crash(seed=5)
        rs.tick()  # one missed heartbeat < timeout: no failover yet
        assert not rs.failover_log
        rs.rejoin(rs.primary)
        assert rs.primary.role == "primary"
        rs.client_write([("beta", 2)])
        assert rs.catch_up()


class TestGauges:
    def test_lag_gauge_tracks_standby_position(self, rs):
        from repro.replication.replicaset import _LAG

        rs.client_write([("alpha", 1)])
        rs.catch_up()
        rs.standbys[0].node.applied_seq -= 1
        rs._update_gauges()
        assert _LAG.labels("node-1").value == 1
        assert _LAG.labels("node-2").value == 0
