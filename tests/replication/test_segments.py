"""WALSegment framing: roundtrip, corruption detection, record iteration."""

import struct
import zlib

import pytest

from repro.errors import SegmentCorruptError
from repro.replication.segments import WALSegment
from repro.storage.wal import REC_COMMIT, REC_PAGE_IMAGE

_HEADER = struct.Struct("<BIQI")  # the wal.py record header
_PAGE_ID = struct.Struct("<q")


def _record(rec_type: int, lsn: int, page_id: int = 0, image: bytes = b"") -> bytes:
    body = b"" if rec_type == REC_COMMIT else _PAGE_ID.pack(page_id) + image
    return _HEADER.pack(rec_type, len(body), lsn, zlib.crc32(body)) + body


class TestRoundtrip:
    def test_encode_decode_roundtrip(self):
        payload = (
            _record(REC_PAGE_IMAGE, 5, 1, b"page-one")
            + _record(REC_PAGE_IMAGE, 6, 2, b"page-two")
            + _record(REC_COMMIT, 7)
        )
        segment = WALSegment(seq=3, start_lsn=5, end_lsn=7, payload=payload)
        decoded = WALSegment.decode(segment.encode())
        assert decoded == segment
        replayed = list(decoded.records())
        assert [r.lsn for r in replayed] == [5, 6, 7]
        assert replayed[0].image == b"page-one"
        assert replayed[0].page_id == 1

    def test_size_bytes_matches_frame(self):
        segment = WALSegment(seq=1, start_lsn=1, end_lsn=1, payload=b"x" * 10)
        assert segment.size_bytes == len(segment.encode())


class TestCorruptionDetection:
    def _frame(self) -> bytes:
        payload = _record(REC_PAGE_IMAGE, 2, 1, b"body-bytes")
        return WALSegment(
            seq=1, start_lsn=2, end_lsn=2, payload=payload
        ).encode()

    def test_every_single_bit_flip_is_detected(self):
        frame = self._frame()
        for byte_index in range(len(frame)):
            flipped = bytearray(frame)
            flipped[byte_index] ^= 0x40
            with pytest.raises(SegmentCorruptError):
                WALSegment.decode(bytes(flipped))

    def test_truncated_frame_is_detected(self):
        frame = self._frame()
        for cut in (0, 5, len(frame) // 2, len(frame) - 1):
            with pytest.raises(SegmentCorruptError):
                WALSegment.decode(frame[:cut])

    def test_inverted_lsn_range_rejected(self):
        payload = _record(REC_PAGE_IMAGE, 3, 1, b"x")
        frame = WALSegment(
            seq=1, start_lsn=9, end_lsn=3, payload=payload
        ).encode()
        with pytest.raises(SegmentCorruptError):
            WALSegment.decode(frame)

    def test_torn_payload_rejected_by_records(self):
        # The frame CRC covers the payload, so a torn payload inside a
        # valid frame can only be constructed deliberately — but the
        # records() iterator still refuses it (defense in depth).
        torn = _record(REC_PAGE_IMAGE, 2, 1, b"full-record")[:-3]
        segment = WALSegment(seq=1, start_lsn=2, end_lsn=2, payload=torn)
        with pytest.raises(SegmentCorruptError):
            list(segment.records())
