"""Regression: shed reads in the failover window respect max_lag (PR 10).

Two related holes, one scenario. With the primary crashed but failover
not yet complete:

1. ``ReplicaSet._route_read`` used to waive the lag bound entirely
   (``head`` was None), so a standby arbitrarily far behind could serve
   a "lag-bounded" read even though the most-caught-up live standby —
   the node ``_failover`` is about to elect — was many commits ahead.
2. ``ReplicatedDatabase.standby_reader`` routed under the old epoch; a
   failover completing while the read was in flight could hand back rows
   from a node beyond ``max_lag`` of the *new* primary. The epoch fence
   now re-validates the serving node after the read and declines.
"""

from __future__ import annotations

import tempfile

import pytest

from repro.replication.replicaset import ReplicaSet
from repro.resilience.faults import ChannelFaultPolicy
from repro.server.bridge import ReplicatedDatabase


def _cluster_with_lagged_standby(tmp: str) -> ReplicaSet:
    """Primary + caught-up standby (node-1) + fully-lagged standby (node-2).

    node-2's shipping channel drops every frame, so it stays at
    applied_seq 0 while node-1 acknowledges everything.
    """
    rs = ReplicaSet(
        tmp,
        kind="trie",
        replicas=2,
        quorum=1,
        max_lag=1,
        fsync=False,
        channel_policies=[
            ChannelFaultPolicy(),
            ChannelFaultPolicy(seed=7, drop_rate=1.0),
        ],
    )
    for i in range(5):
        rs.client_write([(f"word-{i}", i)])
    caught_up = rs.standbys[0].node
    lagged = rs.standbys[1].node
    assert caught_up.applied_seq == rs.primary.commit_seq
    assert lagged.applied_seq < rs.primary.commit_seq - rs.max_lag
    return rs


class TestRouteReadWindow:
    def test_lag_bound_holds_while_primary_is_down(self):
        with tempfile.TemporaryDirectory() as tmp:
            rs = _cluster_with_lagged_standby(tmp)
            caught_up = rs.standbys[0].node
            rs.primary.crash()
            # The failover window: no primary yet, reads still served.
            # Every routed read must come from the future winner (the
            # caught-up standby), never the dropped-frames straggler.
            for _ in range(6):
                rows = rs.client_read("=", "word-4")
                assert rs.last_served_by == caught_up.name
                assert rows, (
                    "read served by a standby that never applied the "
                    "acknowledged commit"
                )
            rs.close()

    def test_straggler_serves_once_within_bound(self):
        """Control: a standby inside max_lag is still eligible."""
        with tempfile.TemporaryDirectory() as tmp:
            rs = ReplicaSet(
                tmp, kind="trie", replicas=2, quorum=2, max_lag=2, fsync=False
            )
            rs.client_write([("alpha", 1)])
            rs.primary.crash()
            served = set()
            for _ in range(4):
                rs.client_read("=", "alpha")
                served.add(rs.last_served_by)
            assert len(served) == 2  # both standbys rotate: both in bound
            rs.close()

    def test_no_live_standby_raises_cleanly(self):
        with tempfile.TemporaryDirectory() as tmp:
            rs = ReplicaSet(tmp, kind="trie", replicas=1, quorum=1, fsync=False)
            rs.client_write([("alpha", 1)])
            rs.primary.crash()
            rs.standbys[0].node.crash()
            from repro.errors import PrimaryUnavailableError

            with pytest.raises(PrimaryUnavailableError):
                rs.client_read("=", "alpha")
            rs.close()


class TestStandbyReaderEpochFence:
    def _failover_during_read(self, rs: ReplicaSet, rdb: ReplicatedDatabase):
        """Wrap client_read so a failover completes while it is in flight."""
        lagged = rs.standbys[1].node
        original = rs.client_read

        def read_with_concurrent_failover(op, operand):
            rows = original(op, operand)
            # The chaos thread's interleaving, compressed: primary dies
            # and the caught-up standby is promoted before the shed read
            # returns to the session manager. Exactly heartbeat_timeout
            # ticks: promotion fires on the last one, and no pump has
            # run since, so the straggler is still unresynced — the
            # sharpest version of the window.
            rs.primary.crash()
            for _ in range(rs.heartbeat_timeout):
                rs.tick()
            assert rs.primary is not rdb._bound_node  # epoch really moved
            # Pretend the routing decision had picked the straggler: the
            # rows it would have produced are stale beyond max_lag of the
            # *new* primary.
            rs.last_served_by = lagged.name
            return rows

        rs.client_read = read_with_concurrent_failover  # type: ignore[method-assign]

    def test_fence_declines_stale_rows_after_failover(self):
        with tempfile.TemporaryDirectory() as tmp:
            rs = _cluster_with_lagged_standby(tmp)
            rdb = ReplicatedDatabase(rs)
            self._failover_during_read(rs, rdb)
            result = rdb.standby_reader("SELECT * FROM data WHERE key = 'word-4'")
            assert result is None, (
                "epoch fence must decline a shed read served beyond "
                "max_lag of the new primary"
            )
            rs.close()

    def test_fence_passes_reads_from_a_caught_up_node(self):
        with tempfile.TemporaryDirectory() as tmp:
            rs = _cluster_with_lagged_standby(tmp)
            rdb = ReplicatedDatabase(rs)
            caught_up = rs.standbys[0].node
            original = rs.client_read

            def read_with_benign_failover(op, operand):
                rows = original(op, operand)
                rs.primary.crash()
                for _ in range(rs.heartbeat_timeout):
                    rs.tick()
                rs.last_served_by = caught_up.name
                return rows

            rs.client_read = read_with_benign_failover  # type: ignore[method-assign]
            result = rdb.standby_reader("SELECT * FROM data WHERE key = 'word-4'")
            # The serving node IS the new primary (lag 0): rows stand.
            assert result is not None and len(result) == 1
            rs.close()

    def test_quiet_path_unchanged(self):
        with tempfile.TemporaryDirectory() as tmp:
            rs = _cluster_with_lagged_standby(tmp)
            rdb = ReplicatedDatabase(rs)
            result = rdb.standby_reader("SELECT * FROM data WHERE key = 'word-4'")
            assert result is not None and len(result) == 1
            rs.close()
