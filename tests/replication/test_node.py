"""StorageNode lifecycle: basebackup, apply, promote, crash, resync."""

import os

import pytest

from repro.errors import ReplicaDivergedError, ReplicationError
from repro.replication import StorageNode
from repro.resilience.check import spgist_check


@pytest.fixture
def primary(tmp_path):
    node = StorageNode.create_primary(
        "p", os.path.join(tmp_path, "p.dat"), "trie", fsync=False
    )
    yield node
    if not node.crashed:
        node.close()


def _write(node: StorageNode, rows: list[tuple]) -> None:
    assert node.table is not None
    node.table.insert_many(rows)
    node.commit()


def _standby(primary: StorageNode, tmp_path, name: str = "s") -> StorageNode:
    return StorageNode.basebackup(
        primary, name, os.path.join(tmp_path, f"{name}.dat"), fsync=False
    )


class TestPrimaryLifecycle:
    def test_create_primary_commits_the_empty_schema(self, primary):
        assert primary.role == "primary"
        assert primary.commit_seq == 1
        assert primary.outbox == []  # nothing shippable before a standby

    def test_commit_frames_one_segment_per_commit(self, primary):
        _write(primary, [("alpha", 1)])
        _write(primary, [("beta", 2), ("gamma", 3)])
        assert [s.seq for s in primary.outbox] == [2, 3]
        assert [s.seq for s in primary.archive] == [2, 3]
        # LSN ranges are strictly increasing and non-overlapping.
        first, second = primary.archive
        assert first.end_lsn < second.start_lsn

    def test_checkpoint_only_sync_ships_nothing(self, primary, tmp_path):
        _standby(primary, tmp_path)  # basebackup syncs the primary
        assert primary.outbox == []
        assert primary.commit_seq == 1

    def test_standby_cannot_commit(self, primary, tmp_path):
        standby = _standby(primary, tmp_path)
        with pytest.raises(ReplicationError):
            standby.commit()
        standby.close()


class TestStandbyApply:
    def test_applied_segments_reach_the_engine(self, primary, tmp_path):
        standby = _standby(primary, tmp_path)
        _write(primary, [("alpha", 1), ("beta", 2)])
        for segment in primary.outbox:
            assert standby.apply_segment(segment) == "applied"
        assert sorted(standby.rows()) == [("alpha", 1), ("beta", 2)]
        assert list(standby.search("=", "alpha")) == [("alpha", 1)]
        assert spgist_check(standby.index).ok
        standby.close()

    def test_duplicate_and_buffered_segments(self, primary, tmp_path):
        standby = _standby(primary, tmp_path)
        _write(primary, [("alpha", 1)])
        _write(primary, [("beta", 2)])
        seg2, seg3 = primary.outbox
        assert standby.apply_segment(seg3) == "buffered"
        assert standby.pending_count == 1
        # Closing the gap applies the buffered successor in the same call.
        assert standby.apply_segment(seg2) == "applied"
        assert standby.applied_seq == 3
        assert standby.apply_segment(seg2) == "duplicate"
        assert sorted(standby.rows()) == [("alpha", 1), ("beta", 2)]
        standby.close()

    def test_overlapping_lsn_is_divergence(self, primary, tmp_path):
        standby = _standby(primary, tmp_path)
        _write(primary, [("alpha", 1)])
        (segment,) = primary.outbox
        standby.apply_segment(segment)
        # Same seq+1 but an LSN range the standby already applied: the
        # shape of a stale-timeline segment after a mis-promotion.
        stale = type(segment)(
            seq=segment.seq + 1,
            start_lsn=segment.start_lsn,
            end_lsn=segment.end_lsn,
            payload=segment.payload,
        )
        with pytest.raises(ReplicaDivergedError):
            standby.apply_segment(stale)
        assert standby.needs_resync
        standby.close()


class TestPromotion:
    def test_promote_truncates_divergence_and_accepts_writes(
        self, primary, tmp_path
    ):
        standby = _standby(primary, tmp_path)
        _write(primary, [("alpha", 1)])
        _write(primary, [("beta", 2)])
        seg2, seg3 = primary.outbox
        standby.apply_segment(seg2)
        # seg4 arrives out of order and stays buffered; promotion must
        # truncate it away (WAL divergence truncation).
        _write(primary, [("gamma", 3)])
        seg4 = primary.outbox[-1]
        standby.apply_segment(seg4)
        assert standby.pending_count == 1

        standby.promote()
        assert standby.role == "primary"
        assert standby.pending_count == 0
        assert standby.commit_seq == seg2.seq
        _write(standby, [("delta", 4)])
        assert sorted(standby.rows()) == [("alpha", 1), ("delta", 4)]
        # New segments continue the numbering past the applied position,
        # with LSNs beyond everything applied.
        (fresh,) = standby.outbox
        assert fresh.seq == seg2.seq + 1
        assert fresh.start_lsn > seg2.end_lsn
        assert spgist_check(standby.index).ok
        standby.close()


class TestCrashRestartResync:
    def test_primary_crash_recovers_committed_state(self, primary):
        _write(primary, [("alpha", 1)])
        primary.crash(seed=7)
        assert primary.crashed
        primary.restart()
        assert primary.commit_seq == 2
        assert sorted(primary.rows()) == [("alpha", 1)]
        assert spgist_check(primary.index).ok

    def test_standby_crash_restart_keeps_applied_position(
        self, primary, tmp_path
    ):
        standby = _standby(primary, tmp_path)
        _write(primary, [("alpha", 1)])
        for segment in primary.outbox:
            standby.apply_segment(segment)
        standby.crash(seed=3)
        standby.restart()
        assert standby.applied_seq == 2
        assert sorted(standby.rows()) == [("alpha", 1)]
        standby.close()

    def test_full_resync_reseeds_a_diverged_node(self, primary, tmp_path):
        standby = _standby(primary, tmp_path)
        _write(primary, [("alpha", 1)])
        # The standby never receives the segment and its position falls
        # below a restarted primary's archive floor.
        primary.crash(seed=1)
        primary.restart()
        with pytest.raises(ReplicaDivergedError):
            primary.segments_since(standby.applied_seq)
        standby.full_resync(primary)
        assert standby.applied_seq == primary.commit_seq
        assert sorted(standby.rows()) == [("alpha", 1)]
        assert not standby.needs_resync
        standby.close()
