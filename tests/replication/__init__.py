"""Tests for the WAL-shipping replication subsystem (repro.replication)."""
