"""Unit tests for the Box type."""

import math

import pytest

from repro.geometry import Box, Point


class TestBoxConstruction:
    def test_invalid_corners_raise(self):
        with pytest.raises(ValueError):
            Box(5, 0, 0, 5)
        with pytest.raises(ValueError):
            Box(0, 5, 5, 0)

    def test_degenerate_boxes_allowed(self):
        b = Box(1, 2, 1, 2)
        assert b.area() == 0.0
        assert b.contains_point(Point(1, 2))

    def test_from_points_normalizes_corner_order(self):
        b = Box.from_points(Point(5, 1), Point(2, 7))
        assert (b.xmin, b.ymin, b.xmax, b.ymax) == (2, 1, 5, 7)

    def test_from_point(self):
        assert Box.from_point(Point(3, 4)) == Box(3, 4, 3, 4)

    def test_bounding_of_many(self):
        b = Box.bounding([Box(0, 0, 1, 1), Box(5, -2, 6, 0), Box(2, 2, 3, 9)])
        assert b == Box(0, -2, 6, 9)

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError):
            Box.bounding([])

    def test_parse_normalizes(self):
        assert Box.parse("(5,5,0,0)") == Box(0, 0, 5, 5)

    def test_infinite_box_is_legal(self):
        b = Box(-math.inf, -math.inf, math.inf, math.inf)
        assert b.contains_point(Point(1e12, -1e12))


class TestBoxPredicates:
    def test_contains_point_borders_inclusive(self):
        b = Box(0, 0, 10, 10)
        assert b.contains_point(Point(0, 0))
        assert b.contains_point(Point(10, 10))
        assert not b.contains_point(Point(10.001, 5))

    def test_contains_box(self):
        outer = Box(0, 0, 10, 10)
        assert outer.contains_box(Box(1, 1, 9, 9))
        assert outer.contains_box(outer)
        assert not outer.contains_box(Box(5, 5, 11, 9))

    def test_intersects_symmetric_and_border_touching(self):
        a = Box(0, 0, 5, 5)
        b = Box(5, 5, 9, 9)  # touches at one corner
        assert a.intersects(b) and b.intersects(a)
        assert not a.intersects(Box(6, 6, 7, 7))

    def test_disjoint_in_one_axis_only(self):
        a = Box(0, 0, 5, 5)
        assert not a.intersects(Box(0, 6, 5, 8))
        assert not a.intersects(Box(6, 0, 8, 5))


class TestBoxMeasures:
    def test_area_margin_center(self):
        b = Box(0, 0, 4, 3)
        assert b.area() == 12
        assert b.margin() == 7
        assert b.center() == Point(2, 1.5)

    def test_union_and_enlargement(self):
        a = Box(0, 0, 2, 2)
        b = Box(3, 3, 4, 4)
        u = a.union(b)
        assert u == Box(0, 0, 4, 4)
        assert a.enlargement(b) == u.area() - a.area()
        assert a.enlargement(Box(0, 0, 1, 1)) == 0.0

    def test_quadrants_tile_the_box(self):
        b = Box(0, 0, 10, 10)
        nw, ne, sw, se = b.quadrants()
        assert nw == Box(0, 5, 5, 10)
        assert ne == Box(5, 5, 10, 10)
        assert sw == Box(0, 0, 5, 5)
        assert se == Box(5, 0, 10, 5)
        assert sum(q.area() for q in (nw, ne, sw, se)) == b.area()
