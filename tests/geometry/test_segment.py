"""Unit tests for LineSegment, especially the box-intersection clipper."""

import pytest

from repro.geometry import Box, LineSegment, Point


def seg(ax, ay, bx, by) -> LineSegment:
    return LineSegment(Point(ax, ay), Point(bx, by))


class TestSegmentBasics:
    def test_bounding_box(self):
        assert seg(5, 1, 2, 7).bounding_box() == Box(2, 1, 5, 7)

    def test_length_and_midpoint(self):
        s = seg(0, 0, 3, 4)
        assert s.length() == 5.0
        assert s.midpoint() == Point(1.5, 2.0)

    def test_parse_roundtrip(self):
        s = seg(1.5, 2, 3, 4.25)
        assert LineSegment.parse(str(s)) == s

    def test_parse_literal(self):
        assert LineSegment.parse("[(0,0),(3,4)]") == seg(0, 0, 3, 4)


class TestSegmentBoxIntersection:
    def test_endpoint_inside(self):
        assert seg(1, 1, 20, 20).intersects_box(Box(0, 0, 5, 5))

    def test_fully_inside(self):
        assert seg(1, 1, 2, 2).intersects_box(Box(0, 0, 5, 5))

    def test_crossing_through_without_endpoints_inside(self):
        # Segment passes straight through the box.
        assert seg(-5, 2.5, 10, 2.5).intersects_box(Box(0, 0, 5, 5))

    def test_diagonal_crossing(self):
        assert seg(-1, -1, 6, 6).intersects_box(Box(0, 0, 5, 5))

    def test_miss_beside_box(self):
        assert not seg(6, 0, 10, 4).intersects_box(Box(0, 0, 5, 5))

    def test_miss_diagonal_near_corner(self):
        # Passes near the corner but outside.
        assert not seg(5.5, -1, 7, 1).intersects_box(Box(0, 0, 5, 5))

    def test_touching_border_counts(self):
        assert seg(5, -1, 5, 6).intersects_box(Box(0, 0, 5, 5))

    def test_degenerate_segment_is_a_point(self):
        assert seg(2, 2, 2, 2).intersects_box(Box(0, 0, 5, 5))
        assert not seg(9, 9, 9, 9).intersects_box(Box(0, 0, 5, 5))

    def test_vertical_segment(self):
        assert seg(2, -10, 2, 10).intersects_box(Box(0, 0, 5, 5))
        assert not seg(-1, -10, -1, 10).intersects_box(Box(0, 0, 5, 5))

    @pytest.mark.parametrize("dx,dy", [(0.0, 7.0), (7.0, 0.0), (7.0, 7.0)])
    def test_far_segments_disjoint(self, dx, dy):
        base = Box(0, 0, 5, 5)
        assert not seg(dx + 6, dy + 6, dx + 8, dy + 8).intersects_box(base)
