"""Unit tests for the distance kernels used by NN search."""

import math

from repro.geometry import (
    Box,
    LineSegment,
    Point,
    euclidean,
    euclidean_squared,
    hamming,
    point_to_box_distance,
    point_to_segment_distance,
)
from repro.geometry.distance import prefix_hamming_lower_bound


class TestEuclidean:
    def test_pythagorean(self):
        assert euclidean(Point(0, 0), Point(3, 4)) == 5.0

    def test_squared_consistent(self):
        a, b = Point(1, 2), Point(4, 6)
        assert euclidean_squared(a, b) == euclidean(a, b) ** 2

    def test_zero_distance(self):
        assert euclidean(Point(7, 7), Point(7, 7)) == 0.0

    def test_symmetry(self):
        a, b = Point(-1, 5), Point(2, -3)
        assert euclidean(a, b) == euclidean(b, a)


class TestHamming:
    def test_equal_strings(self):
        assert hamming("abc", "abc") == 0

    def test_simple_mismatch(self):
        assert hamming("abc", "axc") == 1

    def test_length_difference_counts(self):
        assert hamming("abc", "abcde") == 2
        assert hamming("", "xyz") == 3

    def test_prefix_relation(self):
        # Distance to a strict prefix is the length difference.
        assert hamming("space", "spa") == 2

    def test_symmetry(self):
        assert hamming("star", "spade") == hamming("spade", "star")


class TestMindist:
    def test_point_inside_box_is_zero(self):
        assert point_to_box_distance(Point(2, 2), Box(0, 0, 5, 5)) == 0.0

    def test_point_beside_box(self):
        assert point_to_box_distance(Point(8, 2), Box(0, 0, 5, 5)) == 3.0

    def test_point_diagonal_from_corner(self):
        assert point_to_box_distance(Point(8, 9), Box(0, 0, 5, 5)) == 5.0

    def test_infinite_box(self):
        world = Box(-math.inf, -math.inf, math.inf, math.inf)
        assert point_to_box_distance(Point(1e6, -1e6), world) == 0.0

    def test_mindist_lower_bounds_all_contained_points(self):
        box = Box(2, 3, 7, 9)
        q = Point(0, 0)
        bound = point_to_box_distance(q, box)
        for p in (Point(2, 3), Point(7, 9), Point(4.5, 6)):
            assert bound <= euclidean(q, p)


class TestSegmentDistance:
    def test_projection_onto_interior(self):
        s = LineSegment(Point(0, 0), Point(10, 0))
        assert point_to_segment_distance(Point(5, 3), s) == 3.0

    def test_clamps_to_endpoint(self):
        s = LineSegment(Point(0, 0), Point(10, 0))
        assert point_to_segment_distance(Point(13, 4), s) == 5.0

    def test_degenerate_segment(self):
        s = LineSegment(Point(1, 1), Point(1, 1))
        assert point_to_segment_distance(Point(4, 5), s) == 5.0

    def test_point_on_segment_is_zero(self):
        s = LineSegment(Point(0, 0), Point(4, 4))
        assert point_to_segment_distance(Point(2, 2), s) == 0.0


class TestPrefixHammingBound:
    def test_is_admissible_for_extensions(self):
        prefix, query = "spa", "spade"
        bound = prefix_hamming_lower_bound(prefix, query)
        for extension in ("spa", "spam", "space", "sparkle"):
            assert bound <= hamming(extension, query)

    def test_counts_prefix_mismatches(self):
        assert prefix_hamming_lower_bound("xyz", "abc") == 3

    def test_counts_excess_length(self):
        # Every extension of a 5-char prefix is >= 5 chars; query is 3.
        assert prefix_hamming_lower_bound("abcde", "abc") == 2

    def test_zero_for_matching_prefix(self):
        assert prefix_hamming_lower_bound("ab", "abxyz") == 0
