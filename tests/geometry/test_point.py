"""Unit tests for the Point type."""

import pytest

from repro.geometry import Point


class TestPointBasics:
    def test_coord_axes(self):
        p = Point(3.0, -4.5)
        assert p.coord(0) == 3.0
        assert p.coord(1) == -4.5

    def test_coord_invalid_axis_raises(self):
        with pytest.raises(ValueError):
            Point(0, 0).coord(2)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)

    def test_translated_returns_new_point(self):
        p = Point(1.0, 2.0)
        q = p.translated(0.5, -1.0)
        assert q == Point(1.5, 1.0)
        assert p == Point(1.0, 2.0)  # original untouched

    def test_equality_and_hash(self):
        assert Point(1, 2) == Point(1, 2)
        assert hash(Point(1, 2)) == hash(Point(1, 2))
        assert Point(1, 2) != Point(2, 1)

    def test_ordering_is_lexicographic(self):
        assert Point(1, 9) < Point(2, 0)
        assert Point(1, 2) < Point(1, 3)

    def test_approx_bytes(self):
        assert Point(0, 0).approx_bytes() == 16


class TestPointParsing:
    def test_parse_plain(self):
        assert Point.parse("(0,1)") == Point(0.0, 1.0)

    def test_parse_with_spaces_and_floats(self):
        assert Point.parse(" ( 2.5 , -3.75 ) ") == Point(2.5, -3.75)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Point.parse("(1,2,3)")

    def test_str_roundtrip(self):
        p = Point(12.25, -0.5)
        assert Point.parse(str(p)) == p
