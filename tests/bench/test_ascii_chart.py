"""Tests for the ASCII chart renderer and the Zipf workload."""

from repro.bench import ascii_chart
from repro.workloads import random_words, zipf_words


class TestAsciiChart:
    def test_title_and_labels_present(self):
        text = ascii_chart(
            "My Figure", [10, 20], {"trie": [1.0, 2.0], "btree": [3.0, 4.0]}
        )
        assert text.startswith("My Figure")
        assert "trie" in text and "btree" in text
        assert "10" in text and "20" in text

    def test_bar_lengths_monotone_in_values(self):
        text = ascii_chart("t", [1, 2], {"s": [1.0, 10.0]}, width=40)
        lines = [l for l in text.splitlines() if "|" in l]
        small = lines[0].split("|")[1]
        large = lines[1].split("|")[1]
        assert small.count("█") < large.count("█")

    def test_log_scale_compresses(self):
        linear = ascii_chart("t", [1, 2], {"s": [1.0, 1000.0]}, width=40)
        logscale = ascii_chart(
            "t", [1, 2], {"s": [1.0, 1000.0]}, width=40, log_scale=True
        )

        def bar_of(text, idx):
            return [l for l in text.splitlines() if "|" in l][idx].count("█")

        # On a log scale the small value is visible; linearly it vanishes.
        assert bar_of(logscale, 0) >= bar_of(linear, 0)

    def test_zero_values_ok(self):
        text = ascii_chart("t", [1], {"s": [0.0]})
        assert "0.00" in text

    def test_empty_series(self):
        assert ascii_chart("t", [], {}) == "t"


class TestZipfWords:
    def test_count_and_vocabulary(self):
        words = zipf_words(5000, vocabulary=500, seed=1)
        assert len(words) == 5000
        assert len(set(words)) <= 500

    def test_skew_head_dominates(self):
        words = zipf_words(10000, vocabulary=1000, exponent=1.2, seed=2)
        from collections import Counter

        counts = Counter(words).most_common()
        top_share = sum(c for _, c in counts[:10]) / len(words)
        uniform = random_words(10000, seed=2)
        uniform_top = sum(
            c for _, c in Counter(uniform).most_common()[:10]
        ) / len(uniform)
        assert top_share > 5 * uniform_top

    def test_deterministic(self):
        assert zipf_words(100, seed=7) == zipf_words(100, seed=7)

    def test_duplicate_heavy_trie_workload(self, buffer):
        # Spill handling under a realistic skewed stream.
        from repro.indexes.trie import TrieIndex

        words = zipf_words(2000, vocabulary=100, seed=3)
        trie = TrieIndex(buffer, bucket_size=4)
        for i, w in enumerate(words):
            trie.insert(w, i)
        probe = max(set(words), key=words.count)
        expected = sorted(i for i, w in enumerate(words) if w == probe)
        assert sorted(v for _, v in trie.search_equal(probe)) == expected
