"""Regression gate for the client-resilience benchmark (BENCH_9.json).

Mirrors the other bench gates: the committed report must exist with the
expected schema and sane numbers, and a small in-process re-run must
show the pooled driver completing every operation with a bounded tail
through an injected drain-and-restart — the acceptance criterion for
the fault-tolerant driver is "no unbounded hang, no failed operations",
not a raw latency number (CI boxes vary too much for that).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.client_resilience import SCHEMA, run

BENCH_PATH = Path(__file__).resolve().parents[2] / "BENCH_9.json"

#: In-process quick point: every pooled operation must land under this
#: many milliseconds even through the restart window. Deliberately loose
#: (the committed report shows ~50ms p99); it exists to catch hangs and
#: retry storms, not small regressions.
MAX_POOLED_MS = 20_000.0


@pytest.fixture(scope="module")
def report() -> dict:
    assert BENCH_PATH.exists(), (
        "BENCH_9.json missing - run: PYTHONPATH=src python -m "
        "repro.bench.client_resilience --out BENCH_9.json"
    )
    data = json.loads(BENCH_PATH.read_text())
    assert data["schema"] == SCHEMA
    return data


def _mode(report: dict, name: str) -> dict:
    matches = [m for m in report["modes"] if m["mode"] == name]
    assert len(matches) == 1, f"expected exactly one {name!r} mode entry"
    return matches[0]


class TestCommittedReport:
    def test_both_modes_present(self, report: dict) -> None:
        assert {m["mode"] for m in report["modes"]} == {"pooled", "bare"}

    def test_pooled_lost_nothing(self, report: dict) -> None:
        pooled = _mode(report, "pooled")
        assert pooled["operations"] > 0
        assert pooled["failed"] == 0
        assert pooled["completed"] == pooled["operations"]

    def test_pooled_tail_is_bounded(self, report: dict) -> None:
        pooled = _mode(report, "pooled")
        assert 0 < pooled["p99_ms"] <= pooled["max_ms"]
        # The whole run, failover included, finished: max latency is a
        # real number far below the operation deadline (30s).
        assert pooled["max_ms"] < 30_000.0

    def test_percentiles_ordered(self, report: dict) -> None:
        for mode in report["modes"]:
            assert mode["p50_ms"] <= mode["p95_ms"] <= mode["p99_ms"]

    def test_failover_actually_happened(self, report: dict) -> None:
        for mode in report["modes"]:
            assert "drain" in mode  # drain stats recorded per mode


class TestQuickPoint:
    """One small live point: pooled driver through a real restart."""

    def test_pooled_survives_restart(self) -> None:
        result = run(threads=2, ops_per_thread=20, seed=7)
        pooled = _mode(result, "pooled")
        assert pooled["operations"] == 40
        assert pooled["failed"] == 0, (
            "pooled driver lost operations through the restart"
        )
        assert pooled["max_ms"] < MAX_POOLED_MS, (
            f"tail latency {pooled['max_ms']}ms suggests a hang or "
            f"retry storm through the failover"
        )
