"""Tests for the report formatting helpers and the Table 7 LoC counter."""

import math

from repro.bench.loc import INSTANTIATIONS, core_lines, count_code_lines, table7_rows
from repro.bench.report import format_table, log10, ratio_percent


class TestRatioHelpers:
    def test_ratio_percent(self):
        assert ratio_percent(3, 2) == 150.0
        assert ratio_percent(1, 4) == 25.0

    def test_ratio_zero_denominator(self):
        assert ratio_percent(5, 0) == math.inf
        assert ratio_percent(0, 0) == 100.0

    def test_log10(self):
        assert log10(1000) == 3.0
        assert log10(0) == 0.0


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            "My Title", ["name", "value"], [["a", 1.5], ["long-name", 22]]
        )
        lines = text.splitlines()
        assert lines[0] == "My Title"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.50" in text  # float formatting
        assert "long-name" in text

    def test_empty_rows(self):
        text = format_table("T", ["a"], [])
        assert "T" in text and "a" in text


class TestLocCounter:
    def test_counts_code_not_comments(self, tmp_path):
        source = tmp_path / "mod.py"
        source.write_text(
            '"""Module docstring\nspanning lines.\n"""\n'
            "# a comment\n"
            "\n"
            "x = 1\n"
            "def f():\n"
            "    return x\n"
        )
        assert count_code_lines(source) == 3

    def test_single_line_docstring(self, tmp_path):
        source = tmp_path / "mod.py"
        source.write_text('"""one-liner"""\ny = 2\n')
        assert count_code_lines(source) == 1

    def test_core_lines_positive(self):
        assert core_lines() > 500

    def test_table7_covers_all_instantiations(self):
        rows = table7_rows()
        assert {r.name for r in rows} == set(INSTANTIATIONS)
        for row in rows:
            assert 0 < row.external_lines < row.total_lines
            assert 0.0 < row.percentage < 100.0
