"""Smoke tests for the experiment implementations (tiny sizes).

The benchmark suite runs the figures at experiment scale and asserts the
paper shapes; these tests only verify the machinery — every figure function
returns well-formed rows with positive costs at toy sizes, quickly.
"""

from repro.bench.figures import (
    ExperimentRow,
    ablation_bucket_size,
    ablation_buffer_pool,
    ablation_clustering,
    ablation_node_shrink,
    ablation_path_shrink,
    ablation_pmr_threshold,
    fig6_to_8_string_search,
    fig9_to_12_insert_size_height,
    fig13_14_kdtree_rtree,
    fig15_pmr_rtree,
    fig16_suffix_vs_seqscan,
    fig17_nn_search,
)


def assert_rows(rows, expected_x, required_columns):
    assert [r.size for r in rows] == list(expected_x)
    for row in rows:
        assert isinstance(row, ExperimentRow)
        for column in required_columns:
            assert column in row.values, column
            assert row.values[column] >= 0.0


class TestStringFigures:
    def test_fig6_to_8(self):
        rows = fig6_to_8_string_search(sizes=(500, 1000), batch=10)
        assert_rows(rows, (500, 1000),
                    ("exact_ratio", "prefix_ratio", "regex_ratio",
                     "trie_exact_stddev"))

    def test_fig9_to_12(self):
        rows = fig9_to_12_insert_size_height(sizes=(800, 1600))
        assert_rows(rows, (800, 1600),
                    ("insert_ratio", "size_ratio", "trie_node_height",
                     "trie_page_height"))
        for row in rows:
            assert row.values["trie_pages"] > 0
            assert row.values["btree_pages"] > 0


class TestSpatialFigures:
    def test_fig13_14(self):
        rows = fig13_14_kdtree_rtree(sizes=(500,), batch=10)
        assert_rows(rows, (500,),
                    ("point_ratio", "range_ratio", "insert_ratio",
                     "size_ratio"))

    def test_fig15(self):
        rows = fig15_pmr_rtree(sizes=(400,), batch=10)
        assert_rows(rows, (400,),
                    ("insert_ratio", "exact_ratio", "range_ratio"))

    def test_fig16(self):
        rows = fig16_suffix_vs_seqscan(sizes=(400,), batch=5)
        assert_rows(rows, (400,), ("ratio", "read_ratio"))
        assert rows[0].values["ratio"] > 0.5

    def test_fig17(self):
        rows = fig17_nn_search(nn_counts=(4, 8), size=600, queries=2)
        assert_rows(rows, (4, 8),
                    ("kdtree_cost", "pquadtree_cost", "trie_cost"))


class TestAblations:
    def test_bucket(self):
        rows = ablation_bucket_size(bucket_sizes=(2, 16), size=600, batch=10)
        assert_rows(rows, (2, 16), ("exact_cost", "pages", "nodes"))

    def test_path_shrink(self):
        rows = ablation_path_shrink(size=600, batch=10)
        assert_rows(rows, (0, 1), ("exact_cost", "node_height"))

    def test_node_shrink(self):
        rows = ablation_node_shrink(size=400)
        assert_rows(rows, (1, 0), ("nodes", "pages"))

    def test_clustering(self):
        rows = ablation_clustering(size=600, batch=10)
        assert_rows(rows, (0, 1), ("exact_cost", "page_height", "fill"))

    def test_buffer_pool(self):
        rows = ablation_buffer_pool(pool_sizes=(4, 32), size=600, batch=10)
        assert_rows(rows, (4, 32), ("reads_per_op", "hit_ratio"))

    def test_pmr_threshold(self):
        rows = ablation_pmr_threshold(thresholds=(4, 8), size=400, batch=10)
        assert_rows(rows, (4, 8), ("window_cost", "pages", "items_stored"))
