"""Concurrency benchmark gate against the committed BENCH_6.json.

Structure and sanity checks on the committed report (all three session
points present, percentiles ordered, zero errors), plus one in-process
16-session re-run against a deliberately loose throughput floor so a
wedged lock manager or serialized worker pool fails CI without wall-clock
noise flaking it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.concurrency import SCHEMA, SESSION_POINTS, _run_point

#: The committed benchmark baseline at the repo root.
BENCH_PATH = Path(__file__).resolve().parents[2] / "BENCH_6.json"

#: CI floor for the in-process 16-session quick point, in statements/s.
#: The recorded machine does ~700+; anything under 20 means the server is
#: effectively serialized or deadlocked, not merely on a slow runner.
REQUIRED_QUICK_THROUGHPUT = 20.0


@pytest.fixture(scope="module")
def committed() -> dict:
    assert BENCH_PATH.exists(), (
        f"{BENCH_PATH} is missing; regenerate with "
        "`PYTHONPATH=src python -m repro.bench.concurrency --out BENCH_6.json`"
    )
    report = json.loads(BENCH_PATH.read_text())
    assert report["schema"] == SCHEMA
    return report


class TestCommittedReport:
    def test_all_session_points_present(self, committed):
        assert [p["sessions"] for p in committed["points"]] == list(SESSION_POINTS)

    def test_every_point_completed_without_errors(self, committed):
        for point in committed["points"]:
            assert point["statements"] > 0
            assert point["errors"] == 0

    def test_percentiles_are_ordered(self, committed):
        for point in committed["points"]:
            assert 0 < point["p50_ms"] <= point["p95_ms"] <= point["p99_ms"]

    def test_throughput_is_positive_everywhere(self, committed):
        for point in committed["points"]:
            assert point["throughput_stmts_per_sec"] > 0


class TestQuickRerun:
    @pytest.fixture(scope="class")
    def quick(self) -> dict:
        return _run_point(sessions=16, statements_per_session=12, seed=0)

    def test_quick_point_clears_the_floor(self, quick):
        assert quick["errors"] == 0
        assert quick["statements"] == 16 * 12
        assert quick["throughput_stmts_per_sec"] >= REQUIRED_QUICK_THROUGHPUT

    def test_quick_point_latencies_sane(self, quick):
        assert 0 < quick["p50_ms"] <= quick["p99_ms"]
