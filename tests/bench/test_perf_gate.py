"""Benchmark regression gate against the committed BENCH_3.json.

Fast-tier (runs on every CI push): re-executes the quick scale of the
hot-path macro-benchmark in-process and fails when

- the optimized configuration has stopped being faster than the baseline
  configuration (wall-clock ratio, measured on the same machine in the
  same process, so the machine cancels out), or
- a deterministic hot-path counter (pages read/written, WAL bytes) drifted
  past tolerance from the committed baseline — catching regressions that
  wall clocks on noisy CI runners would hide, or
- the committed full-scale report no longer claims the required headline
  speedup.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.perfgate import SCHEMA, WORKLOADS, run_scale

#: The committed benchmark baseline at the repo root.
BENCH_PATH = Path(__file__).resolve().parents[2] / "BENCH_3.json"

#: The PR's acceptance floor for the committed full-scale mixed macro.
REQUIRED_FULL_SPEEDUP = 1.5

#: CI gate floor for the in-process quick re-run. Far below the recorded
#: ~19x so scheduler noise cannot flake it, far above 1.0 so a genuinely
#: regressed hot path cannot sneak through.
REQUIRED_QUICK_SPEEDUP = 1.5

#: Relative tolerance for the deterministic counters. They are exactly
#: reproducible under fixed seeds on one interpreter; the slack absorbs
#: pickle/layout drift across Python versions.
COUNTER_TOLERANCE = 0.20

#: The deterministic per-workload counters the gate pins.
GATED_COUNTERS = ("pages_read", "pages_written", "wal_bytes", "wal_records")


@pytest.fixture(scope="module")
def committed() -> dict:
    assert BENCH_PATH.exists(), (
        f"{BENCH_PATH} is missing; regenerate with "
        "`PYTHONPATH=src python -m repro.bench.perfgate --out BENCH_3.json`"
    )
    report = json.loads(BENCH_PATH.read_text())
    assert report["schema"] == SCHEMA
    return report


@pytest.fixture(scope="module")
def quick_now(tmp_path_factory) -> dict:
    """One in-process quick-scale run shared by the gate assertions."""
    dir_path = tmp_path_factory.mktemp("perfgate")
    return run_scale("quick", str(dir_path))


class TestCommittedReport:
    def test_full_scale_meets_headline_speedup(self, committed):
        mixed = committed["full"]["mixed"]
        assert mixed["speedup"] >= REQUIRED_FULL_SPEEDUP, (
            f"committed full-scale mixed speedup {mixed['speedup']}x is "
            f"below the {REQUIRED_FULL_SPEEDUP}x acceptance floor"
        )

    def test_every_workload_is_present(self, committed):
        for scale in ("quick", "full"):
            assert set(committed[scale]["workloads"]) == set(WORKLOADS)


class TestHotPathRegression:
    def test_optimized_path_still_beats_baseline(self, quick_now):
        mixed = quick_now["mixed"]
        assert mixed["speedup"] >= REQUIRED_QUICK_SPEEDUP, (
            f"hot path regressed: quick mixed speedup is now "
            f"{mixed['speedup']}x (< {REQUIRED_QUICK_SPEEDUP}x). "
            "If this is an intentional trade-off, regenerate BENCH_3.json "
            "and justify the change."
        )

    @pytest.mark.parametrize("kind", WORKLOADS)
    def test_deterministic_counters_match_committed(
        self, committed, quick_now, kind
    ):
        recorded = committed["quick"]["workloads"][kind]["optimized"]
        current = quick_now["workloads"][kind]["optimized"]
        for counter in GATED_COUNTERS:
            want, got = recorded[counter], current[counter]
            ceiling = want * (1 + COUNTER_TOLERANCE)
            floor = want * (1 - COUNTER_TOLERANCE)
            assert floor <= got <= ceiling, (
                f"{kind}.optimized.{counter} drifted: committed {want}, "
                f"measured {got} (tolerance ±{COUNTER_TOLERANCE:.0%}). "
                "A higher value is a hot-path I/O regression; regenerate "
                "BENCH_3.json only if the change is intentional."
            )

    @pytest.mark.parametrize("kind", WORKLOADS)
    def test_results_identical_across_configs(self, quick_now, kind):
        """Both configurations must do the same logical work."""
        entry = quick_now["workloads"][kind]
        assert entry["baseline"]["matches"] == entry["optimized"]["matches"]
        assert entry["baseline"]["items"] == entry["optimized"]["items"]
