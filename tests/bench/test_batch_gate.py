"""Batch read path + repack regression gate against the committed BENCH_8.json.

Fast-tier: re-executes the quick sections of the batch benchmark
in-process and fails when

- the batch executor has stopped beating the reconstructed tuple-at-a-time
  pipeline (wall-clock ratio, same machine, same process),
- a batch size in the sweep stops producing the identical row counts
  (a correctness regression the oracle would also catch, cheaper here),
- ``repack_online`` no longer restores a churn-degraded index to the
  required fill factor, or breaks the tree while doing it,
- the per-waiter lock wait path has stopped waking strictly fewer threads
  than the legacy broadcast design, or
- the committed full-scale report no longer claims the acceptance
  headline.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.bench_8 import (
    SCHEMA,
    SWEEP_BATCH_SIZES,
    run_locks,
    run_repack,
    run_scan,
)

#: The committed benchmark baseline at the repo root.
BENCH_PATH = Path(__file__).resolve().parents[2] / "BENCH_8.json"

#: The PR's acceptance floor for the committed full-scale scan-heavy mix.
REQUIRED_FULL_SPEEDUP = 1.5

#: CI floor for the in-process quick re-run: below the recorded ~1.9x so
#: scheduler noise cannot flake it, far enough above 1.0 that a genuinely
#: regressed batch path cannot sneak through.
REQUIRED_QUICK_SPEEDUP = 1.3

#: The PR's acceptance floor for online repack on a churn-degraded index.
REQUIRED_REPACK_FILL = 0.90


@pytest.fixture(scope="module")
def committed() -> dict:
    assert BENCH_PATH.exists(), (
        f"{BENCH_PATH} is missing; regenerate with "
        "`PYTHONPATH=src python -m repro.bench.bench_8 --out BENCH_8.json`"
    )
    report = json.loads(BENCH_PATH.read_text())
    assert report["schema"] == SCHEMA
    return report


@pytest.fixture(scope="module")
def scan_now() -> dict:
    """One in-process quick scan comparison shared by the gate assertions."""
    return run_scan("quick")


class TestCommittedReport:
    def test_full_scale_meets_headline_speedup(self, committed):
        mixed = committed["scan"]["full"]["mixed"]
        assert mixed["speedup"] >= REQUIRED_FULL_SPEEDUP, (
            f"committed full-scale scan speedup {mixed['speedup']}x is "
            f"below the {REQUIRED_FULL_SPEEDUP}x acceptance floor"
        )

    def test_sweep_covers_required_batch_sizes(self, committed):
        recorded = set(committed["sweep"]["batch_sizes"])
        for size in SWEEP_BATCH_SIZES:
            assert str(size) in recorded, f"sweep is missing batch size {size}"
        assert committed["sweep"]["rows_identical"] is True

    def test_committed_repack_meets_fill_floor(self, committed):
        repack = committed["repack"]
        assert repack["fill_after"] >= REQUIRED_REPACK_FILL
        assert repack["fill_after"] > repack["fill_degraded"]
        assert repack["check_ok"] is True
        assert repack["missing_after_repack"] == 0

    def test_committed_per_waiter_wakes_fewer(self, committed):
        locks = committed["locks"]
        assert (
            locks["per_waiter"]["wakeups"] < locks["broadcast"]["wakeups"]
        ), "per-waiter conditions should wake strictly fewer threads"
        # The two designs must have done the same logical locking work.
        assert locks["per_waiter"]["grants"] == locks["broadcast"]["grants"]


class TestBatchPathRegression:
    def test_batched_path_still_beats_tuple_at_a_time(self, scan_now):
        mixed = scan_now["mixed"]
        assert mixed["speedup"] >= REQUIRED_QUICK_SPEEDUP, (
            f"batch read path regressed: quick scan speedup is now "
            f"{mixed['speedup']}x (< {REQUIRED_QUICK_SPEEDUP}x). "
            "If this is an intentional trade-off, regenerate BENCH_8.json "
            "and justify the change."
        )

    def test_every_shape_produces_identical_rows(self, scan_now):
        # run_scan already asserts baseline == batched per shape; pin the
        # shape list here so a silently dropped shape also fails.
        assert set(scan_now["shapes"]) == {"seq", "filter", "index", "project"}

    def test_repack_restores_fill_now(self):
        repack = run_repack(words=3000)
        assert repack["fill_after"] >= REQUIRED_REPACK_FILL
        assert repack["check_ok"] is True
        assert repack["missing_after_repack"] == 0
        assert repack["pages_freed"] > 0

    def test_per_waiter_wakes_fewer_now(self):
        locks = run_locks(threads=6, rounds=30)
        assert locks["per_waiter"]["wakeups"] < locks["broadcast"]["wakeups"]
        assert locks["per_waiter"]["grants"] == locks["broadcast"]["grants"]
