"""Scale-out regression gate against the committed BENCH_10.json.

Fast tier pins the committed artifact to the ISSUE 10 acceptance bar:
≥2x read throughput at 4 shards over unsharded, and single-shard point
lookups through the router within 20% of a direct plan. The slow-tier
test re-runs the quick scale in-process (CI's cluster smoke job runs the
same configuration via the CLI) so a regressed routing or caching path
cannot hide behind a stale artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.cluster_scale import SCALES, SCHEMA, SHARD_COUNTS, run_scale

#: The committed benchmark baseline at the repo root.
BENCH_PATH = Path(__file__).resolve().parents[2] / "BENCH_10.json"

#: ISSUE 10 acceptance: ≥2x aggregate read throughput at 4 shards.
REQUIRED_SPEEDUP = 2.0

#: ISSUE 10 acceptance: router point lookups within 20% of direct.
MAX_POINT_OVERHEAD = 1.2

#: Loose floor for the in-process re-run; the committed cliff is >40x,
#: so 2x cannot flake on scheduler noise while still catching a dead
#: cache or a router that stopped pruning.
RERUN_SPEEDUP_FLOOR = 2.0
RERUN_OVERHEAD_CEILING = 1.5


@pytest.fixture(scope="module")
def committed() -> dict:
    assert BENCH_PATH.exists(), (
        f"{BENCH_PATH} is missing; regenerate with "
        "`PYTHONPATH=src python -m repro.bench.cluster_scale --out BENCH_10.json`"
    )
    report = json.loads(BENCH_PATH.read_text())
    assert report["schema"] == SCHEMA
    return report


class TestCommittedReport:
    @pytest.mark.parametrize("scale", sorted(SCALES))
    def test_scale_present_with_every_shard_count(self, committed, scale):
        counts = committed[scale]["shard_counts"]
        assert set(counts) == {str(s) for s in SHARD_COUNTS}
        # identical logical work at every shard count
        matches = {counts[str(s)]["matches"] for s in SHARD_COUNTS}
        assert len(matches) == 1

    @pytest.mark.parametrize("scale", sorted(SCALES))
    def test_speedup_meets_acceptance_floor(self, committed, scale):
        speedup = committed[scale]["speedup_4_vs_1"]
        assert speedup >= REQUIRED_SPEEDUP, (
            f"committed {scale} 4-shard speedup {speedup}x is below the "
            f"{REQUIRED_SPEEDUP}x acceptance floor"
        )

    @pytest.mark.parametrize("scale", sorted(SCALES))
    def test_point_overhead_within_bound(self, committed, scale):
        ratio = committed[scale]["point_overhead"]["ratio"]
        assert ratio <= MAX_POINT_OVERHEAD, (
            f"committed {scale} router point-lookup overhead {ratio}x "
            f"exceeds the {MAX_POINT_OVERHEAD}x bound"
        )

    def test_sharding_eliminates_thrash(self, committed):
        """The mechanism, not just the headline: the unsharded baseline
        pays page misses the sharded deployments do not."""
        for scale in SCALES:
            counts = committed[scale]["shard_counts"]
            assert counts["1"]["pages_read"] > 0
            assert counts["4"]["pages_read"] < counts["1"]["pages_read"]


@pytest.mark.slow
class TestRerun:
    def test_quick_scale_still_scales(self, tmp_path):
        report = run_scale("quick", str(tmp_path))
        assert report["speedup_4_vs_1"] >= RERUN_SPEEDUP_FLOOR, (
            f"scale-out regressed: quick 4-shard speedup is now "
            f"{report['speedup_4_vs_1']}x (< {RERUN_SPEEDUP_FLOOR}x)"
        )
        assert report["point_overhead"]["ratio"] <= RERUN_OVERHEAD_CEILING
