"""Unit tests for trace spans (repro.obs.spans)."""

import pytest

from repro.obs import SPANS, SpanRecorder, reset_observability, span


@pytest.fixture(autouse=True)
def fresh_spans():
    reset_observability()
    yield
    reset_observability()


class TestSpanBasics:
    def test_records_name_tags_and_duration(self):
        with span("unit.op", index="t1"):
            pass
        (rec,) = SPANS.records("unit.op")
        assert rec.tags == {"index": "t1"}
        assert rec.duration >= 0.0
        assert rec.duration_ms == rec.duration * 1000.0
        assert rec.error is None
        assert rec.depth == 0 and rec.parent_id is None

    def test_nesting_tracks_depth_and_parent(self):
        with span("outer") as outer:
            with span("inner"):
                pass
        inner_rec = SPANS.records("inner")[0]
        outer_rec = SPANS.records("outer")[0]
        assert inner_rec.depth == 1
        assert inner_rec.parent_id == outer.span_id
        assert outer_rec.depth == 0
        # Inner finishes first: ring buffer is oldest-first.
        assert SPANS.records()[0] is inner_rec

    def test_exception_recorded_and_propagated(self):
        with pytest.raises(KeyError):
            with span("boom"):
                raise KeyError("x")
        (rec,) = SPANS.records("boom")
        assert rec.error == "KeyError"

    def test_total_seconds_sums_by_name(self):
        for _ in range(3):
            with span("rep"):
                pass
        assert SPANS.total_seconds("rep") == pytest.approx(
            sum(r.duration for r in SPANS.records("rep"))
        )


class TestRecorderBounds:
    def test_ring_buffer_drops_oldest(self):
        rec = SpanRecorder(capacity=2)
        for i in range(4):
            with rec.span("s", i=i):
                pass
        kept = [r.tags["i"] for r in rec.records()]
        assert kept == [2, 3]
        assert len(rec) == 2

    def test_disabled_recorder_records_nothing(self):
        rec = SpanRecorder(enabled=False)
        with rec.span("s"):
            pass
        assert len(rec) == 0

    def test_reset_clears_buffer(self):
        with span("s"):
            pass
        SPANS.reset()
        assert len(SPANS) == 0


class TestGeneratorSpans:
    def test_abandoned_generator_closes_span(self):
        # A span wrapping a generator body closes on GeneratorExit, and a
        # parent span that outlives an abandoned child still unwinds the
        # stack correctly.
        def gen():
            with span("gen.scan"):
                for i in range(100):
                    yield i

        g = gen()
        next(g)
        assert SPANS.records("gen.scan") == []  # still open
        g.close()
        (rec,) = SPANS.records("gen.scan")
        assert rec.error == "GeneratorExit"

    def test_leaked_child_does_not_corrupt_parent_depth(self):
        def gen():
            with span("child"):
                yield 1
                yield 2

        with span("parent"):
            g = gen()
            next(g)
            del g  # abandoned mid-flight; child span leaks until GC close
        (parent,) = SPANS.records("parent")
        assert parent.depth == 0
        with span("after"):
            pass
        (after,) = SPANS.records("after")
        assert after.depth == 0


class TestIndexInstrumentation:
    def test_index_operations_emit_spans(self, buffer):
        from repro.indexes.trie import TrieIndex

        index = TrieIndex(buffer, bucket_size=4, name="t_spans")
        for i, w in enumerate(["ara", "arb", "arc", "ard", "are"]):
            index.insert(w, i)
        assert len(SPANS.records("index.insert")) == 5
        assert SPANS.records("index.insert")[0].tags == {"index": "t_spans"}

        list(index.search_equal("arc"))
        search_spans = SPANS.records("index.search")
        assert len(search_spans) == 1
        assert search_spans[0].tags["index"] == "t_spans"
