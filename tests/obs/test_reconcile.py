"""Registry counters must reconcile with the layers' own statistics.

The observability registry is a second accounting path over the same
events the storage layer already counts (``BufferStats``, ``WALStats``).
If the two ever disagree, one of them is lying — these tests pin them
together.
"""

import pytest

from repro.obs import METRICS, MetricsRegistry, reset_observability
from repro.storage import BufferPool, DiskManager, FileDiskManager


@pytest.fixture(autouse=True)
def fresh_observability():
    reset_observability()
    yield
    reset_observability()


def _delta(before):
    return MetricsRegistry.delta(before, METRICS.snapshot())


def _summed(delta, prefix):
    return sum(
        v for k, v in delta.items()
        if k == prefix or k.startswith(prefix + "{")
    )


class TestBufferReconciliation:
    def test_hits_misses_evictions_writebacks_match_stats(self):
        pool = BufferPool(DiskManager(), capacity=4)
        before_stats = pool.stats.snapshot()
        before = METRICS.snapshot()

        pids = [pool.new_page(("row", i)) for i in range(8)]
        for pid in pids:  # re-fetch: some hit, some miss + evict
            pool.fetch(pid)
        pool.flush_all()

        stats = pool.stats.delta(before_stats)
        delta = _delta(before)
        assert _summed(delta, "buffer_hits_total") == stats.hits
        assert _summed(delta, "buffer_misses_total") == stats.misses
        assert _summed(delta, "buffer_evictions_total") == stats.evictions
        assert (
            _summed(delta, "buffer_dirty_writebacks_total")
            == stats.dirty_writebacks
        )
        assert stats.misses > 0 and stats.evictions > 0

    def test_retry_counters_match_stats(self):
        from repro.resilience.faults import (
            FaultInjectingDiskManager,
            FaultPolicy,
        )

        disk = FaultInjectingDiskManager(
            DiskManager(),
            FaultPolicy(seed=7, read_error_rate=0.4),
        )
        pool = BufferPool(disk, capacity=2)
        before_stats = pool.stats.snapshot()
        before = METRICS.snapshot()

        pids = [pool.new_page(("x", i)) for i in range(6)]
        pool.flush_all()
        for pid in pids:
            pool.fetch(pid)

        stats = pool.stats.delta(before_stats)
        delta = _delta(before)
        assert _summed(delta, "buffer_retries_total") == (
            stats.read_retries + stats.write_retries
        )
        assert delta.get('buffer_retries_total{op="read"}', 0.0) == (
            stats.read_retries
        )
        assert stats.read_retries > 0  # the fault rate actually fired


class TestWalAndChecksumReconciliation:
    def test_wal_counters_match_wal_stats(self, tmp_path):
        before = METRICS.snapshot()
        with FileDiskManager(str(tmp_path / "data.pages")) as disk:
            for i in range(5):
                pid = disk.allocate_page()
                disk.write_page(pid, {"row": i})
            disk.wal.commit()
            wal_stats = disk.wal.stats
            delta = _delta(before)
            assert _summed(delta, "wal_records_total") == (
                wal_stats.records_appended
            )
            assert _summed(delta, "wal_bytes_total") == (
                wal_stats.bytes_appended
            )
            assert _summed(delta, "wal_commits_total") == wal_stats.commits
            # 5 data writes plus allocation/commit records.
            assert wal_stats.records_appended >= 5

    def test_checksum_verifications_count_reads(self, tmp_path):
        path = str(tmp_path / "data.pages")
        with FileDiskManager(path) as disk:
            pids = []
            for i in range(4):
                pid = disk.allocate_page()
                disk.write_page(pid, {"row": i})
                pids.append(pid)
        before = METRICS.snapshot()
        with FileDiskManager(path) as disk:
            for pid in pids:
                disk.read_page(pid)
        delta = _delta(before)
        assert _summed(delta, "checksum_verifications_total") >= 4
        assert _summed(delta, "checksum_failures_total") == 0

    def test_checksum_failure_is_counted(self, tmp_path):
        from repro.errors import PageChecksumError
        from repro.resilience.faults import corrupt_page

        path = str(tmp_path / "data.pages")
        with FileDiskManager(path) as disk:
            pid = disk.allocate_page()
            disk.write_page(pid, {"row": 0})
        with FileDiskManager(path) as disk:
            corrupt_page(disk, pid, seed=3)
            before = METRICS.snapshot()
            with pytest.raises(PageChecksumError):
                disk.read_page(pid)
            delta = _delta(before)
            assert _summed(delta, "checksum_failures_total") == 1


class TestTreeCounters:
    def test_descent_counters_and_histogram(self, buffer):
        from repro.indexes.trie import TrieIndex

        before = METRICS.snapshot()
        index = TrieIndex(buffer, bucket_size=2)
        words = ["aa", "ab", "ba", "bb", "ca", "cb", "cc", "da"]
        for i, w in enumerate(words):
            index.insert(w, i)
        list(index.search_equal("ba"))

        delta = _delta(before)
        assert delta.get('spgist_operations_total{op="insert"}') == len(words)
        assert delta.get('spgist_operations_total{op="search"}') == 1.0
        assert _summed(delta, "spgist_nodes_visited_total") > 0
        # Every insert records one descent-depth observation.
        assert _summed(delta, "spgist_descent_levels_count") == len(words)

    def test_nn_counters(self, buffer):
        from repro.core.nn import nearest
        from repro.indexes.kdtree import KDTreeIndex
        from repro.geometry import Point

        index = KDTreeIndex(buffer)
        for i in range(20):
            index.insert(Point((i * 7) % 20, (i * 13) % 20), i)
        before = METRICS.snapshot()
        result = nearest(index, Point(3, 3), 5)
        assert len(result) == 5
        delta = _delta(before)
        assert delta.get('spgist_operations_total{op="nn"}') == 1.0
        assert delta.get('spgist_nodes_visited_total{op="nn"}', 0) > 0
