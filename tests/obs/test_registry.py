"""Unit tests for the metrics registry (repro.obs.registry)."""

import math

import pytest

from repro.obs import METRICS, MetricsRegistry, reset_observability


@pytest.fixture(autouse=True)
def fresh_registry():
    reset_observability()
    yield
    reset_observability()


class TestCounter:
    def test_inc_and_value(self):
        r = MetricsRegistry()
        c = r.counter("ops_total", "operations")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert r.value("ops_total") == 5.0

    def test_negative_increment_rejected(self):
        r = MetricsRegistry()
        c = r.counter("ops_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_registration_is_idempotent(self):
        r = MetricsRegistry()
        a = r.counter("ops_total", "operations")
        b = r.counter("ops_total", "operations")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_kind_conflict_rejected(self):
        r = MetricsRegistry()
        r.counter("ops_total")
        with pytest.raises(ValueError):
            r.gauge("ops_total")


class TestLabels:
    def test_children_are_independent(self):
        r = MetricsRegistry()
        fam = r.counter("reqs_total", labels=("op",))
        fam.labels("read").inc(3)
        fam.labels("write").inc()
        snap = r.snapshot()
        assert snap['reqs_total{op="read"}'] == 3.0
        assert snap['reqs_total{op="write"}'] == 1.0

    def test_wrong_arity_rejected(self):
        r = MetricsRegistry()
        fam = r.counter("reqs_total", labels=("op",))
        with pytest.raises(ValueError):
            fam.labels("a", "b")

    def test_unlabeled_value_on_labeled_family_rejected(self):
        r = MetricsRegistry()
        fam = r.counter("reqs_total", labels=("op",))
        with pytest.raises(ValueError):
            _ = fam.value


class TestGauge:
    def test_set_inc_dec(self):
        r = MetricsRegistry()
        g = r.gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_cumulative_buckets(self):
        r = MetricsRegistry()
        h = r.histogram("levels", buckets=(1, 2, 4))
        for v in (1, 1, 3, 9):
            h.observe(v)
        snap = r.snapshot()
        assert snap['levels_bucket{le="1"}'] == 2.0
        assert snap['levels_bucket{le="2"}'] == 2.0
        assert snap['levels_bucket{le="4"}'] == 3.0
        assert snap['levels_bucket{le="+Inf"}'] == 4.0
        assert snap["levels_count"] == 4.0
        assert snap["levels_sum"] == 14.0

    def test_buckets_sorted_at_registration(self):
        r = MetricsRegistry()
        h = r.histogram("levels", buckets=(4, 1, 2))
        assert h.bounds == (1, 2, 4)


class TestSnapshotDelta:
    def test_delta_subtracts_and_defaults_missing_to_zero(self):
        r = MetricsRegistry()
        c = r.counter("a_total")
        before = r.snapshot()
        c.inc(2)
        r.counter("b_total").inc(7)
        delta = MetricsRegistry.delta(before, r.snapshot())
        assert delta["a_total"] == 2.0
        assert delta["b_total"] == 7.0

    def test_unregistered_value_reads_zero(self):
        r = MetricsRegistry()
        assert r.value("nope_total") == 0.0
        assert r.get("nope_total") is None


class TestRender:
    def test_prometheus_text_format(self):
        r = MetricsRegistry(namespace="repro")
        r.counter("ops_total", "operations done").inc(3)
        fam = r.counter("reqs_total", labels=("op",))
        fam.labels("read").inc()
        text = r.render()
        assert "# HELP repro_ops_total operations done" in text
        assert "# TYPE repro_ops_total counter" in text
        assert "repro_ops_total 3" in text
        assert 'repro_reqs_total{op="read"} 1' in text
        assert text.endswith("\n")

    def test_inf_formatting(self):
        r = MetricsRegistry()
        r.histogram("h", buckets=(1,)).observe(5)
        assert 'le="+Inf"' in r.render()
        assert math.inf not in r.snapshot().values()


class TestReset:
    def test_reset_zeroes_but_keeps_bindings(self):
        r = MetricsRegistry()
        c = r.counter("ops_total")
        c.inc(5)
        r.reset()
        assert c.value == 0
        c.inc()  # the pre-reset binding still feeds the registry
        assert r.value("ops_total") == 1.0

    def test_global_registry_has_instrumented_families(self):
        # Importing the storage/core layers registers their families.
        import repro.core.tree  # noqa: F401
        import repro.storage.buffer  # noqa: F401

        names = {f.name for f in METRICS.families()}
        assert {"buffer_hits_total", "buffer_misses_total",
                "spgist_operations_total",
                "checksum_verifications_total"} <= names
