"""Unit tests for the generic incremental NN search (paper Section 5)."""

import pytest

from repro.core.nn import nearest, nn_search
from repro.geometry import Point
from repro.geometry.distance import euclidean, hamming
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.pmr import PMRQuadtreeIndex
from repro.indexes.trie import TrieIndex
from repro.workloads import random_points, random_words
from repro.workloads.points import WORLD


class TestGenericBehaviour:
    def test_empty_index_yields_nothing(self, buffer):
        assert nearest(KDTreeIndex(buffer), Point(0, 0), 5) == []

    def test_distances_nondecreasing(self, buffer):
        index = KDTreeIndex(buffer)
        for i, p in enumerate(random_points(300, seed=21)):
            index.insert(p, i)
        distances = [d for d, _, _ in nearest(index, Point(37.0, 62.0), 50)]
        assert distances == sorted(distances)

    def test_full_scan_enumerates_everything_once(self, buffer):
        index = KDTreeIndex(buffer)
        points = random_points(150, seed=22)
        for i, p in enumerate(points):
            index.insert(p, i)
        seen = [v for _, _, v in nn_search(index, Point(10, 10))]
        assert sorted(seen) == list(range(150))

    def test_get_next_is_lazy(self, buffer):
        index = KDTreeIndex(buffer)
        for i, p in enumerate(random_points(200, seed=23)):
            index.insert(p, i)
        scan = nn_search(index, Point(50, 50))
        first = next(scan)
        second = next(scan)
        assert first[0] <= second[0]

    def test_instantiation_without_nn_consistent_raises(self, buffer):
        from repro.core import SPGiSTIndex
        from repro.core.external import ExternalMethods
        from tests.core.test_tree import ToyBinaryMethods

        class NoNNMethods(ToyBinaryMethods):
            # Restore the base-class stubs: NN_Consistent not provided.
            nn_inner_distance = ExternalMethods.nn_inner_distance
            nn_leaf_distance = ExternalMethods.nn_leaf_distance

        index = SPGiSTIndex(buffer, NoNNMethods())
        index.insert(1)
        assert not index.methods.supports_nn
        with pytest.raises(NotImplementedError):
            next(iter(index.nn_search(1)))


class TestKDTreeNN:
    def test_matches_bruteforce(self, buffer):
        points = random_points(500, seed=24)
        index = KDTreeIndex(buffer)
        for i, p in enumerate(points):
            index.insert(p, i)
        query = Point(42.0, 58.0)
        expected = sorted(
            (round(euclidean(p, query), 9), i) for i, p in enumerate(points)
        )[:30]
        got = [
            (round(d, 9), v) for d, _, v in nearest(index, query, 30)
        ]
        assert [d for d, _ in got] == [d for d, _ in expected]

    def test_query_outside_world(self, buffer):
        points = random_points(200, seed=25)
        index = KDTreeIndex(buffer)
        for i, p in enumerate(points):
            index.insert(p, i)
        query = Point(-50.0, 250.0)
        expected = min(euclidean(p, query) for p in points)
        got = nearest(index, query, 1)[0][0]
        assert round(got, 9) == round(expected, 9)


class TestTrieNN:
    def test_matches_bruteforce_hamming(self, buffer):
        words = random_words(400, seed=26)
        trie = TrieIndex(buffer, bucket_size=2)
        for i, w in enumerate(words):
            trie.insert(w, i)
        query = "qwertyu"
        expected = sorted(hamming(w, query) for w in words)[:25]
        got = [int(d) for d, _, _ in nearest(trie, query, 25)]
        assert got == expected

    def test_exact_word_is_first(self, buffer):
        trie = TrieIndex(buffer)
        for w in ["alpha", "beta", "gamma"]:
            trie.insert(w)
        assert nearest(trie, "beta", 1)[0][1] == "beta"


class TestPMRNN:
    def test_nearest_segments(self, buffer):
        from repro.geometry.distance import point_to_segment_distance
        from repro.workloads import random_segments

        segments = random_segments(300, seed=27)
        index = PMRQuadtreeIndex(buffer, WORLD)
        for i, s in enumerate(segments):
            index.insert(s, i)
        query = Point(33.0, 66.0)
        expected = sorted(
            round(point_to_segment_distance(query, s), 9) for s in segments
        )[:10]
        got = [round(d, 9) for d, _, _ in index.nearest_to(query, 10)]
        assert got == expected

    def test_spanning_duplicates_suppressed(self, buffer):
        index = PMRQuadtreeIndex(buffer, WORLD, threshold=1)
        from repro.geometry import LineSegment

        # A long segment crossing many blocks must be reported once.
        long_seg = LineSegment(Point(1, 1), Point(99, 99))
        index.insert(long_seg, 0)
        for i in range(1, 8):
            index.insert(
                LineSegment(Point(i * 10, 5), Point(i * 10 + 3, 8)), i
            )
        results = [v for _, _, v in index.nearest_to(Point(50, 50), 8)]
        assert results.count(0) == 1
