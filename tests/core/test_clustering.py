"""Unit tests for NodeStore placement and the repack algorithm."""

import pytest

from repro.core import Entry, InnerNode, LeafNode, NodeRef
from repro.core.clustering import NodeStore, repack
from repro.errors import IndexCorruptionError
from repro.indexes.trie import TrieIndex
from repro.storage.page import PAGE_CAPACITY
from repro.workloads import random_words


class TestNodeStoreBasics:
    def test_create_read_roundtrip(self, buffer):
        store = NodeStore(buffer)
        ref = store.create(LeafNode(items=[("a", 1)]))
        assert store.read(ref).items == [("a", 1)]
        assert store.num_nodes == 1

    def test_children_cluster_on_parent_page(self, buffer):
        store = NodeStore(buffer)
        parent = store.create(InnerNode())
        child = store.create(LeafNode(items=[("a", 1)]), near=parent)
        assert child.page_id == parent.page_id

    def test_full_page_spills_to_new_page(self, buffer):
        store = NodeStore(buffer)
        big_items = [("x" * 200, i) for i in range(30)]  # ~6 KB leaf
        first = store.create(LeafNode(items=list(big_items)))
        second = store.create(LeafNode(items=list(big_items)), near=first)
        assert second.page_id != first.page_id
        assert store.num_pages == 2

    def test_write_in_place_when_it_fits(self, buffer):
        store = NodeStore(buffer)
        ref = store.create(LeafNode(items=[("a", 1)]))
        node = store.read(ref)
        node.items.append(("b", 2))
        assert store.write(ref, node) == ref

    def test_write_relocates_on_overflow(self, buffer):
        store = NodeStore(buffer)
        anchor = store.create(LeafNode(items=[("pad" * 600, 0)]))  # ~7 KB
        small = store.create(LeafNode(items=[("a", 1)]), near=anchor)
        assert small.page_id == anchor.page_id
        node = store.read(small)
        node.items.extend(("grow" * 200, i) for i in range(12))  # ~9.6 KB total
        moved = store.write(small, node)
        assert moved != small
        assert store.read(moved).items[0] == ("a", 1)

    def test_oversize_single_node_allowed_alone(self, buffer):
        # A node bigger than a page models an overflow chain.
        store = NodeStore(buffer)
        ref = store.create(LeafNode(items=[("y" * 500, i) for i in range(30)]))
        node = store.read(ref)
        assert node.approx_bytes() > PAGE_CAPACITY
        assert store.write(ref, node) == ref

    def test_free_and_slot_reuse(self, buffer):
        store = NodeStore(buffer)
        a = store.create(LeafNode(items=[("a", 1)]))
        b = store.create(LeafNode(items=[("b", 2)]), near=a)
        store.free(a)
        assert store.num_nodes == 1
        c = store.create(LeafNode(items=[("c", 3)]), near=b)
        assert c == a  # tombstoned slot reused
        assert store.read(c).items == [("c", 3)]

    def test_double_free_raises(self, buffer):
        store = NodeStore(buffer)
        ref = store.create(LeafNode())
        store.free(ref)
        with pytest.raises(IndexCorruptionError):
            store.free(ref)

    def test_dangling_read_raises(self, buffer):
        store = NodeStore(buffer)
        ref = store.create(LeafNode())
        store.free(ref)
        with pytest.raises(IndexCorruptionError):
            store.read(ref)

    def test_fill_factor_bounds(self, buffer):
        store = NodeStore(buffer)
        assert store.fill_factor() == 0.0
        for i in range(100):
            store.create(LeafNode(items=[("w%03d" % i, i)]))
        assert 0.0 < store.fill_factor() <= 1.0


class TestRepack:
    def _build_trie(self, buffer, n=400, bucket=2) -> TrieIndex:
        trie = TrieIndex(buffer, bucket_size=bucket)
        for i, w in enumerate(random_words(n, seed=5)):
            trie.insert(w, i)
        return trie

    def test_repack_preserves_contents(self, buffer):
        trie = self._build_trie(buffer)
        before = sorted(trie.search_prefix(""))
        trie.repack()
        assert sorted(trie.search_prefix("")) == before

    def test_repack_reduces_page_height(self, buffer):
        trie = self._build_trie(buffer)
        before = trie.statistics()
        trie.repack()
        after = trie.statistics()
        assert after.max_page_height <= before.max_page_height
        assert after.items == before.items
        assert after.total_nodes == before.total_nodes

    def test_repack_keeps_pages_reasonably_full(self, buffer):
        trie = self._build_trie(buffer)
        trie.repack()
        stats = trie.statistics()
        if stats.pages > 1:
            assert stats.fill_factor > 0.5

    def test_repack_frees_old_pages(self, buffer):
        trie = self._build_trie(buffer)
        pages_before = buffer.disk.num_pages
        trie.repack()
        # Old node pages released; page count should not balloon.
        assert buffer.disk.num_pages <= pages_before + 2

    def test_repack_empty_tree_is_noop(self, buffer):
        trie = TrieIndex(buffer)
        trie.repack()
        assert trie.root is None

    def test_repack_single_leaf(self, buffer):
        trie = TrieIndex(buffer)
        trie.insert("one", 1)
        trie.repack()
        assert trie.search_equal("one") == [("one", 1)]

    def test_repack_under_tiny_pool(self, small_buffer):
        # Eviction churn during repack must not corrupt the tree.
        trie = TrieIndex(small_buffer, bucket_size=2)
        words = random_words(300, seed=6)
        for i, w in enumerate(words):
            trie.insert(w, i)
        trie.repack()
        probe = words[17]
        expected = sorted(i for i, w in enumerate(words) if w == probe)
        assert sorted(v for _, v in trie.search_equal(probe)) == expected

    def test_repack_function_returns_new_store(self, buffer):
        trie = self._build_trie(buffer, n=50)
        new_store, new_root = repack(trie.store, trie.root)
        assert isinstance(new_root, NodeRef)
        assert new_store.num_nodes == trie.store.num_nodes
