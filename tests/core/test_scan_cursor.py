"""Tests for the pg_am scan cursor (beginscan/gettuple/rescan/mark/restore)."""

import pytest

from repro.core import Query
from repro.core.scan import IndexScanCursor
from repro.errors import IndexError_
from repro.geometry import Point
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.trie import TrieIndex
from repro.workloads import random_points, random_words


@pytest.fixture
def trie(buffer):
    index = TrieIndex(buffer, bucket_size=4)
    for i, w in enumerate(random_words(300, seed=331)):
        index.insert(w, i)
    return index


class TestGetNext:
    def test_incremental_fetch_equals_full_search(self, trie):
        query = Query("#=", "a")
        expected = sorted(trie.search_list(query))
        cursor = trie.begin_scan(query)
        got = []
        while True:
            item = cursor.get_next()
            if item is None:
                break
            got.append(item)
        assert sorted(got) == expected

    def test_exhausted_cursor_keeps_returning_none(self, trie):
        cursor = trie.begin_scan(Query("=", "zzzzzz-absent"))
        assert cursor.get_next() is None
        assert cursor.get_next() is None

    def test_fetch_batches(self, trie):
        query = Query("#=", "")
        cursor = trie.begin_scan(query)
        first = cursor.fetch(10)
        second = cursor.fetch(10)
        assert len(first) == 10 and len(second) == 10
        assert not (set(map(tuple, first)) & set(map(tuple, second)))

    def test_iteration_protocol(self, trie):
        query = Query("#=", "b")
        assert sorted(iter(trie.begin_scan(query))) == sorted(
            trie.search_list(query)
        )


class TestMarkRestore:
    def test_restore_rewinds(self, trie):
        cursor = trie.begin_scan(Query("#=", ""))
        cursor.fetch(5)
        cursor.mark()
        after_mark = cursor.fetch(7)
        cursor.restore()
        replay = cursor.fetch(7)
        assert replay == after_mark

    def test_restore_without_mark_raises(self, trie):
        cursor = trie.begin_scan(Query("#=", "a"))
        with pytest.raises(IndexError_):
            cursor.restore()

    def test_mark_at_start(self, trie):
        cursor = trie.begin_scan(Query("#=", "a"))
        cursor.mark()
        first = cursor.fetch(3)
        cursor.restore()
        assert cursor.fetch(3) == first


class TestRescan:
    def test_rescan_same_query_restarts(self, trie):
        query = Query("#=", "c")
        cursor = trie.begin_scan(query)
        first_pass = cursor.fetch(1000)
        cursor.rescan()
        assert cursor.fetch(1000) == first_pass

    def test_rescan_new_query(self, trie):
        cursor = trie.begin_scan(Query("#=", "a"))
        cursor.fetch(2)
        cursor.rescan(Query("#=", "b"))
        results = cursor.fetch(1000)
        assert all(k.startswith("b") for k, _ in results)

    def test_rescan_clears_mark_semantics(self, trie):
        cursor = trie.begin_scan(Query("#=", "a"))
        cursor.fetch(2)
        cursor.mark()
        cursor.rescan()
        with pytest.raises(IndexError_):
            cursor.restore()


class TestNNCursor:
    def test_nn_scan_through_cursor(self, buffer):
        points = random_points(200, seed=332)
        kd = KDTreeIndex(buffer)
        for i, p in enumerate(points):
            kd.insert(p, i)
        cursor = kd.begin_scan(Query("@@", Point(50, 50)))
        # The paper: "the number of required NNs is controlled by the
        # application using cursors" — three get-nexts = 3-NN.
        batch = cursor.fetch(3)
        distances = [d for d, _, _ in batch]
        assert distances == sorted(distances)
        cursor.mark()
        more = cursor.fetch(5)
        cursor.restore()
        assert cursor.fetch(5) == more


class TestClose:
    def test_closed_cursor_rejects_everything(self, trie):
        cursor = trie.begin_scan(Query("=", "x"))
        cursor.close()
        with pytest.raises(IndexError_):
            cursor.get_next()
        with pytest.raises(IndexError_):
            cursor.rescan()
        with pytest.raises(IndexError_):
            cursor.mark()

    def test_context_manager(self, trie):
        with trie.begin_scan(Query("#=", "a")) as cursor:
            cursor.fetch(1)
        with pytest.raises(IndexError_):
            cursor.get_next()


class TestBulkDelete:
    def test_bulk_delete_by_predicate(self, buffer):
        words = random_words(400, seed=333)
        trie = TrieIndex(buffer, bucket_size=4)
        for i, w in enumerate(words):
            trie.insert(w, i)
        removed = trie.bulk_delete(lambda key, value: key.startswith("a"))
        expected_removed = sum(1 for w in words if w.startswith("a"))
        assert removed == expected_removed
        assert trie.search_prefix("a") == []
        assert len(trie) == len(words) - expected_removed

    def test_bulk_delete_everything(self, buffer):
        trie = TrieIndex(buffer, bucket_size=2)
        for i, w in enumerate(random_words(100, seed=334)):
            trie.insert(w, i)
        assert trie.bulk_delete(lambda k, v: True) == 100
        assert trie.search_prefix("") == []

    def test_bulk_delete_nothing(self, buffer):
        trie = TrieIndex(buffer)
        trie.insert("keep", 1)
        assert trie.bulk_delete(lambda k, v: False) == 0
        assert trie.search_equal("keep") == [("keep", 1)]

    def test_bulk_delete_empty_index(self, buffer):
        assert TrieIndex(buffer).bulk_delete(lambda k, v: True) == 0

    def test_bulk_delete_spanning_counts_logical_items(self, buffer):
        from repro.indexes.pmr import PMRQuadtreeIndex
        from repro.geometry import LineSegment
        from repro.workloads.points import WORLD

        index = PMRQuadtreeIndex(buffer, WORLD, threshold=1)
        spanner = LineSegment(Point(5, 50), Point(95, 50))
        index.insert(spanner, 0)
        for i in range(1, 6):
            index.insert(LineSegment(Point(i * 15, 10), Point(i * 15 + 3, 12)), i)
        removed = index.bulk_delete(lambda k, v: v == 0)
        assert removed == 1
        assert index.search_exact(spanner) == []

    def test_vacuum_after_bulk_delete(self, buffer):
        words = random_words(500, seed=335)
        trie = TrieIndex(buffer, bucket_size=4)
        for i, w in enumerate(words):
            trie.insert(w, i)
        trie.bulk_delete(lambda k, v: v % 2 == 0)
        pages_before = trie.num_pages
        trie.vacuum()
        assert trie.num_pages <= pages_before
        survivors = sorted(v for _, v in trie.search_prefix(""))
        assert survivors == [i for i in range(len(words)) if i % 2 == 1]
