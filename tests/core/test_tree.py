"""Core-engine tests with a minimal toy instantiation.

The toy index is a one-dimensional binary partition tree over integers
(node predicate = pivot, entries "lo"/"hi"). It exists to prove the
internal methods are instantiation-agnostic and to exercise engine paths
(spills, resolution, NodeShrink variants) in isolation from the real
index types.
"""

from __future__ import annotations

from typing import Any, Sequence

import pytest

from repro.core import (
    AddEntry,
    BLANK,
    Descend,
    PathShrink,
    PickSplitResult,
    Query,
    SPGiSTConfig,
    SPGiSTIndex,
)
from repro.core.external import ChooseResult, ExternalMethods
from repro.errors import KeyNotFoundError

LO, HI = "lo", "hi"


class ToyBinaryMethods(ExternalMethods):
    """Binary partition tree over ints: pivot at node, lo/hi entries."""

    supported_operators = ("=", "<=range=>")
    equality_operator = "="

    def __init__(self, bucket_size: int = 4, node_shrink: bool = True,
                 resolution: int = 0) -> None:
        self._config = SPGiSTConfig(
            node_predicate="lo/hi/blank",
            key_type="int",
            num_space_partitions=2,
            resolution=resolution,
            path_shrink=PathShrink.NEVER_SHRINK,
            node_shrink=node_shrink,
            bucket_size=bucket_size,
        )

    def get_parameters(self) -> SPGiSTConfig:
        return self._config

    def choose(self, node_predicate: Any, entries: Sequence[Any], key: Any,
               level: int) -> ChooseResult:
        side = LO if key < node_predicate else HI
        for index, predicate in enumerate(entries):
            if predicate == side:
                return Descend(index)
        return AddEntry(side)

    def picksplit(self, items, level, parent_predicate=None) -> PickSplitResult:
        keys = sorted(key for key, _ in items)
        pivot = keys[len(keys) // 2]
        if pivot == keys[0] == keys[-1]:  # all identical: inseparable
            return PickSplitResult(pivot, [(HI, list(items))], progress=False)
        if pivot == keys[0]:  # duplicates of the minimum: shift pivot up
            pivot = next(k for k in keys if k > pivot)
        lo = [(k, v) for k, v in items if k < pivot]
        hi = [(k, v) for k, v in items if k >= pivot]
        return PickSplitResult(pivot, [(LO, lo), (HI, hi)])

    def consistent(self, node_predicate, entry_predicate, query: Query,
                   level: int) -> bool:
        if query.op == "=":
            if entry_predicate == LO:
                return query.operand < node_predicate
            return query.operand >= node_predicate
        lo, hi = query.operand
        if entry_predicate == LO:
            return lo < node_predicate
        return hi >= node_predicate

    def leaf_consistent(self, key, query: Query, level: int) -> bool:
        if query.op == "=":
            return key == query.operand
        lo, hi = query.operand
        return lo <= key <= hi

    def nn_inner_distance(self, query, node_predicate, entry_predicate,
                          level, parent_state):
        # 1-D MINDIST: zero on the side containing the query.
        if entry_predicate == LO:
            return (0.0 if query < node_predicate
                    else float(query - node_predicate)), None
        return (0.0 if query >= node_predicate
                else float(node_predicate - query)), None

    def nn_leaf_distance(self, query, key):
        return float(abs(key - query))


def make_index(buffer, **kwargs) -> SPGiSTIndex:
    return SPGiSTIndex(buffer, ToyBinaryMethods(**kwargs), name="toy")


class TestInsertSearch:
    def test_first_insert_creates_root_leaf(self, buffer):
        index = make_index(buffer)
        index.insert(5, "five")
        assert index.root is not None
        assert index.search_list(Query("=", 5)) == [(5, "five")]

    def test_split_on_bucket_overflow(self, buffer):
        index = make_index(buffer, bucket_size=2)
        for k in [10, 20, 30, 40, 5]:
            index.insert(k)
        stats = index.statistics()
        assert stats.inner_nodes >= 1
        for k in [10, 20, 30, 40, 5]:
            assert (k, None) in index.search_list(Query("=", k))

    def test_exact_search_vs_bruteforce(self, buffer):
        import random

        rng = random.Random(9)
        keys = [rng.randrange(1000) for _ in range(500)]
        index = make_index(buffer, bucket_size=3)
        for i, k in enumerate(keys):
            index.insert(k, i)
        for probe in rng.sample(keys, 25):
            expected = sorted(i for i, k in enumerate(keys) if k == probe)
            got = sorted(v for _, v in index.search(Query("=", probe)))
            assert got == expected

    def test_range_search_vs_bruteforce(self, buffer):
        keys = list(range(0, 200, 3))
        index = make_index(buffer, bucket_size=4)
        for k in keys:
            index.insert(k, k)
        got = sorted(v for _, v in index.search(Query("<=range=>", (50, 120))))
        assert got == [k for k in keys if 50 <= k <= 120]

    def test_unsupported_operator_raises(self, buffer):
        index = make_index(buffer)
        index.insert(1)
        with pytest.raises(KeyError):
            list(index.search(Query("LIKE", 1)))

    def test_search_empty_index(self, buffer):
        index = make_index(buffer)
        assert index.search_list(Query("=", 1)) == []

    def test_len_tracks_items(self, buffer):
        index = make_index(buffer)
        for k in range(10):
            index.insert(k)
        assert len(index) == 10


class TestSpills:
    def test_duplicate_keys_spill_past_bucket(self, buffer):
        index = make_index(buffer, bucket_size=2)
        for i in range(10):
            index.insert(7, i)
        assert sorted(v for _, v in index.search(Query("=", 7))) == list(range(10))
        # The degenerate split must not have manufactured inner nodes forever.
        assert index.statistics().max_node_height <= 3

    def test_resolution_limits_depth(self, buffer):
        index = make_index(buffer, bucket_size=1, resolution=3)
        for k in range(64):
            index.insert(k)
        assert index.statistics().max_node_height <= 4  # 3 levels + leaves
        assert len(index.search_list(Query("<=range=>", (0, 63)))) == 64


class TestDelete:
    def test_delete_single(self, buffer):
        index = make_index(buffer, bucket_size=2)
        for k in range(20):
            index.insert(k, k)
        assert index.delete(13) == 1
        assert index.search_list(Query("=", 13)) == []
        assert len(index) == 19

    def test_delete_missing_raises(self, buffer):
        index = make_index(buffer)
        index.insert(1)
        with pytest.raises(KeyNotFoundError):
            index.delete(99)

    def test_delete_from_empty_raises(self, buffer):
        with pytest.raises(KeyNotFoundError):
            make_index(buffer).delete(1)

    def test_delete_by_value(self, buffer):
        index = make_index(buffer)
        index.insert(5, "a")
        index.insert(5, "b")
        assert index.delete(5, "a") == 1
        assert index.search_list(Query("=", 5)) == [(5, "b")]

    def test_delete_all_duplicates(self, buffer):
        index = make_index(buffer, bucket_size=2)
        for i in range(6):
            index.insert(42, i)
        assert index.delete(42) == 6
        assert index.search_list(Query("=", 42)) == []

    def test_delete_everything_empties_tree(self, buffer):
        index = make_index(buffer, bucket_size=2)
        keys = list(range(30))
        for k in keys:
            index.insert(k, k)
        for k in keys:
            index.delete(k)
        assert len(index) == 0
        assert index.search_list(Query("<=range=>", (0, 100))) == []

    def test_reinsert_after_full_delete(self, buffer):
        index = make_index(buffer, bucket_size=2)
        for k in range(10):
            index.insert(k)
        for k in range(10):
            index.delete(k)
        index.insert(3, "again")
        assert index.search_list(Query("=", 3)) == [(3, "again")]


class TestNodeShrink:
    def test_node_shrink_false_keeps_empty_partitions(self, buffer):
        index = make_index(buffer, bucket_size=1, node_shrink=False)
        index.insert(10)
        index.insert(20)  # split: lo empty, hi has both? pivot=20 → lo=[10]
        index.insert(30)
        stats = index.statistics()
        # Empty partitions materialize as empty leaves.
        assert stats.leaf_nodes >= stats.inner_nodes + 1

    def test_node_shrink_true_prunes_after_delete(self, buffer):
        index = make_index(buffer, bucket_size=1, node_shrink=True)
        for k in [10, 20, 30, 40]:
            index.insert(k)
        nodes_before = index.statistics().total_nodes
        index.delete(40)
        assert index.statistics().total_nodes < nodes_before


class TestNN:
    def test_nn_order_matches_bruteforce(self, buffer):
        import random

        rng = random.Random(4)
        keys = rng.sample(range(10000), 300)
        index = make_index(buffer, bucket_size=3)
        for k in keys:
            index.insert(k, k)
        query = 5000
        expected = sorted(abs(k - query) for k in keys)[:20]
        from repro.core.nn import nearest

        got = [d for d, _, _ in nearest(index, query, 20)]
        assert got == [float(d) for d in expected]

    def test_nn_is_incremental(self, buffer):
        index = make_index(buffer)
        for k in [1, 5, 9]:
            index.insert(k, k)
        scan = index.nn_search(6)
        assert next(scan)[1] == 5
        assert next(scan)[1] in (9, 1)  # distance ties broken arbitrarily


class TestEvictionSafety:
    def test_inserts_and_searches_under_tiny_pool(self, small_buffer):
        import random

        rng = random.Random(2)
        keys = [rng.randrange(500) for _ in range(400)]
        index = SPGiSTIndex(small_buffer, ToyBinaryMethods(bucket_size=2))
        for i, k in enumerate(keys):
            index.insert(k, i)
        for probe in rng.sample(keys, 20):
            expected = sorted(i for i, k in enumerate(keys) if k == probe)
            got = sorted(v for _, v in index.search(Query("=", probe)))
            assert got == expected
