"""Unit tests for tree statistics collection."""

from repro.core.stats import TreeStatistics
from repro.indexes.trie import TrieIndex
from repro.workloads import random_words


class TestTreeStatistics:
    def test_empty_index(self, buffer):
        trie = TrieIndex(buffer)
        stats = trie.statistics()
        assert stats == TreeStatistics(
            inner_nodes=0,
            leaf_nodes=0,
            items=0,
            max_node_height=0,
            max_page_height=0,
            pages=0,
            used_bytes=0,
            fill_factor=0.0,
        )

    def test_single_leaf(self, buffer):
        trie = TrieIndex(buffer)
        trie.insert("a", 1)
        stats = trie.statistics()
        assert stats.leaf_nodes == 1
        assert stats.inner_nodes == 0
        assert stats.items == 1
        assert stats.max_node_height == 1
        assert stats.max_page_height == 1
        assert stats.pages == 1

    def test_item_count_matches_len(self, buffer):
        trie = TrieIndex(buffer, bucket_size=2)
        words = random_words(300, seed=11)
        for i, w in enumerate(words):
            trie.insert(w, i)
        stats = trie.statistics()
        assert stats.items == len(trie) == 300

    def test_total_nodes(self, buffer):
        trie = TrieIndex(buffer, bucket_size=2)
        for i, w in enumerate(random_words(100, seed=12)):
            trie.insert(w, i)
        stats = trie.statistics()
        assert stats.total_nodes == stats.inner_nodes + stats.leaf_nodes
        assert stats.inner_nodes > 0

    def test_page_height_never_exceeds_node_height(self, buffer):
        trie = TrieIndex(buffer, bucket_size=2)
        for i, w in enumerate(random_words(500, seed=13)):
            trie.insert(w, i)
        stats = trie.statistics()
        assert 1 <= stats.max_page_height <= stats.max_node_height

    def test_node_height_bounded_by_longest_word(self, buffer):
        trie = TrieIndex(buffer, bucket_size=1)
        words = ["a", "ab", "abc", "abcd", "abcde"]
        for w in words:
            trie.insert(w)
        # Patricia shrink keeps height at most ~word length + 1 leaf level.
        assert trie.statistics().max_node_height <= len(max(words, key=len)) + 1

    def test_fill_factor_in_unit_interval(self, buffer):
        trie = TrieIndex(buffer, bucket_size=4)
        for i, w in enumerate(random_words(200, seed=14)):
            trie.insert(w, i)
        assert 0.0 < trie.statistics().fill_factor <= 1.0
