"""Unit tests for SPGiSTConfig / PathShrink."""

import pytest

from repro.core import PathShrink, SPGiSTConfig


def make(**overrides):
    base = dict(
        node_predicate="letter or blank",
        key_type="varchar",
        num_space_partitions=27,
        resolution=0,
        path_shrink=PathShrink.TREE_SHRINK,
        node_shrink=True,
        bucket_size=8,
    )
    base.update(overrides)
    return SPGiSTConfig(**base)


class TestValidation:
    def test_valid_config(self):
        cfg = make()
        assert cfg.num_space_partitions == 27

    def test_partitions_below_two_rejected(self):
        with pytest.raises(ValueError):
            make(num_space_partitions=1)

    def test_bucket_below_one_rejected(self):
        with pytest.raises(ValueError):
            make(bucket_size=0)

    def test_negative_resolution_rejected(self):
        with pytest.raises(ValueError):
            make(resolution=-1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make().bucket_size = 5


class TestDescribe:
    def test_describe_mirrors_paper_names(self):
        d = make().describe()
        assert d["NoOfSpacePartitions"] == 27
        assert d["PathShrink"] == "TreeShrink"
        assert d["NodeShrink"] is True
        assert d["BucketSize"] == 8
        assert d["KeyType"] == "varchar"

    def test_unlimited_resolution_rendering(self):
        assert make(resolution=0).describe()["Resolution"] == "unlimited"
        assert make(resolution=12).describe()["Resolution"] == 12


class TestPathShrinkEnum:
    def test_paper_values(self):
        assert PathShrink.NEVER_SHRINK.value == "NeverShrink"
        assert PathShrink.LEAF_SHRINK.value == "LeafShrink"
        assert PathShrink.TREE_SHRINK.value == "TreeShrink"
