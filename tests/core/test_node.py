"""Unit tests for SP-GiST node structures and the BLANK sentinel."""

import pickle

from repro.core import BLANK, Entry, InnerNode, LeafNode, NodeRef


class TestBlankSentinel:
    def test_singleton(self):
        from repro.core.node import _Blank

        assert _Blank() is BLANK

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(BLANK)) is BLANK

    def test_distinct_from_empty_string_and_none(self):
        assert BLANK != ""
        assert BLANK is not None

    def test_repr(self):
        assert repr(BLANK) == "BLANK"


class TestNodeRef:
    def test_is_hashable_tuple(self):
        ref = NodeRef(3, 1)
        assert ref.page_id == 3 and ref.slot == 1
        assert ref == (3, 1)
        assert hash(ref) == hash((3, 1))


class TestInnerNode:
    def test_find_entry(self):
        node = InnerNode(
            predicate="pre",
            entries=[Entry("a", NodeRef(0, 0)), Entry(BLANK, NodeRef(0, 1))],
        )
        assert node.find_entry("a") == 0
        assert node.find_entry(BLANK) == 1
        assert node.find_entry("z") is None

    def test_is_leaf_false(self):
        assert not InnerNode().is_leaf

    def test_size_grows_with_entries(self):
        small = InnerNode(entries=[Entry("a", NodeRef(0, 0))])
        big = InnerNode(entries=[Entry("a", NodeRef(0, 0)) for _ in range(10)])
        assert big.approx_bytes() > small.approx_bytes()


class TestLeafNode:
    def test_is_leaf_true(self):
        assert LeafNode().is_leaf

    def test_len(self):
        assert len(LeafNode(items=[("a", 1), ("b", 2)])) == 2

    def test_size_grows_with_items(self):
        small = LeafNode(items=[("a", 1)])
        big = LeafNode(items=[("abcdefgh", i) for i in range(20)])
        assert big.approx_bytes() > small.approx_bytes()

    def test_pickle_roundtrip(self):
        leaf = LeafNode(items=[("word", NodeRef(1, 2))])
        clone = pickle.loads(pickle.dumps(leaf))
        assert clone.items == leaf.items
