"""Contract tests for the ExternalMethods interface itself."""

import pytest

from repro.core.external import (
    AddEntry,
    Descend,
    DescendMultiple,
    ExternalMethods,
    PickSplitResult,
    Query,
    SplitPrefix,
)
from repro.indexes.kdtree import KDTreeMethods
from repro.indexes.pmr import PMRQuadtreeMethods
from repro.indexes.pquadtree import PointQuadtreeMethods
from repro.indexes.suffix import SuffixTreeMethods
from repro.indexes.trie import TrieMethods
from repro.workloads.points import WORLD

ALL_METHODS = [
    TrieMethods(),
    SuffixTreeMethods(),
    KDTreeMethods(),
    PointQuadtreeMethods(),
    PMRQuadtreeMethods(WORLD),
]


class TestQueryObject:
    def test_frozen(self):
        q = Query("=", "x")
        with pytest.raises(AttributeError):
            q.op = "#="

    def test_fields(self):
        q = Query("^", (1, 2))
        assert q.op == "^" and q.operand == (1, 2)


class TestChooseResults:
    def test_descend_defaults(self):
        r = Descend(3)
        assert r.entry_index == 3 and r.level_delta == 1

    def test_descend_multiple_holds_tuple(self):
        r = DescendMultiple((0, 2))
        assert r.entry_indexes == (0, 2)

    def test_add_entry(self):
        r = AddEntry("z", level_delta=4)
        assert r.predicate == "z" and r.level_delta == 4

    def test_split_prefix_fields(self):
        r = SplitPrefix("ab", "c", "def")
        assert (r.new_prefix, r.old_entry_predicate, r.old_node_predicate) == (
            "ab",
            "c",
            "def",
        )

    def test_picksplit_result_defaults(self):
        r = PickSplitResult("pred", [("a", [])])
        assert r.level_delta == 1
        assert r.recurse_overfull is True
        assert r.progress is True


class TestEveryInstantiationHonoursTheContract:
    @pytest.mark.parametrize(
        "methods", ALL_METHODS, ids=lambda m: type(m).__name__
    )
    def test_parameters_are_wellformed(self, methods):
        cfg = methods.get_parameters()
        assert cfg.num_space_partitions >= 2
        assert cfg.bucket_size >= 1
        assert cfg.key_type

    @pytest.mark.parametrize(
        "methods", ALL_METHODS, ids=lambda m: type(m).__name__
    )
    def test_supported_operators_nonempty(self, methods):
        assert methods.supported_operators
        assert methods.equality_operator in methods.supported_operators

    @pytest.mark.parametrize(
        "methods", ALL_METHODS, ids=lambda m: type(m).__name__
    )
    def test_all_paper_instantiations_support_nn(self, methods):
        assert methods.supports_nn
        assert "@@" in methods.supported_operators

    def test_abstract_base_cannot_instantiate(self):
        with pytest.raises(TypeError):
            ExternalMethods()  # type: ignore[abstract]

    def test_base_nn_stubs_raise(self):
        class Minimal(TrieMethods):
            nn_inner_distance = ExternalMethods.nn_inner_distance
            nn_leaf_distance = ExternalMethods.nn_leaf_distance

        m = Minimal()
        assert not m.supports_nn
        with pytest.raises(NotImplementedError):
            m.nn_inner_distance("q", None, "a", 0, None)
        with pytest.raises(NotImplementedError):
            m.nn_leaf_distance("q", "k")

    def test_default_level_delta_is_one(self):
        assert KDTreeMethods().level_delta(None) == 1

    def test_default_root_predicate_none_for_data_driven(self):
        assert TrieMethods().initial_root_predicate() is None
        assert KDTreeMethods().initial_root_predicate() is None

    def test_spanning_flags(self):
        assert PMRQuadtreeMethods(WORLD).spanning
        assert not TrieMethods().spanning
        assert not KDTreeMethods().spanning
