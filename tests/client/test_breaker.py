"""CircuitBreaker: closed → open → half-open state machine."""

from __future__ import annotations

import pytest

from repro.client.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.errors import CircuitOpenError


def make(threshold: int = 3, reset: float = 60.0) -> CircuitBreaker:
    return CircuitBreaker(
        "test:0", failure_threshold=threshold, reset_timeout=reset)


class TestClosed:
    def test_starts_closed_and_admits(self) -> None:
        breaker = make()
        assert breaker.state == CLOSED
        breaker.acquire()  # does not raise

    def test_trips_at_threshold(self) -> None:
        breaker = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_success_resets_the_count(self) -> None:
        breaker = make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED


class TestOpen:
    def test_fails_fast_while_open(self) -> None:
        breaker = make(threshold=1)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            breaker.acquire()

    def test_half_opens_after_reset_timeout(self) -> None:
        breaker = make(threshold=1, reset=0.0)
        breaker.record_failure()
        assert breaker.state == HALF_OPEN


class TestHalfOpen:
    def _half_open(self) -> CircuitBreaker:
        breaker = make(threshold=1, reset=0.0)
        breaker.record_failure()
        assert breaker.state == HALF_OPEN
        return breaker

    def test_exactly_one_probe_admitted(self) -> None:
        breaker = self._half_open()
        breaker.acquire()  # the probe
        with pytest.raises(CircuitOpenError):
            breaker.acquire()  # everyone else fails fast

    def test_probe_success_closes(self) -> None:
        breaker = self._half_open()
        breaker.acquire()
        breaker.record_success()
        assert breaker.state == CLOSED
        breaker.acquire()

    def test_probe_failure_reopens(self) -> None:
        breaker = make(threshold=1, reset=3600.0)
        breaker.record_failure()
        breaker._opened_at -= 3600.0  # fast-forward the cool-down
        breaker.acquire()
        breaker.record_failure()
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            breaker.acquire()
