"""ResilientClient end-to-end: retries, exactly-once, replay, failover."""

from __future__ import annotations

import random
import socket

import pytest

from repro.client import ResilientClient, RetryPolicy
from repro.engine.sql import Database
from repro.errors import RetriesExceededError, SQLError
from repro.server.manager import DedupCache, SessionManager
from repro.server.net import SQLServer
from repro.settings import SETTINGS


class Cluster:
    """A restartable server whose successors share the dedup cache."""

    def __init__(self) -> None:
        self.settings = SETTINGS.replace(worker_threads=2, drain_timeout=0.5)
        self.db = Database()
        self.db.execute("CREATE TABLE t (key VARCHAR(24), id INT);")
        self.db.execute(
            "CREATE INDEX t_idx ON t USING SP_GiST (key SP_GiST_trie);")
        self.dedup = DedupCache(self.settings.dedup_cache_size)
        self.manager = SessionManager(
            self.db, settings=self.settings, dedup=self.dedup)
        self.server = SQLServer(self.manager).start()

    def restart(self) -> None:
        self.server.drain(timeout=0.5)
        self.manager = SessionManager(
            self.db, settings=self.settings, dedup=self.dedup)
        self.server = SQLServer(self.manager).start()

    def stop(self) -> None:
        self.server.stop()
        self.manager.stop()

    def rows(self, key: str) -> list:
        return self.db.execute(f"SELECT * FROM t WHERE key = '{key}';")


@pytest.fixture
def cluster():
    c = Cluster()
    yield c
    c.stop()


def make_client(cluster, **kw) -> ResilientClient:
    kw.setdefault(
        "policy",
        RetryPolicy(max_retries=20, backoff_base=0.005, backoff_cap=0.05,
                    rng=random.Random(0)))
    kw.setdefault("op_timeout", 10.0)
    kw.setdefault("pool_size", 2)
    kw.setdefault("connect_timeout", 1.0)
    kw.setdefault("breaker_failure_threshold", 3)
    kw.setdefault("breaker_reset_timeout", 0.02)
    kw.setdefault("discover", lambda: [cluster.server.address])
    return ResilientClient(**kw)


class TestAutocommit:
    def test_write_then_read(self, cluster) -> None:
        with make_client(cluster) as client:
            assert client.execute(
                "INSERT INTO t VALUES ('alpha', 1);") == "INSERT 0 1"
            assert client.execute(
                "SELECT * FROM t WHERE key = 'alpha';") == [("alpha", 1)]

    def test_explicit_key_dedups_a_resend(self, cluster) -> None:
        with make_client(cluster) as client:
            first = client.execute(
                "INSERT INTO t VALUES ('dup', 1);", key="k-dup")
            again = client.execute(
                "INSERT INTO t VALUES ('dup', 1);", key="k-dup")
            assert first == again == "INSERT 0 1"
        assert len(cluster.rows("dup")) == 1

    def test_keyed_resend_dedups_across_restart(self, cluster) -> None:
        with make_client(cluster) as client:
            client.execute("INSERT INTO t VALUES ('boot', 7);", key="k-boot")
            cluster.restart()
            client.execute("INSERT INTO t VALUES ('boot', 7);", key="k-boot")
        assert len(cluster.rows("boot")) == 1

    def test_sql_errors_propagate_without_retry(self, cluster) -> None:
        with make_client(cluster) as client:
            with pytest.raises(SQLError):
                client.execute("SELECT * FROM no_such_table;")

    def test_dead_endpoint_exhausts_retries(self, cluster) -> None:
        address = cluster.server.address
        cluster.server.stop()
        client = ResilientClient(
            endpoints=[address],
            policy=RetryPolicy(max_retries=2, backoff_base=0.001,
                               backoff_cap=0.005, rng=random.Random(0)),
            op_timeout=2.0,
            connect_timeout=0.2,
        )
        with pytest.raises(RetriesExceededError):
            client.execute("SELECT * FROM t;")
        client.close()


class TestFailover:
    def test_execute_rides_through_a_restart(self, cluster) -> None:
        with make_client(cluster) as client:
            client.execute("INSERT INTO t VALUES ('pre', 1);")
            cluster.restart()  # discovery re-resolves to the new port
            client.execute("INSERT INTO t VALUES ('post', 2);")
            assert len(cluster.rows("pre")) == 1
            assert len(cluster.rows("post")) == 1


class TestTransactions:
    def test_commit_applies_all_statements(self, cluster) -> None:
        with make_client(cluster) as client:
            def block(txn):
                txn.execute("INSERT INTO t VALUES ('txa', 1);")
                txn.execute("INSERT INTO t VALUES ('txb', 2);")
                return "done"

            assert client.run_transaction(block) == "done"
        assert len(cluster.rows("txa")) == 1
        assert len(cluster.rows("txb")) == 1

    def test_caller_exception_rolls_back(self, cluster) -> None:
        with make_client(cluster) as client:
            def block(txn):
                txn.execute("INSERT INTO t VALUES ('gone', 1);")
                raise ValueError("caller bailed")

            with pytest.raises(ValueError):
                client.run_transaction(block)
            assert cluster.rows("gone") == []
            # The connection is reusable afterwards.
            client.execute("INSERT INTO t VALUES ('after', 1);")

    def test_connection_loss_mid_block_replays_whole_function(
        self, cluster
    ) -> None:
        calls = []

        def block(txn):
            calls.append(1)
            txn.execute("INSERT INTO t VALUES ('replay', 1);")
            if len(calls) == 1:
                # Kill the socket under the transaction: the server rolls
                # the block back on disconnect, the driver must replay
                # the WHOLE function, not resume mid-block.
                txn._attempt.conn.client._sock.shutdown(
                    socket.SHUT_RDWR)
                txn.execute("SELECT * FROM t;")  # raises ConnectionLost
            return len(calls)

        with make_client(cluster) as client:
            assert client.run_transaction(block) == 2
        assert len(calls) == 2
        assert len(cluster.rows("replay")) == 1  # replayed, not duplicated

    def test_fn_sql_error_propagates_after_rollback(self, cluster) -> None:
        with make_client(cluster) as client:
            def block(txn):
                txn.execute("INSERT INTO t VALUES ('half', 1);")
                txn.execute("SELECT * FROM no_such_table;")

            with pytest.raises(SQLError):
                client.run_transaction(block)
        assert cluster.rows("half") == []
