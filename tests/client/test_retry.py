"""RetryPolicy: classification matrix, full-jitter backoff, deadlines."""

from __future__ import annotations

import random
import time

import pytest

from repro.client.retry import RetryPolicy, remaining
from repro.errors import (
    CircuitOpenError,
    ConnectionLostError,
    DeadlockError,
    PoolTimeoutError,
    ProtocolError,
    ReplicationError,
    RetriesExceededError,
    ServerDrainingError,
    ServerOverloadedError,
    SQLError,
)


class TestClassification:
    @pytest.mark.parametrize(
        "exc",
        [
            DeadlockError("victim"),
            ServerOverloadedError("shed"),
            ServerDrainingError("bye"),
            PoolTimeoutError("full"),
            CircuitOpenError("open"),
        ],
    )
    def test_safe_errors_retry_with_or_without_key(self, exc) -> None:
        policy = RetryPolicy()
        assert policy.classify(exc, keyed=False)
        assert policy.classify(exc, keyed=True)

    def test_connection_loss_is_ambiguous(self) -> None:
        policy = RetryPolicy()
        exc = ConnectionLostError("ack lost")
        assert not policy.classify(exc, keyed=False)
        assert policy.classify(exc, keyed=True)

    @pytest.mark.parametrize(
        "exc",
        [ReplicationError("in doubt"), ProtocolError("bad frame")],
    )
    def test_never_retry_even_keyed(self, exc) -> None:
        policy = RetryPolicy()
        assert not policy.classify(exc, keyed=True)

    def test_plain_sql_errors_never_retry(self) -> None:
        policy = RetryPolicy()
        assert not policy.classify(SQLError("syntax error"), keyed=True)


class TestBackoff:
    def test_full_jitter_bounded_by_exponential_cap(self) -> None:
        policy = RetryPolicy(
            backoff_base=0.1, backoff_cap=1.0, rng=random.Random(42))
        for attempt in range(12):
            ceiling = min(1.0, 0.1 * (2 ** attempt))
            for _ in range(20):
                delay = policy.backoff(attempt)
                assert 0.0 <= delay <= ceiling

    def test_jitter_varies(self) -> None:
        policy = RetryPolicy(
            backoff_base=0.5, backoff_cap=10.0, rng=random.Random(1))
        draws = {policy.backoff(4) for _ in range(10)}
        assert len(draws) > 1

    def test_sleep_clipped_to_deadline(self) -> None:
        policy = RetryPolicy(
            backoff_base=10.0, backoff_cap=10.0, rng=random.Random(0))
        deadline = time.monotonic() + 0.05
        started = time.monotonic()
        policy.sleep(5, deadline)
        assert time.monotonic() - started < 1.0


class TestGiveUpAndRemaining:
    def test_gives_up_after_max_retries(self) -> None:
        policy = RetryPolicy(max_retries=3)
        assert not policy.give_up(2, None)
        assert policy.give_up(3, None)

    def test_gives_up_past_deadline(self) -> None:
        policy = RetryPolicy(max_retries=1000)
        assert policy.give_up(0, time.monotonic() - 0.01)
        assert not policy.give_up(0, time.monotonic() + 60)

    def test_remaining_none_means_unbounded(self) -> None:
        assert remaining(None) is None

    def test_remaining_positive_budget(self) -> None:
        left = remaining(time.monotonic() + 5.0)
        assert left is not None and 0 < left <= 5.0

    def test_remaining_raises_when_expired(self) -> None:
        with pytest.raises(RetriesExceededError):
            remaining(time.monotonic() - 0.01)
