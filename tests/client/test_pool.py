"""ConnectionPool: reuse, bounded waits, health checks, discards."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.client.pool import ConnectionPool
from repro.engine.sql import Database
from repro.errors import PoolTimeoutError
from repro.server.manager import SessionManager
from repro.server.net import SQLServer
from repro.settings import SETTINGS


@pytest.fixture
def server():
    db = Database()
    db.execute("CREATE TABLE t (key VARCHAR(20), id INT);")
    db.execute("INSERT INTO t VALUES ('alpha', 1);")
    manager = SessionManager(db, settings=SETTINGS.replace(worker_threads=2))
    with SQLServer(manager) as srv:
        yield srv
    manager.stop()


def make_pool(server, **kw) -> ConnectionPool:
    kw.setdefault("size", 2)
    kw.setdefault("acquire_timeout", 0.3)
    kw.setdefault("connect_timeout", 1.0)
    return ConnectionPool(server.address, **kw)


class TestReuse:
    def test_release_then_acquire_reuses_the_socket(self, server) -> None:
        with make_pool(server) as pool:
            conn = pool.acquire()
            assert conn.execute("SELECT * FROM t;") == [("alpha", 1)]
            pool.release(conn)
            again = pool.acquire()
            assert again is conn
            pool.release(again)

    def test_distinct_connections_while_both_held(self, server) -> None:
        with make_pool(server) as pool:
            a, b = pool.acquire(), pool.acquire()
            assert a is not b
            assert pool.stats() == {"live": 2, "idle": 0}
            pool.release(a)
            pool.release(b)
            assert pool.stats() == {"live": 2, "idle": 2}


class TestBoundedness:
    def test_acquire_times_out_when_pool_exhausted(self, server) -> None:
        with make_pool(server, size=1, acquire_timeout=0.1) as pool:
            conn = pool.acquire()
            with pytest.raises(PoolTimeoutError):
                pool.acquire()
            pool.release(conn)

    def test_release_wakes_a_waiter(self, server) -> None:
        with make_pool(server, size=1, acquire_timeout=5.0) as pool:
            conn = pool.acquire()
            got = []

            def waiter() -> None:
                other = pool.acquire()
                got.append(other)
                pool.release(other)

            thread = threading.Thread(target=waiter)
            thread.start()
            pool.release(conn)
            thread.join(timeout=5)
            assert got and got[0] is conn

    def test_failed_dial_frees_the_slot(self, server) -> None:
        # Grab a port that refuses connections.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead = probe.getsockname()
        probe.close()
        pool = ConnectionPool(
            dead, size=1, acquire_timeout=0.1, connect_timeout=0.2)
        with pytest.raises(OSError):
            pool.acquire()
        # The reserved slot was returned: the next failure is again the
        # dial error, not a PoolTimeoutError from a leaked reservation.
        with pytest.raises(OSError):
            pool.acquire()
        pool.close()


class TestHealthAndDiscard:
    def test_stale_idle_connection_is_pinged_before_reuse(self, server) -> None:
        with make_pool(server, health_check_interval=0.0) as pool:
            conn = pool.acquire()
            pool.release(conn)
            again = pool.acquire()  # idle >= 0.0s → ping → healthy → reuse
            assert again is conn
            pool.release(again)

    def test_dead_idle_connection_discarded_on_acquire(self, server) -> None:
        with make_pool(server, health_check_interval=0.0) as pool:
            conn = pool.acquire()
            pool.release(conn)
            # Kill the socket behind the pool's back (shutdown, not close:
            # the makefile() handle keeps the fd alive past a bare close).
            conn.client._sock.shutdown(socket.SHUT_RDWR)
            fresh = pool.acquire()
            assert fresh is not conn
            assert fresh.execute("SELECT * FROM t;") == [("alpha", 1)]
            pool.release(fresh)
            assert pool.stats()["live"] == 1

    def test_broken_connection_not_requeued(self, server) -> None:
        with make_pool(server) as pool:
            conn = pool.acquire()
            conn.broken = True
            pool.release(conn)
            assert pool.stats() == {"live": 0, "idle": 0}


class TestLifecycle:
    def test_acquire_after_close_refused(self, server) -> None:
        pool = make_pool(server)
        pool.close()
        with pytest.raises(PoolTimeoutError):
            pool.acquire()

    def test_release_after_close_discards(self, server) -> None:
        pool = make_pool(server)
        conn = pool.acquire()
        pool.close()
        pool.release(conn)
        assert pool.stats()["idle"] == 0
