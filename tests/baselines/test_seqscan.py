"""Tests for the sequential-scan baseline."""

from repro.baselines import sequential_scan, substring_scan
from repro.storage import HeapFile
from repro.workloads import random_words


class TestSequentialScan:
    def test_predicate_filtering(self, buffer):
        heap = HeapFile(buffer)
        for i in range(100):
            heap.insert(i)
        evens = [r for _, r in sequential_scan(heap, lambda r: r % 2 == 0)]
        assert evens == list(range(0, 100, 2))

    def test_yields_tids(self, buffer):
        heap = HeapFile(buffer)
        tid = heap.insert("target")
        heap.insert("other")
        [(found_tid, record)] = list(
            sequential_scan(heap, lambda r: r == "target")
        )
        assert found_tid == tid and record == "target"

    def test_empty_heap(self, buffer):
        heap = HeapFile(buffer)
        assert list(sequential_scan(heap, lambda r: True)) == []


class TestSubstringScan:
    def test_vs_python_in(self, buffer):
        heap = HeapFile(buffer)
        words = random_words(500, seed=111)
        for w in words:
            heap.insert(w)
        got = sorted(r for _, r in substring_scan(heap, "ab"))
        assert got == sorted(w for w in words if "ab" in w)

    def test_extract_function_for_rows(self, buffer):
        heap = HeapFile(buffer)
        heap.insert(("banana", 1))
        heap.insert(("cherry", 2))
        hits = substring_scan(heap, "nan", extract=lambda row: row[0])
        assert [r for _, r in hits] == [("banana", 1)]

    def test_scan_cost_is_all_pages(self, buffer):
        heap = HeapFile(buffer)
        for w in random_words(3000, seed=112):
            heap.insert(w)
        buffer.clear()
        substring_scan(heap, "zzzz")
        assert buffer.stats.misses >= heap.num_pages
