"""Tests for the Guttman R-tree baseline."""

import random

import pytest

from repro.baselines import RTree
from repro.baselines.rtree import object_mbr
from repro.errors import KeyNotFoundError
from repro.geometry import Box, LineSegment, Point
from repro.workloads import random_points, random_query_boxes, random_segments


@pytest.fixture
def point_tree(buffer):
    points = random_points(1200, seed=91)
    tree = RTree(buffer)
    for i, p in enumerate(points):
        tree.insert(p, i)
    return tree, points


@pytest.fixture
def segment_tree(buffer):
    segments = random_segments(800, seed=92)
    tree = RTree(buffer)
    for i, s in enumerate(segments):
        tree.insert(s, i)
    return tree, segments


class TestObjectMBR:
    def test_point_mbr_is_degenerate(self):
        assert object_mbr(Point(3, 4)) == Box(3, 4, 3, 4)

    def test_segment_mbr(self):
        s = LineSegment(Point(5, 1), Point(2, 7))
        assert object_mbr(s) == Box(2, 1, 5, 7)

    def test_box_passthrough(self):
        b = Box(0, 0, 2, 2)
        assert object_mbr(b) is b

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            object_mbr("not spatial")


class TestPointWorkload:
    def test_exact_match_vs_bruteforce(self, point_tree):
        tree, points = point_tree
        rng = random.Random(0)
        for probe in rng.sample(points, 30):
            expected = sorted(i for i, p in enumerate(points) if p == probe)
            assert sorted(v for _, v in tree.search_exact(probe)) == expected

    def test_window_vs_bruteforce(self, point_tree):
        tree, points = point_tree
        for box in random_query_boxes(8, side=10.0, seed=93):
            expected = sorted(
                i for i, p in enumerate(points) if box.contains_point(p)
            )
            assert sorted(v for _, v in tree.range_search(box)) == expected

    def test_invariants_hold(self, point_tree):
        tree, _ = point_tree
        tree.check_invariants()

    def test_height_grows_from_one(self, buffer):
        tree = RTree(buffer)
        assert tree.height == 1
        for i, p in enumerate(random_points(1200, seed=94)):
            tree.insert(p, i)
        assert tree.height >= 2


class TestSegmentWorkload:
    def test_exact_match(self, segment_tree):
        tree, segments = segment_tree
        probe = segments[17]
        expected = sorted(i for i, s in enumerate(segments) if s == probe)
        assert sorted(v for _, v in tree.search_exact(probe)) == expected

    def test_window_exact_geometry_filtering(self, segment_tree):
        # range_search must filter by true segment intersection, not MBR.
        tree, segments = segment_tree
        win = Box(40, 40, 50, 50)
        expected = sorted(
            i for i, s in enumerate(segments) if s.intersects_box(win)
        )
        assert sorted(v for _, v in tree.range_search(win)) == expected

    def test_mbr_only_window_search_is_superset(self, segment_tree):
        tree, segments = segment_tree
        win = Box(40, 40, 50, 50)
        raw = {v for _, v in tree.window_search(win)}
        filtered = {v for _, v in tree.range_search(win)}
        assert filtered <= raw

    def test_invariants_hold(self, segment_tree):
        tree, _ = segment_tree
        tree.check_invariants()


class TestDelete:
    def test_delete_and_requery(self, point_tree):
        tree, points = point_tree
        assert tree.delete(points[0], 0) == 1
        assert 0 not in [v for _, v in tree.search_exact(points[0])]
        tree.check_invariants()

    def test_delete_missing_raises(self, buffer):
        tree = RTree(buffer)
        tree.insert(Point(1, 1), 0)
        with pytest.raises(KeyNotFoundError):
            tree.delete(Point(9, 9))

    def test_mass_delete_with_condense(self, buffer):
        points = random_points(600, seed=95)
        tree = RTree(buffer)
        for i, p in enumerate(points):
            tree.insert(p, i)
        rng = random.Random(4)
        victims = set(rng.sample(range(len(points)), 400))
        for i in victims:
            tree.delete(points[i], i)
        tree.check_invariants()
        survivors = sorted(set(range(len(points))) - victims)
        got = sorted(
            v for _, v in tree.range_search(Box(0, 0, 100, 100))
        )
        assert got == survivors

    def test_delete_everything(self, buffer):
        points = random_points(100, seed=96)
        tree = RTree(buffer)
        for i, p in enumerate(points):
            tree.insert(p, i)
        for i, p in enumerate(points):
            tree.delete(p, i)
        assert len(tree) == 0
        assert tree.range_search(Box(0, 0, 100, 100)) == []
        assert tree.height == 1

    def test_root_shrinks_after_deletes(self, buffer):
        points = random_points(1500, seed=97)
        tree = RTree(buffer)
        for i, p in enumerate(points):
            tree.insert(p, i)
        tall = tree.height
        for i, p in enumerate(points[:1400]):
            tree.delete(p, i)
        assert tree.height <= tall
        tree.check_invariants()


class TestEvictionSafety:
    def test_correct_under_tiny_pool(self, small_buffer):
        points = random_points(500, seed=98)
        tree = RTree(small_buffer)
        for i, p in enumerate(points):
            tree.insert(p, i)
        box = Box(25, 25, 60, 70)
        expected = sorted(
            i for i, p in enumerate(points) if box.contains_point(p)
        )
        assert sorted(v for _, v in tree.range_search(box)) == expected
