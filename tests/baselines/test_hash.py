"""Tests for the linear-hashing hash index baseline."""

import random

import pytest

from repro.baselines import HashIndex
from repro.baselines.hash import INITIAL_BUCKETS, stable_hash
from repro.errors import KeyNotFoundError
from repro.workloads import random_words


@pytest.fixture
def loaded(buffer):
    words = random_words(3000, seed=341)
    index = HashIndex(buffer)
    for i, w in enumerate(words):
        index.insert(w, i)
    return index, words


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash(42) == stable_hash(42)

    def test_spreads_keys(self):
        values = {stable_hash("k%04d" % i) % 64 for i in range(1000)}
        assert len(values) == 64  # every bucket hit


class TestInsertSearch:
    def test_roundtrip(self, buffer):
        index = HashIndex(buffer)
        index.insert("hello", 1)
        assert index.search("hello") == [1]
        assert index.search("absent") == []

    def test_vs_bruteforce(self, loaded):
        index, words = loaded
        rng = random.Random(0)
        for probe in rng.sample(words, 40):
            expected = sorted(i for i, w in enumerate(words) if w == probe)
            assert sorted(index.search(probe)) == expected

    def test_duplicates(self, buffer):
        index = HashIndex(buffer)
        for i in range(8):
            index.insert("dup", i)
        assert sorted(index.search("dup")) == list(range(8))

    def test_integer_keys(self, buffer):
        index = HashIndex(buffer)
        keys = random.Random(1).sample(range(100000), 2000)
        for k in keys:
            index.insert(k, k)
        index.check_invariants()
        assert index.search(keys[7]) == [keys[7]]

    def test_items_enumerates_everything(self, loaded):
        index, words = loaded
        assert sorted(v for _, v in index.items()) == list(range(len(words)))


class TestLinearSplitting:
    def test_buckets_grow_with_data(self, loaded):
        index, _ = loaded
        assert index.num_buckets > INITIAL_BUCKETS
        index.check_invariants()

    def test_load_stays_bounded(self, loaded):
        index, words = loaded
        per_bucket = len(index) / index.num_buckets
        assert per_bucket < index._bucket_budget * 1.5

    def test_search_cost_is_flat(self, buffer):
        # The whole point of hashing: ~1 page per equality probe.
        from repro.bench import measure_many

        words = random_words(4000, seed=342)
        index = HashIndex(buffer)
        for i, w in enumerate(words):
            index.insert(w, i)
        probes = words[::100]
        cost = measure_many(
            buffer, [lambda w=w: index.search(w) for w in probes],
            cold_each=True,
        )
        assert cost.reads_per_op <= 2.5

    def test_overflow_chains_then_split_away(self, buffer):
        index = HashIndex(buffer, page_capacity=512)  # tiny pages chain fast
        for i in range(500):
            index.insert("key-%04d" % i, i)
        index.check_invariants()
        for i in (0, 250, 499):
            assert index.search("key-%04d" % i) == [i]


class TestDelete:
    def test_delete_key(self, loaded):
        index, words = loaded
        count = index.delete(words[3])
        assert count >= 1
        assert index.search(words[3]) == []

    def test_delete_by_value(self, buffer):
        index = HashIndex(buffer)
        index.insert("k", 1)
        index.insert("k", 2)
        assert index.delete("k", 1) == 1
        assert index.search("k") == [2]

    def test_delete_missing_raises(self, buffer):
        index = HashIndex(buffer)
        index.insert("a", 1)
        with pytest.raises(KeyNotFoundError):
            index.delete("b")

    def test_len_tracks(self, buffer):
        index = HashIndex(buffer)
        for i in range(10):
            index.insert("w%d" % i, i)
        index.delete("w5")
        assert len(index) == 9


class TestEngineIntegration:
    def test_hash_index_through_sql(self):
        from repro.engine import Database

        db = Database()
        db.execute("CREATE TABLE t (name VARCHAR(20), id INT);")
        table = db.table("t")
        for i, w in enumerate(random_words(2000, seed=343)):
            table.insert((w, i))
        db.execute("CREATE INDEX h ON t USING hash (name hash_varchar);")
        db.execute("ANALYZE t;")
        plan = db.execute("EXPLAIN SELECT * FROM t WHERE name = 'qqqqq';")
        # With 2000 rows the flat-cost hash path should win the plan race.
        assert "Index Scan" in plan and " h" in plan

    def test_hash_and_btree_agree(self, buffer):
        from repro.engine.catalog import default_catalog
        from repro.engine.table import Column, Table

        table = Table("t", [Column("name", "varchar")], buffer,
                      default_catalog())
        words = random_words(800, seed=344)
        for w in words:
            table.insert((w,))
        h = table.create_index("h", "name", "hash", "hash_varchar")
        b = table.create_index("b", "name", "btree", "btree_varchar")
        for probe in words[::80]:
            assert sorted(h.scan("=", probe)) == sorted(b.scan("=", probe))

    def test_eviction_safety(self, small_buffer):
        words = random_words(1000, seed=345)
        index = HashIndex(small_buffer)
        for i, w in enumerate(words):
            index.insert(w, i)
        rng = random.Random(2)
        for probe in rng.sample(words, 20):
            expected = sorted(i for i, w in enumerate(words) if w == probe)
            assert sorted(index.search(probe)) == expected
