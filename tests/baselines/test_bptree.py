"""Tests for the disk-based B+-tree baseline."""

import random

import pytest

from repro.baselines import BPlusTree
from repro.errors import KeyNotFoundError
from repro.indexes.trie import regex_matches
from repro.workloads import random_words


@pytest.fixture
def loaded(buffer):
    words = random_words(2000, seed=81)
    tree = BPlusTree(buffer)
    for i, w in enumerate(words):
        tree.insert(w, i)
    return tree, words


class TestInsertSearch:
    def test_single_key(self, buffer):
        tree = BPlusTree(buffer)
        tree.insert("hello", 1)
        assert tree.search("hello") == [1]
        assert tree.search("absent") == []

    def test_vs_bruteforce(self, loaded):
        tree, words = loaded
        rng = random.Random(0)
        for probe in rng.sample(words, 40):
            expected = sorted(i for i, w in enumerate(words) if w == probe)
            assert sorted(tree.search(probe)) == expected

    def test_duplicates_kept(self, buffer):
        tree = BPlusTree(buffer)
        for i in range(10):
            tree.insert("dup", i)
        assert sorted(tree.search("dup")) == list(range(10))

    def test_invariants_after_load(self, loaded):
        tree, _ = loaded
        tree.check_invariants()
        assert tree.height >= 2  # 2000 keys do not fit one page

    def test_numeric_keys(self, buffer):
        tree = BPlusTree(buffer)
        keys = random.Random(1).sample(range(100000), 3000)
        for k in keys:
            tree.insert(k, k)
        tree.check_invariants()
        assert tree.search(keys[0]) == [keys[0]]

    def test_len(self, loaded):
        tree, words = loaded
        assert len(tree) == len(words)


class TestOrderedScans:
    def test_scan_all_is_sorted(self, loaded):
        tree, words = loaded
        keys = [k for k, _ in tree.scan_all()]
        assert keys == sorted(words)

    def test_range_scan_inclusive(self, loaded):
        tree, words = loaded
        lo, hi = "f", "m"
        expected = sorted(
            (w, i) for i, w in enumerate(words) if lo <= w <= hi
        )
        got = list(tree.range_scan(lo, hi, inclusive=True))
        assert got == expected

    def test_range_scan_exclusive_upper(self, buffer):
        tree = BPlusTree(buffer)
        for w in ["a", "b", "c"]:
            tree.insert(w, w)
        assert [k for k, _ in tree.range_scan("a", "c", inclusive=False)] == [
            "a",
            "b",
        ]

    def test_prefix_scan_vs_bruteforce(self, loaded):
        tree, words = loaded
        for prefix in ["a", "ab", "zz", "qqq"]:
            expected = sorted(
                (w, i) for i, w in enumerate(words) if w.startswith(prefix)
            )
            assert sorted(tree.prefix_scan(prefix)) == expected

    def test_prefix_scan_empty_prefix(self, loaded):
        tree, words = loaded
        assert sum(1 for _ in tree.prefix_scan("")) == len(words)


class TestRegexScan:
    def test_vs_bruteforce(self, loaded):
        tree, words = loaded
        rng = random.Random(2)
        pool = [w for w in words if len(w) >= 4]
        for _ in range(10):
            w = rng.choice(pool)
            pattern = "".join("?" if rng.random() < 0.35 else c for c in w)
            expected = sorted(
                i for i, word in enumerate(words) if regex_matches(pattern, word)
            )
            got = sorted(v for _, v in tree.regex_scan(pattern))
            assert got == expected, pattern

    def test_leading_wildcard_still_correct(self, loaded):
        tree, words = loaded
        pattern = "?" + words[0][1:]
        expected = sorted(
            i for i, w in enumerate(words) if regex_matches(pattern, w)
        )
        assert sorted(v for _, v in tree.regex_scan(pattern)) == expected

    def test_leading_wildcard_reads_whole_leaf_level(self, buffer):
        # The I/O claim behind Figure 7: a '?' first char → full scan.
        words = random_words(3000, seed=82)
        tree = BPlusTree(buffer)
        tree.bulk_load([(w, i) for i, w in enumerate(words)])
        buffer.clear()
        before = buffer.stats.misses
        list(tree.regex_scan("?" + "a" * 5))
        full_scan_reads = buffer.stats.misses - before
        buffer.clear()
        before = buffer.stats.misses
        list(tree.regex_scan("qa?de"))
        narrowed_reads = buffer.stats.misses - before
        assert narrowed_reads < full_scan_reads / 3


class TestBulkLoad:
    def test_bulk_equals_incremental(self, buffer):
        words = random_words(1500, seed=83)
        bulk = BPlusTree(buffer)
        bulk.bulk_load([(w, i) for i, w in enumerate(words)])
        bulk.check_invariants()
        incremental = BPlusTree(buffer)
        for i, w in enumerate(words):
            incremental.insert(w, i)
        assert list(bulk.scan_all()) == list(incremental.scan_all())

    def test_bulk_is_denser(self, buffer):
        words = random_words(2000, seed=84)
        bulk = BPlusTree(buffer)
        bulk.bulk_load([(w, i) for i, w in enumerate(words)])
        incremental = BPlusTree(buffer)
        for i, w in enumerate(words):
            incremental.insert(w, i)
        assert bulk.num_pages <= incremental.num_pages

    def test_bulk_empty(self, buffer):
        tree = BPlusTree(buffer)
        tree.bulk_load([])
        assert tree.search("x") == []
        assert len(tree) == 0

    def test_bulk_single(self, buffer):
        tree = BPlusTree(buffer)
        tree.bulk_load([("only", 1)])
        assert tree.search("only") == [1]


class TestDelete:
    def test_delete_single(self, loaded):
        tree, words = loaded
        count = tree.delete(words[5])
        assert count >= 1
        assert words[5] not in [k for k, _ in tree.range_scan(words[5], words[5])]

    def test_delete_by_value(self, buffer):
        tree = BPlusTree(buffer)
        tree.insert("k", 1)
        tree.insert("k", 2)
        assert tree.delete("k", 1) == 1
        assert tree.search("k") == [2]

    def test_delete_missing_raises(self, buffer):
        tree = BPlusTree(buffer)
        tree.insert("a", 1)
        with pytest.raises(KeyNotFoundError):
            tree.delete("b")

    def test_delete_duplicate_run_spanning_leaves(self, buffer):
        tree = BPlusTree(buffer)
        for i in range(500):
            tree.insert("samekey", i)  # forces duplicate run across leaves
        for i in range(300):
            tree.insert("other%03d" % i, i)
        assert tree.delete("samekey") == 500
        assert tree.search("samekey") == []
        tree.check_invariants()

    def test_vacuum_reclaims_pages(self, buffer):
        words = random_words(2000, seed=85)
        tree = BPlusTree(buffer)
        for i, w in enumerate(words):
            tree.insert(w, i)
        for w in words[:1500]:
            try:
                tree.delete(w)
            except KeyNotFoundError:
                pass  # already removed as a duplicate of an earlier word
        pages_before = tree.num_pages
        reclaimed = tree.vacuum()
        assert reclaimed > 0
        assert tree.num_pages < pages_before
        tree.check_invariants()


class TestEvictionSafety:
    def test_correct_under_tiny_pool(self, small_buffer):
        words = random_words(800, seed=86)
        tree = BPlusTree(small_buffer)
        for i, w in enumerate(words):
            tree.insert(w, i)
        rng = random.Random(3)
        for probe in rng.sample(words, 20):
            expected = sorted(i for i, w in enumerate(words) if w == probe)
            assert sorted(tree.search(probe)) == expected
