"""Shared fixtures: fresh buffer pools and seeded workloads."""

from __future__ import annotations

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.workloads import random_points, random_segments, random_words


@pytest.fixture
def disk() -> DiskManager:
    return DiskManager()


@pytest.fixture
def buffer(disk: DiskManager) -> BufferPool:
    """A pool large enough that tests never thrash unless they mean to."""
    return BufferPool(disk, capacity=256)


@pytest.fixture
def small_buffer(disk: DiskManager) -> BufferPool:
    """A deliberately tiny pool (4 frames) for eviction-path coverage."""
    return BufferPool(disk, capacity=4)


@pytest.fixture(scope="session")
def words_1k() -> list[str]:
    return random_words(1000, seed=101)


@pytest.fixture(scope="session")
def points_1k():
    return random_points(1000, seed=102)


@pytest.fixture(scope="session")
def segments_500():
    return random_segments(500, seed=103)
