"""Deserialized-node cache: hits, coherence with the pool, invalidation."""

from __future__ import annotations

import pytest

from repro.core.clustering import NodeStore
from repro.core.node import LeafNode, NodeRef
from repro.indexes import TrieIndex
from repro.storage import BufferPool, NodeCache
from repro.storage.disk import DiskManager
from repro.storage.nodecache import MISS
from repro.workloads import random_words


class TestNodeCacheUnit:
    def test_get_miss_then_hit(self):
        cache = NodeCache()
        assert cache.get(1, 0) is MISS
        cache.put(1, 0, "node")
        assert cache.get(1, 0) == "node"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == 0.5

    def test_drop_slot_and_page(self):
        cache = NodeCache()
        cache.put(1, 0, "a")
        cache.put(1, 1, "b")
        cache.put(2, 0, "c")
        cache.drop_slot(1, 0)
        assert not cache.holds(1, 0)
        assert cache.holds(1, 1)
        cache.drop_page(1)
        assert not cache.holds(1, 1)
        assert cache.holds(2, 0)
        assert cache.stats.invalidations == 2
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.invalidations == 3

    def test_dropping_absent_entries_counts_nothing(self):
        cache = NodeCache()
        cache.drop_slot(9, 9)
        cache.drop_page(9)
        cache.clear()
        assert cache.stats.invalidations == 0


class TestStoreIntegration:
    def test_read_populates_then_hits(self, buffer):
        store = NodeStore(buffer)
        ref = store.create(LeafNode(items=[("k", 1)]))
        hits0 = store.cache.stats.hits
        node1 = store.read(ref)
        node2 = store.read(ref)
        assert node1 is node2
        assert store.cache.stats.hits >= hits0 + 1

    def test_write_refreshes_cache_entry(self, buffer):
        store = NodeStore(buffer)
        ref = store.create(LeafNode(items=[("k", 1)]))
        replacement = LeafNode(items=[("k", 1), ("k2", 2)])
        new_ref = store.write(ref, replacement)
        assert new_ref == ref
        assert store.read(ref) is replacement

    def test_free_invalidates(self, buffer):
        store = NodeStore(buffer)
        ref = store.create(LeafNode(items=[("k", 1)]))
        store.read(ref)
        store.free(ref)
        assert not store.cache.holds(ref.page_id, ref.slot)

    def test_eviction_invalidates_cached_nodes(self, disk):
        pool = BufferPool(disk, capacity=2)
        store = NodeStore(pool)
        refs = [
            store.create(LeafNode(items=[(f"key-{i}" * 50, i)] * 20))
            for i in range(6)
        ]
        # With 2 frames and 6 node pages, most pages were evicted; the
        # cache must never hold a node of a non-resident page.
        resident = set(pool.resident_page_ids())
        for page_id in store.cache.cached_page_ids():
            assert page_id in resident
        # Reading an evicted ref misses the cache, re-reads, re-populates.
        victim = next(r for r in refs if r.page_id not in resident)
        misses0 = store.cache.stats.misses
        node = store.read(victim)
        assert node.items
        assert store.cache.stats.misses == misses0 + 1

    def test_pool_clear_empties_cache(self, buffer):
        store = NodeStore(buffer)
        ref = store.create(LeafNode(items=[("k", 1)]))
        store.read(ref)
        buffer.clear()
        assert len(store.cache) == 0

    def test_detach_stops_listening(self, buffer):
        store = NodeStore(buffer)
        ref = store.create(LeafNode(items=[("k", 1)]))
        store.detach()
        assert len(store.cache) == 0
        # After detach, pool events must not touch the dead cache.
        buffer.clear()
        store.cache.put(ref.page_id, ref.slot, "stale-by-choice")
        buffer.clear()
        assert store.cache.holds(ref.page_id, ref.slot)

    def test_cacheless_store_still_works(self, buffer):
        store = NodeStore(buffer, use_node_cache=False)
        ref = store.create(LeafNode(items=[("k", 1)]))
        assert store.cache is None
        assert store.read(ref).items == [("k", 1)]
        store.detach()  # no-op, must not raise

    def test_dangling_ref_purges_page(self, buffer):
        store = NodeStore(buffer)
        ref = store.create(LeafNode(items=[("k", 1)]))
        store.free(ref)
        from repro.errors import IndexCorruptionError

        with pytest.raises(IndexCorruptionError):
            store.read(ref)
        assert ref.page_id not in set(store.cache.cached_page_ids())


class TestCacheTransparency:
    """The cache must be invisible to everything except wall time."""

    def test_buffer_misses_identical_with_cache_on_and_off(self):
        def run(use_cache: bool) -> tuple[int, list]:
            pool = BufferPool(DiskManager(), capacity=8)
            index = TrieIndex(pool, bucket_size=4)
            if not use_cache:
                index.store.detach()
                index.store.cache = None
            words = random_words(300, seed=77)
            for i, word in enumerate(words):
                index.insert(word, i)
            from repro.core.external import Query

            results = []
            for word in words[::5]:
                results.append(sorted(index.search_list(Query("=", word))))
            return pool.stats.misses, results

        misses_cached, results_cached = run(True)
        misses_plain, results_plain = run(False)
        assert misses_cached == misses_plain
        assert results_cached == results_plain

    def test_cache_hit_preserves_lru_order(self, disk):
        pool = BufferPool(disk, capacity=4)
        store = NodeStore(pool)
        refs = [
            store.create(LeafNode(items=[(f"w{i}", i)]), near=None)
            for i in range(3)
        ]
        pool.fetch(refs[0].page_id)  # make page 0 most recent
        store.read(refs[0])  # cache hit must keep it most recent
        order = list(pool.resident_page_ids())
        assert order[-1] == refs[0].page_id
