"""Tests for the file-backed disk manager (durability across reopen)."""

import pytest

from repro.errors import PageNotFoundError
from repro.storage import BufferPool, FileDiskManager
from repro.indexes.trie import TrieIndex


@pytest.fixture
def disk_path(tmp_path):
    return str(tmp_path / "pages.dat")


class TestBasicIO:
    def test_roundtrip(self, disk_path):
        with FileDiskManager(disk_path) as disk:
            pid = disk.allocate_page()
            disk.write_page(pid, {"k": [1, 2]})
            assert disk.read_page(pid) == {"k": [1, 2]}

    def test_unwritten_page_reads_none(self, disk_path):
        with FileDiskManager(disk_path) as disk:
            pid = disk.allocate_page()
            assert disk.read_page(pid) is None

    def test_unknown_page_raises(self, disk_path):
        with FileDiskManager(disk_path) as disk:
            with pytest.raises(PageNotFoundError):
                disk.read_page(7)

    def test_overwrite_returns_latest(self, disk_path):
        with FileDiskManager(disk_path) as disk:
            pid = disk.allocate_page()
            disk.write_page(pid, "v1")
            disk.write_page(pid, "v2")
            assert disk.read_page(pid) == "v2"

    def test_stats_counted(self, disk_path):
        with FileDiskManager(disk_path) as disk:
            pid = disk.allocate_page()
            disk.write_page(pid, "x" * 100)
            disk.read_page(pid)
            assert disk.stats.writes == 1
            assert disk.stats.reads == 1
            assert disk.stats.bytes_written > 100


class TestDurability:
    def test_pages_survive_reopen(self, disk_path):
        with FileDiskManager(disk_path) as disk:
            a = disk.allocate_page()
            b = disk.allocate_page()
            disk.write_page(a, ["alpha"])
            disk.write_page(b, ["beta"])
        with FileDiskManager(disk_path) as disk:
            assert disk.read_page(a) == ["alpha"]
            assert disk.read_page(b) == ["beta"]

    def test_allocator_state_survives(self, disk_path):
        with FileDiskManager(disk_path) as disk:
            a = disk.allocate_page()
            disk.write_page(a, 1)
            disk.deallocate_page(a)
        with FileDiskManager(disk_path) as disk:
            reused = disk.allocate_page()
            assert reused == a  # free list restored
            fresh = disk.allocate_page()
            assert fresh != a

    def test_whole_index_survives_reopen(self, disk_path):
        words = ["space", "spade", "star", "stop", "banana"]
        with FileDiskManager(disk_path) as disk:
            pool = BufferPool(disk, capacity=16)
            trie = TrieIndex(pool, bucket_size=2)
            for i, w in enumerate(words):
                trie.insert(w, i)
            pool.flush_all()
            root = trie.root
            page_ids = list(trie.store.page_ids)
        with FileDiskManager(disk_path) as disk:
            pool = BufferPool(disk, capacity=16)
            revived = TrieIndex(pool, bucket_size=2)
            revived.root = root
            revived.store.page_ids = page_ids
            assert revived.search_equal("star") == [("star", 2)]
            assert sorted(v for _, v in revived.search_prefix("s")) == [0, 1, 2, 3]


class TestCompaction:
    def test_compact_reclaims_dead_versions(self, disk_path):
        with FileDiskManager(disk_path) as disk:
            pid = disk.allocate_page()
            for version in range(50):
                disk.write_page(pid, "payload-%03d" % version)
            before = disk.file_bytes
            reclaimed = disk.compact()
            assert reclaimed > 0
            assert disk.file_bytes < before
            assert disk.read_page(pid) == "payload-049"

    def test_compact_preserves_all_pages(self, disk_path):
        with FileDiskManager(disk_path) as disk:
            pids = [disk.allocate_page() for _ in range(20)]
            for i, pid in enumerate(pids):
                disk.write_page(pid, i)
                disk.write_page(pid, i * 10)  # create garbage
            disk.compact()
            for i, pid in enumerate(pids):
                assert disk.read_page(pid) == i * 10

    def test_compact_then_reopen(self, disk_path):
        with FileDiskManager(disk_path) as disk:
            pid = disk.allocate_page()
            disk.write_page(pid, "before")
            disk.write_page(pid, "after")
            disk.compact()
        with FileDiskManager(disk_path) as disk:
            assert disk.read_page(pid) == "after"
