"""Tests for sequential/random miss classification and the CPU counter."""

from repro.bench.harness import (
    CPU_OP_COST,
    RANDOM_PAGE_COST,
    SEQ_PAGE_COST,
    Measurement,
)
from repro.costmodel import CPU_OPS, OperationCounter
from repro.storage import BufferPool, DiskManager


class TestMissClassification:
    def test_ascending_pages_are_sequential(self):
        pool = BufferPool(DiskManager(), capacity=2)
        ids = [pool.new_page(i) for i in range(10)]
        pool.clear()
        for pid in ids:
            pool.fetch(pid)
        # First miss is random (no predecessor), the rest sequential.
        assert pool.stats.random_misses == 1
        assert pool.stats.seq_misses == 9

    def test_scattered_pages_are_random(self):
        pool = BufferPool(DiskManager(), capacity=2)
        ids = [pool.new_page(i) for i in range(10)]
        pool.clear()
        for pid in ids[::3] + ids[1::3]:
            pool.fetch(pid)
        assert pool.stats.seq_misses == 0

    def test_hits_not_classified(self):
        pool = BufferPool(DiskManager(), capacity=8)
        pid = pool.new_page("x")
        pool.clear()
        pool.fetch(pid)
        pool.fetch(pid)  # hit
        assert pool.stats.misses == 1
        assert pool.stats.seq_misses + pool.stats.random_misses == 1

    def test_split_totals_add_up(self):
        pool = BufferPool(DiskManager(), capacity=2)
        ids = [pool.new_page(i) for i in range(20)]
        pool.clear()
        for pid in reversed(ids):
            pool.fetch(pid)
        assert (
            pool.stats.seq_misses + pool.stats.random_misses
            == pool.stats.misses
        )


class TestOperationCounter:
    def test_add_and_reset(self):
        counter = OperationCounter()
        counter.add()
        counter.add(5)
        assert counter.count == 6
        counter.reset()
        assert counter.count == 0

    def test_global_counter_incremented_by_btree_search(self):
        from repro.baselines import BPlusTree

        tree = BPlusTree(BufferPool(DiskManager(), capacity=16))
        for i in range(100):
            tree.insert("w%03d" % i, i)
        before = CPU_OPS.count
        tree.search("w050")
        assert CPU_OPS.count > before

    def test_global_counter_incremented_by_trie_search(self):
        from repro.indexes.trie import TrieIndex

        trie = TrieIndex(BufferPool(DiskManager(), capacity=16), bucket_size=2)
        for i in range(100):
            trie.insert("w%03d" % i, i)
        before = CPU_OPS.count
        trie.search_equal("w050")
        assert CPU_OPS.count > before


class TestModeledCost:
    def test_cost_formula(self):
        m = Measurement(
            io_reads=10,
            io_writes=0,
            wall_seconds=0.0,
            operations=2,
            seq_reads=6,
            random_reads=4,
            cpu_ops=100,
        )
        expected = 4 * RANDOM_PAGE_COST + 6 * SEQ_PAGE_COST + 100 * CPU_OP_COST
        assert m.cost == expected
        assert m.cost_per_op == expected / 2

    def test_addition_merges_all_fields(self):
        a = Measurement(1, 2, 0.5, 1, seq_reads=1, random_reads=0, cpu_ops=3)
        b = Measurement(4, 0, 0.25, 2, seq_reads=2, random_reads=2, cpu_ops=7)
        c = a + b
        assert (c.io_reads, c.io_writes, c.operations) == (5, 2, 3)
        assert (c.seq_reads, c.random_reads, c.cpu_ops) == (3, 2, 10)
        assert c.wall_seconds == 0.75

    def test_random_costs_more_than_sequential(self):
        random_heavy = Measurement(10, 0, 0.0, 1, seq_reads=0, random_reads=10)
        seq_heavy = Measurement(10, 0, 0.0, 1, seq_reads=10, random_reads=0)
        assert random_heavy.cost > seq_heavy.cost
