"""Memoized size estimation: cached and uncached estimates must agree."""

from __future__ import annotations

from repro.core.node import BLANK, Entry, InnerNode, LeafNode
from repro.geometry.box import Box
from repro.geometry.point import Point
from repro.geometry.segment import LineSegment
from repro.storage.page import (
    approx_size,
    clear_size_cache,
    estimate_size,
    size_cache_info,
)

#: Every immutable payload family the trees store: strings, numbers,
#: geometry values, tuples of those, None, booleans, bytes.
IMMUTABLE_SAMPLES = [
    None,
    True,
    False,
    0,
    1,
    1.0,
    -17,
    3.25,
    "",
    "walnut",
    "a" * 200,
    b"\x00\x01",
    (1, 2),
    ("key", 42),
    Point(1.5, -2.25),
    Box(0.0, 0.0, 10.0, 10.0),
    LineSegment(Point(0.0, 0.0), Point(3.0, 4.0)),
    (Point(1.0, 2.0), "tid"),
    BLANK,
]

MUTABLE_SAMPLES = [
    [1, 2, 3],
    {"k": "v"},
    {1, 2},
    LeafNode(items=[("a", 1)]),
    InnerNode(predicate="p", entries=[Entry("e", None)]),
]


class TestAgreement:
    def test_cached_equals_uncached_for_every_immutable_sample(self):
        clear_size_cache()
        for obj in IMMUTABLE_SAMPLES:
            first = estimate_size(obj)  # populates the cache
            second = estimate_size(obj)  # served from the cache
            assert first == second == approx_size(obj), repr(obj)

    def test_mutable_payloads_fall_through_uncached(self):
        """Unhashable (mutable) payloads agree too — and never go stale.

        Their immutable constituents ("a", 1, ...) may enter the cache via
        the recursive walk; the containers themselves cannot, which is
        what :meth:`test_mutating_a_list_is_never_served_stale` relies on.
        """
        clear_size_cache()
        for obj in MUTABLE_SAMPLES:
            assert estimate_size(obj) == approx_size(obj)
            assert estimate_size(obj) == approx_size(obj)  # second look too

    def test_repeat_lookups_hit_the_cache(self):
        clear_size_cache()
        estimate_size("repeated-key")
        misses = size_cache_info().misses
        hits = size_cache_info().hits
        estimate_size("repeated-key")
        info = size_cache_info()
        assert info.hits == hits + 1
        assert info.misses == misses

    def test_equal_values_of_distinct_types_do_not_alias(self):
        """True == 1 == 1.0, but their tuple-layout sizes differ."""
        clear_size_cache()
        assert estimate_size(True) == 1
        assert estimate_size(1) == 8
        assert estimate_size(1.0) == 8
        assert estimate_size(False) == 1
        assert estimate_size(0) == 8

    def test_mutating_a_list_is_never_served_stale(self):
        clear_size_cache()
        payload = ["x"]
        first = estimate_size(payload)
        payload.append("y" * 50)
        second = estimate_size(payload)
        assert second > first
        assert second == approx_size(payload)


class TestNodeAccounting:
    def test_node_approx_bytes_unchanged_by_memoization(self):
        """Node budgeting must produce the same numbers as the plain walk."""
        clear_size_cache()
        leaf = LeafNode(items=[("walnut", 7), ("pecan", 8)])
        inner = InnerNode(
            predicate="wal",
            entries=[Entry("n", None), Entry(BLANK, None)],
        )
        cold_leaf, cold_inner = leaf.approx_bytes(), inner.approx_bytes()
        # Warm: every constituent size is now memoized.
        assert leaf.approx_bytes() == cold_leaf
        assert inner.approx_bytes() == cold_inner
