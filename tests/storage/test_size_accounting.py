"""Validation: the byte budgeting tracks real serialized page sizes.

The experiments count "pages" via approx_size budgets; this suite checks
that a budget-full page's actual pickled image stays within a small factor
of PAGE_SIZE, so page counts (and hence I/O counts) are meaningful.
"""

import pickle

from repro.baselines import BPlusTree
from repro.indexes.trie import TrieIndex
from repro.storage import BufferPool, DiskManager
from repro.storage.page import PAGE_SIZE
from repro.workloads import random_words


def pickled_page_sizes(disk: DiskManager) -> list[int]:
    return [len(raw) for raw in disk._pages.values()]


class TestSerializedSizes:
    def test_trie_pages_within_factor_of_budget(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=32)
        trie = TrieIndex(pool, bucket_size=16)
        for i, w in enumerate(random_words(4000, seed=361)):
            trie.insert(w, i)
        trie.repack()
        pool.flush_all()
        sizes = pickled_page_sizes(disk)
        full_pages = [s for s in sizes if s > PAGE_SIZE // 4]
        assert full_pages, "expected some near-full pages"
        # Real pickle images of budget-full pages stay within 2.5x of the
        # nominal page size (python object pickling has per-item overhead).
        assert max(sizes) < PAGE_SIZE * 2.5

    def test_btree_pages_within_factor_of_budget(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=32)
        tree = BPlusTree(pool)
        tree.bulk_load(
            [(w, i) for i, w in enumerate(random_words(4000, seed=362))]
        )
        pool.flush_all()
        sizes = pickled_page_sizes(disk)
        assert max(sizes) < PAGE_SIZE * 2.5

    def test_io_bytes_accounting_consistent(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=4)
        tree = BPlusTree(pool)
        for i, w in enumerate(random_words(2000, seed=363)):
            tree.insert(w, i)
        pool.flush_all()
        # bytes_written must be the sum of the write sizes, not zero.
        assert disk.stats.bytes_written > 0
        assert disk.stats.writes > 0
        average = disk.stats.bytes_written / disk.stats.writes
        assert 100 < average < PAGE_SIZE * 2.5

    def test_disk_roundtrip_is_pickle_faithful(self):
        disk = DiskManager()
        pid = disk.allocate_page()
        payload = {"keys": ["a", "b"], "vals": [1, 2]}
        disk.write_page(pid, payload)
        assert disk.read_page(pid) == pickle.loads(
            pickle.dumps(payload)
        )
