"""Unit tests for page constants and approx_size accounting."""

from repro.geometry import Box, LineSegment, Point
from repro.storage.page import (
    ITEM_OVERHEAD,
    PAGE_CAPACITY,
    PAGE_HEADER_BYTES,
    PAGE_SIZE,
    approx_size,
)


class TestConstants:
    def test_postgres_page_size(self):
        assert PAGE_SIZE == 8192

    def test_capacity_accounts_for_header(self):
        assert PAGE_CAPACITY == PAGE_SIZE - PAGE_HEADER_BYTES
        assert ITEM_OVERHEAD > 0


class TestApproxSize:
    def test_scalars(self):
        assert approx_size(None) == 1
        assert approx_size(True) == 1
        assert approx_size(12345) == 8
        assert approx_size(3.14) == 8

    def test_strings_scale_with_length(self):
        assert approx_size("abc") == 4 + 3
        assert approx_size("") == 4
        assert approx_size("x" * 100) > approx_size("x" * 10)

    def test_bytes(self):
        assert approx_size(b"abcd") == 8

    def test_containers_sum_elements(self):
        assert approx_size([1, 2]) > approx_size([1])
        assert approx_size((1, "ab")) == 4 + (8 + 2) + (4 + 2 + 2)
        assert approx_size({"k": 1}) > approx_size({})

    def test_sets(self):
        assert approx_size({1, 2, 3}) == 4 + 3 * (8 + 2)

    def test_domain_objects_use_approx_bytes(self):
        assert approx_size(Point(1, 2)) == 16
        assert approx_size(Box(0, 0, 1, 1)) == 32
        assert approx_size(LineSegment(Point(0, 0), Point(1, 1))) == 32

    def test_unknown_object_gets_flat_charge(self):
        class Opaque:
            pass

        assert approx_size(Opaque()) == 64

    def test_nested_structures(self):
        nested = [("word", 1), ("other", 2)]
        assert approx_size(nested) == sum(approx_size(x) + 2 for x in nested) + 4
