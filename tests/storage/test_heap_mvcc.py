"""MVCC-facing HeapFile primitives: version stamps, reclaim, truncation.

The heap stays transaction-agnostic — it stores xmin/xmax stamps and
offers ``mark_deleted``/``reclaim`` as mechanisms; visibility policy
lives in :mod:`repro.engine.txn`. These tests pin the mechanisms,
including the accounting invariants (``len``, ``used_bytes``,
free-slot bookkeeping) that the delete/reinsert-cycle audit fixed.
"""

import pytest

from repro.errors import StorageError
from repro.storage import BufferPool, DiskManager, HeapFile
from repro.storage.heap import XID_FROZEN, XID_INVALID, TupleId


@pytest.fixture
def heap(buffer) -> HeapFile:
    return HeapFile(buffer)


class TestVersionStamps:
    def test_default_insert_is_frozen(self, heap):
        tid = heap.insert(("row", 1))
        tup = heap.tuple_at(tid)
        assert tup.xmin == XID_FROZEN
        assert tup.xmax == XID_INVALID

    def test_insert_with_xmin(self, heap):
        tid = heap.insert(("row", 1), xmin=7)
        assert heap.tuple_at(tid).xmin == 7

    def test_mark_deleted_stamps_xmax_keeps_version(self, heap):
        tid = heap.insert(("row", 1))
        record = heap.mark_deleted(tid, 9)
        assert record == ("row", 1)
        tup = heap.tuple_at(tid)
        assert tup.xmax == 9
        assert heap.fetch(tid) == ("row", 1)  # version still stored
        assert len(heap) == 1

    def test_mark_deleted_on_tombstone_raises(self, heap):
        tid = heap.insert(("row", 1))
        heap.delete(tid)
        with pytest.raises(StorageError):
            heap.mark_deleted(tid, 9)

    def test_scan_versions_exposes_stamps(self, heap):
        a = heap.insert(("a", 1), xmin=5)
        heap.insert(("b", 2))
        heap.mark_deleted(a, 6)
        stamps = {
            tup.record: (tup.xmin, tup.xmax)
            for _tid, tup in heap.scan_versions()
        }
        assert stamps == {
            ("a", 1): (5, 6),
            ("b", 2): (XID_FROZEN, XID_INVALID),
        }


class TestReclaimAndReuse:
    def test_reclaim_frees_slot_and_count(self, heap):
        tid = heap.insert(("row", 1))
        heap.mark_deleted(tid, 9)
        heap.reclaim(tid)
        assert len(heap) == 0
        assert heap.free_slot_count == 1
        assert heap.tuple_at(tid) is None

    def test_reclaim_is_idempotent(self, heap):
        tid = heap.insert(("row", 1))
        heap.reclaim(tid)
        heap.reclaim(tid)
        assert heap.free_slot_count == 1
        assert len(heap) == 0

    def test_insert_reuses_reclaimed_slot(self, heap):
        tids = [heap.insert((f"row-{i}", i)) for i in range(5)]
        heap.reclaim(tids[2])
        new_tid = heap.insert(("fresh", 99), xmin=4)
        assert new_tid == tids[2]
        assert heap.free_slot_count == 0
        assert heap.fetch(new_tid) == ("fresh", 99)
        assert len(heap) == 5

    def test_accounting_survives_delete_reinsert_cycles(self, heap):
        """used_bytes/len never drift over repeated churn."""
        for cycle in range(10):
            tids = [heap.insert((f"c{cycle}-r{i}", i)) for i in range(50)]
            for tid in tids:
                heap.mark_deleted(tid, 9)
            for tid in tids:
                heap.reclaim(tid)
            assert len(heap) == 0
        pages, pages_needed = heap.vacuum_page_stats()
        assert pages_needed == 0
        heap.truncate_trailing_empty_pages()
        assert heap.num_pages == 0
        assert heap.free_slot_count == 0


class TestTruncation:
    def test_trailing_empty_pages_released(self, heap):
        tids = [heap.insert(("x" * 200, i)) for i in range(200)]
        assert heap.num_pages > 2
        keep = heap.num_pages
        # Empty out everything after page 0.
        for tid in tids:
            if tid.page_id != tids[0].page_id:
                heap.reclaim(tid)
        released = heap.truncate_trailing_empty_pages()
        assert released == keep - 1
        assert heap.num_pages == 1
        # Free slots on truncated pages were dropped from the free list.
        assert all(
            t.page_id == tids[0].page_id for t in heap._free_slots
        )

    def test_interior_empty_page_stays(self, heap):
        tids = [heap.insert(("x" * 200, i)) for i in range(200)]
        first_page = tids[0].page_id
        last_page = tids[-1].page_id
        for tid in tids:
            if tid.page_id == first_page:
                heap.reclaim(tid)
        assert last_page != first_page
        assert heap.truncate_trailing_empty_pages() == 0
        # Earlier TIDs stay addressable (None, but not an error).
        assert heap.tuple_at(tids[0]) is None

    def test_insert_skips_free_slot_on_truncated_page(self, heap):
        tids = [heap.insert(("x" * 200, i)) for i in range(200)]
        for tid in tids:
            heap.reclaim(tid)
        heap.truncate_trailing_empty_pages()
        assert heap.num_pages == 0
        tid = heap.insert(("fresh", 1))
        assert heap.fetch(tid) == ("fresh", 1)
        assert len(heap) == 1
