"""Unit tests for HeapFile."""

import pytest

from repro.errors import StorageError
from repro.storage import BufferPool, DiskManager, HeapFile
from repro.storage.heap import TupleId
from repro.storage.page import PAGE_CAPACITY


@pytest.fixture
def heap(buffer) -> HeapFile:
    return HeapFile(buffer)


class TestInsertFetch:
    def test_insert_returns_tid_and_fetch_roundtrips(self, heap):
        tid = heap.insert(("alice", 1))
        assert heap.fetch(tid) == ("alice", 1)
        assert len(heap) == 1

    def test_many_inserts_fill_multiple_pages(self, heap):
        for i in range(2000):
            heap.insert(("row-%05d" % i, i))
        assert heap.num_pages > 1
        assert len(heap) == 2000

    def test_oversize_record_rejected(self, heap):
        with pytest.raises(StorageError):
            heap.insert("x" * (PAGE_CAPACITY + 1))

    def test_fetch_foreign_tid_raises(self, heap):
        heap.insert("a")
        with pytest.raises(StorageError):
            heap.fetch(TupleId(page_id=424242, slot=0))

    def test_fetch_out_of_range_slot_raises(self, heap):
        tid = heap.insert("a")
        with pytest.raises(StorageError):
            heap.fetch(TupleId(tid.page_id, 99))


class TestScan:
    def test_scan_yields_in_insert_order(self, heap):
        tids = [heap.insert(i) for i in range(50)]
        scanned = list(heap.scan())
        assert [t for t, _ in scanned] == tids
        assert [r for _, r in scanned] == list(range(50))

    def test_scan_skips_tombstones(self, heap):
        tids = [heap.insert(i) for i in range(10)]
        heap.delete(tids[3])
        heap.delete(tids[7])
        assert [r for _, r in heap.scan()] == [0, 1, 2, 4, 5, 6, 8, 9]


class TestDeleteUpdate:
    def test_delete_returns_record(self, heap):
        tid = heap.insert("victim")
        assert heap.delete(tid) == "victim"
        assert heap.fetch(tid) is None
        assert len(heap) == 0

    def test_double_delete_raises(self, heap):
        tid = heap.insert("victim")
        heap.delete(tid)
        with pytest.raises(StorageError):
            heap.delete(tid)

    def test_tids_stable_across_deletes(self, heap):
        tids = [heap.insert(i) for i in range(5)]
        heap.delete(tids[0])
        assert heap.fetch(tids[4]) == 4

    def test_update_in_place(self, heap):
        tid = heap.insert(("a", 1))
        heap.update(tid, ("a", 2))
        assert heap.fetch(tid) == ("a", 2)

    def test_update_deleted_raises(self, heap):
        tid = heap.insert("x")
        heap.delete(tid)
        with pytest.raises(StorageError):
            heap.update(tid, "y")


class TestVacuumStats:
    def test_vacuum_stats_after_mass_delete(self, heap):
        tids = [heap.insert("word-%04d" % i) for i in range(3000)]
        for tid in tids[: len(tids) * 3 // 4]:
            heap.delete(tid)
        pages, needed = heap.vacuum_page_stats()
        assert pages == heap.num_pages
        assert needed < pages  # compaction would reclaim space

    def test_empty_heap(self, heap):
        assert heap.vacuum_page_stats() == (0, 0)
        assert list(heap.scan()) == []


class TestEvictionSafety:
    def test_heap_correct_under_tiny_pool(self, small_buffer):
        heap = HeapFile(small_buffer)
        tids = [heap.insert(("key-%05d" % i, i)) for i in range(1500)]
        # Data must survive eviction churn through the 4-frame pool.
        assert heap.fetch(tids[0]) == ("key-00000", 0)
        assert heap.fetch(tids[-1]) == ("key-01499", 1499)
        assert sum(1 for _ in heap.scan()) == 1500
