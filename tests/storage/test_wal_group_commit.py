"""WAL group commit: batching semantics, durability, crash equivalence."""

from __future__ import annotations

import os
import random

import pytest

from repro.storage import FileDiskManager, WriteAheadLog
from repro.storage.wal import REC_ALLOC, REC_PAGE_IMAGE


class TestBuffering:
    def test_appends_stay_in_memory_until_flush(self, tmp_path):
        path = str(tmp_path / "g.wal")
        wal = WriteAheadLog(path, group_commit=True)
        wal.log_alloc(1)
        wal.log_page_image(2, b"image")
        assert wal.buffered_bytes > 0
        assert os.path.getsize(path) == 0
        wal.flush()
        assert wal.buffered_bytes == 0
        assert os.path.getsize(path) > 0
        assert wal.stats.group_flushes == 1
        wal.close()

    def test_threshold_triggers_automatic_flush(self, tmp_path):
        wal = WriteAheadLog(
            str(tmp_path / "g.wal"), group_commit=True, flush_threshold=64
        )
        wal.log_page_image(1, b"x" * 100)  # record > threshold
        assert wal.buffered_bytes == 0
        assert wal.stats.group_flushes == 1
        wal.close()

    def test_write_through_mode_never_buffers(self, tmp_path):
        path = str(tmp_path / "w.wal")
        wal = WriteAheadLog(path, group_commit=False)
        wal.log_alloc(1)
        assert wal.buffered_bytes == 0
        assert wal.size_bytes > 0  # already in the file object, not ours
        assert wal.stats.group_flushes == 0
        wal.close()

    def test_size_bytes_counts_buffered_records(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "g.wal"), group_commit=True)
        wal.log_alloc(1)
        assert wal.size_bytes == wal.buffered_bytes
        wal.commit()
        assert wal.buffered_bytes == 0
        assert wal.size_bytes == wal.stats.bytes_appended
        wal.close()


class TestDurabilitySemantics:
    def test_commit_flushes_and_fsyncs_everything(self, tmp_path):
        path = str(tmp_path / "g.wal")
        wal = WriteAheadLog(path, group_commit=True)
        wal.log_alloc(1)
        wal.log_page_image(2, b"img")
        lsn = wal.commit()
        assert wal.buffered_bytes == 0
        assert wal.synced_size == os.path.getsize(path)
        records, last_commit = wal.scan()
        assert last_commit == lsn
        assert [r.rec_type for r in records] == [REC_ALLOC, REC_PAGE_IMAGE]
        wal.close()

    def test_scan_sees_buffered_uncommitted_records(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "g.wal"), group_commit=True)
        wal.log_alloc(1)
        wal.commit()
        wal.log_alloc(2)  # buffered, never committed
        records, _ = wal.scan()
        # Uncommitted records never surface as committed — but the torn
        # tail accounting must see them, exactly as in write-through mode.
        assert [r.page_id for r in records] == [1]
        assert wal.stats.torn_tail_discarded == 1
        wal.close()

    def test_tear_tail_drops_buffered_records_entirely(self, tmp_path):
        path = str(tmp_path / "g.wal")
        wal = WriteAheadLog(path, group_commit=True)
        wal.log_alloc(1)
        wal.commit()
        synced = wal.synced_size
        wal.log_alloc(2)  # only buffered: a crash loses it completely
        wal.tear_tail(random.Random(5))
        assert os.path.getsize(path) == synced
        reopened = WriteAheadLog(path)
        records, _ = reopened.scan()
        assert [r.page_id for r in records] == [1]
        reopened.close()

    def test_grouped_and_write_through_logs_are_byte_identical(self, tmp_path):
        """Same append+commit sequence => exact same bytes on disk."""
        paths = []
        for group_commit in (True, False):
            path = str(tmp_path / f"log-{group_commit}.wal")
            wal = WriteAheadLog(path, group_commit=group_commit)
            wal.log_alloc(1)
            wal.log_page_image(2, b"payload-bytes")
            wal.commit()
            wal.log_dealloc(1)
            wal.commit()
            wal.close()
            paths.append(path)
        grouped, through = (open(p, "rb").read() for p in paths)
        assert grouped == through


class TestFileDiskIntegration:
    def test_group_commit_is_the_default_and_recovers(self, tmp_path):
        path = str(tmp_path / "pages.dat")
        disk = FileDiskManager(path)
        assert disk.wal.group_commit
        pid = disk.allocate_page()
        disk.write_page(pid, "v1")
        disk.sync()
        disk.write_page(pid, "v2")  # appended to WAL, never committed
        disk.simulate_crash(seed=11)
        recovered = FileDiskManager(path)
        assert recovered.read_page(pid) == "v1"
        recovered.close()

    def test_group_commit_off_matches_legacy_behaviour(self, tmp_path):
        path = str(tmp_path / "pages.dat")
        disk = FileDiskManager(path, group_commit=False)
        assert not disk.wal.group_commit
        pid = disk.allocate_page()
        disk.write_page(pid, {"k": 1})
        disk.sync()
        disk.close()
        reopened = FileDiskManager(path)
        assert reopened.read_page(pid) == {"k": 1}
        reopened.close()

    @pytest.mark.parametrize("group_commit", [True, False])
    def test_kill_anywhere_recovery_matches_either_mode(
        self, tmp_path, group_commit
    ):
        """Random kill points recover identically with batching on or off."""
        for seed in range(6):
            path = str(tmp_path / f"pages-{group_commit}-{seed}.dat")
            disk = FileDiskManager(path, group_commit=group_commit)
            committed: dict[int, str] = {}
            rng = random.Random(seed)
            for round_no in range(4):
                pid = disk.allocate_page()
                disk.write_page(pid, f"value-{round_no}")
                if rng.random() < 0.7:
                    disk.sync()
                    committed[pid] = f"value-{round_no}"
            disk.simulate_crash(seed=seed)
            recovered = FileDiskManager(path)
            for pid, expected in committed.items():
                assert recovered.read_page(pid) == expected
            recovered.close()
