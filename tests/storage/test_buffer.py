"""Unit tests for the LRU buffer pool."""

import pytest

from repro.errors import BufferPoolError
from repro.storage import BufferPool, DiskManager


def make_pool(capacity: int = 3) -> BufferPool:
    return BufferPool(DiskManager(), capacity=capacity)


class TestBasics:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BufferPool(DiskManager(), capacity=0)

    def test_new_page_is_resident_and_fetchable(self):
        pool = make_pool()
        pid = pool.new_page(["payload"])
        assert pool.fetch(pid) == ["payload"]
        assert pool.stats.hits == 1  # the fetch hit the cached frame

    def test_update_replaces_payload(self):
        pool = make_pool()
        pid = pool.new_page("old")
        pool.update(pid, "new")
        assert pool.fetch(pid) == "new"


class TestEviction:
    def test_lru_evicts_oldest(self):
        pool = make_pool(capacity=2)
        a = pool.new_page("a")
        b = pool.new_page("b")
        pool.fetch(a)          # a becomes most-recent
        pool.new_page("c")     # evicts b
        resident = set(pool.resident_page_ids())
        assert a in resident and b not in resident

    def test_dirty_page_written_back_on_eviction(self):
        pool = make_pool(capacity=1)
        a = pool.new_page("a")       # dirty (never flushed)
        pool.new_page("b")           # evicts a, must persist it
        assert pool.disk.read_page(a) == "a"
        assert pool.stats.dirty_writebacks >= 1

    def test_refetch_after_eviction_reads_disk(self):
        pool = make_pool(capacity=1)
        a = pool.new_page("a")
        pool.new_page("b")
        misses_before = pool.stats.misses
        assert pool.fetch(a) == "a"
        assert pool.stats.misses == misses_before + 1

    def test_mutation_without_mark_dirty_is_lost_after_eviction(self):
        # Documents the mutation protocol: fetch + mutate requires mark_dirty.
        pool = make_pool(capacity=1)
        a = pool.new_page([1])
        pool.flush_all()
        payload = pool.fetch(a)
        payload.append(2)          # mutated but NOT marked dirty
        pool.new_page("evictor")   # a evicted without write-back
        assert pool.fetch(a) == [1]

    def test_mutation_with_mark_dirty_survives_eviction(self):
        pool = make_pool(capacity=1)
        a = pool.new_page([1])
        pool.flush_all()
        payload = pool.fetch(a)
        payload.append(2)
        pool.mark_dirty(a)
        pool.new_page("evictor")
        assert pool.fetch(a) == [1, 2]


class TestPinning:
    def test_pinned_page_not_evicted(self):
        pool = make_pool(capacity=2)
        a = pool.new_page("a")
        pool.pin(a)
        pool.new_page("b")
        pool.new_page("c")  # must evict b, not pinned a
        assert a in set(pool.resident_page_ids())
        pool.unpin(a)

    def test_all_pinned_raises(self):
        pool = make_pool(capacity=1)
        a = pool.new_page("a")
        pool.pin(a)
        with pytest.raises(BufferPoolError):
            pool.new_page("b")
        pool.unpin(a)

    def test_unbalanced_unpin_raises(self):
        pool = make_pool()
        a = pool.new_page("a")
        with pytest.raises(BufferPoolError):
            pool.unpin(a)


class TestMaintenance:
    def test_mark_dirty_nonresident_raises(self):
        pool = make_pool(capacity=1)
        a = pool.new_page("a")
        pool.new_page("b")  # evicts a
        with pytest.raises(BufferPoolError):
            pool.mark_dirty(a)

    def test_flush_all_persists_dirty_pages(self):
        pool = make_pool()
        a = pool.new_page("a")
        pool.flush_all()
        assert pool.disk.read_page(a) == "a"

    def test_clear_empties_pool_but_preserves_data(self):
        pool = make_pool()
        a = pool.new_page("a")
        pool.clear()
        assert pool.resident_count == 0
        assert pool.fetch(a) == "a"

    def test_free_page_removes_everywhere(self):
        pool = make_pool()
        a = pool.new_page("a")
        pool.free_page(a)
        assert a not in set(pool.resident_page_ids())
        assert not pool.disk.page_exists(a)

    def test_stats_hit_ratio(self):
        pool = make_pool()
        a = pool.new_page("a")
        pool.clear()
        pool.fetch(a)  # miss
        pool.fetch(a)  # hit
        assert pool.stats.misses == 1
        assert pool.stats.hits >= 1
        assert 0.0 < pool.stats.hit_ratio < 1.0

    def test_stats_snapshot_delta(self):
        pool = make_pool()
        a = pool.new_page("a")
        pool.clear()
        before = pool.stats.snapshot()
        pool.fetch(a)
        delta = pool.stats.delta(before)
        assert delta.misses == 1
