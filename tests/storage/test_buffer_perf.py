"""Micro-benchmark: buffer pool fetch/evict cost must not grow with pool size.

The eviction path pops the LRU head in O(1) (pinned heads are rotated to
the MRU end), so a fetch that misses costs the same whether the pool holds
16 frames or 4096. The benchmark drives a miss-heavy cyclic scan over
pools two orders of magnitude apart and checks per-fetch time stays flat
within a generous margin — a safety net against reintroducing a linear
victim search, not a precision timing test.
"""

from __future__ import annotations

import time

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


def _per_fetch_seconds(pool_size: int, fetches: int) -> float:
    disk = DiskManager()
    pool = BufferPool(disk, capacity=pool_size, retry_backoff=0.0)
    page_ids = [pool.new_page({"n": i}) for i in range(pool_size * 2)]
    pool.flush_all()
    # Cyclic scan over twice the pool: every fetch misses and evicts.
    started = time.perf_counter()
    for i in range(fetches):
        pool.fetch(page_ids[i % len(page_ids)])
    elapsed = time.perf_counter() - started
    assert pool.stats.misses >= fetches  # all misses (plus warm-up news)
    return elapsed / fetches


class TestFlatEvictionCost:
    def test_fetch_cost_flat_across_pool_sizes(self):
        # Warm up the allocator / interpreter before timing.
        _per_fetch_seconds(16, 500)
        small = _per_fetch_seconds(16, 4000)
        large = _per_fetch_seconds(1024, 4000)
        # O(n) victim selection would make the large pool ~64x slower per
        # fetch; O(1) keeps the ratio near 1. The 10x margin absorbs timer
        # and allocator noise on shared CI runners.
        assert large <= small * 10, (
            f"per-fetch cost grew from {small:.2e}s (16 frames) to "
            f"{large:.2e}s (1024 frames): eviction is no longer O(1)"
        )

    def test_pinned_head_is_rotated_not_rescanned(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=4)
        ids = [pool.new_page(i) for i in range(4)]
        pool.pin(ids[0])
        pool.pin(ids[1])
        # Evictions must go to the unpinned frames, pinned ones survive.
        extra = [pool.new_page(100 + i) for i in range(4)]
        resident = set(pool.resident_page_ids())
        assert ids[0] in resident and ids[1] in resident
        assert extra[-1] in resident
        pool.unpin(ids[0])
        pool.unpin(ids[1])

    def test_all_pinned_pool_still_raises(self):
        from repro.errors import BufferPoolError

        disk = DiskManager()
        pool = BufferPool(disk, capacity=2)
        a = pool.new_page("a")
        b = pool.new_page("b")
        pool.pin(a)
        pool.pin(b)
        with pytest.raises(BufferPoolError):
            pool.new_page("c")
        pool.unpin(a)
        pool.unpin(b)
