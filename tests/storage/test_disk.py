"""Unit tests for the DiskManager."""

import pytest

from repro.errors import PageNotFoundError
from repro.storage import DiskManager


class TestAllocation:
    def test_allocate_returns_distinct_ids(self):
        disk = DiskManager()
        ids = {disk.allocate_page() for _ in range(10)}
        assert len(ids) == 10
        assert disk.num_pages == 10

    def test_deallocate_then_reuse(self):
        disk = DiskManager()
        a = disk.allocate_page()
        disk.deallocate_page(a)
        assert disk.num_pages == 0
        b = disk.allocate_page()
        assert b == a  # freed ids are recycled

    def test_deallocate_unknown_raises(self):
        with pytest.raises(PageNotFoundError):
            DiskManager().deallocate_page(99)

    def test_page_exists(self):
        disk = DiskManager()
        pid = disk.allocate_page()
        assert disk.page_exists(pid)
        assert not disk.page_exists(pid + 1)


class TestReadWrite:
    def test_roundtrip(self):
        disk = DiskManager()
        pid = disk.allocate_page()
        disk.write_page(pid, {"hello": [1, 2, 3]})
        assert disk.read_page(pid) == {"hello": [1, 2, 3]}

    def test_fresh_page_reads_none(self):
        disk = DiskManager()
        pid = disk.allocate_page()
        assert disk.read_page(pid) is None

    def test_read_unknown_raises(self):
        with pytest.raises(PageNotFoundError):
            DiskManager().read_page(0)

    def test_write_unknown_raises(self):
        with pytest.raises(PageNotFoundError):
            DiskManager().write_page(0, "x")

    def test_write_serializes_a_copy(self):
        # Mutating the object after write must not change disk contents.
        disk = DiskManager()
        pid = disk.allocate_page()
        payload = [1, 2]
        disk.write_page(pid, payload)
        payload.append(3)
        assert disk.read_page(pid) == [1, 2]


class TestStats:
    def test_counters_track_operations(self):
        disk = DiskManager()
        pid = disk.allocate_page()
        disk.write_page(pid, "abc")
        disk.read_page(pid)
        disk.read_page(pid)
        assert disk.stats.allocations == 1
        assert disk.stats.writes == 1
        assert disk.stats.reads == 2
        assert disk.stats.bytes_written > 0
        assert disk.stats.bytes_read > 0

    def test_snapshot_and_delta(self):
        disk = DiskManager()
        pid = disk.allocate_page()
        disk.write_page(pid, "abc")
        before = disk.stats.snapshot()
        disk.read_page(pid)
        delta = disk.stats.delta(before)
        assert delta.reads == 1
        assert delta.writes == 0

    def test_reset_stats_keeps_contents(self):
        disk = DiskManager()
        pid = disk.allocate_page()
        disk.write_page(pid, 42)
        disk.reset_stats()
        assert disk.stats.reads == 0
        assert disk.read_page(pid) == 42
