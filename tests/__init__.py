"""Test package root.

Hosts :func:`hypothesis_max_examples`, the CI speed knob shared by every
hypothesis-based suite (tests/property, tests/oracle): the
``HYPOTHESIS_MAX_EXAMPLES`` environment variable caps each file's example
count without editing the files, so the fast CI tier can run the full
property surface at reduced depth.
"""

import os


def hypothesis_max_examples(default: int) -> int:
    """``default``, capped by the ``HYPOTHESIS_MAX_EXAMPLES`` env var."""
    cap = os.environ.get("HYPOTHESIS_MAX_EXAMPLES")
    if not cap:
        return default
    return max(1, min(default, int(cap)))
