"""Differential oracle under MVCC: interleaved transactions + VACUUM.

The strongest correctness claim of the transaction subsystem, checked
for every one of the paper's five SP-GiST index types:

1. no statement of an aborted transaction is ever visible to any
   snapshot taken after the abort;
2. at every step, an index scan and a seq scan *under the same
   snapshot* return the same multiset of rows — even while other
   transactions are concurrently inserting, updating, and deleting,
   and while VACUUM is reclaiming dead versions underneath;
3. after the workload settles (every transaction closed, one final
   VACUUM), ``spgist_check`` reports a structurally clean index and
   the heap holds exactly the visible rows.

Workloads are seeded ``random.Random`` schedules so every failure is
replayable by seed.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.txn import TransactionManager
from repro.errors import TxnError
from repro.geometry import Point
from repro.resilience.check import spgist_check

from tests.oracle.harness import assert_index_matches_seqscan, build_table


def _make_word(rng: random.Random) -> str:
    return "".join(
        rng.choice("abcdef") for _ in range(rng.randint(1, 6))
    )


def _make_point(rng: random.Random) -> Point:
    return Point(rng.randint(0, 12), rng.randint(0, 12))


#: (opclass, column type, value factory, equality operator)
OPCLASSES = [
    ("SP_GiST_trie", "varchar", _make_word, "="),
    ("SP_GiST_suffix", "varchar", _make_word, "@="),
    ("SP_GiST_kdtree", "point", _make_point, "@"),
    ("SP_GiST_pquadtree", "point", _make_point, "@"),
    ("SP_GiST_prquadtree", "point", _make_point, "@"),
]

STEPS = 120
MAX_OPEN_TXNS = 3


class _Workload:
    """One seeded interleaved schedule against one MVCC table."""

    def __init__(self, opclass: str, type_name: str, factory, op: str,
                 seed: int) -> None:
        self.rng = random.Random(seed)
        self.factory = factory
        self.op = op
        self.manager = TransactionManager()
        seed_values = [factory(self.rng) for _ in range(25)]
        self.table = build_table(
            type_name, seed_values, opclass, txn=self.manager
        )
        self.values = list(seed_values)  # probe pool (ever-inserted values)
        self.next_id = len(seed_values)
        self.open_txns: list = []
        #: xid -> rows inserted / rows deleted while that txn was open.
        self.writes: dict[int, dict[str, list]] = {}

    # -- schedule events ------------------------------------------------------

    def begin(self) -> None:
        if len(self.open_txns) >= MAX_OPEN_TXNS:
            return
        txn = self.manager.begin()
        self.open_txns.append(txn)
        self.writes[txn.xid] = {"inserted": [], "deleted": []}

    def _pick_open(self):
        if not self.open_txns:
            return None
        return self.rng.choice(self.open_txns)

    def insert(self) -> None:
        txn = self._pick_open()
        if txn is None:
            return
        row = (self.factory(self.rng), self.next_id)
        self.next_id += 1
        self.table.insert(row, txn=txn)
        self.values.append(row[0])
        self.writes[txn.xid]["inserted"].append(row)

    def _visible_tids(self, snapshot):
        return list(self.table.scan(snapshot))

    def delete(self) -> None:
        txn = self._pick_open()
        if txn is None:
            return
        candidates = self._visible_tids(txn.snapshot)
        if not candidates:
            return
        tid, row = self.rng.choice(candidates)
        try:
            self.table.mvcc_delete(tid, txn)
        except TxnError:
            # First-updater-wins: someone else claimed the row. The SQL
            # layer would abort the whole block; mirror that here.
            self.abort(txn)
            return
        self.writes[txn.xid]["deleted"].append((tid, row))

    def update(self) -> None:
        txn = self._pick_open()
        if txn is None:
            return
        candidates = self._visible_tids(txn.snapshot)
        if not candidates:
            return
        tid, row = self.rng.choice(candidates)
        new_row = (self.factory(self.rng), self.next_id)
        self.next_id += 1
        try:
            self.table.mvcc_update(tid, new_row, txn)
        except TxnError:
            self.abort(txn)
            return
        self.values.append(new_row[0])
        self.writes[txn.xid]["deleted"].append((tid, row))
        self.writes[txn.xid]["inserted"].append(new_row)

    def commit(self) -> None:
        txn = self._pick_open()
        if txn is None:
            return
        self.open_txns.remove(txn)
        self.manager.commit(txn)
        self.writes.pop(txn.xid, None)

    def abort(self, txn=None) -> None:
        if txn is None:
            txn = self._pick_open()
            if txn is None:
                return
        self.open_txns.remove(txn)
        self.manager.abort(txn)
        record = self.writes.pop(txn.xid)
        self._check_abort_invisible(txn.xid, record)

    def vacuum(self) -> None:
        self.table.vacuum()

    # -- invariants -----------------------------------------------------------

    def _check_abort_invisible(self, xid: int, record: dict) -> None:
        """Nothing an aborted transaction did is visible afterwards."""
        visible = {row for _tid, row in self.table.scan()}
        for row in record["inserted"]:
            assert row not in visible, (
                f"aborted txn {xid}: inserted row {row!r} is visible"
            )
        # Its deletes are undone too: the victims reappear (nobody else
        # could claim them while this txn's xmax was in progress).
        for _tid, row in record["deleted"]:
            if row in {r for r in record["inserted"]}:
                continue  # it deleted its own insert; stays gone
            assert row in visible, (
                f"aborted txn {xid}: delete of {row!r} was not rolled back"
            )

    def check_oracle(self) -> None:
        """Index scan == seq scan under one snapshot, mid-flight."""
        if self.open_txns and self.rng.random() < 0.5:
            snapshot = self.rng.choice(self.open_txns).snapshot
        else:
            snapshot = self.manager.read_snapshot()
        probe = self.rng.choice(self.values)
        operand = probe[:2] if self.op == "@=" else probe
        assert_index_matches_seqscan(
            self.table, self.op, operand, snapshot=snapshot
        )

    # -- driver ---------------------------------------------------------------

    def run(self) -> None:
        events = (
            [self.begin] * 3
            + [self.insert] * 4
            + [self.delete] * 3
            + [self.update] * 3
            + [self.commit] * 2
            + [self.abort] * 2
            + [self.vacuum] * 1
            + [self.check_oracle] * 4
        )
        for _ in range(STEPS):
            self.rng.choice(events)()
        # Settle: close every straggler (alternating verdicts), then the
        # final VACUUM must reclaim every dead version.
        verdict = True
        while self.open_txns:
            txn = self.open_txns[0]
            if verdict:
                self.commit()
            else:
                self.abort(txn)
            verdict = not verdict
        self.check_oracle()
        stats = self.table.vacuum()
        self.check_final_state(stats)

    def check_final_state(self, stats) -> None:
        heap = dict(self.table.heap_stats())
        assert heap["dead_versions"] == 0, (
            f"VACUUM left {heap['dead_versions']} dead versions behind"
        )
        assert heap["versions"] == heap["visible_rows"]
        assert heap["pages"] == heap["pages_needed"] + stats.pages_truncated \
            or heap["pages"] >= heap["pages_needed"]
        report = spgist_check(
            self.table.indexes["oracle_idx"].structure, strict_buckets=False
        )
        assert report.ok, report.describe()
        # The index must hold exactly the surviving versions: one final
        # full-table oracle sweep over every value ever inserted.
        for probe in set(
            v for v in self.values if isinstance(v, (str, Point))
        ):
            operand = probe[:2] if self.op == "@=" else probe
            assert_index_matches_seqscan(self.table, self.op, operand)


@pytest.mark.parametrize(
    "opclass,type_name,factory,op",
    OPCLASSES,
    ids=[entry[0] for entry in OPCLASSES],
)
@pytest.mark.parametrize("seed", [11, 42, 1337])
def test_interleaved_transactions_oracle(opclass, type_name, factory, op,
                                         seed):
    _Workload(opclass, type_name, factory, op, seed).run()


@pytest.mark.parametrize(
    "opclass,type_name,factory,op",
    OPCLASSES,
    ids=[entry[0] for entry in OPCLASSES],
)
def test_delete_update_heavy_churn(opclass, type_name, factory, op):
    """Autocommit churn: every step commits, VACUUM runs constantly.

    A delete/update-heavy single-transaction-at-a-time workload — the
    shape that exposed the heap-accounting drift and stale index entries
    this PR's audit fixed.
    """
    rng = random.Random(7)
    manager = TransactionManager()
    seed_values = [factory(rng) for _ in range(30)]
    table = build_table(type_name, seed_values, opclass, txn=manager)
    values = list(seed_values)
    next_id = len(values)
    for step in range(90):
        txn = manager.begin()
        live = list(table.scan(txn.snapshot))
        roll = rng.random()
        if roll < 0.45 and live:
            table.mvcc_delete(rng.choice(live)[0], txn)
        elif roll < 0.85 and live:
            tid, _row = rng.choice(live)
            new_row = (factory(rng), next_id)
            next_id += 1
            table.mvcc_update(tid, new_row, txn)
            values.append(new_row[0])
        else:
            row = (factory(rng), next_id)
            next_id += 1
            table.insert(row, txn=txn)
            values.append(row[0])
        manager.commit(txn)
        if step % 7 == 0:
            table.vacuum()
        if step % 5 == 0:
            probe = rng.choice(values)
            operand = probe[:2] if op == "@=" else probe
            assert_index_matches_seqscan(
                table, op, operand, snapshot=manager.read_snapshot()
            )
    table.vacuum()
    heap = dict(table.heap_stats())
    assert heap["dead_versions"] == 0
    report = spgist_check(
        table.indexes["oracle_idx"].structure, strict_buckets=False
    )
    assert report.ok, report.describe()


def test_aborted_transaction_never_visible_simple():
    """A focused regression: abort undoes inserts AND deletes."""
    manager = TransactionManager()
    table = build_table("varchar", ["alpha", "beta"], "SP_GiST_trie",
                        txn=manager)
    txn = manager.begin()
    table.insert(("gamma", 99), txn=txn)
    victims = [tid for tid, row in table.scan(txn.snapshot)
               if row[0] == "alpha"]
    table.mvcc_delete(victims[0], txn)
    manager.abort(txn)

    rows = sorted(row for _tid, row in table.scan())
    assert rows == [("alpha", 0), ("beta", 1)]
    # And the index agrees once VACUUM sweeps the aborted insert.
    table.vacuum()
    assert_index_matches_seqscan(table, "=", "gamma")
    assert_index_matches_seqscan(table, "=", "alpha")
    assert spgist_check(table.indexes["oracle_idx"].structure).ok
