"""Differential oracle: every index answer is checked against a seq scan.

The oracle principle: for any workload and any query, an SP-GiST index
scan and the trivially-correct sequential scan must return the *same
multiset of rows*. Hypothesis drives the workloads; this module holds the
plumbing that builds a one-index table and runs both access paths with
the planner bypassed (we force the index path — the point is to test the
index, not the cost model's choice).
"""

from __future__ import annotations

import collections
from typing import Any, Sequence

from repro.engine.catalog import default_catalog
from repro.engine.cost import seqscan_cost
from repro.engine.executor import execute_plan
from repro.engine.planner import (
    IndexScanPlan,
    NNIndexScanPlan,
    Predicate,
    SeqScanPlan,
)
from repro.engine.table import Column, Table
from repro.engine.txn import Snapshot, TransactionManager
from repro.storage import BufferPool, DiskManager


def build_table(
    type_name: str,
    values: Sequence[Any],
    opclass: str,
    index_column: str = "key",
    buffer: BufferPool | None = None,
    pool_pages: int = 64,
    txn: "TransactionManager | None" = None,
) -> Table:
    """A one-index table over ``values`` (row = (value, ordinal)).

    Pass a :class:`~repro.engine.txn.TransactionManager` to build an
    MVCC table whose scans filter by snapshot; the seed rows are still
    inserted frozen (visible to every snapshot), exactly like rows loaded
    before the first transaction began.
    """
    table = Table(
        "oracle",
        [Column(index_column, type_name), Column("id", "int")],
        buffer or BufferPool(DiskManager(), capacity=pool_pages),
        default_catalog(),
        txn=txn,
    )
    for i, value in enumerate(values):
        table.insert((value, i))
    table.create_index("oracle_idx", index_column, "SP_GiST", opclass)
    table.analyze()
    return table


def _forced_plans(table: Table, predicate: Predicate):
    """The index plan under test and its seq-scan oracle twin."""
    cost = seqscan_cost(table.heap_pages, len(table))
    index = table.indexes["oracle_idx"]
    if predicate.op == "@@":
        index_plan = NNIndexScanPlan(table, predicate, cost, index=index)
    else:
        index_plan = IndexScanPlan(table, predicate, cost, index=index)
    return index_plan, SeqScanPlan(table, predicate, cost)


def assert_index_matches_seqscan(
    table: Table,
    op: str,
    operand: Any,
    snapshot: "Snapshot | None" = None,
) -> None:
    """Both access paths must return the same multiset of rows.

    When ``snapshot`` is given, both plans are stamped with it so the
    comparison happens under one MVCC snapshot (the transactional
    oracle); otherwise each plan resolves its own fresh snapshot, which
    is only deterministic on a quiescent table.
    """
    predicate = Predicate("key", op, operand)
    index_plan, seq_plan = _forced_plans(table, predicate)
    if snapshot is not None:
        index_plan.snapshot = snapshot
        seq_plan.snapshot = snapshot
    index_rows = collections.Counter(execute_plan(index_plan))
    seq_rows = collections.Counter(execute_plan(seq_plan))
    assert index_rows == seq_rows, (
        f"oracle divergence for {op} {operand!r}: "
        f"index-only={index_rows - seq_rows} seq-only={seq_rows - index_rows}"
    )


def assert_nn_matches_sort(
    table: Table, query: Any, k: int, distance
) -> None:
    """NN-with-LIMIT oracle.

    Ties at the cut-off make the row *set* ambiguous, so the oracle
    compares the *distance multiset* of the first ``k`` results against
    the brute-force k smallest distances — which is exactly the guarantee
    the paper's incremental NN gives.
    """
    import itertools

    import pytest

    predicate = Predicate("key", "@@", query)
    index_plan, _ = _forced_plans(table, predicate)
    got = list(itertools.islice(execute_plan(index_plan), k))
    got_distances = sorted(distance(row[0], query) for row in got)
    want_distances = sorted(
        distance(row[0], query) for _tid, row in table.scan()
    )[:k]
    assert len(got) == min(k, len(table))
    assert got_distances == pytest.approx(want_distances), (
        f"NN oracle divergence for k={k}: {got_distances} != {want_distances}"
    )
