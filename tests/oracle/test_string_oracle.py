"""Differential oracle: string indexes (trie, suffix tree) vs seq scan.

Every query shape the paper's Table 6 runs over varchar columns —
equality, prefix, regex, glob, substring, NN-with-LIMIT — must return the
same multiset of rows through the index as through the sequential scan.
"""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests import hypothesis_max_examples
from tests.oracle.harness import (
    assert_index_matches_seqscan,
    assert_nn_matches_sort,
    build_table,
)

SETTINGS = settings(
    max_examples=hypothesis_max_examples(25),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

WORDS = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=10),
    min_size=1,
    max_size=50,
)


@st.composite
def words_and_probe(draw):
    """A workload plus a probe that is usually (not always) present."""
    words = draw(WORDS)
    if draw(st.booleans()):
        probe = draw(st.sampled_from(words))
    else:
        probe = draw(st.text(alphabet=string.ascii_lowercase, min_size=1,
                             max_size=10))
    return words, probe


class TestTrieOracle:
    @given(data=words_and_probe())
    @SETTINGS
    def test_equality(self, data):
        words, probe = data
        table = build_table("varchar", words, "SP_GiST_trie")
        assert_index_matches_seqscan(table, "=", probe)

    @given(data=words_and_probe())
    @SETTINGS
    def test_prefix(self, data):
        words, probe = data
        table = build_table("varchar", words, "SP_GiST_trie")
        assert_index_matches_seqscan(table, "#=", probe[:2])

    @given(data=words_and_probe())
    @SETTINGS
    def test_glob(self, data):
        words, probe = data
        table = build_table("varchar", words, "SP_GiST_trie")
        # A '*' tail glob: matches everything sharing the probe's head.
        assert_index_matches_seqscan(table, "*=", probe[:1] + "*")

    @given(data=words_and_probe())
    @SETTINGS
    def test_regex_single_wildcard(self, data):
        words, probe = data
        table = build_table("varchar", words, "SP_GiST_trie")
        pattern = "?" + probe[1:] if len(probe) > 1 else "?"
        assert_index_matches_seqscan(table, "?=", pattern)

    @given(data=words_and_probe(), k=st.integers(min_value=1, max_value=8))
    @SETTINGS
    def test_nn_with_limit(self, data, k):
        from repro.geometry.distance import hamming

        words, probe = data
        table = build_table("varchar", words, "SP_GiST_trie")
        assert_nn_matches_sort(
            table, probe, k,
            lambda value, query: float(hamming(value, query)),
        )


class TestSuffixOracle:
    @given(data=words_and_probe())
    @SETTINGS
    def test_substring(self, data):
        words, probe = data
        table = build_table("varchar", words, "SP_GiST_suffix")
        assert_index_matches_seqscan(table, "@=", probe[:3])

    @given(data=words_and_probe())
    @SETTINGS
    def test_substring_of_present_word_interior(self, data):
        words, probe = data
        table = build_table("varchar", words, "SP_GiST_suffix")
        interior = probe[1:4] or probe
        assert_index_matches_seqscan(table, "@=", interior)
