"""Oracle equality must survive storage degradation.

Two degraded regimes:

- **Transient faults**: a ``FaultInjectingDiskManager`` with a nonzero
  read-error rate under the buffer pool. The pool's bounded retry absorbs
  the faults, so both access paths still return the exact oracle answer.
- **Hard corruption**: index pages bit-flipped after the build. The
  executor's graceful degradation (quarantine + seq-scan fallback) must
  still produce the oracle answer — zero divergence even with a dead
  index.
"""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.resilience import INCIDENTS, corrupt_page
from repro.resilience.faults import FaultInjectingDiskManager, FaultPolicy
from repro.storage import BufferPool, DiskManager

from tests import hypothesis_max_examples
from tests.oracle.harness import assert_index_matches_seqscan, build_table

SETTINGS = settings(
    max_examples=hypothesis_max_examples(15),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

WORDS = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8),
    min_size=1,
    max_size=40,
)


def _flaky_buffer(seed: int) -> BufferPool:
    disk = FaultInjectingDiskManager(
        DiskManager(),
        FaultPolicy(seed=seed, read_error_rate=0.05),
    )
    return BufferPool(disk, capacity=16)


class TestTransientFaults:
    @given(words=WORDS, seed=st.integers(min_value=0, max_value=999))
    @SETTINGS
    def test_equality_oracle_under_flaky_reads(self, words, seed):
        table = build_table(
            "varchar", words, "SP_GiST_trie", buffer=_flaky_buffer(seed)
        )
        assert_index_matches_seqscan(table, "=", words[0])
        assert_index_matches_seqscan(table, "#=", words[0][:2])

    @given(words=WORDS, seed=st.integers(min_value=0, max_value=999))
    @SETTINGS
    def test_substring_oracle_under_flaky_reads(self, words, seed):
        table = build_table(
            "varchar", words, "SP_GiST_suffix", buffer=_flaky_buffer(seed)
        )
        assert_index_matches_seqscan(table, "@=", words[0][:3])


class TestHardCorruption:
    @given(words=WORDS, seed=st.integers(min_value=0, max_value=999))
    @SETTINGS
    def test_equality_oracle_with_corrupted_index(self, words, seed):
        INCIDENTS.reset()
        table = build_table("varchar", words, "SP_GiST_trie")
        index = table.indexes["oracle_idx"]
        table.buffer.clear()
        for page_id in index.structure.store.page_ids:
            corrupt_page(table.buffer.disk, page_id, seed=seed + page_id)
        # The index is unreadable; the fallback must still match the
        # oracle exactly (degradation may or may not trip depending on
        # whether the flipped bits land in decoded payload fields).
        assert_index_matches_seqscan(table, "=", words[0])
        INCIDENTS.reset()
