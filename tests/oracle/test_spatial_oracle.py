"""Differential oracle: spatial indexes vs seq scan.

Point equality (``@``), range/containment (``^``), and NN-with-LIMIT
(``@@``) through the kd-tree, point quadtree, and PR quadtree; segment
equality and window overlap through the PMR quadtree. Every answer is
compared against the sequential-scan oracle as a multiset.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geometry import Box, Point
from repro.geometry.distance import euclidean, point_to_segment_distance
from repro.geometry.segment import LineSegment

from tests import hypothesis_max_examples
from tests.oracle.harness import (
    assert_index_matches_seqscan,
    assert_nn_matches_sort,
    build_table,
)

SETTINGS = settings(
    max_examples=hypothesis_max_examples(20),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

POINT_OPCLASSES = ("SP_GiST_kdtree", "SP_GiST_pquadtree", "SP_GiST_prquadtree")

COORD = st.integers(min_value=0, max_value=50)
POINTS = st.lists(
    st.builds(Point, COORD, COORD), min_size=1, max_size=40
)


@st.composite
def points_and_box(draw):
    points = draw(POINTS)
    x1, x2 = sorted((draw(COORD), draw(COORD)))
    y1, y2 = sorted((draw(COORD), draw(COORD)))
    return points, Box(x1, y1, x2, y2)


@st.composite
def segments_and_box(draw):
    coords = st.integers(min_value=0, max_value=30)
    segments = draw(st.lists(
        st.builds(
            LineSegment,
            st.builds(Point, coords, coords),
            st.builds(Point, coords, coords),
        ),
        min_size=1,
        max_size=25,
    ))
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return segments, Box(x1, y1, x2, y2)


@pytest.mark.parametrize("opclass", POINT_OPCLASSES)
class TestPointOracles:
    @given(data=points_and_box())
    @SETTINGS
    def test_point_equality(self, opclass, data):
        points, _box = data
        table = build_table("point", points, opclass)
        assert_index_matches_seqscan(table, "@", points[0])

    @given(data=points_and_box())
    @SETTINGS
    def test_absent_point_equality(self, opclass, data):
        points, _box = data
        table = build_table("point", points, opclass)
        assert_index_matches_seqscan(table, "@", Point(99, 99))

    @given(data=points_and_box())
    @SETTINGS
    def test_range_contains(self, opclass, data):
        points, box = data
        table = build_table("point", points, opclass)
        assert_index_matches_seqscan(table, "^", box)

    @given(data=points_and_box(), k=st.integers(min_value=1, max_value=6))
    @SETTINGS
    def test_nn_with_limit(self, opclass, data, k):
        points, box = data
        table = build_table("point", points, opclass)
        query = Point(box.xmin, box.ymin)
        assert_nn_matches_sort(table, query, k, euclidean)


class TestSegmentOracle:
    @given(data=segments_and_box())
    @SETTINGS
    def test_segment_equality(self, data):
        segments, _box = data
        table = build_table("lseg", segments, "SP_GiST_pmr")
        assert_index_matches_seqscan(table, "=", segments[0])

    @given(data=segments_and_box())
    @SETTINGS
    def test_window_overlap(self, data):
        segments, box = data
        table = build_table("lseg", segments, "SP_GiST_pmr")
        assert_index_matches_seqscan(table, "&&", box)

    @given(data=segments_and_box(), k=st.integers(min_value=1, max_value=5))
    @SETTINGS
    def test_nn_with_limit(self, data, k):
        segments, box = data
        table = build_table("lseg", segments, "SP_GiST_pmr")
        query = Point(box.xmin, box.ymin)
        assert_nn_matches_sort(
            table, query, k,
            lambda seg, q: point_to_segment_distance(q, seg),
        )
