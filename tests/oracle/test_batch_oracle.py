"""Differential oracle for the batch executor: batch ≡ tuple, always.

:func:`repro.engine.executor.execute_plan_batches` promises that
concatenating its batches reproduces :func:`execute_plan_rows` exactly —
same rows, same order — for *any* batch size ≥ 1. This suite sweeps the
satellite-mandated sizes {1, 7, 64, 1024} over every query shape (seq
scan with and without predicate, index equality/prefix/substring, point
equality/range, segment equality/window overlap, NN with LIMIT) and
re-proves the equivalence under transient read faults, hard index
corruption (where both paths degrade to the heap, so the comparison
relaxes to multiset), and a VACUUM fired in the middle of a batched scan.
"""

from __future__ import annotations

import collections
from itertools import islice

import pytest

from repro.engine.cost import seqscan_cost
from repro.engine.executor import execute_plan_batches, execute_plan_rows
from repro.engine.planner import NNSortScanPlan, Predicate, SeqScanPlan
from repro.engine.txn import TransactionManager
from repro.geometry import Box
from repro.resilience import INCIDENTS, corrupt_page
from repro.resilience.faults import FaultInjectingDiskManager, FaultPolicy
from repro.storage import BufferPool, DiskManager
from repro.workloads import random_points, random_segments, random_words

from tests.oracle.harness import _forced_plans, build_table

#: The satellite-mandated sweep. Size 1 degenerates to tuple-at-a-time,
#: 1024 exceeds every test table so the whole result is one batch.
BATCH_SIZES = (1, 7, 64, 1024)

WORDS = random_words(150, seed=901)
POINTS = random_points(90, seed=902)
SEGMENTS = random_segments(60, seed=903)


def _flatten(batches) -> list:
    return [row for batch in batches for row in batch]


def _assert_equivalent(plan_factory, batch_size, exact_order=True) -> None:
    """Batch output must reproduce the row pipeline's output."""
    want = list(execute_plan_rows(plan_factory()))
    got = _flatten(
        execute_plan_batches(plan_factory(), batch_size=batch_size)
    )
    if exact_order:
        assert got == want, (
            f"batch_size={batch_size} changed the result stream: "
            f"{len(got)} rows vs {len(want)}"
        )
    else:
        assert collections.Counter(got) == collections.Counter(want)


def _index_factory(table, op, operand):
    def make():
        plan, _seq = _forced_plans(table, Predicate("key", op, operand))
        return plan
    return make


def _seq_factory(table, predicate=None):
    def make():
        plan = SeqScanPlan(
            table, predicate, seqscan_cost(table.heap_pages, len(table))
        )
        return plan
    return make


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
class TestEveryQueryShape:
    def test_seq_scan_shapes(self, batch_size):
        table = build_table("varchar", WORDS, "SP_GiST_trie")
        _assert_equivalent(_seq_factory(table), batch_size)
        _assert_equivalent(
            _seq_factory(table, Predicate("key", "=", WORDS[3])), batch_size
        )

    def test_string_index_shapes(self, batch_size):
        trie = build_table("varchar", WORDS, "SP_GiST_trie")
        _assert_equivalent(_index_factory(trie, "=", WORDS[0]), batch_size)
        _assert_equivalent(_index_factory(trie, "=", "zz-no-such"), batch_size)
        _assert_equivalent(
            _index_factory(trie, "#=", WORDS[0][:2]), batch_size
        )
        suffix = build_table("varchar", WORDS, "SP_GiST_suffix")
        _assert_equivalent(
            _index_factory(suffix, "@=", WORDS[0][:3]), batch_size
        )

    @pytest.mark.parametrize(
        "opclass",
        ("SP_GiST_kdtree", "SP_GiST_pquadtree", "SP_GiST_prquadtree"),
    )
    def test_point_index_shapes(self, batch_size, opclass):
        table = build_table("point", POINTS, opclass)
        _assert_equivalent(_index_factory(table, "@", POINTS[0]), batch_size)
        _assert_equivalent(
            _index_factory(table, "^", Box(10, 10, 60, 60)), batch_size
        )

    def test_segment_index_shapes(self, batch_size):
        table = build_table("lseg", SEGMENTS, "SP_GiST_pmr")
        _assert_equivalent(
            _index_factory(table, "=", SEGMENTS[0]), batch_size
        )
        _assert_equivalent(
            _index_factory(table, "&&", Box(0, 0, 40, 40)), batch_size
        )

    def test_nn_with_limit(self, batch_size):
        table = build_table("point", POINTS, "SP_GiST_kdtree")
        factory = _index_factory(table, "@@", POINTS[5])
        want = list(islice(execute_plan_rows(factory()), 10))
        got = list(
            islice(
                (
                    row
                    for batch in execute_plan_batches(
                        factory(), batch_size=batch_size
                    )
                    for row in batch
                ),
                10,
            )
        )
        assert got == want


class TestNNTotalOrder:
    """NN streams are a stable total order: (distance, then TID).

    Before the PR 10 tie-break, equal-distance results came out in tree
    discovery order, which differed between the index pipeline and the
    sort-scan reference (and would differ shard-to-shard in the cluster
    k-merge). Duplicate keys force exact distance ties, so these checks
    are sequence-sensitive where the old behaviour was only set-stable.
    """

    def _tables_with_ties(self):
        points = random_points(40, seed=904)
        data = list(points) + list(points[:15])  # duplicated keys: exact ties
        return data, build_table("point", data, "SP_GiST_kdtree")

    def test_index_nn_matches_sort_scan_sequence(self):
        data, table = self._tables_with_ties()
        query = data[3]
        predicate = Predicate("key", "@@", query)
        nn_plan, _seq = _forced_plans(table, predicate)
        sort_plan = NNSortScanPlan(
            table, predicate, seqscan_cost(table.heap_pages, len(table))
        )
        got = list(execute_plan_rows(nn_plan))
        want = list(execute_plan_rows(sort_plan))
        assert got == want, "index NN order diverged from (distance, TID) order"

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_batches_preserve_the_total_order(self, batch_size):
        data, table = self._tables_with_ties()
        _assert_equivalent(
            _index_factory(table, "@@", data[7]), batch_size
        )

    def test_repeated_scans_are_identical(self):
        data, table = self._tables_with_ties()
        factory = _index_factory(table, "@@", data[11])
        first = list(execute_plan_rows(factory()))
        for _ in range(3):
            assert list(execute_plan_rows(factory())) == first


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
class TestUnderFaults:
    def test_equivalence_under_transient_read_faults(self, batch_size):
        disk = FaultInjectingDiskManager(
            DiskManager(), FaultPolicy(seed=batch_size, read_error_rate=0.05)
        )
        table = build_table(
            "varchar", WORDS, "SP_GiST_trie",
            buffer=BufferPool(disk, capacity=16),
        )
        # The pool's bounded retry absorbs every fault, so the streams
        # must match exactly, order included.
        _assert_equivalent(_index_factory(table, "=", WORDS[0]), batch_size)
        _assert_equivalent(
            _index_factory(table, "#=", WORDS[0][:2]), batch_size
        )

    def test_equivalence_with_corrupted_index(self, batch_size):
        INCIDENTS.reset()
        try:
            table = build_table("varchar", WORDS, "SP_GiST_trie")
            index = table.indexes["oracle_idx"]
            table.buffer.clear()
            for page_id in index.structure.store.page_ids:
                corrupt_page(
                    table.buffer.disk, page_id, seed=batch_size + page_id
                )
            # Both pipelines degrade to the heap fallback; the degradation
            # point can differ between runs (the first run purges the node
            # cache), so the guarantee is multiset equality.
            _assert_equivalent(
                _index_factory(table, "=", WORDS[0]),
                batch_size,
                exact_order=False,
            )
        finally:
            INCIDENTS.reset()


def _mvcc_words_table(manager: TransactionManager):
    """An MVCC trie table with a third of its rows already MVCC-dead."""
    table = build_table("varchar", WORDS, "SP_GiST_trie", txn=manager)
    tids = [tid for tid, _row in table.heap.scan()]
    for tid in tids[::3]:
        txn = manager.begin()
        table.mvcc_delete(tid, txn)
        manager.commit(txn)
    return table, tids


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
class TestMidScanVacuum:
    """A VACUUM (plus more deletes) firing between two batches of a scan.

    The scan reads through a snapshot held by an open transaction, so the
    horizon protects every row the snapshot can see: VACUUM may reclaim
    the pre-existing dead versions mid-flight (their slots vanish under
    the scan) but must not disturb the visible stream.
    """

    def test_seq_scan_survives_mid_scan_vacuum(self, batch_size):
        manager = TransactionManager()
        table, tids = _mvcc_words_table(manager)
        holder = manager.begin()  # pins the horizon and the snapshot
        try:
            factory = _seq_factory(table)

            def stamped():
                plan = factory()
                plan.snapshot = holder.snapshot
                return plan

            want = list(execute_plan_rows(stamped()))
            got: list = []
            for i, batch in enumerate(
                execute_plan_batches(stamped(), batch_size=batch_size)
            ):
                got.extend(batch)
                if i == 1:  # between batches: delete more rows + VACUUM
                    txn = manager.begin()
                    table.mvcc_delete(tids[1], txn)
                    manager.commit(txn)
                    table.vacuum()
            assert got == want
        finally:
            manager.abort(holder)

    def test_index_scan_survives_mid_scan_vacuum(self, batch_size):
        manager = TransactionManager()
        table, tids = _mvcc_words_table(manager)
        holder = manager.begin()
        try:
            prefix = WORDS[0][:1]  # single letter: a fat result set

            def stamped():
                plan, _seq = _forced_plans(
                    table, Predicate("key", "#=", prefix)
                )
                plan.snapshot = holder.snapshot
                return plan

            want = list(execute_plan_rows(stamped()))
            got: list = []
            for i, batch in enumerate(
                execute_plan_batches(stamped(), batch_size=batch_size)
            ):
                got.extend(batch)
                if i == 0:
                    txn = manager.begin()
                    table.mvcc_delete(tids[4], txn)
                    manager.commit(txn)
                    table.vacuum()
            assert got == want
        finally:
            manager.abort(holder)

    def test_vacuum_mid_scan_actually_reclaims(self, batch_size):
        """The interleaved VACUUM is not a no-op: dead versions do go."""
        manager = TransactionManager()
        table, _tids = _mvcc_words_table(manager)
        stats = table.vacuum()
        assert stats.versions_pruned > 0
