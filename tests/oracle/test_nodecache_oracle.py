"""The node cache is a pure performance layer: zero observable divergence.

Two invariants, both differential:

- **Oracle equality across cache regimes**: the same workload and query
  return identical rows with the deserialized-node cache on and off, and
  both match the sequential-scan oracle.
- **NN work invariance**: routing ``nn_search`` through the cache changes
  which *layer* serves a node, never *which nodes are visited*. The
  ``spgist_nodes_visited_total{op=nn}`` delta and the full ranked result
  sequence must be byte-for-byte identical in both regimes.
"""

from __future__ import annotations

import itertools
import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.indexes import KDTreeIndex, TrieIndex
from repro.obs import METRICS
from repro.storage import BufferPool, DiskManager
from repro.workloads import random_points, random_words

from tests import hypothesis_max_examples
from tests.oracle.harness import assert_index_matches_seqscan, build_table

SETTINGS = settings(
    max_examples=hypothesis_max_examples(15),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

WORDS = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8),
    min_size=1,
    max_size=40,
)

_NN_NODES = METRICS.counter(
    "spgist_nodes_visited_total",
    "Tree nodes read during SP-GiST descents",
    labels=("op",),
).labels("nn")


def _disable_cache(index) -> None:
    index.store.detach()
    index.store.cache = None


class TestOracleAcrossCacheRegimes:
    @given(words=WORDS)
    @SETTINGS
    def test_equality_oracle_with_cache_disabled(self, words):
        table = build_table("varchar", words, "SP_GiST_trie")
        _disable_cache(table.indexes["oracle_idx"].structure)
        assert_index_matches_seqscan(table, "=", words[0])
        assert_index_matches_seqscan(table, "#=", words[0][:2])

    @given(words=WORDS)
    @SETTINGS
    def test_both_regimes_return_identical_rows(self, words):
        def run(use_cache: bool):
            table = build_table("varchar", words, "SP_GiST_trie")
            if not use_cache:
                _disable_cache(table.indexes["oracle_idx"].structure)
            assert_index_matches_seqscan(table, "=", words[0])
            from repro.core.external import Query

            return sorted(
                table.indexes["oracle_idx"].structure.search_list(
                    Query("=", words[0])
                )
            )

        assert run(True) == run(False)


class TestNNWorkInvariance:
    def _ranked_nn(self, use_cache: bool, k: int):
        """(results, nodes_visited) of a k-NN scan in one cache regime."""
        pool = BufferPool(DiskManager(), capacity=16)
        index = KDTreeIndex(pool)
        if not use_cache:
            _disable_cache(index)
        for i, point in enumerate(random_points(500, seed=83)):
            index.insert(point, i)
        before = _NN_NODES.value
        results = list(
            itertools.islice(index.nn_search(Point(37.0, 59.0)), k)
        )
        return results, _NN_NODES.value - before

    def test_nn_visits_identical_node_count_with_and_without_cache(self):
        cached_results, cached_visits = self._ranked_nn(True, k=25)
        plain_results, plain_visits = self._ranked_nn(False, k=25)
        assert cached_visits == plain_visits
        assert cached_results == plain_results
        assert len(cached_results) == 25

    def test_nn_distances_nondecreasing_in_both_regimes(self):
        for use_cache in (True, False):
            results, _ = self._ranked_nn(use_cache, k=40)
            distances = [d for d, _k, _v in results]
            assert distances == sorted(distances)

    def test_trie_search_disk_reads_identical(self):
        """Equality descents miss the pool identically with the cache on
        or off — a cache hit spares the deserialization, never changes
        which pages must come off the disk."""

        def run(use_cache: bool) -> int:
            pool = BufferPool(DiskManager(), capacity=8)
            index = TrieIndex(pool, bucket_size=4)
            if not use_cache:
                _disable_cache(index)
            words = random_words(400, seed=19)
            for i, word in enumerate(words):
                index.insert(word, i)
            misses0 = pool.stats.misses
            from repro.core.external import Query

            for word in words[::7]:
                index.search_list(Query("=", word))
            return pool.stats.misses - misses0

        assert run(True) == run(False)
