"""Legacy setup shim so editable installs work with older setuptools."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "SP-GiST: space-partitioning trees with a PostgreSQL-style "
        "extensible access-method layer (ICDE 2006 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
