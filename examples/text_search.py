#!/usr/bin/env python3
"""Text search over a word table — the paper's string workload, end to end.

A dictionary-style relation is indexed three ways (patricia trie, suffix
tree, B+-tree) and queried with the paper's operators: exact match (=),
prefix match (#=), regular-expression match with the '?' wildcard (?=),
substring match (@=), and Hamming nearest-neighbour (@@). For each query
the script also shows which access path the cost-based planner picks.

Run:  python examples/text_search.py
"""

from repro.engine import Database
from repro.workloads import random_words


def run(db: Database, sql: str) -> None:
    print(f"\n>>> {sql}")
    print("    plan:", db.execute("EXPLAIN " + sql))
    rows = db.execute(sql)
    shown = rows[:8]
    for row in shown:
        print("   ", row)
    if len(rows) > len(shown):
        print(f"    ... {len(rows) - len(shown)} more rows")


def main() -> None:
    db = Database(buffer_capacity=512)
    db.execute("CREATE TABLE word_data (name VARCHAR(50), id INT);")

    table = db.table("word_data")
    words = random_words(5000, seed=42)
    for i, word in enumerate(words):
        table.insert((word, i))
    # A few predictable rows so the demo queries always hit.
    for i, word in enumerate(["random", "randy", "rindom", "bandana"]):
        table.insert((word, 5000 + i))

    print("indexing", len(table), "rows three ways...")
    db.execute(
        "CREATE INDEX sp_trie_index ON word_data USING SP_GiST "
        "(name SP_GiST_trie);"
    )
    db.execute(
        "CREATE INDEX sp_suffix_index ON word_data USING SP_GiST "
        "(name SP_GiST_suffix);"
    )
    db.execute(
        "CREATE INDEX bt_name ON word_data USING btree (name btree_varchar);"
    )
    db.execute("ANALYZE word_data;")

    # The paper's Table 6 queries.
    run(db, "SELECT * FROM word_data WHERE name = 'random';")
    run(db, "SELECT * FROM word_data WHERE name ?= 'r?nd?m';")
    run(db, "SELECT * FROM word_data WHERE name #= 'ban';")
    run(db, "SELECT * FROM word_data WHERE name @= 'ndan';")
    run(db, "SELECT * FROM word_data WHERE name @@ 'randoz' LIMIT 5;")

    print("\nbuffer pool:", db.buffer.stats)


if __name__ == "__main__":
    main()
