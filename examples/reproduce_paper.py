#!/usr/bin/env python3
"""Reproduce every figure and table of the paper's Section 6 in one run.

Runs the full experiment sweeps (the same code the benchmark suite uses,
at the EXPERIMENTS.md sizes) and prints each figure's series in the paper's
format. Expect a few minutes of runtime.

Run:  python examples/reproduce_paper.py           # full sweep
      python examples/reproduce_paper.py --quick   # half-size sweep
"""

import sys
import time

from repro.bench.figures import (
    ablation_bucket_size,
    ablation_buffer_pool,
    ablation_clustering,
    ablation_equality_methods,
    ablation_node_shrink,
    ablation_path_shrink,
    ablation_pmr_threshold,
    ablation_rtree_split,
    fig6_to_8_string_search,
    fig9_to_12_insert_size_height,
    fig13_14_kdtree_rtree,
    fig15_pmr_rtree,
    fig16_suffix_vs_seqscan,
    fig17_nn_search,
)
from repro.bench.loc import core_lines, table7_rows
from repro.bench.report import ascii_chart, format_table, log10


def show(title, rows, columns):
    print("\n" + format_table(
        title,
        ["x"] + list(columns),
        [[r.size] + [round(r.values[c], 3) for c in columns] for r in rows],
    ))


def main() -> None:
    quick = "--quick" in sys.argv
    started = time.time()

    string_sizes = (2000, 4000, 8000) if quick else (4000, 8000, 16000, 32000)
    spatial_sizes = (2000, 4000, 8000) if quick else (2000, 4000, 8000, 16000)
    nn_size = 8000 if quick else 20000

    print(format_table(
        f"Table 7 — external-method code lines (core: {core_lines()})",
        ["index", "lines", "% of total"],
        [[r.name, r.external_lines, round(r.percentage, 1)] for r in table7_rows()],
    ))

    rows = fig6_to_8_string_search(sizes=string_sizes)
    show("Figure 6 — (B-tree/trie) x 100", rows,
         ("exact_ratio", "prefix_ratio"))
    show("Figure 7 — B-tree/trie, leading-? regex", rows,
         ("regex_ratio", "regex_read_ratio", "regex_mid_ratio"))
    print("Figure 7 log10 series:",
          [round(log10(r.values["regex_ratio"]), 2) for r in rows])
    show("Figure 8 — trie exact-search cost stddev", rows,
         ("trie_exact_stddev", "trie_exact_cost"))

    rows = fig9_to_12_insert_size_height(sizes=string_sizes)
    show("Figure 9 — (B-tree/trie) x 100, insert", rows, ("insert_ratio",))
    show("Figure 10 — (B-tree/trie) x 100, index size", rows,
         ("size_ratio", "trie_pages", "btree_pages"))
    show("Figure 11 — max height in nodes", rows,
         ("trie_node_height", "btree_node_height"))
    show("Figure 12 — max height in pages", rows,
         ("trie_page_height", "btree_page_height"))

    rows = fig13_14_kdtree_rtree(sizes=spatial_sizes)
    show("Figure 13 — (R-tree/kd-tree) x 100", rows,
         ("point_ratio", "range_ratio", "insert_ratio"))
    show("Figure 14 — (R-tree/kd-tree) x 100, index size", rows,
         ("size_ratio",))

    rows = fig15_pmr_rtree(sizes=spatial_sizes)
    show("Figure 15 — (R-tree/PMR quadtree) x 100", rows,
         ("insert_ratio", "exact_ratio", "range_ratio"))

    rows = fig16_suffix_vs_seqscan(sizes=string_sizes[:3])
    show("Figure 16 — sequential/suffix-tree", rows, ("ratio", "read_ratio"))
    print("Figure 16 log10 series:",
          [round(log10(r.values["ratio"]), 2) for r in rows])

    rows = fig17_nn_search(size=nn_size)
    show("Figure 17 — NN search cost vs k", rows,
         ("kdtree_cost", "pquadtree_cost", "trie_cost"))
    print("\n" + ascii_chart(
        "Figure 17 (chart, log scale) — NN cost vs k",
        [r.size for r in rows],
        {
            "kd-tree": [r.values["kdtree_cost"] for r in rows],
            "p-quad ": [r.values["pquadtree_cost"] for r in rows],
            "trie   ": [r.values["trie_cost"] for r in rows],
        },
        log_scale=True,
    ))

    print("\n=== ablations (DESIGN.md §3) ===")
    show("D1 bucket size", ablation_bucket_size(),
         ("exact_cost", "pages", "nodes", "page_height"))
    show("D2 path shrink (0=Tree,1=Never)", ablation_path_shrink(),
         ("exact_cost", "nodes", "node_height"))
    show("D3 node shrink (1=on,0=off)", ablation_node_shrink(),
         ("nodes", "pages"))
    show("D4 clustering (0=incremental,1=repacked)", ablation_clustering(),
         ("exact_cost", "page_height", "fill"))
    show("D5 buffer pool", ablation_buffer_pool(),
         ("reads_per_op", "hit_ratio"))
    show("D6 PMR threshold", ablation_pmr_threshold(),
         ("window_cost", "pages", "items_stored"))
    eq_rows = ablation_equality_methods()
    print("\nD7 equality methods (trie, btree, hash, seqscan):")
    for r in eq_rows:
        print(f"  {r.values['label']:8} cost={r.values['cost']:.2f} "
              f"reads={r.values['reads']:.2f}")
    show("D8 R-tree split (0=linear,1=quadratic)", ablation_rtree_split(),
         ("point_cost", "pages"))

    print(f"\ndone in {time.time() - started:.0f}s")


if __name__ == "__main__":
    main()
