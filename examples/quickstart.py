#!/usr/bin/env python3
"""Quickstart: every index type in five minutes.

Builds each SP-GiST instantiation over a small dataset, runs its signature
queries, and shows the I/O accounting that the experiments are built on.

Run:  python examples/quickstart.py
"""

from repro import (
    Box,
    BufferPool,
    DiskManager,
    KDTreeIndex,
    LineSegment,
    PMRQuadtreeIndex,
    Point,
    PointQuadtreeIndex,
    SuffixTreeIndex,
    TrieIndex,
    nearest,
)


def main() -> None:
    buffer = BufferPool(DiskManager(), capacity=128)

    # --- Patricia trie: strings -------------------------------------------------
    trie = TrieIndex(buffer)
    for i, word in enumerate(
        ["space", "spade", "spark", "star", "start", "stop", "top", "spa"]
    ):
        trie.insert(word, i)

    print("trie exact  'star'  ->", trie.search_equal("star"))
    print("trie prefix 'spa'   ->", sorted(trie.search_prefix("spa")))
    print("trie regex  's?a?e' ->", sorted(trie.search_regex("s?a?e")))
    print("trie 3-NN of 'stat' ->", nearest(trie, "stat", 3))

    # --- Suffix tree: substring search -----------------------------------------
    suffix = SuffixTreeIndex(buffer)
    for i, word in enumerate(["bandana", "cabana", "banner", "abandon"]):
        suffix.insert_word(word, i)
    print("\nsubstring 'ban'     ->", sorted(suffix.search_substring("ban")))
    print("substring 'ana'     ->", sorted(suffix.search_substring("ana")))

    # --- kd-tree and point quadtree: 2-D points ---------------------------------
    points = [Point(x, y) for x in range(0, 100, 7) for y in range(0, 100, 11)]
    kd = KDTreeIndex(buffer)
    pq = PointQuadtreeIndex(buffer)
    for i, p in enumerate(points):
        kd.insert(p, i)
        pq.insert(p, i)

    window = Box(20, 20, 40, 45)
    print("\nkd-tree range", window, "->", len(kd.search_range(window)), "points")
    assert sorted(kd.search_range(window)) == sorted(pq.search_range(window))
    print("point quadtree agrees on the same window")
    print("kd-tree 3-NN of (50,50) ->",
          [(round(d, 2), str(p)) for d, p, _ in nearest(kd, Point(50, 50), 3)])

    # --- PMR quadtree: line segments --------------------------------------------
    world = Box(0, 0, 100, 100)
    pmr = PMRQuadtreeIndex(buffer, world)
    roads = [
        LineSegment(Point(10, 10), Point(90, 15)),
        LineSegment(Point(50, 0), Point(50, 100)),
        LineSegment(Point(0, 80), Point(30, 60)),
    ]
    for i, road in enumerate(roads):
        pmr.insert(road, i)
    hits = pmr.search_window(Box(45, 40, 60, 60))
    print("\nPMR window (45,40,60,60) crosses segment ids:",
          sorted(v for _, v in hits))

    # --- the disk story ----------------------------------------------------------
    stats = trie.statistics()
    print(
        f"\ntrie structure: {stats.total_nodes} nodes on {stats.pages} pages, "
        f"node-height {stats.max_node_height}, page-height {stats.max_page_height}"
    )
    print(
        f"buffer pool: {buffer.stats.hits} hits / {buffer.stats.misses} misses "
        f"(hit ratio {buffer.stats.hit_ratio:.2%})"
    )


if __name__ == "__main__":
    main()
