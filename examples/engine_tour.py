#!/usr/bin/env python3
"""Tour of the PostgreSQL-style extensibility layer (paper Section 4).

Walks the exact machinery the paper describes: the ``pg_am`` catalog row
that introduces SP_GiST (Table 2), operator definitions with restriction
procedures (Table 4), operator classes binding external methods (Table 5),
and finally a *new index type registered at runtime without touching engine
code* — the paper's portability claim, demonstrated live with a bit-trie
over binary strings.

Run:  python examples/engine_tour.py
"""

from typing import Any, Sequence

from repro.core import PathShrink, SPGiSTConfig
from repro.engine import Database, Operator, OperatorClass
from repro.engine.catalog import spgist_am_entry
from repro.indexes.trie import TrieMethods


def show_catalog(db: Database) -> None:
    print("== pg_am row for SP_GiST (paper Table 2) ==")
    entry = spgist_am_entry()
    for column in (
        "amname amstrategies amsupport amorderstrategy amconcurrent "
        "amgettuple aminsert ambuild ambulkdelete amcostestimate".split()
    ):
        print(f"  {column:18} = {getattr(entry, column)}")

    print("\n== registered operator classes (paper Table 5) ==")
    for name, opclass in db.catalog.opclasses.items():
        ops = ", ".join(
            f"{strategy}:{op}" for strategy, op in sorted(opclass.operators.items())
        )
        print(f"  {opclass.name:18} {opclass.access_method:8} "
              f"for {opclass.for_type:8} [{ops}]")


class BitTrieMethods(TrieMethods):
    """A developer's new index type: a trie over '0'/'1' strings.

    Everything below this docstring is inherited — the point is how little
    a new instantiation needs (paper Table 7).
    """

    def get_parameters(self) -> SPGiSTConfig:
        return SPGiSTConfig(
            node_predicate="bit or blank",
            key_type="varchar",
            num_space_partitions=3,  # '0', '1', blank
            path_shrink=PathShrink.TREE_SHRINK,
            node_shrink=True,
            bucket_size=8,
        )


def main() -> None:
    db = Database()
    show_catalog(db)

    print("\n== registering a brand-new index type at runtime ==")
    db.catalog.register_opclass(
        OperatorClass(
            name="SP_GiST_bittrie",
            access_method="SP_GiST",
            for_type="varchar",
            operators={1: "=", 2: "#=", 3: "?="},
            methods_factory=BitTrieMethods,
        )
    )
    print("  registered opclass SP_GiST_bittrie (no engine code touched)")

    db.execute("CREATE TABLE codes (bits VARCHAR(32), id INT);")
    table = db.table("codes")
    import random

    rng = random.Random(3)
    for i in range(2000):
        table.insert(("".join(rng.choices("01", k=rng.randint(4, 16))), i))
    db.execute(
        "CREATE INDEX bit_idx ON codes USING SP_GiST (bits SP_GiST_bittrie);"
    )
    db.execute("ANALYZE codes;")

    for sql in (
        "SELECT * FROM codes WHERE bits = '0101';",
        "SELECT * FROM codes WHERE bits #= '1111';",
        "SELECT * FROM codes WHERE bits ?= '10?1';",
    ):
        print(f"\n>>> {sql}")
        print("    plan:", db.execute("EXPLAIN " + sql))
        rows = db.execute(sql)
        print(f"    {len(rows)} rows", rows[:5])

    print("\n== cost-based planning in action ==")
    print("  with index:   ",
          db.execute("EXPLAIN SELECT * FROM codes WHERE bits = '0101';"))
    db.execute("DROP INDEX bit_idx ON codes;")
    print("  without index:",
          db.execute("EXPLAIN SELECT * FROM codes WHERE bits = '0101';"))


if __name__ == "__main__":
    main()
