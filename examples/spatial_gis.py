#!/usr/bin/env python3
"""A small GIS scenario: city points and road segments, spatially indexed.

Points go into an SP-GiST kd-tree (with an R-tree alongside for
comparison); road segments go into a PMR quadtree. The scenario runs window
queries, point lookups, and incremental nearest-neighbour search — and
prints the page-I/O cost of each access method side by side, which is the
whole point of the paper's Figures 13–15.

Run:  python examples/spatial_gis.py
"""

from repro import (
    Box,
    BufferPool,
    DiskManager,
    KDTreeIndex,
    PMRQuadtreeIndex,
    Point,
    RTree,
    nearest,
)
from repro.bench import Workbench, measure
from repro.workloads import random_points, random_segments
from repro.workloads.points import WORLD


def main() -> None:
    # Separate "index files": each structure gets its own disk + pool.
    kd_bench, rt_bench, pmr_bench = Workbench(16), Workbench(16), Workbench(16)

    cities = random_points(5000, seed=7)
    kd = KDTreeIndex(kd_bench.buffer)
    rt = RTree(rt_bench.buffer)
    for i, city in enumerate(cities):
        kd.insert(city, i)
        rt.insert(city, i)
    kd.repack()  # spgistbuild finishes with the clustering pass

    roads = random_segments(3000, seed=8)
    pmr = PMRQuadtreeIndex(pmr_bench.buffer, WORLD)
    for i, road in enumerate(roads):
        pmr.insert(road, i)
    pmr.repack()

    # -- window query, kd-tree vs R-tree ----------------------------------------
    downtown = Box(40, 40, 60, 60)
    kd_bench.cold()
    kd_hits, kd_cost = measure(
        kd_bench.buffer, lambda: kd.search_range(downtown)
    )
    rt_bench.cold()
    rt_hits, rt_cost = measure(
        rt_bench.buffer, lambda: rt.range_search(downtown)
    )
    assert sorted(kd_hits) == sorted(rt_hits)
    print(f"window {downtown}: {len(kd_hits)} cities")
    print(f"  kd-tree: {kd_cost.io_reads} page reads (cost {kd_cost.cost:.1f})")
    print(f"  R-tree : {rt_cost.io_reads} page reads (cost {rt_cost.cost:.1f})")

    # -- point lookup -------------------------------------------------------------
    probe = cities[1234]
    kd_bench.cold()
    found, cost = measure(kd_bench.buffer, lambda: kd.search_point(probe))
    print(f"\npoint lookup {probe}: ids {[v for _, v in found]} "
          f"({cost.io_reads} page reads)")

    # -- incremental NN: 'five nearest cities to the crash site' -------------------
    crash_site = Point(37.5, 81.2)
    print(f"\n5 nearest cities to {crash_site}:")
    for distance, city, city_id in nearest(kd, crash_site, 5):
        print(f"  #{city_id} at {city}  (distance {distance:.2f})")

    # -- roads crossing a corridor ---------------------------------------------------
    corridor = Box(48, 0, 52, 100)
    pmr_bench.cold()
    crossing, cost = measure(
        pmr_bench.buffer, lambda: pmr.search_window(corridor)
    )
    print(f"\nroads crossing the N-S corridor: {len(crossing)} "
          f"({cost.io_reads} page reads)")

    # -- nearest road to a point -----------------------------------------------------
    [(distance, road, road_id)] = pmr.nearest_to(crash_site, 1)
    print(f"nearest road to the crash site: #{road_id} {road} "
          f"(distance {distance:.2f})")


if __name__ == "__main__":
    main()
