"""repro — SP-GiST space-partitioning trees with a PostgreSQL-style engine.

A full reproduction of *"Space-Partitioning Trees in PostgreSQL: Realization
and Performance"* (Eltabakh, Eltarras, Aref; ICDE 2006): the SP-GiST
extensible-index framework, five index instantiations (patricia trie, suffix
tree, kd-tree, point quadtree, PMR quadtree), the B+-tree / R-tree /
sequential-scan baselines, and a miniature PostgreSQL-like extensibility
layer (catalog, operators, operator classes, cost-based planner) — all on a
simulated page/buffer-pool disk substrate with full I/O accounting.

Quick start::

    from repro import BufferPool, DiskManager, TrieIndex

    buffer = BufferPool(DiskManager(), capacity=64)
    trie = TrieIndex(buffer)
    trie.insert("space", 1)
    trie.insert("spade", 2)
    trie.insert("star", 3)
    trie.search_prefix("spa")     # -> [("space", 1), ("spade", 2)]
    trie.search_regex("s?a?e")    # -> [("space", 1), ("spade", 2)]
"""

from repro.storage import (
    BufferPool,
    DiskManager,
    FileDiskManager,
    HeapFile,
    TupleId,
)
from repro.geometry import Box, LineSegment, Point
from repro.core import PathShrink, Query, SPGiSTConfig, SPGiSTIndex
from repro.core.nn import nearest
from repro.core.scan import IndexScanCursor
from repro.indexes import (
    KDTreeIndex,
    KDTreeMethods,
    PMRQuadtreeIndex,
    PMRQuadtreeMethods,
    PointQuadtreeIndex,
    PointQuadtreeMethods,
    PRQuadtreeIndex,
    PRQuadtreeMethods,
    SuffixTreeIndex,
    SuffixTreeMethods,
    TrieIndex,
    TrieMethods,
)
from repro.baselines import BPlusTree, RTree, sequential_scan, substring_scan

__version__ = "1.0.0"

__all__ = [
    "BufferPool",
    "DiskManager",
    "FileDiskManager",
    "HeapFile",
    "TupleId",
    "IndexScanCursor",
    "PRQuadtreeIndex",
    "PRQuadtreeMethods",
    "Box",
    "LineSegment",
    "Point",
    "PathShrink",
    "Query",
    "SPGiSTConfig",
    "SPGiSTIndex",
    "nearest",
    "KDTreeIndex",
    "KDTreeMethods",
    "PMRQuadtreeIndex",
    "PMRQuadtreeMethods",
    "PointQuadtreeIndex",
    "PointQuadtreeMethods",
    "SuffixTreeIndex",
    "SuffixTreeMethods",
    "TrieIndex",
    "TrieMethods",
    "BPlusTree",
    "RTree",
    "sequential_scan",
    "substring_scan",
    "__version__",
]
