"""Simulated disk substrate: pages, disk manager, buffer pool, heap files.

The paper measures *disk-based* index performance inside PostgreSQL. A pure
Python reimplementation cannot reproduce the authors' wall-clock numbers, so
this layer makes the cost model explicit instead: every structure in the
library stores its state in fixed-size pages owned by a :class:`DiskManager`
and accessed through a :class:`BufferPool`. Buffer misses (logical page reads)
are the primary cost metric of every experiment; they are what the relative
performance ratios in the paper's figures measure.
"""

from repro.storage.page import (
    PAGE_SIZE,
    Page,
    approx_size,
    decode_page_image,
    encode_page_image,
    estimate_size,
)
from repro.storage.disk import DiskManager, DiskStats
from repro.storage.filedisk import FileDiskManager
from repro.storage.buffer import BufferPool, BufferStats
from repro.storage.heap import HeapFile, TupleId
from repro.storage.nodecache import NodeCache, NodeCacheStats
from repro.storage.wal import WALRecord, WALStats, WriteAheadLog

__all__ = [
    "PAGE_SIZE",
    "Page",
    "approx_size",
    "decode_page_image",
    "encode_page_image",
    "estimate_size",
    "DiskManager",
    "DiskStats",
    "FileDiskManager",
    "BufferPool",
    "BufferStats",
    "HeapFile",
    "TupleId",
    "NodeCache",
    "NodeCacheStats",
    "WALRecord",
    "WALStats",
    "WriteAheadLog",
]
