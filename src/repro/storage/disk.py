"""Disk manager: the page store underneath the buffer pool.

Pages are serialized with :mod:`pickle` on write and deserialized on read, so
a "disk read" does real (de)serialization work — the simulated disk is not
just a dict of live objects. Reads and writes are counted; those counters are
the ground truth for every I/O figure in the benchmarks.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

from repro.errors import PageNotFoundError


@dataclass
class DiskStats:
    """Cumulative physical I/O counters for one disk manager."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0
    deallocations: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def snapshot(self) -> "DiskStats":
        """Return a copy of the current counters."""
        return DiskStats(
            reads=self.reads,
            writes=self.writes,
            allocations=self.allocations,
            deallocations=self.deallocations,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
        )

    def delta(self, earlier: "DiskStats") -> "DiskStats":
        """Counters accumulated since ``earlier`` (an older snapshot)."""
        return DiskStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            allocations=self.allocations - earlier.allocations,
            deallocations=self.deallocations - earlier.deallocations,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
        )


@dataclass
class DiskManager:
    """An in-memory simulated disk holding pickled pages.

    ``read_page``/``write_page`` model the physical I/O boundary: everything
    crossing it is serialized. The buffer pool above caches deserialized
    payloads so repeated access to a hot page costs nothing here.
    """

    stats: DiskStats = field(default_factory=DiskStats)
    _pages: dict[int, bytes] = field(default_factory=dict)
    _next_page_id: int = 0
    _free_list: list[int] = field(default_factory=list)

    def allocate_page(self) -> int:
        """Allocate a fresh (or recycled) page id with an empty payload."""
        if self._free_list:
            page_id = self._free_list.pop()
        else:
            page_id = self._next_page_id
            self._next_page_id += 1
        self._pages[page_id] = pickle.dumps(None, protocol=pickle.HIGHEST_PROTOCOL)
        self.stats.allocations += 1
        return page_id

    def deallocate_page(self, page_id: int) -> None:
        """Return ``page_id`` to the free list (used by VACUUM-style cleanup)."""
        if page_id not in self._pages:
            raise PageNotFoundError(page_id)
        del self._pages[page_id]
        self._free_list.append(page_id)
        self.stats.deallocations += 1

    def read_page(self, page_id: int) -> Any:
        """Read and deserialize one page's payload. Counts one physical read."""
        try:
            raw = self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(page_id) from None
        self.stats.reads += 1
        self.stats.bytes_read += len(raw)
        return pickle.loads(raw)

    def write_page(self, page_id: int, payload: Any) -> None:
        """Serialize and persist one page's payload. Counts one physical write."""
        if page_id not in self._pages:
            raise PageNotFoundError(page_id)
        raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self._pages[page_id] = raw
        self.stats.writes += 1
        self.stats.bytes_written += len(raw)

    @property
    def num_pages(self) -> int:
        """Number of currently allocated pages."""
        return len(self._pages)

    def page_exists(self, page_id: int) -> bool:
        """True when ``page_id`` is currently allocated."""
        return page_id in self._pages

    def reset_stats(self) -> None:
        """Zero the I/O counters (page contents are untouched)."""
        self.stats = DiskStats()
