"""Disk manager: the page store underneath the buffer pool.

Pages are serialized with :mod:`pickle` on write and deserialized on read, so
a "disk read" does real (de)serialization work — the simulated disk is not
just a dict of live objects. Reads and writes are counted; those counters are
the ground truth for every I/O figure in the benchmarks.

Every stored page image carries a CRC32-checksummed header (see
:func:`repro.storage.page.encode_page_image`); reads verify it before
deserializing, so bit flips and torn writes raise
:class:`~repro.errors.PageChecksumError` instead of yielding wrong payloads.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

from repro.errors import PageNotFoundError
from repro.obs import METRICS
from repro.storage.page import decode_page_image, encode_page_image

#: The checksummed image of a freshly allocated (empty) page, computed once —
#: allocation is hot in bulk builds, so re-pickling ``None`` per page would
#: be pure waste.
EMPTY_PAGE_IMAGE = encode_page_image(
    pickle.dumps(None, protocol=pickle.HIGHEST_PROTOCOL)
)

#: Physical-I/O metric families, shared by every disk manager (the
#: file-backed manager reports here too, so per-layer attribution does not
#: depend on which substrate an experiment runs on).
DISK_READS = METRICS.counter(
    "disk_reads_total", "Physical page reads across all disk managers"
)
DISK_WRITES = METRICS.counter(
    "disk_writes_total", "Physical page writes across all disk managers"
)
DISK_BYTES_READ = METRICS.counter(
    "disk_bytes_read_total", "Bytes read from disk-manager page stores"
)
DISK_BYTES_WRITTEN = METRICS.counter(
    "disk_bytes_written_total", "Bytes written to disk-manager page stores"
)


@dataclass
class DiskStats:
    """Cumulative physical I/O counters for one disk manager."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0
    deallocations: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def snapshot(self) -> "DiskStats":
        """Return a copy of the current counters."""
        return DiskStats(
            reads=self.reads,
            writes=self.writes,
            allocations=self.allocations,
            deallocations=self.deallocations,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
        )

    def delta(self, earlier: "DiskStats") -> "DiskStats":
        """Counters accumulated since ``earlier`` (an older snapshot)."""
        return DiskStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            allocations=self.allocations - earlier.allocations,
            deallocations=self.deallocations - earlier.deallocations,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
        )


@dataclass
class DiskManager:
    """An in-memory simulated disk holding pickled pages.

    ``read_page``/``write_page`` model the physical I/O boundary: everything
    crossing it is serialized. The buffer pool above caches deserialized
    payloads so repeated access to a hot page costs nothing here.
    """

    stats: DiskStats = field(default_factory=DiskStats)
    _pages: dict[int, bytes] = field(default_factory=dict)
    _next_page_id: int = 0
    _free_list: list[int] = field(default_factory=list)

    def allocate_page(self) -> int:
        """Allocate a fresh (or recycled) page id with an empty payload."""
        if self._free_list:
            page_id = self._free_list.pop()
        else:
            page_id = self._next_page_id
            self._next_page_id += 1
        self._pages[page_id] = EMPTY_PAGE_IMAGE
        self.stats.allocations += 1
        return page_id

    def deallocate_page(self, page_id: int) -> None:
        """Return ``page_id`` to the free list (used by VACUUM-style cleanup)."""
        if page_id not in self._pages:
            raise PageNotFoundError(page_id)
        del self._pages[page_id]
        self._free_list.append(page_id)
        self.stats.deallocations += 1

    def read_page(self, page_id: int) -> Any:
        """Read, verify, and deserialize one page. Counts one physical read.

        Raises :class:`~repro.errors.PageChecksumError` when the stored
        image fails verification.
        """
        try:
            raw = self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(page_id) from None
        self.stats.reads += 1
        self.stats.bytes_read += len(raw)
        DISK_READS.inc()
        DISK_BYTES_READ.inc(len(raw))
        return pickle.loads(decode_page_image(raw, page_id))

    def write_page(self, page_id: int, payload: Any) -> None:
        """Serialize, checksum, and persist one page. Counts one physical write."""
        if page_id not in self._pages:
            raise PageNotFoundError(page_id)
        raw = encode_page_image(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )
        self._pages[page_id] = raw
        self.stats.writes += 1
        self.stats.bytes_written += len(raw)
        DISK_WRITES.inc()
        DISK_BYTES_WRITTEN.inc(len(raw))

    # -- raw image access (fault injection / verification tooling) -------------

    def raw_page_image(self, page_id: int) -> bytes:
        """The stored (framed) image of ``page_id``, without accounting."""
        try:
            return self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(page_id) from None

    def store_raw_page_image(self, page_id: int, raw: bytes) -> None:
        """Overwrite the stored image bytes verbatim (no checksum stamping).

        Testing/fault-injection hook: lets
        :class:`~repro.resilience.faults.FaultInjectingDiskManager` plant
        torn writes and bit flips beneath the checksum boundary.
        """
        if page_id not in self._pages:
            raise PageNotFoundError(page_id)
        self._pages[page_id] = raw

    @property
    def num_pages(self) -> int:
        """Number of currently allocated pages."""
        return len(self._pages)

    def page_exists(self, page_id: int) -> bool:
        """True when ``page_id`` is currently allocated."""
        return page_id in self._pages

    def reset_stats(self) -> None:
        """Zero the I/O counters (page contents are untouched)."""
        self.stats = DiskStats()
