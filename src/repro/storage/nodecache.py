"""Deserialized-node cache: live tree nodes above the buffer pool.

The hot cost of an SP-GiST descent in this reproduction is not the disk
read (the buffer pool already absorbs those) but the per-node bookkeeping
of going *through* the pool on every touch: a frame lookup, LRU update,
stats accounting, and a slot indexing into the page payload. The node
cache short-circuits that path: it maps ``(page_id, slot)`` directly to
the live node object, so a repeated descent over a warm tree costs two
dict probes per node.

Coherence contract (the part that makes this safe):

- A cache entry is only ever populated from a *resident* buffer page, and
  it is invalidated the moment that page leaves the pool (eviction,
  ``clear()``, ``free_page``) via the buffer pool's eviction listeners.
  The cache is therefore always a subset of the pool's resident pages —
  it can never serve state the pool would have re-read from disk, so
  buffer *miss* counts (the paper's primary cost metric) are identical
  with the cache on or off.
- All mutations flow through :meth:`NodeStore.write`, which updates both
  the page payload and the cache entry, so the cached object and the
  on-page slot are the same live object.
- Corruption handling: a checksum failure or structural-corruption error
  on a page purges every cached node of that page before the error
  propagates, so quarantine/degradation never leaves poisoned nodes
  behind (see ``tests/resilience/test_nodecache_faults.py``).

Hit/miss/invalidation counts are exported both on :class:`NodeCacheStats`
and through the observability registry (``node_cache_*_total``), and the
two are reconciled by the obs test suite like every other layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.obs import METRICS

_OBS_HITS = METRICS.counter(
    "node_cache_hits_total", "Node reads served from the deserialized-node cache"
)
_OBS_MISSES = METRICS.counter(
    "node_cache_misses_total", "Node reads that fell through to the buffer pool"
)
_OBS_INVALIDATIONS = METRICS.counter(
    "node_cache_invalidations_total",
    "Cached nodes dropped by eviction, free, write-relocation, or corruption",
)

#: Distinct sentinel for "not cached" (None is never a stored node, but a
#: dedicated object keeps the contract independent of payload values).
MISS = object()


@dataclass
class NodeCacheStats:
    """Cumulative counters for one node cache."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def snapshot(self) -> "NodeCacheStats":
        """An independent copy of the current counters."""
        return NodeCacheStats(self.hits, self.misses, self.invalidations)

    def delta(self, earlier: "NodeCacheStats") -> "NodeCacheStats":
        """Counter movement since ``earlier`` (a prior :meth:`snapshot`)."""
        return NodeCacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            invalidations=self.invalidations - earlier.invalidations,
        )


class NodeCache:
    """Maps ``(page_id, slot)`` to live node objects, per :class:`NodeStore`.

    Entries are grouped by page so a page eviction invalidates all of its
    nodes in one O(1) dict pop. Capacity is implicitly bounded by the
    buffer pool: only nodes of resident pages are ever cached.
    """

    def __init__(self) -> None:
        self.stats = NodeCacheStats()
        self._pages: dict[int, dict[int, Any]] = {}

    # -- access --------------------------------------------------------------

    def get(self, page_id: int, slot: int) -> Any:
        """The cached node, or the :data:`MISS` sentinel. Counts a hit."""
        slots = self._pages.get(page_id)
        if slots is not None:
            node = slots.get(slot, MISS)
            if node is not MISS:
                self.stats.hits += 1
                _OBS_HITS.inc()
                return node
        self.stats.misses += 1
        _OBS_MISSES.inc()
        return MISS

    def put(self, page_id: int, slot: int, node: Any) -> None:
        """Cache ``node`` as the live object at ``(page_id, slot)``."""
        slots = self._pages.get(page_id)
        if slots is None:
            slots = self._pages[page_id] = {}
        slots[slot] = node

    # -- invalidation ----------------------------------------------------------

    def drop_slot(self, page_id: int, slot: int) -> None:
        """Invalidate one node (free / relocation of that slot)."""
        slots = self._pages.get(page_id)
        if slots is not None and slots.pop(slot, MISS) is not MISS:
            self.stats.invalidations += 1
            _OBS_INVALIDATIONS.inc()
            if not slots:
                del self._pages[page_id]

    def drop_page(self, page_id: int) -> None:
        """Invalidate every cached node of ``page_id`` (eviction, corruption)."""
        slots = self._pages.pop(page_id, None)
        if slots:
            self.stats.invalidations += len(slots)
            _OBS_INVALIDATIONS.inc(len(slots))

    def clear(self) -> None:
        """Invalidate everything (recovery, detach, cold-cache points)."""
        dropped = sum(len(slots) for slots in self._pages.values())
        self._pages.clear()
        if dropped:
            self.stats.invalidations += dropped
            _OBS_INVALIDATIONS.inc(dropped)

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(slots) for slots in self._pages.values())

    def cached_page_ids(self) -> Iterator[int]:
        """Page ids with at least one cached node."""
        return iter(self._pages.keys())

    def holds(self, page_id: int, slot: int) -> bool:
        """True when ``(page_id, slot)`` is currently cached."""
        slots = self._pages.get(page_id)
        return slots is not None and slot in slots
