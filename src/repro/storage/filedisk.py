"""File-backed disk manager: pages persisted to a real file, crash-safely.

:class:`DiskManager` keeps pages in memory (fast, perfect for the
experiments); :class:`FileDiskManager` stores them in an append-only data
file with a sidecar page table and a write-ahead log, so an index survives
process restarts *and* crashes at arbitrary points. Same interface, same
I/O accounting — structures don't know the difference.

Layout:

- ``<path>`` — checksummed page images appended in write order; overwritten
  versions leave garbage until :meth:`compact`.
- ``<path>.map`` — JSON page table ``{page_id: [offset, length]}`` plus
  allocator state, the WAL checkpoint LSN, and the compaction phase flag;
  rewritten atomically (tmp + ``os.replace``) on :meth:`sync`.
- ``<path>.wal`` — redo log (see :mod:`repro.storage.wal`). Mutations are
  logged before they touch the data file; :meth:`sync` is the commit point.
  On reopen, committed records newer than the page-table snapshot are
  replayed, so a crash between ``write_page`` and ``sync`` loses only
  uncommitted work — never committed pages.
"""

from __future__ import annotations

import json
import os
import pickle
import random
from typing import Any

from repro.errors import PageNotFoundError, StorageError
from repro.storage.disk import (
    DISK_BYTES_READ,
    DISK_BYTES_WRITTEN,
    DISK_READS,
    DISK_WRITES,
    EMPTY_PAGE_IMAGE,
    DiskManager,
)
from repro.storage.page import decode_page_image, encode_page_image
from repro.storage.wal import (
    REC_ALLOC,
    REC_COMMIT,
    REC_DEALLOC,
    REC_PAGE_IMAGE,
    WriteAheadLog,
)


class FileDiskManager(DiskManager):
    """A :class:`DiskManager` whose pages live in a file on disk.

    Use :meth:`sync` (or the context manager form) to commit; reopening the
    same path restores every committed page, replaying the write-ahead log
    if the previous process died before checkpointing.
    """

    def __init__(
        self,
        path: str,
        use_wal: bool = True,
        group_commit: bool = True,
        flush_threshold: int | None = None,
        fsync: bool = True,
    ) -> None:
        super().__init__()
        self.path = path
        self._group_commit = group_commit
        self._flush_threshold = flush_threshold
        #: With ``fsync=False`` commits stop at the OS page cache; the
        #: commit protocol, tear points, and recovery are unchanged. Used
        #: by harnesses that crash via truncation, not power loss.
        self._fsync_enabled = fsync
        self._map_path = path + ".map"
        self._compact_path = path + ".compact"
        self._offsets: dict[int, tuple[int, int]] = {}
        self._map_lsn = 0
        self._pending_compact = False
        mode = "r+b" if os.path.exists(path) else "w+b"
        self._file = open(path, mode)
        self._synced_data_size = self._file.seek(0, os.SEEK_END)
        if os.path.exists(self._map_path):
            self._load_map()
        self.wal: WriteAheadLog | None = (
            WriteAheadLog(
                path + ".wal",
                group_commit=group_commit,
                flush_threshold=flush_threshold,
                fsync=fsync,
            )
            if use_wal
            else None
        )
        self._recover()

    def _fsync_file(self, fileobj: Any) -> None:
        if self._fsync_enabled:
            os.fsync(fileobj.fileno())

    # -- persistence ------------------------------------------------------------

    def _load_map(self) -> None:
        with open(self._map_path, encoding="utf-8") as f:
            raw = json.load(f)
        self._offsets = {
            int(page_id): tuple(entry) for page_id, entry in raw["pages"].items()
        }
        self._next_page_id = raw["next_page_id"]
        self._free_list = list(raw["free_list"])
        self._map_lsn = raw.get("wal_lsn", 0)
        self._pending_compact = raw.get("pending_compact", False)
        # Reconstruct the allocation view the base class keeps.
        self._pages = {page_id: b"" for page_id in self._offsets}
        for page_id in self._free_list:
            self._pages.pop(page_id, None)
        # Allocated-but-never-written pages have no offset entry; they are
        # identified by id range minus free list minus mapped pages.
        for page_id in range(self._next_page_id):
            if page_id not in self._pages and page_id not in self._free_list:
                self._pages[page_id] = b""

    def _write_map(self, pending_compact: bool = False) -> None:
        payload = {
            "pages": {str(pid): list(entry) for pid, entry in self._offsets.items()},
            "next_page_id": self._next_page_id,
            "free_list": self._free_list,
            "wal_lsn": self._map_lsn,
            "pending_compact": pending_compact,
        }
        tmp_path = self._map_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as f:
            json.dump(payload, f)
            f.flush()
            self._fsync_file(f)
        os.replace(tmp_path, self._map_path)
        self._pending_compact = pending_compact

    def sync(self, commit_xids: tuple[int, ...] | list[int] = ()) -> None:
        """Commit: flush data, write a WAL commit marker, checkpoint the map.

        ``commit_xids`` names the transactions this commit makes durable;
        they ride inside the WAL commit marker for standby clog replay.
        """
        self._file.flush()
        self._fsync_file(self._file)
        self._synced_data_size = self._file.seek(0, os.SEEK_END)
        if self.wal is not None:
            self._map_lsn = self.wal.commit(commit_xids)
        self._write_map()
        if self.wal is not None:
            # The page table now covers every logged record; the log can
            # restart empty (LSNs keep increasing across the reset).
            self.wal.reset()

    def close(self) -> None:
        """Sync the page table and close the data file."""
        self.sync()
        self._file.close()
        if self.wal is not None:
            self.wal.close()

    def __enter__(self) -> "FileDiskManager":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- recovery ----------------------------------------------------------------

    def _recover(self) -> None:
        """Bring the store to a consistent committed state after any crash."""
        recovered = False
        if self._pending_compact:
            # A compaction was interrupted after the new page table was
            # written. The table's offsets describe the compacted file: if
            # the rename never happened, finish it; if it did, there is
            # nothing to redo.
            if os.path.exists(self._compact_path):
                os.replace(self._compact_path, self.path)
            self._reopen_data_file()
            recovered = True
        elif os.path.exists(self._compact_path):
            # Compaction died before the new page table was committed: the
            # old table + old data file are authoritative; drop the orphan.
            os.remove(self._compact_path)
        if self.wal is not None:
            records, last_commit = self.wal.scan()
            self.wal.ensure_lsn_at_least(self._map_lsn)
            replayed = 0
            for record in records:
                if record.lsn <= self._map_lsn:
                    continue  # already captured by the page-table snapshot
                self.apply_record(record)
                replayed += 1
            self.wal.note_replayed(replayed)
            recovered = recovered or replayed > 0
        if recovered:
            self.sync()

    def apply_record(self, record: Any) -> None:
        """Apply one committed WAL record to the data file / allocator.

        The redo primitive shared by crash recovery and standby replay
        (:mod:`repro.replication`): a standby applies the records of each
        shipped segment through this method and then checkpoints with
        :meth:`sync`, so its page file converges on the primary's logical
        state. Idempotent — re-applying a page image appends a new copy
        and repoints the offset table at it, so the latest application
        always wins.
        """
        page_id = record.page_id
        if record.rec_type == REC_COMMIT:
            return  # a boundary, not a mutation
        if record.rec_type == REC_ALLOC:
            self._pages[page_id] = b""
            self._next_page_id = max(self._next_page_id, page_id + 1)
            if page_id in self._free_list:
                self._free_list.remove(page_id)
        elif record.rec_type == REC_DEALLOC:
            self._pages.pop(page_id, None)
            self._offsets.pop(page_id, None)
            if page_id not in self._free_list:
                self._free_list.append(page_id)
        elif record.rec_type == REC_PAGE_IMAGE:
            # Redo by re-appending the logged image; idempotent because the
            # offset table always points at the latest append.
            self._file.seek(0, os.SEEK_END)
            offset = self._file.tell()
            self._file.write(record.image)
            self._offsets[page_id] = (offset, len(record.image))
            self._pages.setdefault(page_id, b"")

    def enable_wal(
        self,
        group_commit: bool = True,
        flush_threshold: int | None = None,
    ) -> WriteAheadLog:
        """Attach a fresh write-ahead log to a WAL-less manager.

        The promotion primitive: a hot standby replays shipped segments
        without a local WAL (each applied segment is followed by a full
        checkpoint), but the moment it is promoted to primary it must log
        its own mutations. Any stale log file at ``<path>.wal`` is
        discarded — the page table already covers everything it held.
        Callers that replayed a foreign log must then raise the LSN floor
        with ``ensure_lsn_at_least`` so fresh records sort after every
        applied one.
        """
        if self.wal is not None:
            return self.wal
        wal_path = self.path + ".wal"
        if os.path.exists(wal_path):
            os.remove(wal_path)
        self.wal = WriteAheadLog(
            wal_path,
            group_commit=group_commit,
            flush_threshold=flush_threshold,
            fsync=self._fsync_enabled,
        )
        self.wal.ensure_lsn_at_least(self._map_lsn)
        return self.wal

    def _reopen_data_file(self) -> None:
        self._file.close()
        self._file = open(self.path, "r+b")
        self._synced_data_size = self._file.seek(0, os.SEEK_END)

    # -- page I/O ------------------------------------------------------------------

    def allocate_page(self) -> int:
        page_id = super().allocate_page()
        if self.wal is not None:
            self.wal.log_alloc(page_id)
        return page_id

    def read_page(self, page_id: int) -> Any:
        if page_id not in self._pages:
            raise PageNotFoundError(page_id)
        entry = self._offsets.get(page_id)
        self.stats.reads += 1
        DISK_READS.inc()
        if entry is None:
            # Allocated but never written: the logical payload is the empty
            # sentinel. Charge the same bytes the in-memory manager charges
            # for reading a fresh page, so both managers account alike.
            self.stats.bytes_read += len(EMPTY_PAGE_IMAGE)
            DISK_BYTES_READ.inc(len(EMPTY_PAGE_IMAGE))
            return None
        offset, length = entry
        self._file.seek(offset)
        raw = self._file.read(length)
        if len(raw) != length:
            raise StorageError(
                f"short read for page {page_id}: {len(raw)}/{length} bytes"
            )
        self.stats.bytes_read += length
        DISK_BYTES_READ.inc(length)
        return pickle.loads(decode_page_image(raw, page_id))

    def write_page(self, page_id: int, payload: Any) -> None:
        if page_id not in self._pages:
            raise PageNotFoundError(page_id)
        raw = encode_page_image(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )
        if self.wal is not None:
            self.wal.log_page_image(page_id, raw)
        self._file.seek(0, os.SEEK_END)
        offset = self._file.tell()
        self._file.write(raw)
        self._offsets[page_id] = (offset, len(raw))
        self.stats.writes += 1
        self.stats.bytes_written += len(raw)
        DISK_WRITES.inc()
        DISK_BYTES_WRITTEN.inc(len(raw))

    def deallocate_page(self, page_id: int) -> None:
        super().deallocate_page(page_id)
        self._offsets.pop(page_id, None)
        if self.wal is not None:
            self.wal.log_dealloc(page_id)

    # -- raw image access (fault injection / verification tooling) ---------------

    def raw_page_image(self, page_id: int) -> bytes:
        if page_id not in self._pages:
            raise PageNotFoundError(page_id)
        entry = self._offsets.get(page_id)
        if entry is None:
            return EMPTY_PAGE_IMAGE
        offset, length = entry
        self._file.seek(offset)
        return self._file.read(length)

    def store_raw_page_image(self, page_id: int, raw: bytes) -> None:
        """Overwrite stored image bytes in place (no checksum, no WAL).

        Fault-injection hook. A shorter ``raw`` models a torn write: only
        a prefix of the image landed and the rest of the recorded region
        holds zeroes (what an interrupted append leaves at end-of-file),
        so a later read fails checksum verification.
        """
        if page_id not in self._pages:
            raise PageNotFoundError(page_id)
        entry = self._offsets.get(page_id)
        if entry is None:
            return
        offset, length = entry
        self._file.seek(offset)
        self._file.write(raw[:length])
        if len(raw) < length:
            self._file.write(b"\x00" * (length - len(raw)))

    # -- crash simulation ---------------------------------------------------------

    def simulate_crash(self, seed: int | None = None) -> None:
        """Die without committing, tearing the unsynced file tails.

        Models ``kill -9`` plus lost in-flight writes: the data file and the
        WAL are each truncated at a random point within their *unsynced*
        tail (fsync'd bytes survive a crash; buffered ones may not), the
        page table is left untouched (it is only ever replaced atomically),
        and the handles are closed without any flush. Reopening the path
        afterwards exercises recovery.
        """
        rng = random.Random(seed)
        data_size = self._file.seek(0, os.SEEK_END)
        keep_data = rng.randint(
            min(self._synced_data_size, data_size), data_size
        )
        self._file.truncate(keep_data)
        self._file.close()
        if self.wal is not None:
            self.wal.tear_tail(rng)

    # -- maintenance -----------------------------------------------------------------

    def compact(self) -> int:
        """Rewrite the data file dropping dead page versions.

        Returns the number of bytes reclaimed. The rewrite is crash-safe at
        every step:

        1. checkpoint (so the WAL is empty and the map is current);
        2. write the compacted images to ``<path>.compact`` and fsync;
        3. atomically write the *new* page table, flagged
           ``pending_compact`` — its offsets describe the compacted file;
        4. ``os.replace`` the compacted file over the data file;
        5. checkpoint again, clearing the flag.

        A crash before 3 leaves the old table + old data file (the orphan
        tmp file is deleted on reopen); a crash between 3 and 4 is finished
        by recovery (the rename is redone); a crash after 4 only needs the
        flag cleared. The old ordering — replace first, then write the
        table — left a window where the committed table pointed into the
        *new* file with *old* offsets: silent corruption.
        """
        self.sync()
        old_size = self._file.seek(0, os.SEEK_END)
        new_offsets: dict[int, tuple[int, int]] = {}
        with open(self._compact_path, "w+b") as out:
            for page_id, (offset, length) in sorted(self._offsets.items()):
                self._file.seek(offset)
                raw = self._file.read(length)
                new_offsets[page_id] = (out.tell(), length)
                out.write(raw)
            out.flush()
            self._fsync_file(out)
            new_size = out.tell()
        self._offsets = new_offsets
        self._write_map(pending_compact=True)
        os.replace(self._compact_path, self.path)
        self._reopen_data_file()
        self.sync()
        return old_size - new_size

    @property
    def file_bytes(self) -> int:
        """Current size of the data file (including dead versions)."""
        return self._file.seek(0, os.SEEK_END)

    @property
    def map_lsn(self) -> int:
        """The WAL LSN the page-table snapshot covers (0 when none).

        On a WAL-less manager (a hot standby) this is the LSN inherited
        from the basebackup's page table; replication uses it as the
        standby's initial applied-LSN position.
        """
        return self._map_lsn
