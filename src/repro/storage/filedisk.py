"""File-backed disk manager: pages persisted to a real file.

:class:`DiskManager` keeps pages in memory (fast, perfect for the
experiments); :class:`FileDiskManager` stores them in an append-only data
file with a sidecar page table, so an index survives process restarts.
Same interface, same I/O accounting — structures don't know the difference.

Layout: ``<path>`` holds page images appended in write order;
``<path>.map`` holds a JSON page table ``{page_id: [offset, length]}`` plus
the allocator state, rewritten on :meth:`sync`. Overwritten page versions
leave garbage in the data file until :meth:`compact`.
"""

from __future__ import annotations

import json
import os
import pickle
from typing import Any

from repro.errors import PageNotFoundError, StorageError
from repro.storage.disk import DiskManager


class FileDiskManager(DiskManager):
    """A :class:`DiskManager` whose pages live in a file on disk.

    Use :meth:`sync` (or the context manager form) to persist the page
    table; reopening the same path restores all pages.
    """

    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = path
        self._map_path = path + ".map"
        self._offsets: dict[int, tuple[int, int]] = {}
        mode = "r+b" if os.path.exists(path) else "w+b"
        self._file = open(path, mode)
        if os.path.exists(self._map_path):
            self._load_map()

    # -- persistence ------------------------------------------------------------

    def _load_map(self) -> None:
        with open(self._map_path, encoding="utf-8") as f:
            raw = json.load(f)
        self._offsets = {
            int(page_id): tuple(entry) for page_id, entry in raw["pages"].items()
        }
        self._next_page_id = raw["next_page_id"]
        self._free_list = list(raw["free_list"])
        # Reconstruct the allocation view the base class keeps.
        self._pages = {page_id: b"" for page_id in self._offsets}

    def sync(self) -> None:
        """Flush the data file and persist the page table."""
        self._file.flush()
        os.fsync(self._file.fileno())
        payload = {
            "pages": {str(pid): list(entry) for pid, entry in self._offsets.items()},
            "next_page_id": self._next_page_id,
            "free_list": self._free_list,
        }
        tmp_path = self._map_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as f:
            json.dump(payload, f)
        os.replace(tmp_path, self._map_path)

    def close(self) -> None:
        """Sync the page table and close the data file."""
        self.sync()
        self._file.close()

    def __enter__(self) -> "FileDiskManager":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- page I/O ------------------------------------------------------------------

    def read_page(self, page_id: int) -> Any:
        if page_id not in self._pages:
            raise PageNotFoundError(page_id)
        self.stats.reads += 1
        entry = self._offsets.get(page_id)
        if entry is None:
            return None  # allocated but never written
        offset, length = entry
        self._file.seek(offset)
        raw = self._file.read(length)
        if len(raw) != length:
            raise StorageError(
                f"short read for page {page_id}: {len(raw)}/{length} bytes"
            )
        self.stats.bytes_read += length
        return pickle.loads(raw)

    def write_page(self, page_id: int, payload: Any) -> None:
        if page_id not in self._pages:
            raise PageNotFoundError(page_id)
        raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self._file.seek(0, os.SEEK_END)
        offset = self._file.tell()
        self._file.write(raw)
        self._offsets[page_id] = (offset, len(raw))
        self.stats.writes += 1
        self.stats.bytes_written += len(raw)

    def deallocate_page(self, page_id: int) -> None:
        super().deallocate_page(page_id)
        self._offsets.pop(page_id, None)

    # -- maintenance -----------------------------------------------------------------

    def compact(self) -> int:
        """Rewrite the data file dropping dead page versions.

        Returns the number of bytes reclaimed.
        """
        old_size = self._file.seek(0, os.SEEK_END)
        tmp_path = self.path + ".compact"
        new_offsets: dict[int, tuple[int, int]] = {}
        with open(tmp_path, "w+b") as out:
            for page_id, (offset, length) in sorted(self._offsets.items()):
                self._file.seek(offset)
                raw = self._file.read(length)
                new_offsets[page_id] = (out.tell(), length)
                out.write(raw)
            out.flush()
            new_size = out.tell()
        self._file.close()
        os.replace(tmp_path, self.path)
        self._file = open(self.path, "r+b")
        self._offsets = new_offsets
        self.sync()
        return old_size - new_size

    @property
    def file_bytes(self) -> int:
        """Current size of the data file (including dead versions)."""
        return self._file.seek(0, os.SEEK_END)
