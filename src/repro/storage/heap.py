"""Heap file: the PostgreSQL heap access method analogue.

Tables store their tuples in a heap file; indexes store ``TupleId`` pointers
back into it. A sequential scan walks every page in allocation order — this
is the baseline the suffix tree is compared against in Figure 16.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.costmodel import CPU_OPS
from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.page import ITEM_OVERHEAD, PAGE_CAPACITY, approx_size


@dataclass(frozen=True, slots=True, order=True)
class TupleId:
    """Physical tuple address: (page id, slot within page)."""

    page_id: int
    slot: int


@dataclass
class _HeapPagePayload:
    """On-page representation: a slot array plus a byte budget."""

    slots: list[Any] = field(default_factory=list)
    used_bytes: int = 0

    def live_count(self) -> int:
        return sum(1 for item in self.slots if item is not None)


class HeapFile:
    """An append-oriented tuple store with slot-level deletes.

    Inserts fill the last page until its byte budget is exhausted, then
    allocate a new page. Deletes tombstone the slot (slot numbers stay stable
    so TupleIds in indexes remain valid); a later vacuum could reclaim them,
    which we model with :meth:`vacuum_page_stats` for size reporting only.
    """

    def __init__(self, buffer: BufferPool) -> None:
        self.buffer = buffer
        self._page_ids: list[int] = []
        self._page_id_set: set[int] = set()
        self._tuple_count = 0

    # -- mutation ---------------------------------------------------------------

    def insert(self, record: Any) -> TupleId:
        """Append ``record`` and return its physical address."""
        need = approx_size(record) + ITEM_OVERHEAD
        if need > PAGE_CAPACITY:
            raise StorageError(
                f"record of ~{need} bytes exceeds page capacity {PAGE_CAPACITY}"
            )
        if self._page_ids:
            last_id = self._page_ids[-1]
            payload: _HeapPagePayload = self.buffer.fetch(last_id)
            if payload.used_bytes + need <= PAGE_CAPACITY:
                payload.slots.append(record)
                payload.used_bytes += need
                self.buffer.mark_dirty(last_id)
                self._tuple_count += 1
                return TupleId(last_id, len(payload.slots) - 1)
        payload = _HeapPagePayload(slots=[record], used_bytes=need)
        page_id = self.buffer.new_page(payload)
        self._page_ids.append(page_id)
        self._page_id_set.add(page_id)
        self._tuple_count += 1
        return TupleId(page_id, 0)

    def delete(self, tid: TupleId) -> Any:
        """Tombstone the tuple at ``tid`` and return the removed record."""
        record = self.fetch(tid)
        if record is None:
            raise StorageError(f"tuple {tid} is already deleted")
        payload: _HeapPagePayload = self.buffer.fetch(tid.page_id)
        payload.slots[tid.slot] = None
        payload.used_bytes -= approx_size(record) + ITEM_OVERHEAD
        self.buffer.mark_dirty(tid.page_id)
        self._tuple_count -= 1
        return record

    def update(self, tid: TupleId, record: Any) -> None:
        """In-place update when the new record fits the page budget."""
        payload: _HeapPagePayload = self.buffer.fetch(tid.page_id)
        old = payload.slots[tid.slot]
        if old is None:
            raise StorageError(f"tuple {tid} is deleted")
        delta = approx_size(record) - approx_size(old)
        if payload.used_bytes + delta > PAGE_CAPACITY:
            raise StorageError("updated record does not fit its page")
        payload.slots[tid.slot] = record
        payload.used_bytes += delta
        self.buffer.mark_dirty(tid.page_id)

    # -- access -------------------------------------------------------------------

    def fetch(self, tid: TupleId) -> Any:
        """Return the record at ``tid`` (None when tombstoned)."""
        if tid.page_id not in self._page_id_set:
            raise StorageError(f"tuple {tid} does not belong to this heap")
        payload: _HeapPagePayload = self.buffer.fetch(tid.page_id)
        if tid.slot >= len(payload.slots):
            raise StorageError(f"tuple {tid} slot out of range")
        return payload.slots[tid.slot]

    def scan(self) -> Iterator[tuple[TupleId, Any]]:
        """Yield every live tuple in physical order (sequential scan)."""
        for page_id in self._page_ids:
            payload: _HeapPagePayload = self.buffer.fetch(page_id)
            CPU_OPS.add(payload.live_count())
            for slot, record in enumerate(payload.slots):
                if record is not None:
                    yield TupleId(page_id, slot), record

    # -- statistics -------------------------------------------------------------

    def __len__(self) -> int:
        return self._tuple_count

    @property
    def num_pages(self) -> int:
        return len(self._page_ids)

    def vacuum_page_stats(self) -> tuple[int, int]:
        """Return ``(pages, pages_needed_after_compaction)`` for reporting."""
        live_bytes = 0
        for page_id in self._page_ids:
            payload: _HeapPagePayload = self.buffer.fetch(page_id)
            live_bytes += payload.used_bytes
        needed = (live_bytes + PAGE_CAPACITY - 1) // PAGE_CAPACITY if live_bytes else 0
        return len(self._page_ids), needed
