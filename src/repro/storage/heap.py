"""Heap file: the PostgreSQL heap access method analogue.

Tables store their tuples in a heap file; indexes store ``TupleId`` pointers
back into it. A sequential scan walks every page in allocation order — this
is the baseline the suffix tree is compared against in Figure 16.

Every slot holds a :class:`HeapTuple` — the record plus its MVCC header
(``xmin``/``xmax`` version stamps, the PostgreSQL tuple-header analogue;
``ITEM_OVERHEAD`` models its on-page cost). The heap itself is
transaction-agnostic: it stores and stamps versions, while visibility
decisions live in :mod:`repro.engine.txn` and are applied by the table and
executor layers. Three delete flavours coexist:

- :meth:`delete` — the legacy physical tombstone (non-transactional
  callers; the slot is dead immediately);
- :meth:`mark_deleted` — the MVCC delete: stamps ``xmax`` and leaves the
  version in place for older snapshots;
- :meth:`reclaim` — VACUUM's primitive: tombstones a version proven dead
  and records the slot for reuse by later inserts.

Slot numbers stay stable while a tuple is live, so TupleIds in indexes
remain valid; a reclaimed slot may be reused only after every index entry
pointing at it has been removed (the table-level VACUUM guarantees this,
exactly as PostgreSQL reuses line pointers only after ``ambulkdelete``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.costmodel import CPU_OPS
from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.page import ITEM_OVERHEAD, PAGE_CAPACITY, approx_size

#: MVCC sentinels, duplicated from :mod:`repro.engine.txn` to keep the
#: storage layer import-independent of the engine (same values, one wire
#: meaning: 0 = "no transaction", 1 = "frozen, visible to everyone").
XID_INVALID = 0
XID_FROZEN = 1


@dataclass(frozen=True, slots=True, order=True)
class TupleId:
    """Physical tuple address: (page id, slot within page)."""

    page_id: int
    slot: int


@dataclass(slots=True)
class HeapTuple:
    """One stored version: the record plus its MVCC header."""

    record: Any
    xmin: int = XID_FROZEN
    xmax: int = XID_INVALID


@dataclass
class _HeapPagePayload:
    """On-page representation: a slot array plus a byte budget."""

    slots: list[HeapTuple | None] = field(default_factory=list)
    used_bytes: int = 0

    def live_count(self) -> int:
        return sum(1 for item in self.slots if item is not None)


class HeapFile:
    """An append-oriented, versioned tuple store with slot-level deletes.

    Inserts fill reclaimed slots first, then the last page until its byte
    budget is exhausted, then allocate a new page. VACUUM (driven from the
    table layer) reclaims dead versions, frees their slots for reuse, and
    truncates trailing all-empty pages so ``num_pages`` can shrink again.
    """

    def __init__(self, buffer: BufferPool) -> None:
        self.buffer = buffer
        self._page_ids: list[int] = []
        self._page_id_set: set[int] = set()
        self._tuple_count = 0
        #: Slots reclaimed by vacuum, reusable by insert (LIFO). The set
        #: mirrors the list for O(1) duplicate suppression.
        self._free_slots: list[TupleId] = []
        self._free_slot_set: set[TupleId] = set()
        #: Grow-only per-page interning of TupleId objects. Addresses are
        #: immutable and repeat on every scan, so pages share one list —
        #: scans index it instead of constructing a TupleId per slot.
        self._tid_lists: dict[int, list[TupleId]] = {}

    # -- mutation ---------------------------------------------------------------

    def insert(self, record: Any, xmin: int = XID_FROZEN) -> TupleId:
        """Store a new version of ``record`` and return its address.

        ``xmin`` stamps the inserting transaction; the default frozen xid
        keeps non-transactional callers' tuples visible to every snapshot.
        """
        need = approx_size(record) + ITEM_OVERHEAD
        if need > PAGE_CAPACITY:
            raise StorageError(
                f"record of ~{need} bytes exceeds page capacity {PAGE_CAPACITY}"
            )
        tup = HeapTuple(record=record, xmin=xmin)
        # Reclaimed slots first (vacuum made them index-entry-free).
        for _ in range(len(self._free_slots)):
            tid = self._free_slots.pop()
            self._free_slot_set.discard(tid)
            if tid.page_id not in self._page_id_set:
                continue  # its page was truncated away
            payload: _HeapPagePayload = self.buffer.fetch(tid.page_id)
            if payload.used_bytes + need <= PAGE_CAPACITY:
                payload.slots[tid.slot] = tup
                payload.used_bytes += need
                self.buffer.mark_dirty(tid.page_id)
                self._tuple_count += 1
                return tid
            self._free_slots.insert(0, tid)  # didn't fit; retry later
            self._free_slot_set.add(tid)
            break
        if self._page_ids:
            last_id = self._page_ids[-1]
            payload = self.buffer.fetch(last_id)
            if payload.used_bytes + need <= PAGE_CAPACITY:
                payload.slots.append(tup)
                payload.used_bytes += need
                self.buffer.mark_dirty(last_id)
                self._tuple_count += 1
                return TupleId(last_id, len(payload.slots) - 1)
        payload = _HeapPagePayload(slots=[tup], used_bytes=need)
        page_id = self.buffer.new_page(payload)
        self._page_ids.append(page_id)
        self._page_id_set.add(page_id)
        self._tuple_count += 1
        return TupleId(page_id, 0)

    def delete(self, tid: TupleId) -> Any:
        """Physically tombstone the tuple at ``tid``; return its record.

        The non-transactional path: the version is gone immediately. The
        caller is responsible for index maintenance (as
        :meth:`repro.engine.table.Table.delete_tid` is).
        """
        tup = self.tuple_at(tid)
        if tup is None:
            raise StorageError(f"tuple {tid} is already deleted")
        payload: _HeapPagePayload = self.buffer.fetch(tid.page_id)
        payload.slots[tid.slot] = None
        payload.used_bytes -= approx_size(tup.record) + ITEM_OVERHEAD
        self.buffer.mark_dirty(tid.page_id)
        self._tuple_count -= 1
        return tup.record

    def mark_deleted(self, tid: TupleId, xid: int) -> Any:
        """MVCC delete: stamp ``xmax = xid``; the version stays in place.

        Older snapshots (and the deleter's own rollback) can still see it;
        VACUUM reclaims it once it is dead to every snapshot. Returns the
        record. Conflict policy (who may overwrite a prior xmax) is decided
        by the caller — the heap only refuses tombstoned slots.
        """
        tup = self.tuple_at(tid)
        if tup is None:
            raise StorageError(f"tuple {tid} is already deleted")
        tup.xmax = xid
        self.buffer.mark_dirty(tid.page_id)
        return tup.record

    def reclaim(self, tid: TupleId) -> None:
        """VACUUM primitive: free a dead version's slot for reuse.

        Must only be called after every index entry pointing at ``tid``
        has been removed — the slot may be handed to a brand-new tuple by
        the next insert.
        """
        tup = self.tuple_at(tid)
        payload: _HeapPagePayload = self.buffer.fetch(tid.page_id)
        if tup is not None:
            payload.slots[tid.slot] = None
            payload.used_bytes -= approx_size(tup.record) + ITEM_OVERHEAD
            self._tuple_count -= 1
            self.buffer.mark_dirty(tid.page_id)
        if tid not in self._free_slot_set:
            self._free_slots.append(tid)
            self._free_slot_set.add(tid)

    def truncate_trailing_empty_pages(self) -> int:
        """Drop all-empty pages from the tail (PostgreSQL's lazy truncate).

        Only trailing pages can go — earlier TupleIds must stay valid.
        Returns the number of pages released.
        """
        released = 0
        while self._page_ids:
            page_id = self._page_ids[-1]
            payload: _HeapPagePayload = self.buffer.fetch(page_id)
            if payload.live_count():
                break
            self._page_ids.pop()
            self._page_id_set.discard(page_id)
            self._tid_lists.pop(page_id, None)
            self.buffer.free_page(page_id)
            released += 1
        if released:
            self._free_slots = [
                tid for tid in self._free_slots if tid.page_id in self._page_id_set
            ]
            self._free_slot_set = set(self._free_slots)
        return released

    def update(self, tid: TupleId, record: Any) -> None:
        """In-place update when the new record fits the page budget.

        Non-transactional (the MVCC path inserts a new version instead);
        the version stamps are preserved.
        """
        payload: _HeapPagePayload = self.buffer.fetch(tid.page_id)
        old = payload.slots[tid.slot]
        if old is None:
            raise StorageError(f"tuple {tid} is deleted")
        delta = approx_size(record) - approx_size(old.record)
        if payload.used_bytes + delta > PAGE_CAPACITY:
            raise StorageError("updated record does not fit its page")
        old.record = record
        payload.used_bytes += delta
        self.buffer.mark_dirty(tid.page_id)

    # -- access -------------------------------------------------------------------

    def tuple_at(self, tid: TupleId) -> HeapTuple | None:
        """The stored version at ``tid`` with its MVCC header (None when
        tombstoned). Raises for addresses outside this heap."""
        if tid.page_id not in self._page_id_set:
            raise StorageError(f"tuple {tid} does not belong to this heap")
        payload: _HeapPagePayload = self.buffer.fetch(tid.page_id)
        if tid.slot >= len(payload.slots):
            raise StorageError(f"tuple {tid} slot out of range")
        return payload.slots[tid.slot]

    def fetch(self, tid: TupleId) -> Any:
        """Return the record at ``tid`` (None when tombstoned).

        Version-blind: any stored version's record is returned, whatever
        its stamps say. Snapshot-aware callers go through
        :meth:`repro.engine.table.Table.fetch`.
        """
        tup = self.tuple_at(tid)
        return None if tup is None else tup.record

    def scan(self) -> Iterator[tuple[TupleId, Any]]:
        """Yield every stored version's record in physical order.

        Version-blind (all occupied slots, whatever their stamps): this is
        what index builds and VACUUM want. Snapshot-consistent reads go
        through :meth:`repro.engine.table.Table.scan`, which filters these
        versions by visibility.
        """
        for tid, tup in self.scan_versions():
            yield tid, tup.record

    def scan_versions(self) -> Iterator[tuple[TupleId, HeapTuple]]:
        """Yield every occupied slot with its MVCC header, physical order."""
        for page in self.scan_version_pages():
            yield from page

    def scan_version_pages(self) -> Iterator[list[tuple[TupleId, HeapTuple]]]:
        """Yield occupied slots one *page* at a time, physical order.

        The batch-executor primitive: each yielded list is every live
        version of one heap page, built with a single buffer fetch and one
        list pass — callers apply visibility and predicates over the whole
        array instead of resuming a generator per tuple.
        """
        for page_id in self._page_ids:
            payload: _HeapPagePayload = self.buffer.fetch(page_id)
            page = [
                (tid, tup)
                for tid, tup in zip(
                    self._interned_tids(page_id, len(payload.slots)),
                    payload.slots,
                )
                if tup is not None
            ]
            CPU_OPS.add(len(page))
            yield page

    def _interned_tids(self, page_id: int, count: int) -> list[TupleId]:
        """The shared, grow-only ``[TupleId(page_id, 0..count)]`` list."""
        tids = self._tid_lists.get(page_id)
        if tids is None:
            tids = self._tid_lists[page_id] = []
        while len(tids) < count:
            tids.append(TupleId(page_id, len(tids)))
        return tids

    # -- statistics -------------------------------------------------------------

    def __len__(self) -> int:
        return self._tuple_count

    @property
    def num_pages(self) -> int:
        return len(self._page_ids)

    @property
    def free_slot_count(self) -> int:
        """Reclaimed slots currently available for reuse."""
        return len(self._free_slots)

    def vacuum_page_stats(self) -> tuple[int, int]:
        """Return ``(pages, pages_needed_after_compaction)`` for reporting.

        Recomputed from the slots themselves rather than the incremental
        ``used_bytes`` counters, so the report is drift-proof: any
        accounting skew left by delete/reinsert cycles is also repaired
        in place (the audit-and-heal the VACUUM reconciliation relies on).
        """
        live_bytes = 0
        for page_id in self._page_ids:
            payload: _HeapPagePayload = self.buffer.fetch(page_id)
            actual = sum(
                approx_size(tup.record) + ITEM_OVERHEAD
                for tup in payload.slots
                if tup is not None
            )
            if actual != payload.used_bytes:
                payload.used_bytes = actual  # heal the counter drift
                self.buffer.mark_dirty(page_id)
            live_bytes += actual
        needed = (live_bytes + PAGE_CAPACITY - 1) // PAGE_CAPACITY if live_bytes else 0
        return len(self._page_ids), needed
