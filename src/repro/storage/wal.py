"""Write-ahead log for the file-backed disk manager.

Crash-safety protocol (textbook redo logging, the shape PostgreSQL uses):

- Every mutation of the page store appends one WAL record *before* the data
  file is touched: full page images for writes, allocation/deallocation
  markers for the allocator.
- ``commit()`` appends a commit marker and fsyncs — everything up to that
  marker is durable. Records after the last commit marker are uncommitted
  and are discarded by recovery.
- **Group commit**: with ``group_commit=True`` (the default) appended
  records accumulate in an in-memory buffer and reach the file in one
  write per commit boundary (or when the buffer passes
  ``flush_threshold`` bytes), instead of one seek+write syscall pair per
  record. This changes nothing about durability — uncommitted records
  were never durable (a crash could always lose them, fsync only happens
  at ``commit()``) — it only batches the file appends inside the existing
  loss window. Recovery and kill-anywhere semantics are byte-identical.
- Each record carries a monotonically increasing LSN plus a CRC32 over its
  body. Recovery replays committed records whose LSN is newer than the
  page-table snapshot and stops at the first torn/invalid record, so a
  crash (or injected truncation) at *any* byte boundary leaves a
  recoverable log.
- **Shipping**: commit listeners registered with :meth:`add_commit_listener`
  receive the raw record bytes each commit made durable, which is exactly
  the unit PostgreSQL ships to physical standbys. The replication layer
  (:mod:`repro.replication`) frames those bytes into
  :class:`~repro.replication.segments.WALSegment` objects.

Record wire format::

    header := <type:u8> <body_len:u32> <lsn:u64> <crc32(body):u32>   (17 bytes)
    PAGE_IMAGE body := <page_id:i64> <encoded page image bytes>
    ALLOC/DEALLOC body := <page_id:i64>
    COMMIT body := (empty) | <count:u32> <xid:u64>*

A commit marker may carry the transaction ids it made durable (PostgreSQL's
commit records name their xid the same way); an empty body means "no
transactional writes" and keeps old logs replayable unchanged. Standbys
apply the xids to their commit log so a promoted node exposes exactly the
committed snapshots.

Decoding is shared: :class:`ReplayCursor` walks any byte string of records
(the log file during recovery, a shipped segment payload on a standby) and
treats a trailing torn/partial record as a clean, *counted* end of stream
— truncate-and-warn, never an exception.
"""

from __future__ import annotations

import os
import random
import struct
import zlib
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.obs import METRICS
from repro.settings import SETTINGS

_WAL_RECORDS = METRICS.counter(
    "wal_records_total", "Records appended to any write-ahead log"
)
_WAL_BYTES = METRICS.counter(
    "wal_bytes_total", "Bytes appended to any write-ahead log"
)
_WAL_COMMITS = METRICS.counter(
    "wal_commits_total", "WAL commit markers forced to stable storage"
)
_WAL_REPLAYED = METRICS.counter(
    "wal_records_replayed_total", "Committed WAL records replayed by recovery"
)
_WAL_GROUP_FLUSHES = METRICS.counter(
    "wal_group_flushes_total",
    "Buffered record batches written to the log file (group commit)",
)
_WAL_TORN_TAILS = METRICS.counter(
    "wal_torn_tails_total",
    "Torn/partial trailing records truncated (and warned about) by replay",
)

_HEADER = struct.Struct("<BIQI")
_PAGE_ID = struct.Struct("<q")
_XID_COUNT = struct.Struct("<I")
_XID = struct.Struct("<Q")

#: Record types.
REC_PAGE_IMAGE = 1
REC_ALLOC = 2
REC_DEALLOC = 3
REC_COMMIT = 4

_KNOWN_TYPES = frozenset(
    (REC_PAGE_IMAGE, REC_ALLOC, REC_DEALLOC, REC_COMMIT)
)


@dataclass(frozen=True)
class WALRecord:
    """One decoded log record."""

    lsn: int
    rec_type: int
    page_id: int | None
    image: bytes | None
    #: For COMMIT records: the transaction ids this commit made durable.
    xids: tuple[int, ...] = ()


@dataclass
class WALStats:
    """Cumulative write-ahead-log activity counters."""

    records_appended: int = 0
    bytes_appended: int = 0
    commits: int = 0
    records_replayed: int = 0
    torn_tail_discarded: int = 0
    group_flushes: int = 0  # buffered batches written to the file


class ReplayCursor:
    """Decode a byte string of WAL records, tolerating a torn tail.

    The single decoder behind crash recovery (:meth:`WriteAheadLog.scan`)
    and standby replay (:meth:`repro.replication.segments.WALSegment.records`).
    Iteration yields every well-formed record — commit markers included —
    in log order, then stops at the first truncated or corrupt record.
    That stop is a *finding*, not an error: ``torn`` flips to True, the
    partial record is truncated away, one warning incident is recorded
    (kind ``wal-torn-tail``) and the ``wal_torn_tails_total`` metric is
    incremented. This is what lets a segment that ends mid-record — a
    crash during an append, an injected truncation — replay its complete
    prefix instead of poisoning recovery.
    """

    def __init__(self, raw: bytes, start_lsn: int = 0, origin: str = "wal") -> None:
        self.raw = raw
        self.offset = 0
        self.last_lsn = start_lsn
        self.origin = origin  # names the log in the torn-tail warning
        self.torn = False
        self._exhausted = False

    def _mark_torn(self) -> None:
        self.torn = True
        _WAL_TORN_TAILS.inc()
        from repro.resilience.incidents import INCIDENTS

        INCIDENTS.record(
            "wal-torn-tail",
            self.origin,
            WALTornTailWarning(
                f"truncated partial record at byte {self.offset} "
                f"of {len(self.raw)} (last good lsn {self.last_lsn})"
            ),
        )

    def __iter__(self) -> Iterator[WALRecord]:
        raw = self.raw
        while self.offset + _HEADER.size <= len(raw):
            rec_type, body_len, lsn, crc = _HEADER.unpack_from(raw, self.offset)
            body_start = self.offset + _HEADER.size
            body_end = body_start + body_len
            if (
                rec_type not in _KNOWN_TYPES
                or lsn <= self.last_lsn
                or body_end > len(raw)
            ):
                self._mark_torn()
                return
            body = raw[body_start:body_end]
            if zlib.crc32(body) != crc:
                self._mark_torn()
                return
            if rec_type != REC_COMMIT and body_len < _PAGE_ID.size:
                # A record that should carry a page id but is too short to
                # hold one: treat as a torn tail (truncate-and-warn), not a
                # hard error — everything before it already replayed.
                self._mark_torn()
                return
            self.last_lsn = lsn
            self.offset = body_end
            if rec_type == REC_COMMIT:
                xids = _decode_commit_body(body)
                if xids is None:  # malformed xid payload: a torn tail
                    self._mark_torn()
                    return
                yield WALRecord(lsn, rec_type, None, None, xids=xids)
            elif rec_type == REC_PAGE_IMAGE:
                (page_id,) = _PAGE_ID.unpack_from(body)
                yield WALRecord(lsn, rec_type, page_id, body[_PAGE_ID.size:])
            else:
                (page_id,) = _PAGE_ID.unpack_from(body)
                yield WALRecord(lsn, rec_type, page_id, None)
        self._exhausted = True
        if self.offset < len(raw):
            # Trailing bytes too short to even hold a header.
            self._mark_torn()

    @property
    def consumed_bytes(self) -> int:
        """Bytes of ``raw`` covered by well-formed records so far."""
        return self.offset


def _decode_commit_body(body: bytes) -> tuple[int, ...] | None:
    """The xids of a COMMIT body; () when empty, None when malformed."""
    if not body:
        return ()
    if len(body) < _XID_COUNT.size:
        return None
    (count,) = _XID_COUNT.unpack_from(body)
    if len(body) != _XID_COUNT.size + count * _XID.size:
        return None
    return tuple(
        _XID.unpack_from(body, _XID_COUNT.size + i * _XID.size)[0]
        for i in range(count)
    )


class WALTornTailWarning(Warning):
    """Carried inside the ``wal-torn-tail`` incident: a truncated record."""


class WriteAheadLog:
    """An append-only redo log backing one :class:`FileDiskManager`.

    The log is a sidecar file (``<data path>.wal``). It is truncated at
    every checkpoint (the page-table write in ``sync()``), so it only ever
    holds the records since the last durable snapshot.
    """

    def __init__(
        self,
        path: str,
        group_commit: bool = True,
        flush_threshold: int | None = None,
        fsync: bool = True,
    ) -> None:
        self.path = path
        self.stats = WALStats()
        self.group_commit = group_commit
        # Group-commit flush threshold: buffered records are written to
        # the file once they pass this many bytes, bounding memory while
        # keeping the common commit interval to a single batched write.
        # The default lives in repro.settings (wal_flush_threshold).
        self.flush_threshold = (
            SETTINGS.wal_flush_threshold
            if flush_threshold is None
            else flush_threshold
        )
        #: With ``fsync=False`` commits stop at the OS page cache (test
        #: harnesses that simulate crashes by truncation, where a real
        #: fsync would only add milliseconds); durability bookkeeping —
        #: ``synced_size``, tear points, shipping — is unchanged.
        self.fsync = fsync
        mode = "r+b" if os.path.exists(path) else "w+b"
        self._file = open(path, mode)
        self._next_lsn = 1
        self.last_commit_lsn = 0
        self._buffer = bytearray()  # records awaiting a group flush
        self._synced_size = self._file.seek(0, os.SEEK_END)
        # Shipping state: byte offset / LSN up to which commit listeners
        # have already been handed the log, so each commit captures exactly
        # the records it made durable.
        self._commit_listeners: list[Callable[[bytes, int, int], None]] = []
        self._capture_offset = self._synced_size
        self._capture_lsn = 0

    def _fsync(self) -> None:
        if self.fsync:
            os.fsync(self._file.fileno())

    # -- appending ----------------------------------------------------------

    def _append(self, rec_type: int, body: bytes) -> int:
        lsn = self._next_lsn
        self._next_lsn += 1
        record = _HEADER.pack(rec_type, len(body), lsn, zlib.crc32(body)) + body
        if self.group_commit:
            self._buffer += record
            if len(self._buffer) >= self.flush_threshold:
                self.flush()
        else:
            self._file.seek(0, os.SEEK_END)
            self._file.write(record)
        self.stats.records_appended += 1
        self.stats.bytes_appended += len(record)
        _WAL_RECORDS.inc()
        _WAL_BYTES.inc(len(record))
        return lsn

    def flush(self) -> None:
        """Write buffered records to the log file (no fsync).

        A no-op without buffered records. Called automatically at commit
        boundaries and when the buffer passes ``flush_threshold`` bytes.
        """
        if not self._buffer:
            return
        self._file.seek(0, os.SEEK_END)
        self._file.write(self._buffer)
        self._file.flush()  # to the OS, not to stable storage (no fsync)
        self._buffer.clear()
        self.stats.group_flushes += 1
        _WAL_GROUP_FLUSHES.inc()

    @property
    def buffered_bytes(self) -> int:
        """Record bytes appended but not yet written to the file."""
        return len(self._buffer)

    def log_page_image(self, page_id: int, image: bytes) -> int:
        """Append a full-page-image record (before the data-file write)."""
        return self._append(REC_PAGE_IMAGE, _PAGE_ID.pack(page_id) + image)

    def log_alloc(self, page_id: int) -> int:
        """Append a page-allocation record."""
        return self._append(REC_ALLOC, _PAGE_ID.pack(page_id))

    def log_dealloc(self, page_id: int) -> int:
        """Append a page-deallocation record."""
        return self._append(REC_DEALLOC, _PAGE_ID.pack(page_id))

    def commit(self, xids: tuple[int, ...] | list[int] = ()) -> int:
        """Append a commit marker and force the log to stable storage.

        ``xids`` names the transactions this commit makes durable; they
        ride inside the marker so standbys can update their commit log in
        the same replay step that applies the pages. Returns the marker's
        LSN: every record at or below it is durable. Commit listeners then
        receive the raw bytes this commit made durable — the shippable
        unit for physical replication.
        """
        body = b""
        if xids:
            body = _XID_COUNT.pack(len(xids)) + b"".join(
                _XID.pack(xid) for xid in xids
            )
        lsn = self._append(REC_COMMIT, body)
        self.flush()
        self._file.flush()
        self._fsync()
        self._synced_size = self._file.seek(0, os.SEEK_END)
        self.stats.commits += 1
        self.last_commit_lsn = lsn
        _WAL_COMMITS.inc()
        if self._commit_listeners:
            self._file.seek(self._capture_offset)
            payload = self._file.read()
            start_lsn = self._capture_lsn + 1
            self._capture_offset = self._file.seek(0, os.SEEK_END)
            self._capture_lsn = lsn
            for listener in list(self._commit_listeners):
                listener(payload, start_lsn, lsn)
        return lsn

    # -- shipping (physical replication) -------------------------------------

    def add_commit_listener(
        self, listener: Callable[[bytes, int, int], None]
    ) -> Callable[[bytes, int, int], None]:
        """Call ``listener(raw_records, start_lsn, commit_lsn)`` per commit.

        Capture starts at the durable end of the log as of registration:
        history already checkpointed into the page table is transferred by
        base backup, not by the stream (exactly PostgreSQL's split between
        ``pg_basebackup`` and WAL shipping). Returns the listener handle.
        """
        self.flush()  # buffered records must be in the file, behind the mark
        self._capture_offset = self._file.seek(0, os.SEEK_END)
        self._capture_lsn = self._next_lsn - 1
        self._commit_listeners.append(listener)
        return listener

    def remove_commit_listener(
        self, listener: Callable[[bytes, int, int], None]
    ) -> None:
        """Detach a listener registered with :meth:`add_commit_listener`."""
        try:
            self._commit_listeners.remove(listener)
        except ValueError:
            pass

    # -- LSN API --------------------------------------------------------------

    @property
    def next_lsn(self) -> int:
        """The LSN the next appended record will carry."""
        return self._next_lsn

    @property
    def last_lsn(self) -> int:
        """The LSN of the most recently appended record (0 when none)."""
        return self._next_lsn - 1

    # -- recovery ------------------------------------------------------------

    def scan(self) -> tuple[list[WALRecord], int]:
        """Decode the log from the start; tolerate a torn tail.

        Returns ``(committed_records, last_commit_lsn)`` where
        ``committed_records`` contains only non-commit records covered by a
        commit marker. Decoding stops (without error) at the first
        truncated or corrupt record — that is the crash point; everything
        after it never committed. A corrupt record *before* a commit marker
        simply means the marker is unreachable, so the tail is discarded
        exactly as redo logging requires.
        """
        self.flush()  # scan sees every appended record, buffered or not
        self._file.seek(0)
        raw = self._file.read()
        cursor = ReplayCursor(raw, origin=self.path)
        records: list[WALRecord] = []
        pending: list[WALRecord] = []
        last_commit_lsn = 0
        for record in cursor:
            if record.rec_type == REC_COMMIT:
                records.extend(pending)
                pending.clear()
                last_commit_lsn = record.lsn
            else:
                pending.append(record)
        if pending or cursor.torn:
            self.stats.torn_tail_discarded += 1
        self._next_lsn = max(self._next_lsn, cursor.last_lsn + 1)
        self.last_commit_lsn = max(self.last_commit_lsn, last_commit_lsn)
        return records, last_commit_lsn

    def note_replayed(self, n: int) -> None:
        """Account ``n`` committed records replayed by crash recovery."""
        self.stats.records_replayed += n
        _WAL_REPLAYED.inc(n)

    def ensure_lsn_at_least(self, lsn: int) -> None:
        """Never issue LSNs at or below ``lsn`` (the page table's snapshot).

        Called after recovery so records appended into a truncated log sort
        strictly after everything an existing page-table snapshot covers.
        """
        self._next_lsn = max(self._next_lsn, lsn + 1)

    # -- checkpointing -------------------------------------------------------

    def reset(self) -> None:
        """Discard all records (checkpoint reached: the page table has them).

        LSNs keep increasing across resets so a stale page-table snapshot
        can never mistake old records for new ones.
        """
        self._buffer.clear()  # buffered records are covered by the snapshot
        self._file.seek(0)
        self._file.truncate()
        self._file.flush()
        self._fsync()
        self._synced_size = 0
        self._capture_offset = 0  # capture LSN keeps increasing, offsets reset

    # -- lifecycle ----------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """Logical byte length of the log (on-disk plus buffered records)."""
        return self._file.seek(0, os.SEEK_END) + len(self._buffer)

    @property
    def synced_size(self) -> int:
        """Byte length covered by the last fsync (commit)."""
        return self._synced_size

    def tear_tail(self, rng: random.Random) -> None:
        """Crash simulation: truncate the unsynced tail at a random byte.

        Fsync'd bytes always survive; anything after the last commit may be
        partially lost — including mid-record, which recovery must treat as
        a clean end of log. Buffered (never-written) records vanish
        entirely, exactly as a real crash would lose them.
        """
        self._buffer.clear()
        size = self._file.seek(0, os.SEEK_END)
        keep = rng.randint(min(self._synced_size, size), size)
        self._file.truncate(keep)
        self._file.close()

    def close(self) -> None:
        """Close the log file handle (no implicit commit).

        Buffered records are written (not fsync'd) first, matching the
        write-through mode's behaviour where every append had already
        reached the (unsynced) file by close time.
        """
        self.flush()
        self._file.close()
