"""Page abstraction and byte-size accounting.

Pages are the unit of I/O. A page carries an arbitrary picklable *payload*
(a heap page, a bucket of SP-GiST nodes, a B+-tree node, ...) plus
bookkeeping. Structures that pack items into pages use :func:`approx_size`
to budget the 8 KB capacity, mirroring how the C implementation lays tuples
out in PostgreSQL pages.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Any

from repro.errors import PageChecksumError
from repro.obs import METRICS

#: Default page size in bytes, matching PostgreSQL's BLCKSZ.
PAGE_SIZE = 8192

#: Bytes reserved per page for the page header / line pointers.
PAGE_HEADER_BYTES = 64

#: Usable bytes per page after the header.
PAGE_CAPACITY = PAGE_SIZE - PAGE_HEADER_BYTES

#: Per-item overhead (line pointer + tuple header analogue).
ITEM_OVERHEAD = 16

#: Magic word opening every on-disk page image ("SP").
PAGE_MAGIC = 0x5350

#: Page image header: magic, format version, body length, CRC32 of the body.
#: The analogue of PostgreSQL's ``pd_checksum`` (data_checksums): stamped at
#: the serialization boundary on write, verified on every physical read.
PAGE_IMAGE_HEADER = struct.Struct("<HHII")

PAGE_IMAGE_VERSION = 1

_CHECKSUM_VERIFICATIONS = METRICS.counter(
    "checksum_verifications_total",
    "Page images verified against their CRC32 header on read",
)
_CHECKSUM_FAILURES = METRICS.counter(
    "checksum_failures_total",
    "Page images rejected by checksum/header verification",
)


def encode_page_image(body: bytes) -> bytes:
    """Frame a serialized page body with the checksummed image header."""
    return (
        PAGE_IMAGE_HEADER.pack(
            PAGE_MAGIC, PAGE_IMAGE_VERSION, len(body), zlib.crc32(body)
        )
        + body
    )


def decode_page_image(raw: bytes, page_id: int) -> bytes:
    """Verify a page image and return its body.

    Raises :class:`PageChecksumError` on any malformation — truncated
    header, bad magic, short body, or CRC mismatch — so corruption is
    detected before deserialization can produce a wrong payload.
    """
    _CHECKSUM_VERIFICATIONS.inc()
    if len(raw) < PAGE_IMAGE_HEADER.size:
        _CHECKSUM_FAILURES.inc()
        raise PageChecksumError(
            page_id, f"image truncated to {len(raw)} bytes"
        )
    magic, version, length, crc = PAGE_IMAGE_HEADER.unpack_from(raw)
    if magic != PAGE_MAGIC or version != PAGE_IMAGE_VERSION:
        _CHECKSUM_FAILURES.inc()
        raise PageChecksumError(
            page_id, f"bad page header (magic={magic:#x}, version={version})"
        )
    body = raw[PAGE_IMAGE_HEADER.size:]
    if len(body) != length:
        _CHECKSUM_FAILURES.inc()
        raise PageChecksumError(
            page_id, f"body length {len(body)} != recorded {length}"
        )
    actual = zlib.crc32(body)
    if actual != crc:
        _CHECKSUM_FAILURES.inc()
        raise PageChecksumError(
            page_id, f"CRC mismatch (stored {crc:#010x}, actual {actual:#010x})"
        )
    return body


@dataclass
class Page:
    """An in-memory image of one disk page.

    The buffer pool hands these out; callers mutate ``payload`` and must call
    :meth:`BufferPool.mark_dirty` (or use :meth:`BufferPool.update`) so the
    change survives eviction.
    """

    page_id: int
    payload: Any
    dirty: bool = False
    pin_count: int = 0


def approx_size(obj: Any) -> int:
    """Estimate the serialized size of ``obj`` in bytes.

    This drives page-capacity budgeting. The estimate intentionally mirrors
    on-disk tuple layouts rather than Python object overheads: strings cost
    one byte per character plus a length word, numbers cost eight bytes,
    containers cost the sum of their elements plus a small per-element
    overhead. Domain objects may define ``approx_bytes()`` to override.
    """
    approx_bytes = getattr(obj, "approx_bytes", None)
    if approx_bytes is not None:
        return int(approx_bytes())
    if obj is None:
        return 1
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float)):
        return 8
    if isinstance(obj, str):
        return 4 + len(obj)
    if isinstance(obj, bytes):
        return 4 + len(obj)
    if isinstance(obj, (tuple, list)):
        return 4 + sum(approx_size(item) + 2 for item in obj)
    if isinstance(obj, dict):
        return 4 + sum(
            approx_size(k) + approx_size(v) + 4 for k, v in obj.items()
        )
    if isinstance(obj, (set, frozenset)):
        return 4 + sum(approx_size(item) + 2 for item in obj)
    # Fallback for unknown objects: a conservative flat charge.
    return 64


#: Bound on the memoized size cache: generous for any realistic key/predicate
#: vocabulary, small next to the page data it describes.
_SIZE_CACHE_ENTRIES = 1 << 16


@lru_cache(maxsize=_SIZE_CACHE_ENTRIES)
def _estimate_hashable(kind: type, obj: Any) -> int:
    # ``kind`` participates in the cache key so values that compare equal
    # across types (True == 1, 1 == 1.0) cannot alias each other's size.
    return approx_size(obj)


def estimate_size(obj: Any) -> int:
    """:func:`approx_size` with memoization for immutable payloads.

    Size estimation runs on the insert hot path (every node write re-budgets
    its page), and the estimate for a given key, predicate, or ``(key,
    value)`` item never changes — keys and predicates are immutable values
    (strings, numbers, frozen geometry). Hashability is the immutability
    gate: mutable containers and mutable domain objects raise ``TypeError``
    on ``hash()`` and fall through to the uncached walk, so the cache can
    never serve a stale size. Cached and uncached estimates are identical
    by construction (the cached branch calls :func:`approx_size` itself);
    ``tests/storage/test_size_cache.py`` pins that agreement.
    """
    try:
        return _estimate_hashable(type(obj), obj)
    except TypeError:  # unhashable => potentially mutable => never cache
        return approx_size(obj)


def size_cache_info() -> Any:
    """Hit/miss statistics of the memoized size cache (for tests/bench)."""
    return _estimate_hashable.cache_info()


def clear_size_cache() -> None:
    """Drop every memoized size (test isolation helper)."""
    _estimate_hashable.cache_clear()
