"""LRU buffer pool between the access methods and the simulated disk.

All index and heap code fetches pages through a pool; a miss costs one
physical read on the :class:`DiskManager`. Benchmarks size the pool well
below the working set so the miss counts track the paper's disk-resident
setting, and an ablation (D5 in DESIGN.md) sweeps the pool size.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.errors import BufferPoolError, TransientIOError
from repro.obs import METRICS
from repro.settings import SETTINGS
from repro.storage.disk import DiskManager
from repro.storage.page import Page

#: Default number of 8 KB frames (64 frames = 512 KB cache).
DEFAULT_POOL_SIZE = 64

# Observability families, bound once so the fetch hot path pays a single
# attribute-add per event. These mirror BufferStats exactly — the registry
# delta of any operation must reconcile with the pool's own counters, which
# the explain/obs tests assert.
_OBS_HITS = METRICS.counter(
    "buffer_hits_total", "Buffer pool fetches served from a resident frame"
)
_OBS_MISSES = METRICS.counter(
    "buffer_misses_total", "Buffer pool fetches that went to disk"
)
_OBS_EVICTIONS = METRICS.counter(
    "buffer_evictions_total", "Frames evicted to make room in the pool"
)
_OBS_WRITEBACKS = METRICS.counter(
    "buffer_dirty_writebacks_total", "Dirty frames written back to disk"
)
_OBS_RETRIES = METRICS.counter(
    "buffer_retries_total",
    "Transient disk faults absorbed by bounded retry",
    labels=("op",),
)
_OBS_READ_RETRIES = _OBS_RETRIES.labels("read")
_OBS_WRITE_RETRIES = _OBS_RETRIES.labels("write")

#: The bounded-retry policy for transient disk faults lives in
#: :mod:`repro.settings` (``disk_max_retries`` / ``disk_retry_backoff``);
#: constructor ``None`` defaults resolve from there at build time.


@dataclass
class BufferStats:
    """Cumulative cache statistics for one buffer pool.

    Misses are classified by access pattern: a miss on the page directly
    following the previous missed page is *sequential* (cheap on spinning
    disks, ``seq_page_cost``), anything else is *random*
    (``random_page_cost``). The split is what makes B+-tree leaf-chain
    scans cheaper than equal-count scattered reads, as in PostgreSQL's
    cost model.
    """

    hits: int = 0
    misses: int = 0
    seq_misses: int = 0
    random_misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0
    read_retries: int = 0
    write_retries: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def retries(self) -> int:
        """Total transient-fault retries (reads + write-backs)."""
        return self.read_retries + self.write_retries

    def snapshot(self) -> "BufferStats":
        """A copy of the current counters."""
        return BufferStats(
            self.hits,
            self.misses,
            self.seq_misses,
            self.random_misses,
            self.evictions,
            self.dirty_writebacks,
            self.read_retries,
            self.write_retries,
        )

    def delta(self, earlier: "BufferStats") -> "BufferStats":
        """Counters accumulated since ``earlier`` (an older snapshot)."""
        return BufferStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            seq_misses=self.seq_misses - earlier.seq_misses,
            random_misses=self.random_misses - earlier.random_misses,
            evictions=self.evictions - earlier.evictions,
            dirty_writebacks=self.dirty_writebacks - earlier.dirty_writebacks,
            read_retries=self.read_retries - earlier.read_retries,
            write_retries=self.write_retries - earlier.write_retries,
        )


class BufferPool:
    """A fixed-capacity LRU cache of deserialized pages.

    Mutation protocol: fetch the page, mutate its payload, then call
    :meth:`mark_dirty` before the next fetch that could evict it. The
    convenience :meth:`update` wraps that pattern. Pinned pages are never
    evicted; pins are only used internally by multi-page operations.
    """

    def __init__(
        self,
        disk: DiskManager,
        capacity: int = DEFAULT_POOL_SIZE,
        max_retries: int | None = None,
        retry_backoff: float | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("buffer pool capacity must be >= 1")
        self.disk = disk
        self.capacity = capacity
        self.max_retries = (
            SETTINGS.disk_max_retries if max_retries is None else max_retries
        )
        self.retry_backoff = (
            SETTINGS.disk_retry_backoff if retry_backoff is None else retry_backoff
        )
        self.stats = BufferStats()
        self._frames: OrderedDict[int, Page] = OrderedDict()
        self._last_missed_page: int | None = None
        # Residency listeners: called with a page id whenever that page
        # leaves the pool (eviction, clear, free). Caches layered above the
        # pool (repro.storage.nodecache) key their coherence off this.
        self._eviction_listeners: list[Callable[[int], None]] = []

    # -- residency listeners -------------------------------------------------

    def add_eviction_listener(
        self, listener: Callable[[int], None]
    ) -> Callable[[int], None]:
        """Call ``listener(page_id)`` whenever a page leaves the pool.

        Returns the listener so callers can keep the handle for
        :meth:`remove_eviction_listener`.
        """
        self._eviction_listeners.append(listener)
        return listener

    def remove_eviction_listener(self, listener: Callable[[int], None]) -> None:
        """Detach a listener registered with :meth:`add_eviction_listener`."""
        try:
            self._eviction_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_departed(self, page_id: int) -> None:
        for listener in self._eviction_listeners:
            listener(page_id)

    # -- page lifecycle ------------------------------------------------------

    def new_page(self, payload: Any) -> int:
        """Allocate a disk page, cache it dirty, and return its id."""
        page_id = self.disk.allocate_page()
        self._admit(Page(page_id=page_id, payload=payload, dirty=True))
        return page_id

    def free_page(self, page_id: int) -> None:
        """Drop a page from the pool and the disk (no write-back)."""
        if self._frames.pop(page_id, None) is not None:
            self._notify_departed(page_id)
        self.disk.deallocate_page(page_id)

    # -- access --------------------------------------------------------------

    def fetch(self, page_id: int) -> Any:
        """Return the payload of ``page_id``, reading from disk on a miss."""
        return self._fetch_page(page_id).payload

    def touch(self, page_id: int) -> bool:
        """Refresh the LRU recency of a *resident* page without accounting.

        Returns True when the page was resident (and is now most-recent),
        False otherwise. Used by the node cache: a node-cache hit must keep
        the underlying page's recency exactly as a full fetch would, so
        eviction order — and therefore every miss count the benchmarks
        measure — is identical with the cache on or off.
        """
        if page_id in self._frames:
            self._frames.move_to_end(page_id)
            return True
        return False

    def _fetch_page(self, page_id: int) -> Page:
        page = self._frames.get(page_id)
        if page is not None:
            self.stats.hits += 1
            _OBS_HITS.inc()
            self._frames.move_to_end(page_id)
            return page
        self.stats.misses += 1
        _OBS_MISSES.inc()
        if self._last_missed_page is not None and page_id == self._last_missed_page + 1:
            self.stats.seq_misses += 1
        else:
            self.stats.random_misses += 1
        self._last_missed_page = page_id
        payload = self._with_retry(
            lambda: self.disk.read_page(page_id), "read_retries"
        )
        page = Page(page_id=page_id, payload=payload)
        self._admit(page)
        return page

    def _with_retry(self, operation: Callable[[], Any], counter: str) -> Any:
        """Run a disk operation, retrying transient faults with backoff.

        Retries only :class:`~repro.errors.TransientIOError` (up to
        ``max_retries`` times, exponential backoff); permanent faults,
        checksum failures, and missing pages propagate immediately. The
        final failure re-raises the transient error for the caller to
        surface as a typed storage failure.
        """
        attempt = 0
        while True:
            try:
                return operation()
            except TransientIOError:
                if attempt >= self.max_retries:
                    raise
                setattr(self.stats, counter, getattr(self.stats, counter) + 1)
                if counter == "read_retries":
                    _OBS_READ_RETRIES.inc()
                else:
                    _OBS_WRITE_RETRIES.inc()
                if self.retry_backoff:
                    time.sleep(self.retry_backoff * (2**attempt))
                attempt += 1

    def mark_dirty(self, page_id: int) -> None:
        """Record that the cached payload of ``page_id`` was mutated."""
        page = self._frames.get(page_id)
        if page is None:
            raise BufferPoolError(
                f"mark_dirty({page_id}) on a page not resident in the pool; "
                "mutate pages between fetch and the next eviction point"
            )
        page.dirty = True

    def update(self, page_id: int, payload: Any) -> None:
        """Replace the payload of ``page_id`` and mark it dirty."""
        page = self._fetch_page(page_id)
        page.payload = payload
        page.dirty = True

    def pin(self, page_id: int) -> None:
        """Protect a resident page from eviction until :meth:`unpin`."""
        self._fetch_page(page_id).pin_count += 1

    def unpin(self, page_id: int) -> None:
        """Release one pin taken with :meth:`pin`."""
        page = self._frames.get(page_id)
        if page is None or page.pin_count <= 0:
            raise BufferPoolError(f"unpin({page_id}) without a matching pin")
        page.pin_count -= 1

    # -- maintenance -----------------------------------------------------------

    def flush_all(self) -> None:
        """Write back every dirty resident page (checkpoint)."""
        for page in self._frames.values():
            if page.dirty:
                self._with_retry(
                    lambda p=page: self.disk.write_page(p.page_id, p.payload),
                    "write_retries",
                )
                page.dirty = False
                self.stats.dirty_writebacks += 1
                _OBS_WRITEBACKS.inc()

    def clear(self) -> None:
        """Flush then empty the pool — simulates a cold cache."""
        self.flush_all()
        departed = list(self._frames.keys())
        self._frames.clear()
        for page_id in departed:
            self._notify_departed(page_id)

    def resident_page_ids(self) -> Iterator[int]:
        """Page ids currently cached, in LRU order (oldest first)."""
        return iter(self._frames.keys())

    @property
    def resident_count(self) -> int:
        return len(self._frames)

    def reset_stats(self) -> None:
        """Zero the cache counters (page contents untouched)."""
        self.stats = BufferStats()

    # -- internals -------------------------------------------------------------

    def _admit(self, page: Page) -> None:
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[page.page_id] = page
        self._frames.move_to_end(page.page_id)

    def _evict_one(self) -> None:
        # O(1) victim selection: pop the LRU head; a pinned head is rotated
        # to the MRU end (a pin means "in use", which is recency), so the
        # loop touches each frame at most once and the common case — an
        # unpinned head — costs a single dict operation regardless of pool
        # size. The micro-benchmark in tests/storage/test_buffer_perf.py
        # pins this flatness.
        victim_id = victim = None
        for _ in range(len(self._frames)):
            page_id = next(iter(self._frames))
            page = self._frames[page_id]
            if page.pin_count == 0:
                victim_id, victim = page_id, page
                break
            self._frames.move_to_end(page_id)
        if victim is None:
            raise BufferPoolError("all buffer frames are pinned; cannot evict")
        if victim.dirty:
            self._with_retry(
                lambda: self.disk.write_page(victim_id, victim.payload),
                "write_retries",
            )
            self.stats.dirty_writebacks += 1
            _OBS_WRITEBACKS.inc()
        del self._frames[victim_id]
        self.stats.evictions += 1
        _OBS_EVICTIONS.inc()
        self._notify_departed(victim_id)
