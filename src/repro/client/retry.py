"""Retry policy: error classification, full-jitter backoff, deadlines.

Classification is the heart of safe retrying. Three questions decide a
failure's fate:

1. **Is the error transient?** Deadlock victims, shed/overload
   rejections, drain goodbyes, open breakers, and lost connections are;
   a parse error or constraint violation is not — resending it buys
   nothing.
2. **Could the statement have executed?** A lost connection after the
   request was sent is *ambiguous*: the statement may have run and the
   ack died on the wire. Blind resends would double-apply, so the driver
   only retries ambiguous failures when the statement carries an
   idempotency key the server dedup cache can absorb.
3. **Is there budget left?** Every retry loop runs under an absolute
   deadline; backoff sleeps are clipped to the remaining budget so a
   call can never outlive its ``client_op_timeout``.

Backoff is exponential with **full jitter** (AWS architecture-blog
style): sleep ``uniform(0, min(cap, base * 2**attempt))``. Deterministic
tests inject a seeded :class:`random.Random`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.errors import (
    CircuitOpenError,
    ConnectionLostError,
    DeadlockError,
    PoolTimeoutError,
    ProtocolError,
    ReplicationError,
    RetriesExceededError,
    ServerDrainingError,
    ServerOverloadedError,
)
from repro.settings import SETTINGS

#: Transient failures where the statement definitely did NOT execute
#: (rejected before admission, or never reached a worker): always safe
#: to retry, keyed or not.
RETRY_SAFE = (
    DeadlockError,          # victim rolled back; rerun expected to succeed
    ServerOverloadedError,  # rejected at admission, never ran
    ServerDrainingError,    # refused (or cleanly aborted) with rollback
    PoolTimeoutError,       # never left the client
    CircuitOpenError,       # never left the client
)

#: Transient failures where the statement MAY have executed (the ack was
#: lost, not necessarily the request): retry only with an idempotency
#: key, or by whole-transaction replay with commit recovery.
RETRY_AMBIGUOUS = (ConnectionLostError,)

#: Never retried: the in-doubt marker. A ReplicationError means a commit
#: is locally durable but unacknowledged — resending could double-apply,
#: and the server poisons the statement's idempotency key so even a
#: keyed retry re-raises instead of re-executing.
NEVER_RETRY = (ReplicationError, ProtocolError)


@dataclass
class RetryPolicy:
    """Bounded retry loop parameters; defaults come from ``SETTINGS``."""

    max_retries: int = field(
        default_factory=lambda: SETTINGS.client_max_retries)
    backoff_base: float = field(
        default_factory=lambda: SETTINGS.client_backoff_base)
    backoff_cap: float = field(
        default_factory=lambda: SETTINGS.client_backoff_cap)
    #: Injectable for deterministic tests/chaos schedules.
    rng: random.Random = field(default_factory=random.Random)

    def classify(self, exc: BaseException, *, keyed: bool = False) -> bool:
        """True iff ``exc`` is retryable for this statement.

        ``keyed`` marks statements protected by an idempotency key (or by
        the caller's own replay protocol): only those may retry the
        ambiguous connection-loss failures.
        """
        if isinstance(exc, NEVER_RETRY):
            return False
        if isinstance(exc, RETRY_SAFE):
            return True
        if isinstance(exc, RETRY_AMBIGUOUS):
            return keyed
        return False

    def backoff(self, attempt: int) -> float:
        """Full-jitter sleep for the given 0-based attempt number."""
        ceiling = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        return self.rng.uniform(0.0, ceiling)

    def sleep(self, attempt: int, deadline: float | None) -> None:
        """Back off, clipped so the sleep never crosses the deadline."""
        delay = self.backoff(attempt)
        if deadline is not None:
            delay = min(delay, max(0.0, deadline - time.monotonic()))
        if delay > 0:
            time.sleep(delay)

    def give_up(
        self, attempt: int, deadline: float | None
    ) -> bool:
        """True when the loop must stop: attempts or deadline exhausted."""
        if attempt >= self.max_retries:
            return True
        return deadline is not None and time.monotonic() >= deadline


def remaining(deadline: float | None) -> float | None:
    """Seconds left until the absolute monotonic ``deadline`` (None = ∞).

    Raises :class:`RetriesExceededError` when the budget is already gone,
    so every deadline check reads the same at each call site.
    """
    if deadline is None:
        return None
    left = deadline - time.monotonic()
    if left <= 0:
        raise RetriesExceededError("operation deadline expired")
    return left
