"""Per-endpoint circuit breakers: fail fast against a known-down host.

The classic three-state machine (Nygard, *Release It!*):

- **closed** — normal operation. Consecutive failures are counted;
  crossing ``breaker_failure_threshold`` trips the breaker **open**.
  Any success resets the count.
- **open** — calls fail immediately with
  :class:`~repro.errors.CircuitOpenError` (no connection attempt, no
  timeout burned). After ``breaker_reset_timeout`` seconds the next
  caller is admitted as a probe, moving the breaker to **half-open**.
- **half-open** — exactly one probe in flight. Success closes the
  breaker; failure re-opens it and restarts the cool-down.

Why it matters here: during failover the old primary endpoint keeps
refusing connections for hundreds of milliseconds. Without a breaker
every pooled call would pay a full ``client_connect_timeout`` against
the dead endpoint before failing over; with one, the first few failures
trip it and subsequent calls skip straight to the freshly discovered
endpoint, which is exactly the p99 difference the resilience bench
measures.
"""

from __future__ import annotations

import threading
import time

from repro.errors import CircuitOpenError
from repro.obs import METRICS
from repro.settings import SETTINGS

BREAKER_STATE = METRICS.gauge(
    "client_breaker_state",
    "Circuit state per endpoint: 0=closed, 1=open, 2=half-open.",
    labels=("endpoint",),
)
BREAKER_TRIPS = METRICS.counter(
    "client_breaker_trips_total",
    "Times a breaker moved from closed/half-open to open.",
    labels=("endpoint",),
)
BREAKER_FAST_FAILS = METRICS.counter(
    "client_breaker_fast_fails_total",
    "Calls refused immediately because the breaker was open.",
    labels=("endpoint",),
)

CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"
_STATE_CODE = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


class CircuitBreaker:
    """One endpoint's breaker; thread-safe."""

    def __init__(
        self,
        endpoint: str,
        failure_threshold: int | None = None,
        reset_timeout: float | None = None,
    ) -> None:
        self.endpoint = endpoint
        self.failure_threshold = (
            failure_threshold
            if failure_threshold is not None
            else SETTINGS.breaker_failure_threshold
        )
        self.reset_timeout = (
            reset_timeout
            if reset_timeout is not None
            else SETTINGS.breaker_reset_timeout
        )
        self._mu = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._set_state(CLOSED)

    # -- state machine ---------------------------------------------------------

    def _set_state(self, state: str) -> None:
        self._state = state
        BREAKER_STATE.labels(self.endpoint).set(_STATE_CODE[state])

    @property
    def state(self) -> str:
        with self._mu:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and time.monotonic() - self._opened_at >= self.reset_timeout
        ):
            self._set_state(HALF_OPEN)
            self._probing = False

    def acquire(self) -> None:
        """Admit a call or raise :class:`CircuitOpenError`.

        In half-open, exactly one caller wins the probe slot; the rest
        fail fast until the probe reports back.
        """
        with self._mu:
            self._maybe_half_open()
            if self._state == CLOSED:
                return
            if self._state == HALF_OPEN and not self._probing:
                self._probing = True
                return
            BREAKER_FAST_FAILS.labels(self.endpoint).inc()
            raise CircuitOpenError(
                f"circuit open for endpoint {self.endpoint}"
            )

    def record_success(self) -> None:
        """Report a successful call: reset the count, close the breaker."""
        with self._mu:
            self._failures = 0
            self._probing = False
            if self._state != CLOSED:
                self._set_state(CLOSED)

    def record_failure(self) -> None:
        """Report a failed call: count toward the threshold, or re-trip."""
        with self._mu:
            self._probing = False
            if self._state == HALF_OPEN:
                self._trip()
                return
            self._failures += 1
            if self._state == CLOSED and self._failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        self._set_state(OPEN)
        self._opened_at = time.monotonic()
        self._failures = 0
        BREAKER_TRIPS.labels(self.endpoint).inc()
