""":class:`ResilientClient`: pooled, retrying, exactly-once SQL driver.

What composes here:

- **Endpoint discovery.** ``discover()`` is re-resolved on every attempt,
  so when the replica set promotes a standby (or the chaos harness
  restarts the server on a new port) the very next retry dials the new
  primary instead of hammering the corpse of the old one. Each endpoint
  gets its own pool and circuit breaker.
- **Deadline propagation.** Every call runs under one absolute deadline
  (``client_op_timeout`` by default). The *remaining* budget rides along
  on each wire request and becomes the server-side statement deadline —
  so time spent dialing, queueing, and backing off all counts, and a
  statement that would outlive its caller is cancelled server-side
  rather than abandoned client-side.
- **Exactly-once autocommit writes.** Retrying a write whose ack was
  lost is the classic double-apply hazard. The driver stamps every
  autocommit INSERT/UPDATE/DELETE with a fresh idempotency key; the
  server's dedup cache replays the recorded result for a re-sent key
  instead of re-executing. Reads and unambiguous rejections retry
  freely without keys.
- **Whole-transaction replay.** Inside ``run_transaction`` a transient
  failure *before* COMMIT is sent rolls the block back and replays the
  caller's function from the top (never a single statement in
  isolation). A connection lost *while committing* triggers commit
  recovery: the COMMIT itself carried a key, so probing it on a fresh
  session either returns the recorded outcome (committed — done) or
  fails with "no transaction in progress" (rolled back — replay safely).
"""

from __future__ import annotations

import itertools
import re
import threading
import time
import uuid
from typing import Any, Callable, Iterable

from repro.client.breaker import CircuitBreaker
from repro.client.pool import ConnectionPool, PooledConnection
from repro.client.retry import RetryPolicy, remaining
from repro.errors import (
    CircuitOpenError,
    ConnectionLostError,
    PoolTimeoutError,
    ReplicationError,
    ReproError,
    RetriesExceededError,
    SQLError,
    TxnError,
)
from repro.obs import METRICS
from repro.settings import SETTINGS

CLIENT_RETRIES = METRICS.counter(
    "client_retries_total",
    "Statement/transaction attempts retried, by triggering error class.",
    labels=("error",),
)
CLIENT_TXN_REPLAYS = METRICS.counter(
    "client_txn_replays_total",
    "Whole-transaction replays after a transient mid-block failure.",
)
CLIENT_COMMIT_RECOVERIES = METRICS.counter(
    "client_commit_recoveries_total",
    "Commit-recovery probes resolved, by verdict.",
    labels=("verdict",),
)

_WRITE_RE = re.compile(r"^\s*(INSERT|UPDATE|DELETE)\b", re.IGNORECASE)
_READ_RE = re.compile(r"^\s*SELECT\b", re.IGNORECASE)

Endpoint = tuple[str, int]


class _Replay(Exception):
    """Internal control flow: this transaction attempt failed in a way
    that provably left nothing committed — roll up and replay the block.
    ``cause`` carries the underlying typed error for accounting."""

    def __init__(self, cause: BaseException) -> None:
        super().__init__(str(cause))
        self.cause = cause


class _Attempt:
    """One dial-and-execute attempt's resources (endpoint, breaker, conn)."""

    __slots__ = ("endpoint", "breaker", "pool", "conn")

    def __init__(self, endpoint: Endpoint, breaker: CircuitBreaker,
                 pool: ConnectionPool, conn: PooledConnection) -> None:
        self.endpoint = endpoint
        self.breaker = breaker
        self.pool = pool
        self.conn = conn


class Transaction:
    """The handle ``run_transaction`` passes to the caller's function.

    Statements run on the pinned connection with the operation deadline
    propagated; transient failures propagate out so the driver can roll
    back and replay the *whole* function — never one statement alone.
    """

    def __init__(self, attempt: _Attempt, deadline: float | None) -> None:
        self._attempt = attempt
        self._deadline = deadline

    def execute(self, sql: str) -> Any:
        """Run one statement inside the block, under the block's deadline."""
        return self._attempt.conn.execute(sql, timeout=remaining(self._deadline))


class ResilientClient:
    """Fault-tolerant front door over one or more SQL server endpoints."""

    def __init__(
        self,
        endpoints: Iterable[Endpoint] | None = None,
        *,
        discover: Callable[[], list[Endpoint]] | None = None,
        policy: RetryPolicy | None = None,
        op_timeout: float | None = None,
        pool_size: int | None = None,
        acquire_timeout: float | None = None,
        connect_timeout: float | None = None,
        breaker_failure_threshold: int | None = None,
        breaker_reset_timeout: float | None = None,
        key_factory: Callable[[], str] | None = None,
    ) -> None:
        if discover is None:
            if endpoints is None:
                raise ValueError("need endpoints or a discover callable")
            static = [tuple(ep) for ep in endpoints]
            discover = lambda: static  # noqa: E731
        self._discover = discover
        self.policy = policy if policy is not None else RetryPolicy()
        self.op_timeout = (
            op_timeout if op_timeout is not None else SETTINGS.client_op_timeout)
        self._pool_size = pool_size
        self._acquire_timeout = acquire_timeout
        self._connect_timeout = connect_timeout
        self._breaker_threshold = breaker_failure_threshold
        self._breaker_reset = breaker_reset_timeout
        if key_factory is None:
            prefix = uuid.uuid4().hex[:12]
            counter = itertools.count()
            key_factory = lambda: f"{prefix}-{next(counter)}"  # noqa: E731
        self._next_key = key_factory
        self._mu = threading.Lock()
        self._pools: dict[Endpoint, ConnectionPool] = {}
        self._breakers: dict[Endpoint, CircuitBreaker] = {}
        self._closed = False

    # -- endpoint plumbing -----------------------------------------------------

    def _pool_for(self, endpoint: Endpoint) -> ConnectionPool:
        with self._mu:
            pool = self._pools.get(endpoint)
            if pool is None:
                pool = ConnectionPool(
                    endpoint,
                    size=self._pool_size,
                    acquire_timeout=self._acquire_timeout,
                    connect_timeout=self._connect_timeout,
                )
                self._pools[endpoint] = pool
            return pool

    def _breaker_for(self, endpoint: Endpoint) -> CircuitBreaker:
        with self._mu:
            breaker = self._breakers.get(endpoint)
            if breaker is None:
                breaker = CircuitBreaker(
                    f"{endpoint[0]}:{endpoint[1]}",
                    failure_threshold=self._breaker_threshold,
                    reset_timeout=self._breaker_reset,
                )
                self._breakers[endpoint] = breaker
            return breaker

    def _open_attempt(self, deadline: float | None) -> _Attempt:
        """Discover endpoints, pass a breaker, dial/reuse a connection.

        Failures here mean the statement was never sent, so the caller
        may always retry them. Raises the last per-endpoint error when
        every endpoint is unusable this round.
        """
        endpoints = list(self._discover())
        if not endpoints:
            raise ConnectionLostError("endpoint discovery returned no endpoints")
        last_error: ReproError | None = None
        for endpoint in endpoints:
            breaker = self._breaker_for(endpoint)
            try:
                breaker.acquire()
            except CircuitOpenError as exc:
                last_error = exc
                continue
            pool = self._pool_for(endpoint)
            budget = remaining(deadline)
            try:
                conn = pool.acquire(timeout=budget)
            except PoolTimeoutError as exc:
                # Pool exhaustion is load, not endpoint death: don't
                # charge the breaker for it.
                last_error = exc
                continue
            except OSError as exc:
                breaker.record_failure()
                last_error = ConnectionLostError(
                    f"dial {endpoint[0]}:{endpoint[1]} failed: {exc}")
                continue
            return _Attempt(endpoint, breaker, pool, conn)
        assert last_error is not None
        raise last_error

    # -- autocommit statements -------------------------------------------------

    def execute(
        self,
        sql: str,
        *,
        key: str | None = None,
        timeout: float | None = None,
    ) -> Any:
        """Run one autocommit statement with retries and exactly-once writes.

        Writes are stamped with an idempotency key automatically (pass
        ``key`` to control it, e.g. to make a retry across *client*
        restarts dedup too). Raises the original typed error when it is
        not retryable, :class:`RetriesExceededError` when the budget runs
        out.
        """
        if self._closed:
            raise PoolTimeoutError("client is closed")
        if key is None and _WRITE_RE.match(sql):
            key = self._next_key()
        # Ambiguous connection losses may only be retried when a re-send
        # cannot double-apply: keyed statements (dedup absorbs them) and
        # autocommit reads (re-running a SELECT is always safe).
        replay_safe = key is not None or bool(_READ_RE.match(sql))
        budget = self.op_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget if budget else None
        last_error: BaseException | None = None
        for attempt_no in itertools.count():
            try:
                remaining(deadline)
                attempt = self._open_attempt(deadline)
            except (ReproError, OSError) as exc:
                if isinstance(exc, RetriesExceededError):
                    raise RetriesExceededError(
                        f"deadline expired after {attempt_no} attempts: "
                        f"{last_error or exc}", last_error or exc) from None
                last_error = exc
            else:
                try:
                    result = attempt.conn.execute(
                        sql, key=key, timeout=remaining(deadline))
                except ReproError as exc:
                    last_error = exc
                    lost = isinstance(exc, ConnectionLostError)
                    if lost:
                        attempt.breaker.record_failure()
                    else:
                        attempt.breaker.record_success()
                    attempt.pool.release(attempt.conn, discard=lost)
                    if not self.policy.classify(exc, keyed=replay_safe):
                        raise
                else:
                    attempt.breaker.record_success()
                    attempt.pool.release(attempt.conn)
                    return result
            if self.policy.give_up(attempt_no, deadline):
                raise RetriesExceededError(
                    f"gave up after {attempt_no + 1} attempts: {last_error}",
                    last_error,
                )
            CLIENT_RETRIES.labels(type(last_error).__name__).inc()
            self.policy.sleep(attempt_no, deadline)

    # -- transactions ----------------------------------------------------------

    def run_transaction(
        self,
        fn: Callable[[Transaction], Any],
        *,
        timeout: float | None = None,
    ) -> Any:
        """Run ``fn(txn)`` atomically, replaying the whole block on
        transient failure and recovering in-flight commits exactly once.

        ``fn`` must be a pure function of its inputs and the database (it
        may run several times); it receives a :class:`Transaction` whose
        ``execute`` runs statements inside the block.
        """
        if self._closed:
            raise PoolTimeoutError("client is closed")
        budget = self.op_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget if budget else None
        last_error: BaseException | None = None
        for attempt_no in itertools.count():
            try:
                remaining(deadline)
                attempt = self._open_attempt(deadline)
            except (ReproError, OSError) as exc:
                if isinstance(exc, RetriesExceededError):
                    raise RetriesExceededError(
                        f"deadline expired after {attempt_no} replays: "
                        f"{last_error or exc}", last_error or exc) from None
                last_error = exc
            else:
                commit_key = self._next_key()
                try:
                    return self._try_transaction(
                        attempt, fn, commit_key, deadline)
                except _Replay as replay:
                    last_error = replay.cause
                    CLIENT_TXN_REPLAYS.inc()
            if self.policy.give_up(attempt_no, deadline):
                raise RetriesExceededError(
                    f"transaction gave up after {attempt_no + 1} attempts: "
                    f"{last_error}", last_error)
            CLIENT_RETRIES.labels(type(last_error).__name__).inc()
            self.policy.sleep(attempt_no, deadline)

    def _try_transaction(
        self,
        attempt: _Attempt,
        fn: Callable[[Transaction], Any],
        commit_key: str,
        deadline: float | None,
    ) -> Any:
        """One BEGIN..fn..COMMIT attempt on a pinned connection.

        Failures *before* COMMIT is sent provably left nothing committed
        (the server rolls the block back on error or disconnect), so
        they raise :class:`_Replay`. A connection lost while COMMIT is
        in flight goes to :meth:`_recover_commit` — replaying there
        without probing could double-apply. And a COMMIT that *returns*
        must carry the ``COMMIT`` status tag: an epoch-fenced or aborted
        block answers COMMIT with ``ROLLBACK`` (PostgreSQL semantics —
        the statement succeeds, the block rolls back), which an
        acknowledgement-hungry driver must read as "replay", never as
        "committed".
        """
        conn, pool, breaker = attempt.conn, attempt.pool, attempt.breaker
        try:
            conn.execute("BEGIN", timeout=remaining(deadline))
            result = fn(Transaction(attempt, deadline))
        except ConnectionLostError as exc:
            # The block died with the connection: rolled back server-side.
            breaker.record_failure()
            pool.release(conn, discard=True)
            raise _Replay(exc) from None
        except TxnError as exc:
            # Deadlock victim, serialization failure, fenced/aborted
            # block: the server rolled (or will roll) the block back.
            self._rollback(attempt)
            raise _Replay(exc) from None
        except ReproError as exc:
            self._rollback(attempt)
            if self.policy.classify(exc, keyed=True):
                raise _Replay(exc) from None
            raise
        except BaseException:
            # The caller's own exception: leave the block cleanly.
            self._rollback(attempt)
            raise
        try:
            status = conn.execute(
                "COMMIT", key=commit_key, timeout=remaining(deadline))
        except ConnectionLostError as exc:
            breaker.record_failure()
            pool.release(conn, discard=True)
            if self._recover_commit(commit_key, deadline) == "committed":
                return result
            raise _Replay(exc) from None
        except ReproError as exc:
            # e.g. ServerDrainingError (refused before running) or
            # ReplicationError (in-doubt: never replayed, surfaces).
            pool.release(conn, discard=conn.client.server_closed)
            if self.policy.classify(exc, keyed=True):
                raise _Replay(exc) from None
            raise
        if status != "COMMIT":
            # The server answered the COMMIT statement with a ROLLBACK
            # tag: the block was aborted (epoch fence after failover, or
            # an earlier failed statement). Nothing committed.
            breaker.record_success()
            pool.release(conn)
            raise _Replay(TxnError(
                f"transaction block rolled back by server (status {status!r})"
            )) from None
        breaker.record_success()
        pool.release(conn)
        return result

    def _rollback(self, attempt: _Attempt) -> None:
        """Best-effort ROLLBACK; discard the connection if it broke."""
        try:
            attempt.conn.execute("ROLLBACK")
        except SQLError:
            # "no transaction in progress": already rolled back.
            attempt.pool.release(attempt.conn)
        except (ReproError, OSError):
            attempt.pool.release(attempt.conn, discard=True)
        else:
            attempt.pool.release(attempt.conn)

    def _recover_commit(self, commit_key: str, deadline: float | None) -> str:
        """Resolve an in-flight COMMIT whose ack was lost.

        Re-sends the *keyed* COMMIT on a fresh session. Three outcomes:

        - the dedup cache replays the recorded result → ``"committed"``;
        - the fresh session has no transaction open and the key was never
          recorded → ``SQLError`` ("no transaction in progress") → the
          block rolled back with the old connection → ``"rolled_back"``;
        - :class:`ReplicationError` → the key was poisoned in-doubt
          (commit locally durable, quorum unreachable) → propagate; the
          caller must not assume either way.

        Connection losses during the probe itself just re-probe until
        the deadline.
        """
        for probe_no in itertools.count():
            remaining(deadline)
            if deadline is None and probe_no > self.policy.max_retries:
                raise RetriesExceededError(
                    f"commit outcome unknown for key {commit_key!r}: "
                    "probe budget exhausted")
            try:
                attempt = self._open_attempt(deadline)
            except (ReproError, OSError):
                self.policy.sleep(probe_no, deadline)
                continue
            try:
                status = attempt.conn.execute(
                    "COMMIT", key=commit_key, timeout=remaining(deadline))
            except SQLError:
                attempt.pool.release(attempt.conn)
                CLIENT_COMMIT_RECOVERIES.labels("rolled_back").inc()
                return "rolled_back"
            except ConnectionLostError:
                attempt.breaker.record_failure()
                attempt.pool.release(attempt.conn, discard=True)
                self.policy.sleep(probe_no, deadline)
            except ReplicationError:
                attempt.pool.release(attempt.conn)
                CLIENT_COMMIT_RECOVERIES.labels("in_doubt").inc()
                raise
            except ReproError:
                attempt.pool.release(attempt.conn)
                self.policy.sleep(probe_no, deadline)
            else:
                attempt.pool.release(attempt.conn)
                if status != "COMMIT":
                    # The recorded outcome was a fenced/aborted block's
                    # ROLLBACK tag: the original commit never happened.
                    CLIENT_COMMIT_RECOVERIES.labels("rolled_back").inc()
                    return "rolled_back"
                CLIENT_COMMIT_RECOVERIES.labels("committed").inc()
                return "committed"

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Close every pool and refuse further calls."""
        with self._mu:
            self._closed = True
            pools = list(self._pools.values())
        for pool in pools:
            pool.close()

    def __enter__(self) -> "ResilientClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
