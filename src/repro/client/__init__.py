"""The fault-tolerant client driver (PR 9).

:class:`~repro.server.net.SQLClient` is one socket and no opinions: any
failure — a deadlock, an overloaded queue, a primary crash mid-commit —
surfaces raw and the caller starts over. This package layers the
machinery a production driver carries:

- :mod:`repro.client.retry` — the retry policy: which typed errors are
  safe to retry, exponential backoff with full jitter, and the deadline
  arithmetic that makes every retry loop bounded;
- :mod:`repro.client.breaker` — per-endpoint circuit breakers
  (closed/open/half-open) that fail fast against a host known to be down
  instead of burning a connection timeout per call;
- :mod:`repro.client.pool` — a bounded, health-checked connection pool
  with an acquire timeout (backpressure, never unbounded growth);
- :mod:`repro.client.driver` — :class:`ResilientClient`, composing the
  three: idempotency-keyed autocommit writes (exactly-once across
  retries via the server dedup cache), deadline propagation into the
  server statement deadline, whole-transaction replay via
  :meth:`~repro.client.driver.ResilientClient.run_transaction`, and
  failover-aware endpoint re-resolution.
"""

from repro.client.breaker import CircuitBreaker
from repro.client.driver import ResilientClient
from repro.client.pool import ConnectionPool, PooledConnection
from repro.client.retry import RetryPolicy

__all__ = [
    "CircuitBreaker",
    "ConnectionPool",
    "PooledConnection",
    "ResilientClient",
    "RetryPolicy",
]
