"""A bounded, health-checked connection pool for one endpoint.

Connections are expensive relative to statements (TCP handshake plus a
server session slot), so the driver reuses them — but a reused socket
may be silently dead: the server restarted, drained, or a chaos proxy
cut it while it sat idle. Three defenses keep stale sockets from turning
into statement failures:

- a connection idle longer than ``client_health_check_interval`` is
  **pinged** before reuse; no pong → discard and dial a fresh one;
- a connection whose server announced close (a ``"close": true`` drain
  frame) or that raised a connection-level error is **discarded** on
  release, never re-queued;
- the pool is **bounded**: at most ``client_pool_size`` live
  connections, and ``acquire`` waits at most ``client_acquire_timeout``
  before raising :class:`~repro.errors.PoolTimeoutError` — backpressure
  surfaces at the client instead of unbounded connection growth at an
  already-struggling server.

The pool is per-endpoint; :class:`~repro.client.driver.ResilientClient`
keeps one pool per discovered endpoint and retires pools whose endpoint
disappears from discovery.
"""

from __future__ import annotations

import threading
import time

from repro.errors import PoolTimeoutError, ReproError
from repro.obs import METRICS
from repro.server.net import SQLClient
from repro.settings import SETTINGS

POOL_DIALS = METRICS.counter(
    "client_pool_dials_total", "Fresh TCP connections established.")
POOL_REUSES = METRICS.counter(
    "client_pool_reuses_total", "Acquires satisfied by an idle pooled connection.")
POOL_DISCARDS = METRICS.counter(
    "client_pool_discards_total", "Connections dropped as broken or stale.")
POOL_TIMEOUTS = METRICS.counter(
    "client_pool_acquire_timeouts_total", "Acquires that hit the bounded wait.")
POOL_HEALTH_FAILS = METRICS.counter(
    "client_pool_health_check_fails_total", "Pre-reuse pings that found a dead socket.")


class PooledConnection:
    """An :class:`SQLClient` plus the pool bookkeeping around it."""

    __slots__ = ("client", "endpoint", "last_used", "broken")

    def __init__(self, client: SQLClient, endpoint: tuple[str, int]) -> None:
        self.client = client
        self.endpoint = endpoint
        self.last_used = time.monotonic()
        self.broken = False

    def execute(self, sql: str, *, key: str | None = None,
                timeout: float | None = None):
        """Run a statement; connection-level failures mark us broken."""
        if timeout is not None:
            # Bound the socket read slightly past the server deadline so
            # the server's own timeout error wins the race when it can.
            self.client.settimeout(timeout + 1.0)
        try:
            return self.client.execute(sql, key=key, timeout=timeout)
        except ReproError:
            if self.client.server_closed:
                self.broken = True
            raise

    def ping(self) -> bool:
        """Health probe: True iff the server still answers on this socket."""
        return self.client.ping()

    def close(self) -> None:
        """Close the underlying socket."""
        self.client.close()


class ConnectionPool:
    """Bounded pool of connections to a single ``(host, port)`` endpoint."""

    def __init__(
        self,
        endpoint: tuple[str, int],
        size: int | None = None,
        acquire_timeout: float | None = None,
        connect_timeout: float | None = None,
        health_check_interval: float | None = None,
    ) -> None:
        self.endpoint = endpoint
        self.size = size if size is not None else SETTINGS.client_pool_size
        self.acquire_timeout = (
            acquire_timeout if acquire_timeout is not None
            else SETTINGS.client_acquire_timeout)
        self.connect_timeout = (
            connect_timeout if connect_timeout is not None
            else SETTINGS.client_connect_timeout)
        self.health_check_interval = (
            health_check_interval if health_check_interval is not None
            else SETTINGS.client_health_check_interval)
        self._mu = threading.Condition()
        self._idle: list[PooledConnection] = []
        self._live = 0
        self._closed = False

    # -- acquire / release -----------------------------------------------------

    def acquire(self, timeout: float | None = None) -> PooledConnection:
        """An idle connection, or a fresh dial, within the bounded wait.

        Raises :class:`PoolTimeoutError` when all ``size`` connections
        stay busy past the acquire timeout; connection errors from the
        dial itself propagate (the breaker/retry layers above classify
        them).
        """
        budget = self.acquire_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        while True:
            dial = False
            with self._mu:
                if self._closed:
                    raise PoolTimeoutError("pool is closed")
                while True:
                    conn = self._take_healthy_idle()
                    if conn is not None:
                        POOL_REUSES.inc()
                        return conn
                    if self._live < self.size:
                        self._live += 1  # reserve the slot before dialing
                        dial = True
                        break
                    left = deadline - time.monotonic()
                    if left <= 0 or not self._mu.wait(timeout=left):
                        POOL_TIMEOUTS.inc()
                        raise PoolTimeoutError(
                            f"no connection to {self.endpoint} within "
                            f"{budget:.1f}s (pool size {self.size})"
                        )
            if dial:
                try:
                    return self._dial()
                except BaseException:
                    with self._mu:
                        self._live -= 1
                        self._mu.notify()
                    raise

    def _take_healthy_idle(self) -> PooledConnection | None:
        """Pop idle connections until one passes its health check.

        Called with the lock held; pings happen on sockets no other
        thread can hold, so releasing the lock is unnecessary (pings are
        sub-millisecond against a live server, and a dead one answers
        by EOF immediately).
        """
        while self._idle:
            conn = self._idle.pop()
            idle_for = time.monotonic() - conn.last_used
            if idle_for < self.health_check_interval or conn.ping():
                return conn
            POOL_HEALTH_FAILS.inc()
            self._discard_locked(conn)
        return None

    def _dial(self) -> PooledConnection:
        host, port = self.endpoint
        client = SQLClient(host, port, timeout=self.connect_timeout)
        POOL_DIALS.inc()
        return PooledConnection(client, self.endpoint)

    def release(self, conn: PooledConnection, *, discard: bool = False) -> None:
        """Return a connection; broken or drain-closed ones are dropped."""
        if discard or conn.broken or conn.client.server_closed:
            with self._mu:
                self._discard_locked(conn)
                self._mu.notify()
            return
        conn.last_used = time.monotonic()
        with self._mu:
            if self._closed:
                self._discard_locked(conn)
                return
            self._idle.append(conn)
            self._mu.notify()

    def _discard_locked(self, conn: PooledConnection) -> None:
        self._live -= 1
        POOL_DISCARDS.inc()
        try:
            conn.close()
        except OSError:
            pass

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Close every idle connection and refuse future acquires."""
        with self._mu:
            self._closed = True
            idle, self._idle = self._idle, []
            for conn in idle:
                self._discard_locked(conn)
            self._mu.notify_all()

    def stats(self) -> dict[str, int]:
        """Current ``{"live", "idle"}`` connection counts."""
        with self._mu:
            return {"live": self._live, "idle": len(self._idle)}

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
