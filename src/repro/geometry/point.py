"""Two-dimensional point type (PostgreSQL ``POINT`` analogue)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True, order=True)
class Point:
    """An immutable 2-D point.

    Points are hashable and totally ordered lexicographically on ``(x, y)``,
    which lets baselines (B+-tree) index them with a composite key and lets
    tests sort result sets deterministically.
    """

    x: float
    y: float

    def coord(self, axis: int) -> float:
        """Return the coordinate along ``axis`` (0 = x, 1 = y)."""
        if axis == 0:
            return self.x
        if axis == 1:
            return self.y
        raise ValueError(f"axis must be 0 or 1, got {axis}")

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def approx_bytes(self) -> int:
        """Serialized footprint used for page-space accounting."""
        return 16  # two float64 coordinates

    @staticmethod
    def parse(text: str) -> "Point":
        """Parse PostgreSQL-style point literals like ``'(0,1)'``."""
        stripped = text.strip().lstrip("(").rstrip(")")
        parts = stripped.split(",")
        if len(parts) != 2:
            raise ValueError(f"cannot parse point literal: {text!r}")
        return Point(float(parts[0]), float(parts[1]))

    def __str__(self) -> str:
        return f"({self.x:g},{self.y:g})"
