"""Axis-aligned rectangle type (PostgreSQL ``BOX`` analogue)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Box:
    """An immutable, axis-aligned rectangle given by its min/max corners.

    Invariant: ``xmin <= xmax`` and ``ymin <= ymax`` (enforced at
    construction). Degenerate boxes (zero width or height) are allowed — a
    point is representable as a degenerate box, which the R-tree relies on.
    """

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(
                f"invalid box: ({self.xmin},{self.ymin}) .. ({self.xmax},{self.ymax})"
            )

    # -- constructors -------------------------------------------------------

    @staticmethod
    def from_points(a: Point, b: Point) -> "Box":
        """Bounding box of two points (corners in any order)."""
        return Box(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))

    @staticmethod
    def from_point(p: Point) -> "Box":
        """Degenerate box covering exactly one point."""
        return Box(p.x, p.y, p.x, p.y)

    @staticmethod
    def bounding(boxes: Iterable["Box"]) -> "Box":
        """Smallest box covering every box in ``boxes`` (must be non-empty)."""
        it = iter(boxes)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("Box.bounding() requires at least one box") from None
        xmin, ymin, xmax, ymax = first.xmin, first.ymin, first.xmax, first.ymax
        for b in it:
            xmin = min(xmin, b.xmin)
            ymin = min(ymin, b.ymin)
            xmax = max(xmax, b.xmax)
            ymax = max(ymax, b.ymax)
        return Box(xmin, ymin, xmax, ymax)

    @staticmethod
    def parse(text: str) -> "Box":
        """Parse PostgreSQL-style box literals like ``'(0,0,5,5)'``."""
        stripped = text.strip().lstrip("(").rstrip(")")
        parts = [float(p) for p in stripped.split(",")]
        if len(parts) != 4:
            raise ValueError(f"cannot parse box literal: {text!r}")
        return Box(
            min(parts[0], parts[2]),
            min(parts[1], parts[3]),
            max(parts[0], parts[2]),
            max(parts[1], parts[3]),
        )

    # -- predicates ----------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """True when ``p`` lies inside or on the border of the box."""
        return self.xmin <= p.x <= self.xmax and self.ymin <= p.y <= self.ymax

    def contains_box(self, other: "Box") -> bool:
        """True when ``other`` lies entirely within this box."""
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and other.xmax <= self.xmax
            and other.ymax <= self.ymax
        )

    def intersects(self, other: "Box") -> bool:
        """True when the two boxes share at least one point (borders count)."""
        return not (
            other.xmin > self.xmax
            or other.xmax < self.xmin
            or other.ymin > self.ymax
            or other.ymax < self.ymin
        )

    # -- measures ------------------------------------------------------------

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    def area(self) -> float:
        """Rectangle area (0 for degenerate boxes)."""
        return self.width * self.height

    def margin(self) -> float:
        """Half-perimeter, used by some split heuristics."""
        return self.width + self.height

    def center(self) -> Point:
        """Geometric center of the box."""
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def union(self, other: "Box") -> "Box":
        """Smallest box covering both boxes."""
        return Box(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def enlargement(self, other: "Box") -> float:
        """Area growth needed for this box to also cover ``other``.

        This is the quantity Guttman's ChooseLeaf minimizes.
        """
        return self.union(other).area() - self.area()

    def quadrants(self) -> tuple["Box", "Box", "Box", "Box"]:
        """Split into four equal quadrants (NW, NE, SW, SE order).

        Used by the space-driven quadtrees. Quadrant order matches the
        partition numbering the quadtree external methods assume.
        """
        cx = (self.xmin + self.xmax) / 2.0
        cy = (self.ymin + self.ymax) / 2.0
        return (
            Box(self.xmin, cy, cx, self.ymax),  # NW
            Box(cx, cy, self.xmax, self.ymax),  # NE
            Box(self.xmin, self.ymin, cx, cy),  # SW
            Box(cx, self.ymin, self.xmax, cy),  # SE
        )

    def approx_bytes(self) -> int:
        """Serialized footprint used for page-space accounting."""
        return 32  # four float64 coordinates

    def __str__(self) -> str:
        return f"({self.xmin:g},{self.ymin:g},{self.xmax:g},{self.ymax:g})"
