"""Line-segment type (PostgreSQL ``LSEG`` analogue) for the PMR quadtree."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.box import Box
from repro.geometry.point import Point


@dataclass(frozen=True, slots=True, order=True)
class LineSegment:
    """An immutable 2-D line segment between endpoints ``a`` and ``b``."""

    a: Point
    b: Point

    def bounding_box(self) -> Box:
        """Minimum bounding rectangle of the segment (R-tree entry key)."""
        return Box.from_points(self.a, self.b)

    def length(self) -> float:
        """Euclidean length of the segment."""
        from repro.geometry.distance import euclidean

        return euclidean(self.a, self.b)

    def midpoint(self) -> Point:
        """Midpoint of the segment."""
        return Point((self.a.x + self.b.x) / 2.0, (self.a.y + self.b.y) / 2.0)

    def intersects_box(self, box: Box) -> bool:
        """True when the segment passes through ``box`` (borders count).

        This is the PMR quadtree's partition-membership test: a segment is
        stored in every leaf block it crosses. Implemented as a standard
        Liang–Barsky clip test, with a fast accept when either endpoint is
        inside and a fast reject on disjoint bounding boxes.
        """
        if box.contains_point(self.a) or box.contains_point(self.b):
            return True
        if not box.intersects(self.bounding_box()):
            return False
        return self._clips(box)

    def _clips(self, box: Box) -> bool:
        dx = self.b.x - self.a.x
        dy = self.b.y - self.a.y
        t0, t1 = 0.0, 1.0
        for p, q in (
            (-dx, self.a.x - box.xmin),
            (dx, box.xmax - self.a.x),
            (-dy, self.a.y - box.ymin),
            (dy, box.ymax - self.a.y),
        ):
            if p == 0.0:
                if q < 0.0:
                    return False
                continue
            r = q / p
            if p < 0.0:
                if r > t1:
                    return False
                t0 = max(t0, r)
            else:
                if r < t0:
                    return False
                t1 = min(t1, r)
        return t0 <= t1

    def approx_bytes(self) -> int:
        """Serialized footprint used for page-space accounting."""
        return 32  # two points

    @staticmethod
    def parse(text: str) -> "LineSegment":
        """Parse literals like ``'[(0,0),(3,4)]'``."""
        stripped = text.strip().lstrip("[").rstrip("]")
        left, _, right = stripped.partition("),")
        return LineSegment(Point.parse(left + ")"), Point.parse(right))

    def __str__(self) -> str:
        return f"[{self.a},{self.b}]"
