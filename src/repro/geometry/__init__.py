"""Geometric primitives used by the spatial indexes.

The paper's kd-tree and point-quadtree experiments index two-dimensional
points; the PMR-quadtree and R-tree experiments index line segments; the
R-tree and range operators use rectangles. This package provides those three
types plus the distance kernels used by nearest-neighbour search.
"""

from repro.geometry.point import Point
from repro.geometry.box import Box
from repro.geometry.segment import LineSegment
from repro.geometry.distance import (
    euclidean,
    euclidean_squared,
    hamming,
    point_to_box_distance,
    point_to_segment_distance,
)

__all__ = [
    "Point",
    "Box",
    "LineSegment",
    "euclidean",
    "euclidean_squared",
    "hamming",
    "point_to_box_distance",
    "point_to_segment_distance",
]
