"""Distance kernels used by incremental nearest-neighbour search.

The paper uses Euclidean distance for the kd-tree and point quadtree and
Hamming distance for the trie (Section 6, Figure 17). ``point_to_box_distance``
is the "minimum distance from query to partition" bound that drives the
priority queue of the Hjaltason–Samet algorithm.
"""

from __future__ import annotations

import math

from repro.geometry.box import Box
from repro.geometry.point import Point
from repro.geometry.segment import LineSegment


def euclidean_squared(a: Point, b: Point) -> float:
    """Squared Euclidean distance (avoids the sqrt when only ordering matters)."""
    dx = a.x - b.x
    dy = a.y - b.y
    return dx * dx + dy * dy


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return math.sqrt(euclidean_squared(a, b))


def hamming(a: str, b: str) -> int:
    """Hamming distance extended to unequal lengths.

    Positions beyond the shorter string each count as one mismatch, so the
    distance between a string and its strict prefix equals the length
    difference. This matches the trie NN semantics in the paper: comparison
    proceeds character by character.
    """
    common = sum(1 for ca, cb in zip(a, b) if ca != cb)
    return common + abs(len(a) - len(b))


def point_to_box_distance(p: Point, box: Box) -> float:
    """Minimum Euclidean distance from ``p`` to any point of ``box``.

    Zero when the point is inside the box. This is MINDIST in the NN
    literature.
    """
    dx = max(box.xmin - p.x, 0.0, p.x - box.xmax)
    dy = max(box.ymin - p.y, 0.0, p.y - box.ymax)
    return math.hypot(dx, dy)


def point_to_segment_distance(p: Point, seg: LineSegment) -> float:
    """Minimum Euclidean distance from ``p`` to the segment ``seg``."""
    ax, ay = seg.a.x, seg.a.y
    bx, by = seg.b.x, seg.b.y
    dx, dy = bx - ax, by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq == 0.0:
        return euclidean(p, seg.a)
    t = ((p.x - ax) * dx + (p.y - ay) * dy) / seg_len_sq
    t = min(1.0, max(0.0, t))
    closest = Point(ax + t * dx, ay + t * dy)
    return euclidean(p, closest)


def prefix_hamming_lower_bound(prefix: str, query: str) -> int:
    """Lower bound on the Hamming distance from ``query`` to any string
    extending ``prefix``.

    Two unavoidable contributions for every descendant of a trie node whose
    accumulated path is ``prefix``: mismatches *within* the prefix, and — when
    the prefix is already longer than the query — one mismatch per extra
    position (under the extended-Hamming convention of :func:`hamming`).
    Characters after the prefix may still match, so they contribute nothing.
    This is the trie analogue of MINDIST and keeps the NN search admissible.
    """
    mismatches = sum(1 for ca, cb in zip(prefix, query) if ca != cb)
    return mismatches + max(0, len(prefix) - len(query))
