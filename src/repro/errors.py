"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class. Subclasses mirror the subsystems: storage,
index/core, catalog/engine, and planner.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(ReproError):
    """Base class for storage-layer failures."""


class PageNotFoundError(StorageError):
    """A page id was requested that the disk manager never allocated."""

    def __init__(self, page_id: int) -> None:
        super().__init__(f"page {page_id} does not exist")
        self.page_id = page_id


class PageChecksumError(StorageError):
    """A page image failed checksum verification on read.

    Raised at the deserialization boundary: torn writes, bit flips, and
    truncated images all surface here instead of producing wrong payloads.
    """

    def __init__(self, page_id: int, detail: str = "") -> None:
        message = f"page {page_id} failed checksum verification"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.page_id = page_id
        self.detail = detail


class DiskFaultError(StorageError):
    """An injected or permanent device fault (not retryable)."""


class TransientIOError(DiskFaultError):
    """A transient read/write failure; the buffer pool retries these."""


class WALError(StorageError):
    """The write-ahead log is unreadable or structurally invalid."""


class PageOverflowError(StorageError):
    """An item was added to a page beyond its byte capacity."""


class BufferPoolError(StorageError):
    """The buffer pool could not satisfy a fetch (e.g. all frames pinned)."""


class IndexError_(ReproError):
    """Base class for index-level failures (named to avoid shadowing builtin)."""


class IndexCorruptionError(IndexError_):
    """An structural invariant of an index was violated."""


class KeyNotFoundError(IndexError_):
    """A delete/lookup referenced a key that is not in the index."""

    def __init__(self, key: object) -> None:
        super().__init__(f"key not found: {key!r}")
        self.key = key


class ResolutionExceededError(IndexError_):
    """Space decomposition exceeded the configured ``resolution`` limit.

    Raised when a space-driven split can no longer separate items (e.g. many
    duplicate points) and the SP-GiST ``Resolution`` parameter forbids going
    deeper.
    """


class CatalogError(ReproError):
    """Catalog-level failure: duplicate/missing access method, opclass, etc."""


class OperatorError(ReproError):
    """An operator was applied to operands it does not support."""


class PlannerError(ReproError):
    """The planner could not produce an access path for a query."""


class SQLError(ReproError):
    """The mini-SQL front end could not parse or bind a statement."""


class TxnError(ReproError):
    """A transaction-layer failure: bad state transition or a
    write-write conflict (first-updater-wins serialization failure)."""


class TxnAbortedError(TxnError):
    """A statement was issued inside a transaction block that already
    failed — PostgreSQL's "current transaction is aborted, commands
    ignored until end of transaction block". Only COMMIT/ROLLBACK end it."""


class DeadlockError(TxnError):
    """This transaction was chosen as the victim of a lock-wait cycle.

    Retryable: the victim's transaction is rolled back and its locks
    released, so re-running the whole transaction is expected to succeed
    (PostgreSQL's ``deadlock_detected``, SQLSTATE 40P01).
    """


class LockTimeoutError(TxnError):
    """A lock acquisition exceeded the configured ``lock_timeout``.

    The waiting transaction is aborted cleanly (its statement fails and
    the block enters the aborted state), mirroring PostgreSQL's
    ``lock_not_available`` (55P03).
    """


class StatementTimeoutError(TxnError):
    """A statement ran past the configured ``statement_timeout``.

    PostgreSQL's ``query_canceled`` (57014) raised by the statement
    deadline: the statement is cancelled and its transaction aborted.
    """


class ConfigError(ReproError):
    """A configuration value (e.g. a ``REPRO_*`` environment override) is
    malformed or out of range. The message names the offending variable so
    the operator can fix it without reading a traceback."""


class ServerError(ReproError):
    """Base class for session-server failures (admission, protocol)."""


class ProtocolError(ServerError):
    """A wire frame violated the line protocol: oversized message,
    mid-frame EOF, or a malformed request/response object. Typed so both
    sides fail the *frame*, not the process, and never hang on a
    half-received line."""


class ConnectionLostError(ServerError):
    """The peer vanished mid-exchange (reset, broken pipe, empty read).

    Raised client-side when a response never arrives. Retry safety is the
    *caller's* judgment: an idempotency-keyed autocommit statement may be
    re-sent (the server dedup cache absorbs the duplicate), a statement
    inside an open transaction may not (the block must be replayed)."""


class ServerDrainingError(ServerError):
    """The server is draining: it finished (or refused) this statement and
    is closing the connection. Retryable against another endpoint — the
    pool treats the accompanying close frame as an orderly goodbye, not a
    failure of the statement's semantics."""


class ServerOverloadedError(ServerError):
    """The server refused work to protect itself: the admission queue or
    session table is full. Typed so clients can back off and retry rather
    than being queued unboundedly."""


class SessionClosedError(ServerError):
    """A statement was submitted on a closed (or never-opened) session."""


class ClientError(ReproError):
    """Base class for client-driver failures (pool, breaker, retry)."""


class PoolTimeoutError(ClientError):
    """No pooled connection became available within the acquire timeout.

    The pool is bounded by design; this is backpressure surfacing at the
    client instead of unbounded connection growth at the server."""


class CircuitOpenError(ClientError):
    """The endpoint's circuit breaker is open: recent failures crossed the
    threshold and the cool-down has not elapsed, so the call fails fast
    instead of burning a connection on a host that is known to be down."""


class RetriesExceededError(ClientError):
    """The retry policy gave up: attempts or the operation deadline ran
    out. ``last_error`` carries the final underlying failure."""

    def __init__(self, message: str, last_error: BaseException | None = None):
        super().__init__(message)
        self.last_error = last_error


class ReplicationError(ReproError):
    """Base class for replication-layer failures (shipping, failover)."""


class SegmentCorruptError(ReplicationError):
    """A shipped WAL segment failed its frame checksum or framing checks."""


class PrimaryUnavailableError(ReplicationError):
    """No primary can currently serve the request (failover in progress)."""


class ReplicaDivergedError(ReplicationError):
    """A node holds WAL beyond the promoted timeline and must be resynced."""
