"""Autovacuum-style background re-clustering of degraded SP-GiST indexes.

``REPACK INDEX`` (the SQL statement) re-clusters a whole index in one
exclusive pass. The :class:`AutoRepacker` is its background counterpart:
a daemon that watches every SP-GiST index's page fill factor and, when
one degrades below a threshold, runs *one bounded step* —
``repack_online(max_subtrees=1)``, the hottest subtree by the store's
per-page read counters — under a short EXCLUSIVE table lock, then
commits so the moved pages ship through the ordinary WAL/replication
path as full page images.

The step is deliberately impatient: it try-acquires the table lock with
a short timeout and simply skips the index when sessions are busy with
it, exactly like autovacuum backing off. Each step leaves the tree
search-consistent (see :meth:`repro.core.tree.SPGiSTIndex.repack_online`),
so a crash between steps — or in the middle of one, before its commit —
recovers to the last committed layout with no special-casing.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterator

from repro.core.tree import OnlineRepackStats, SPGiSTIndex
from repro.errors import LockTimeoutError, StatementTimeoutError
from repro.obs import METRICS
from repro.server.locks import LockManager, LockMode, LockOwner, table_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.sql import Database

AUTOREPACK_STEPS = METRICS.counter(
    "autorepack_steps_total", "Background repack steps completed."
)
AUTOREPACK_SKIPS = METRICS.counter(
    "autorepack_skips_total", "Background repack steps skipped on lock contention."
)

#: Birth stamp far above any session transaction: the background repacker
#: must always be the youngest owner, i.e. the preferred deadlock victim.
_REPACK_BIRTH = 1 << 60


class AutoRepacker:
    """Background stepper keeping SP-GiST indexes clustered under churn."""

    def __init__(
        self,
        db: "Database",
        locks: LockManager,
        engine_mutex: threading.RLock | None = None,
        *,
        fill_threshold: float = 0.6,
        interval: float = 0.05,
        lock_timeout: float = 0.05,
    ) -> None:
        self.db = db
        self.locks = locks
        self.engine_mutex = (
            engine_mutex if engine_mutex is not None else threading.RLock()
        )
        self.fill_threshold = fill_threshold
        self.interval = interval
        self.lock_timeout = lock_timeout
        self.steps = 0
        self.skips = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._seq = 0

    # -- candidate selection ---------------------------------------------------

    def candidates(self) -> Iterator[tuple[str, str, float]]:
        """``(table, index, fill)`` for every degraded SP-GiST index,
        most degraded first. Snapshot under the engine mutex — table DDL
        mutates the dicts this walks."""
        found: list[tuple[str, str, float]] = []
        with self.engine_mutex:
            for table in self.db.tables.values():
                for name, index in table.indexes.items():
                    if index.access_method != "sp_gist":
                        continue
                    structure = index.structure
                    if not isinstance(structure, SPGiSTIndex):
                        continue
                    fill = structure.store.fill_factor()
                    if fill < self.fill_threshold:
                        found.append((table.name, name, fill))
        return iter(sorted(found, key=lambda item: item[2]))

    # -- one bounded step ------------------------------------------------------

    def step(self, index_name: str | None = None) -> OnlineRepackStats | None:
        """Repack one subtree of one index; None when nothing needed.

        Takes a short EXCLUSIVE lock on the owning table (skipping the
        index — returning None — if contended), repacks the hottest
        subtree, and commits so the rewritten pages are durable and
        replicated before the lock drops.
        """
        if index_name is None:
            candidate = next(self.candidates(), None)
            if candidate is None:
                return None
            _table_name, index_name, _fill = candidate
        with self.engine_mutex:
            table, index = self.db.find_index(index_name)
        self._seq += 1
        owner = LockOwner(f"autorepack-{self._seq}", _REPACK_BIRTH + self._seq)
        try:
            self.locks.acquire(
                owner,
                table_key(table.name),
                LockMode.EXCLUSIVE,
                lock_timeout=self.lock_timeout,
            )
        except (LockTimeoutError, StatementTimeoutError):
            self.skips += 1
            AUTOREPACK_SKIPS.inc()
            return None
        try:
            with self.engine_mutex:
                stats = index.structure.repack_online(max_subtrees=1)
                # Durable + replicated before anyone reads the new layout.
                self.db._on_txn_commit(None)
        finally:
            self.locks.release_all(owner)
        self.steps += 1
        AUTOREPACK_STEPS.inc()
        return stats

    # -- daemon lifecycle ------------------------------------------------------

    def start(self) -> "AutoRepacker":
        """Run steps on a daemon thread every ``interval`` seconds."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-autorepack", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.step()
            except Exception:  # noqa: BLE001 - background daemon must survive
                # A racing DROP TABLE/INDEX can invalidate the candidate
                # between selection and repack; next tick re-selects.
                continue

    def stop(self) -> None:
        """Signal the daemon thread to exit and join it."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "AutoRepacker":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
