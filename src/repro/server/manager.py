"""The session multiplexer: worker pool, admission control, shedding.

A :class:`SessionManager` owns the shared pieces every session needs —
the database, the :class:`~repro.server.locks.LockManager`, and the
engine mutex that serializes physical engine access — and multiplexes a
fixed pool of worker threads over the connected sessions' statements.

Overload protection is layered, in order of engagement:

1. **Bounded sessions.** ``connect`` beyond ``max_sessions`` is refused
   with :class:`~repro.errors.ServerOverloadedError` — no unbounded
   session table.
2. **Shedding.** Once the statement queue is ``shed_threshold`` deep,
   read-only statements are answered from a lag-bounded standby via the
   pluggable ``shed_reader`` (the replication bridge wires this to
   ``ReplicaSet.client_read``) in the submitting thread, bypassing the
   queue entirely. Reads degrade gracefully before writes are touched.
3. **Backpressure.** A submission to a full queue (``max_queue``) is
   rejected immediately with ``ServerOverloadedError`` — clients back
   off and retry; the server never queues unboundedly.

Per session, statements run one at a time in submission order (a session
owns at most one open transaction, so out-of-order execution would be
nonsense); across sessions the workers interleave freely, which is what
drives the lock manager and MVCC paths concurrently.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable

from repro.engine.sql import Database
from repro.errors import ServerOverloadedError, SessionClosedError
from repro.obs import METRICS
from repro.server.locks import LockManager
from repro.server.session import Session, is_read_only
from repro.settings import SETTINGS, Settings

QUEUE_DEPTH = METRICS.gauge(
    "server_queue_depth", "Statements waiting in the admission queue."
)
ACTIVE_SESSIONS = METRICS.gauge(
    "server_sessions", "Currently connected sessions."
)
STATEMENTS = METRICS.counter(
    "server_statements_total", "Statements accepted for execution."
)
REJECTIONS = METRICS.counter(
    "server_overload_rejections_total",
    "Submissions refused with ServerOverloadedError.",
)
SHED_READS = METRICS.counter(
    "server_shed_reads_total",
    "Read-only statements shed to standby reads under overload.",
)


class PendingStatement:
    """A submitted statement's future: wait() for rows or a raised error."""

    __slots__ = ("session", "sql", "_event", "result", "error", "shed")

    def __init__(self, session: Session, sql: str) -> None:
        self.session = session
        self.sql = sql
        self._event = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self.shed = False

    def _finish(self, result: Any = None, error: BaseException | None = None) -> None:
        self.result = result
        self.error = error
        self._event.set()

    def done(self) -> bool:
        """True once the statement has a result or an error."""
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> Any:
        """Block until executed; return the rows or re-raise the error."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"statement still pending: {self.sql!r}")
        if self.error is not None:
            raise self.error
        return self.result


class SessionManager:
    """Multiplex a worker pool over sessions with bounded admission."""

    def __init__(
        self,
        db: Database,
        *,
        settings: Settings | None = None,
        locks: LockManager | None = None,
        shed_reader: Callable[[str], list | None] | None = None,
    ) -> None:
        self.db = db
        self.settings = settings if settings is not None else SETTINGS
        self.locks = locks if locks is not None else LockManager()
        self.engine_mutex = threading.RLock()
        self.shed_reader = shed_reader
        self._mu = threading.Lock()
        self._work = threading.Condition(self._mu)
        self._queue: deque[PendingStatement] = deque()
        self._busy: set[Session] = set()
        self._sessions: dict[str, Session] = {}
        self._next_id = 0
        self._stopping = False
        self.stats = {"submitted": 0, "rejected": 0, "shed": 0, "executed": 0}
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-worker-{i}", daemon=True
            )
            for i in range(max(1, self.settings.worker_threads))
        ]
        for thread in self._workers:
            thread.start()

    # -- connections -----------------------------------------------------------

    def connect(self, name: str | None = None) -> Session:
        """Admit a new session, or refuse with ServerOverloadedError."""
        with self._mu:
            if self._stopping:
                raise SessionClosedError("server is shutting down")
            if len(self._sessions) >= self.settings.max_sessions:
                REJECTIONS.inc()
                self.stats["rejected"] += 1
                raise ServerOverloadedError(
                    f"session table full ({self.settings.max_sessions})"
                )
            if name is None:
                self._next_id += 1
                name = f"session-{self._next_id}"
            if name in self._sessions:
                raise ServerOverloadedError(f"session name in use: {name}")
            session = Session(
                name,
                self.db,
                self.locks,
                engine_mutex=self.engine_mutex,
                settings=self.settings,
            )
            self._sessions[name] = session
            ACTIVE_SESSIONS.set(len(self._sessions))
            return session

    def disconnect(self, session: Session) -> None:
        """Close a session: abort its transaction, drop its locks."""
        with self._mu:
            self._sessions.pop(session.name, None)
            ACTIVE_SESSIONS.set(len(self._sessions))
        session.close()

    # -- statement admission ---------------------------------------------------

    def submit(self, session: Session, sql: str) -> PendingStatement:
        """Queue one statement; returns a future. Never blocks.

        Overload behaviour: read-only statements shed to the standby
        reader once the queue passes ``shed_threshold``; anything that
        cannot be shed is rejected with ServerOverloadedError when the
        queue is full.
        """
        if session.closed:
            raise SessionClosedError(f"session {session.name} is closed")
        pending = PendingStatement(session, sql)
        with self._mu:
            if self._stopping:
                raise SessionClosedError("server is shutting down")
            depth = len(self._queue)
            shed = (
                self.shed_reader is not None
                and depth >= self.settings.shed_threshold
                and is_read_only(sql)
                and not session.in_transaction
            )
            if not shed:
                if depth >= self.settings.max_queue:
                    REJECTIONS.inc()
                    self.stats["rejected"] += 1
                    raise ServerOverloadedError(
                        f"statement queue full ({self.settings.max_queue})"
                    )
                self._queue.append(pending)
                self.stats["submitted"] += 1
                STATEMENTS.inc()
                QUEUE_DEPTH.set(len(self._queue))
                self._work.notify()
        if shed:
            self._shed(pending)
        return pending

    def execute(self, session: Session, sql: str, timeout: float | None = None) -> Any:
        """Submit and wait: the synchronous convenience path."""
        return self.submit(session, sql).wait(timeout)

    def _shed(self, pending: PendingStatement) -> None:
        """Answer a read from a standby in the submitting thread.

        Falls back to normal admission when the reader declines the
        statement (unparseable / not the replicated table).
        """
        assert self.shed_reader is not None
        try:
            rows = self.shed_reader(pending.sql)
        except Exception as exc:
            pending._finish(error=exc)
            return
        if rows is None:
            # Not sheddable after all: one more chance through the queue.
            with self._mu:
                if len(self._queue) >= self.settings.max_queue:
                    REJECTIONS.inc()
                    self.stats["rejected"] += 1
                    pending._finish(
                        error=ServerOverloadedError(
                            f"statement queue full ({self.settings.max_queue})"
                        )
                    )
                    return
                self._queue.append(pending)
                self.stats["submitted"] += 1
                STATEMENTS.inc()
                QUEUE_DEPTH.set(len(self._queue))
                self._work.notify()
            return
        pending.shed = True
        with self._mu:
            self.stats["shed"] += 1
        SHED_READS.inc()
        STATEMENTS.inc()
        pending._finish(result=rows)

    # -- workers ---------------------------------------------------------------

    def _take(self) -> PendingStatement | None:
        """Pop the first queued statement whose session is idle."""
        with self._work:
            while True:
                if self._stopping:
                    return None
                for idx, pending in enumerate(self._queue):
                    if pending.session not in self._busy:
                        del self._queue[idx]
                        self._busy.add(pending.session)
                        QUEUE_DEPTH.set(len(self._queue))
                        return pending
                self._work.wait()

    def _worker_loop(self) -> None:
        while True:
            pending = self._take()
            if pending is None:
                return
            try:
                result = pending.session.execute(pending.sql)
            except BaseException as exc:  # noqa: BLE001 - future carries it
                pending._finish(error=exc)
            else:
                pending._finish(result=result)
            finally:
                with self._work:
                    self._busy.discard(pending.session)
                    self.stats["executed"] += 1
                    self._work.notify_all()

    # -- lifecycle -------------------------------------------------------------

    def stop(self) -> None:
        """Drain nothing: fail queued statements, close sessions, join."""
        with self._work:
            self._stopping = True
            queued = list(self._queue)
            self._queue.clear()
            QUEUE_DEPTH.set(0)
            self._work.notify_all()
        for pending in queued:
            pending._finish(error=SessionClosedError("server stopped"))
        for thread in self._workers:
            thread.join(timeout=5.0)
        with self._mu:
            sessions = list(self._sessions.values())
            self._sessions.clear()
            ACTIVE_SESSIONS.set(0)
        for session in sessions:
            session.close()

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
