"""The session multiplexer: worker pool, admission control, shedding.

A :class:`SessionManager` owns the shared pieces every session needs —
the database, the :class:`~repro.server.locks.LockManager`, and the
engine mutex that serializes physical engine access — and multiplexes a
fixed pool of worker threads over the connected sessions' statements.

Overload protection is layered, in order of engagement:

1. **Bounded sessions.** ``connect`` beyond ``max_sessions`` is refused
   with :class:`~repro.errors.ServerOverloadedError` — no unbounded
   session table.
2. **Shedding.** Once the statement queue is ``shed_threshold`` deep,
   read-only statements are answered from a lag-bounded standby via the
   pluggable ``shed_reader`` (the replication bridge wires this to
   ``ReplicaSet.client_read``) in the submitting thread, bypassing the
   queue entirely. Reads degrade gracefully before writes are touched.
3. **Backpressure.** A submission to a full queue (``max_queue``) is
   rejected immediately with ``ServerOverloadedError`` — clients back
   off and retry; the server never queues unboundedly.

Per session, statements run one at a time in submission order (a session
owns at most one open transaction, so out-of-order execution would be
nonsense); across sessions the workers interleave freely, which is what
drives the lock manager and MVCC paths concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Any, Callable

from repro.engine.sql import Database
from repro.errors import (
    ReplicationError,
    ServerDrainingError,
    ServerOverloadedError,
    SessionClosedError,
    StatementTimeoutError,
)
from repro.obs import METRICS
from repro.server.locks import LockManager
from repro.server.session import Session, is_read_only
from repro.settings import SETTINGS, Settings

QUEUE_DEPTH = METRICS.gauge(
    "server_queue_depth", "Statements waiting in the admission queue."
)
ACTIVE_SESSIONS = METRICS.gauge(
    "server_sessions", "Currently connected sessions."
)
STATEMENTS = METRICS.counter(
    "server_statements_total", "Statements accepted for execution."
)
REJECTIONS = METRICS.counter(
    "server_overload_rejections_total",
    "Submissions refused with ServerOverloadedError.",
)
SHED_READS = METRICS.counter(
    "server_shed_reads_total",
    "Read-only statements shed to standby reads under overload.",
)
DEDUP_HITS = METRICS.counter(
    "server_dedup_hits_total",
    "Keyed statements answered from the idempotency dedup cache.",
)
DEDUP_ENTRIES = METRICS.gauge(
    "server_dedup_entries",
    "Completed entries currently held by the dedup cache.",
)
DRAIN_ABORTS = METRICS.counter(
    "server_drain_aborts_total",
    "Statements cleanly aborted because the drain grace period expired.",
)


class DedupCache:
    """Bounded LRU of idempotency key -> completed statement outcome.

    The server half of exactly-once autocommit writes: a client stamps a
    write with a unique key and may re-send it after losing the ack; the
    cache answers the duplicate with the recorded result instead of
    applying twice. Outcomes are ``("ok", result)`` for acknowledged
    statements and ``("indoubt", message)`` for commits whose quorum ack
    failed after the local apply — a retry of an in-doubt key re-raises
    :class:`~repro.errors.ReplicationError` rather than re-executing,
    because re-executing could double-apply a commit that survived.

    A key whose first attempt is still executing is *joined*: the retry
    shares the original's :class:`PendingStatement` instead of racing it.
    The cache deliberately lives outside any session, so it survives
    reconnects and replica-set failovers for as long as the manager does.
    """

    def __init__(self, capacity: int | None = None) -> None:
        self.capacity = capacity if capacity is not None else SETTINGS.dedup_cache_size
        self._mu = threading.Lock()
        self._done: OrderedDict[str, tuple[str, Any]] = OrderedDict()
        self._inflight: dict[str, "PendingStatement"] = {}
        self.stats = {"hits": 0, "joined": 0, "recorded": 0, "evicted": 0}

    def begin(
        self, key: str, pending: "PendingStatement"
    ) -> "tuple[str, Any] | PendingStatement | None":
        """Reserve ``key`` for ``pending``; report duplicates.

        Returns the recorded outcome tuple for a completed key, the
        original :class:`PendingStatement` for an in-flight key, or
        ``None`` after reserving a fresh key.
        """
        with self._mu:
            outcome = self._done.get(key)
            if outcome is not None:
                self._done.move_to_end(key)
                self.stats["hits"] += 1
                DEDUP_HITS.inc()
                return outcome
            original = self._inflight.get(key)
            if original is not None:
                self.stats["joined"] += 1
                DEDUP_HITS.inc()
                return original
            self._inflight[key] = pending
            return None

    def finish(self, key: str, outcome: tuple[str, Any]) -> None:
        """Record a completed key's outcome (evicting LRU past capacity)."""
        with self._mu:
            self._inflight.pop(key, None)
            self._done[key] = outcome
            self._done.move_to_end(key)
            self.stats["recorded"] += 1
            while len(self._done) > self.capacity:
                self._done.popitem(last=False)
                self.stats["evicted"] += 1
            DEDUP_ENTRIES.set(len(self._done))

    def release(self, key: str) -> None:
        """Drop a reservation without recording (the statement never
        applied — a failed or rejected attempt is safe to re-execute)."""
        with self._mu:
            self._inflight.pop(key, None)

    def lookup(self, key: str) -> tuple[str, Any] | None:
        """The recorded outcome for ``key``, if completed (no LRU touch)."""
        with self._mu:
            return self._done.get(key)

    def __len__(self) -> int:
        with self._mu:
            return len(self._done)


class PendingStatement:
    """A submitted statement's future: wait() for rows or a raised error."""

    __slots__ = ("session", "sql", "_event", "result", "error", "shed",
                 "key", "deadline")

    def __init__(
        self,
        session: Session,
        sql: str,
        key: str | None = None,
        deadline: float | None = None,
    ) -> None:
        self.session = session
        self.sql = sql
        self._event = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self.shed = False
        self.key = key
        self.deadline = deadline

    def _finish(self, result: Any = None, error: BaseException | None = None) -> None:
        self.result = result
        self.error = error
        self._event.set()

    def done(self) -> bool:
        """True once the statement has a result or an error."""
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> Any:
        """Block until executed; return the rows or re-raise the error."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"statement still pending: {self.sql!r}")
        if self.error is not None:
            raise self.error
        return self.result


class SessionManager:
    """Multiplex a worker pool over sessions with bounded admission."""

    def __init__(
        self,
        db: Database,
        *,
        settings: Settings | None = None,
        locks: LockManager | None = None,
        shed_reader: Callable[[str], list | None] | None = None,
        dedup: DedupCache | None = None,
    ) -> None:
        self.db = db
        self.settings = settings if settings is not None else SETTINGS
        self.locks = locks if locks is not None else LockManager()
        self.engine_mutex = threading.RLock()
        self.shed_reader = shed_reader
        # The dedup cache may be handed in so it outlives this manager (a
        # drained-and-restarted server keeps its exactly-once memory).
        self.dedup = dedup if dedup is not None else DedupCache(
            self.settings.dedup_cache_size
        )
        self._mu = threading.Lock()
        self._work = threading.Condition(self._mu)
        self._queue: deque[PendingStatement] = deque()
        self._busy: set[Session] = set()
        self._sessions: dict[str, Session] = {}
        self._next_id = 0
        self._stopping = False
        self._draining = False
        self.stats = {"submitted": 0, "rejected": 0, "shed": 0, "executed": 0,
                      "dedup_hits": 0, "drain_aborts": 0}
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-worker-{i}", daemon=True
            )
            for i in range(max(1, self.settings.worker_threads))
        ]
        for thread in self._workers:
            thread.start()

    # -- connections -----------------------------------------------------------

    def connect(self, name: str | None = None) -> Session:
        """Admit a new session, or refuse with ServerOverloadedError."""
        with self._mu:
            if self._draining:
                raise ServerDrainingError("server is draining")
            if self._stopping:
                raise SessionClosedError("server is shutting down")
            if len(self._sessions) >= self.settings.max_sessions:
                REJECTIONS.inc()
                self.stats["rejected"] += 1
                raise ServerOverloadedError(
                    f"session table full ({self.settings.max_sessions})"
                )
            if name is None:
                self._next_id += 1
                name = f"session-{self._next_id}"
            if name in self._sessions:
                raise ServerOverloadedError(f"session name in use: {name}")
            session = Session(
                name,
                self.db,
                self.locks,
                engine_mutex=self.engine_mutex,
                settings=self.settings,
            )
            self._sessions[name] = session
            ACTIVE_SESSIONS.set(len(self._sessions))
            return session

    def disconnect(self, session: Session) -> None:
        """Close a session: abort its transaction, drop its locks."""
        with self._mu:
            self._sessions.pop(session.name, None)
            ACTIVE_SESSIONS.set(len(self._sessions))
        session.close()

    # -- statement admission ---------------------------------------------------

    def submit(
        self,
        session: Session,
        sql: str,
        *,
        key: str | None = None,
        statement_timeout: float | None = None,
    ) -> PendingStatement:
        """Queue one statement; returns a future. Never blocks.

        ``key`` is a client idempotency key: a duplicate of a completed
        key is answered from the dedup cache (exactly-once), a duplicate
        of an in-flight key joins the original's future. ``statement_timeout``
        is the client's propagated deadline budget in seconds — it covers
        queue wait *and* execution, so a statement that expires while
        queued fails without ever entering the engine.

        Overload behaviour: read-only statements shed to the standby
        reader once the queue passes ``shed_threshold``; anything that
        cannot be shed is rejected with ServerOverloadedError when the
        queue is full.
        """
        if session.closed:
            raise SessionClosedError(f"session {session.name} is closed")
        deadline = (
            None if statement_timeout is None or statement_timeout <= 0
            else time.monotonic() + statement_timeout
        )
        pending = PendingStatement(session, sql, key=key, deadline=deadline)
        if key is not None:
            prior = self.dedup.begin(key, pending)
            if isinstance(prior, PendingStatement):
                self.stats["dedup_hits"] += 1
                return prior
            if prior is not None:
                self.stats["dedup_hits"] += 1
                kind, payload = prior
                if kind == "ok":
                    pending._finish(result=payload)
                else:
                    pending._finish(error=ReplicationError(
                        f"statement with idempotency key {key!r} is in doubt: "
                        f"{payload}"
                    ))
                return pending
        try:
            with self._mu:
                if self._draining:
                    raise ServerDrainingError("server is draining")
                if self._stopping:
                    raise SessionClosedError("server is shutting down")
                depth = len(self._queue)
                shed = (
                    self.shed_reader is not None
                    and depth >= self.settings.shed_threshold
                    and key is None
                    and is_read_only(sql)
                    and not session.in_transaction
                )
                if not shed:
                    if depth >= self.settings.max_queue:
                        REJECTIONS.inc()
                        self.stats["rejected"] += 1
                        raise ServerOverloadedError(
                            f"statement queue full ({self.settings.max_queue})"
                        )
                    self._queue.append(pending)
                    self.stats["submitted"] += 1
                    STATEMENTS.inc()
                    QUEUE_DEPTH.set(len(self._queue))
                    self._work.notify()
        except Exception:
            # A rejected keyed statement never ran: drop the reservation
            # so a backed-off retry re-executes instead of joining a
            # future nobody will ever finish.
            if key is not None:
                self.dedup.release(key)
            raise
        if shed:
            self._shed(pending)
        return pending

    def execute(
        self,
        session: Session,
        sql: str,
        timeout: float | None = None,
        *,
        key: str | None = None,
        statement_timeout: float | None = None,
    ) -> Any:
        """Submit and wait: the synchronous convenience path."""
        pending = self.submit(
            session, sql, key=key, statement_timeout=statement_timeout
        )
        return pending.wait(timeout)

    def _shed(self, pending: PendingStatement) -> None:
        """Answer a read from a standby in the submitting thread.

        Falls back to normal admission when the reader declines the
        statement (unparseable / not the replicated table).
        """
        assert self.shed_reader is not None
        try:
            rows = self.shed_reader(pending.sql)
        except Exception as exc:
            pending._finish(error=exc)
            return
        if rows is None:
            # Not sheddable after all: one more chance through the queue.
            with self._mu:
                if len(self._queue) >= self.settings.max_queue:
                    REJECTIONS.inc()
                    self.stats["rejected"] += 1
                    pending._finish(
                        error=ServerOverloadedError(
                            f"statement queue full ({self.settings.max_queue})"
                        )
                    )
                    return
                self._queue.append(pending)
                self.stats["submitted"] += 1
                STATEMENTS.inc()
                QUEUE_DEPTH.set(len(self._queue))
                self._work.notify()
            return
        pending.shed = True
        with self._mu:
            self.stats["shed"] += 1
        SHED_READS.inc()
        STATEMENTS.inc()
        pending._finish(result=rows)

    # -- workers ---------------------------------------------------------------

    def _take(self) -> PendingStatement | None:
        """Pop the first queued statement whose session is idle."""
        with self._work:
            while True:
                if self._stopping:
                    return None
                for idx, pending in enumerate(self._queue):
                    if pending.session not in self._busy:
                        del self._queue[idx]
                        self._busy.add(pending.session)
                        QUEUE_DEPTH.set(len(self._queue))
                        return pending
                self._work.wait()

    def _worker_loop(self) -> None:
        while True:
            pending = self._take()
            if pending is None:
                return
            try:
                remaining = None
                if pending.deadline is not None:
                    remaining = pending.deadline - time.monotonic()
                    if remaining <= 0:
                        raise StatementTimeoutError(
                            "canceling statement: deadline expired while queued"
                        )
                result = pending.session.execute(
                    pending.sql, statement_timeout=remaining
                )
            except BaseException as exc:  # noqa: BLE001 - future carries it
                if pending.key is not None:
                    if isinstance(exc, ReplicationError):
                        # The local apply happened but the quorum ack did
                        # not: the commit is in doubt. Poison the key so a
                        # retry re-raises instead of double-applying.
                        self.dedup.finish(pending.key, ("indoubt", str(exc)))
                    else:
                        self.dedup.release(pending.key)
                pending._finish(error=exc)
            else:
                if pending.key is not None:
                    self.dedup.finish(pending.key, ("ok", result))
                pending._finish(result=result)
            finally:
                with self._work:
                    self._busy.discard(pending.session)
                    self.stats["executed"] += 1
                    self._work.notify_all()

    # -- lifecycle -------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self, timeout: float | None = None) -> dict[str, int]:
        """Graceful stop: refuse new work, finish in-flight, abort the rest.

        Three phases, mirroring PostgreSQL's smart->fast shutdown ladder:

        1. **Refuse.** New connections and submissions fail with the
           retryable :class:`~repro.errors.ServerDrainingError` — clients
           take it as "go elsewhere", not as a statement failure.
        2. **Grace.** Up to ``timeout`` (default ``SETTINGS.drain_timeout``)
           seconds for queued and executing statements to complete
           normally.
        3. **Abort.** Statements still queued are failed with
           ``ServerDrainingError`` (their dedup reservations released —
           they never applied, so a retry elsewhere is safe), sessions
           are closed (cleanly aborting any open transaction), and the
           worker pool is joined.

        Returns ``{"finished": n, "aborted": n}`` for the transcript.
        """
        if timeout is None:
            timeout = self.settings.drain_timeout
        deadline = time.monotonic() + max(0.0, timeout)
        executed_before = self.stats["executed"]
        with self._work:
            self._draining = True
        while time.monotonic() < deadline:
            with self._mu:
                if not self._queue and not self._busy:
                    break
            time.sleep(0.002)
        aborted = 0
        with self._work:
            self._stopping = True
            queued = list(self._queue)
            self._queue.clear()
            QUEUE_DEPTH.set(0)
            self._work.notify_all()
        for pending in queued:
            if pending.key is not None:
                self.dedup.release(pending.key)
            pending._finish(error=ServerDrainingError(
                "statement aborted: server drained before it could run"
            ))
            aborted += 1
            DRAIN_ABORTS.inc()
        for thread in self._workers:
            thread.join(timeout=max(0.1, deadline - time.monotonic() + 1.0))
        with self._mu:
            sessions = list(self._sessions.values())
            self._sessions.clear()
            ACTIVE_SESSIONS.set(0)
        for session in sessions:
            if session.in_transaction:
                aborted += 1
                DRAIN_ABORTS.inc()
            session.close()
        self.stats["drain_aborts"] += aborted
        return {
            "finished": self.stats["executed"] - executed_before,
            "aborted": aborted,
        }

    def stop(self) -> None:
        """Drain nothing: fail queued statements, close sessions, join."""
        with self._work:
            self._stopping = True
            queued = list(self._queue)
            self._queue.clear()
            QUEUE_DEPTH.set(0)
            self._work.notify_all()
        for pending in queued:
            if pending.key is not None:
                self.dedup.release(pending.key)
            pending._finish(error=SessionClosedError("server stopped"))
        for thread in self._workers:
            thread.join(timeout=5.0)
        with self._mu:
            sessions = list(self._sessions.values())
            self._sessions.clear()
            ACTIVE_SESSIONS.set(0)
        for session in sessions:
            session.close()

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
