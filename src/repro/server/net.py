"""A line-based text protocol over TCP: one SQL statement in, one JSON line out.

The wire format is deliberately tiny — the point of this PR is the
concurrency machinery behind it, not the protocol:

- Client sends one UTF-8 SQL statement per line.
- Server replies with exactly one JSON line:
  ``{"ok": true, "rows": [...]}"`` for row sets,
  ``{"ok": true, "status": "..."}`` for DDL/DML status strings, or
  ``{"ok": false, "error": "<ExceptionClass>", "message": "..."}``.
- Each TCP connection is one session (at most one open transaction);
  closing the connection rolls the transaction back and drops its locks.

Errors carry their exception class name so :class:`SQLClient` can
re-raise the typed error (``DeadlockError`` stays retryable across the
wire). Non-JSON-native values (points, boxes) are serialized via ``str``.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Any

from repro import errors as _errors
from repro.errors import ReproError, ServerError
from repro.server.manager import SessionManager


def _encode(result: Any) -> str:
    if isinstance(result, str):
        payload = {"ok": True, "status": result}
    elif isinstance(result, list):
        payload = {"ok": True, "rows": [list(row) for row in result]}
    else:
        payload = {"ok": True, "status": str(result)}
    return json.dumps(payload, default=str)


def _encode_error(exc: BaseException) -> str:
    return json.dumps(
        {"ok": False, "error": type(exc).__name__, "message": str(exc)}
    )


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        manager: SessionManager = self.server.manager  # type: ignore[attr-defined]
        try:
            session = manager.connect()
        except ReproError as exc:
            self.wfile.write((_encode_error(exc) + "\n").encode())
            return
        try:
            for raw in self.rfile:
                line = raw.decode("utf-8", "replace").strip()
                if not line:
                    continue
                if line in (r"\q", "quit", "exit"):
                    break
                try:
                    result = manager.execute(session, line)
                except Exception as exc:  # noqa: BLE001 - ships to client
                    response = _encode_error(exc)
                else:
                    response = _encode(result)
                try:
                    self.wfile.write((response + "\n").encode())
                except (BrokenPipeError, ConnectionResetError):
                    break
        finally:
            manager.disconnect(session)


class SQLServer(socketserver.ThreadingTCPServer):
    """Serve the manager's sessions over TCP; one thread per connection."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, manager: SessionManager, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _Handler)
        self.manager = manager
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[:2]

    def start(self) -> "SQLServer":
        """Serve in a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-sql-server", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and join the accept thread."""
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "SQLServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


class SQLClient:
    """A blocking client for the line protocol; re-raises typed errors."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def execute(self, sql: str) -> Any:
        """Run one statement; returns rows (list) or a status string."""
        self._file.write((sql.strip() + "\n").encode())
        self._file.flush()
        raw = self._file.readline()
        if not raw:
            raise ServerError("connection closed by server")
        payload = json.loads(raw.decode())
        if payload["ok"]:
            if "rows" in payload:
                return [tuple(row) for row in payload["rows"]]
            return payload["status"]
        exc_class = getattr(_errors, payload["error"], ServerError)
        if not (isinstance(exc_class, type) and issubclass(exc_class, BaseException)):
            exc_class = ServerError
        raise exc_class(payload["message"])

    def close(self) -> None:
        """Send the quit line and close the socket (rolls back the session)."""
        try:
            self._file.write(b"\\q\n")
            self._file.flush()
        except OSError:
            pass
        self._file.close()
        self._sock.close()

    def __enter__(self) -> "SQLClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
