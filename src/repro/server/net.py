"""A line-based text protocol over TCP: one request in, one JSON line out.

The wire format is deliberately tiny — the point is the machinery behind
it, not the protocol:

- Client sends one request per line. Two request shapes are accepted:

  * a bare UTF-8 SQL statement (the PR 6 legacy form), or
  * a JSON object ``{"sql": "...", "key": "...", "timeout": 1.5}`` — the
    fault-tolerant driver's form. ``key`` is an idempotency key for
    exactly-once autocommit writes (the server dedup cache absorbs
    re-sends after a lost ack); ``timeout`` is the client's remaining
    deadline budget in seconds, propagated into the server statement
    deadline so queue wait counts too. ``{"op": "ping"}`` is a health
    probe answered with ``{"ok": true, "pong": true}``.

- Server replies with exactly one JSON line:
  ``{"ok": true, "rows": [...]}`` for row sets,
  ``{"ok": true, "status": "..."}`` for DDL/DML status strings, or
  ``{"ok": false, "error": "<ExceptionClass>", "message": "..."}``.
  A reply carrying ``"close": true`` is a **connection-close frame**: the
  server is done with this connection (drain, fatal framing violation)
  and will close it after the frame — the pool treats it as an orderly
  goodbye and reconnects elsewhere, not as a statement failure.

- Each TCP connection is one session (at most one open transaction);
  closing the connection rolls the transaction back and drops its locks.

Framing is hardened: lines longer than ``SETTINGS.max_message_bytes``,
mid-frame EOFs, and malformed JSON request objects surface as a typed
:class:`~repro.errors.ProtocolError` (and never execute a partial
statement) instead of a hang or a raw ``json`` traceback.

Errors carry their exception class name so :class:`SQLClient` can
re-raise the typed error (``DeadlockError`` stays retryable across the
wire). Non-JSON-native values (points, boxes) are serialized via ``str``.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from typing import Any

from repro import errors as _errors
from repro.errors import (
    ConnectionLostError,
    ProtocolError,
    ReproError,
    ServerDrainingError,
    ServerError,
)
from repro.obs import METRICS
from repro.server.manager import SessionManager
from repro.settings import SETTINGS

PROTOCOL_ERRORS = METRICS.counter(
    "server_protocol_errors_total",
    "Request frames rejected for violating the line protocol.",
)
DRAIN_CLOSE_FRAMES = METRICS.counter(
    "server_drain_close_frames_total",
    "Connection-close frames emitted while draining.",
)


def _encode(result: Any) -> str:
    if isinstance(result, str):
        payload = {"ok": True, "status": result}
    elif isinstance(result, list):
        payload = {"ok": True, "rows": [list(row) for row in result]}
    else:
        payload = {"ok": True, "status": str(result)}
    return json.dumps(payload, default=str)


def _encode_error(exc: BaseException, close: bool = False) -> str:
    payload: dict[str, Any] = {
        "ok": False, "error": type(exc).__name__, "message": str(exc)
    }
    if close:
        payload["close"] = True
    return json.dumps(payload)


def _parse_request(line: str) -> dict[str, Any]:
    """One request line -> ``{"sql"|"op": ..., "key": ..., "timeout": ...}``.

    Raises :class:`ProtocolError` on malformed JSON frames; a line that
    does not start with ``{`` is the legacy bare-SQL form.
    """
    if not line.startswith("{"):
        return {"sql": line}
    try:
        frame = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"malformed JSON request frame: {exc}") from None
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"request frame must be a JSON object, got {type(frame).__name__}"
        )
    if frame.get("op") == "ping":
        return {"op": "ping"}
    sql = frame.get("sql")
    if not isinstance(sql, str) or not sql.strip():
        raise ProtocolError("request frame is missing a 'sql' string")
    key = frame.get("key")
    if key is not None and not isinstance(key, str):
        raise ProtocolError("request 'key' must be a string")
    timeout = frame.get("timeout")
    if timeout is not None and not isinstance(timeout, (int, float)):
        raise ProtocolError("request 'timeout' must be a number")
    return {"sql": sql, "key": key, "timeout": timeout}


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: SQLServer = self.server  # type: ignore[assignment]
        manager = server.manager
        server._register(self.connection)
        try:
            try:
                session = manager.connect()
            except ReproError as exc:
                self._send(_encode_error(exc, close=True))
                return
            try:
                self._serve(server, manager, session)
            finally:
                manager.disconnect(session)
        finally:
            server._unregister(self.connection)

    def _send(self, response: str) -> bool:
        try:
            self.wfile.write((response + "\n").encode())
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False

    def _close_frame(self, reason: str) -> None:
        DRAIN_CLOSE_FRAMES.inc()
        self._send(_encode_error(ServerDrainingError(reason), close=True))

    def _serve(self, server: "SQLServer", manager: SessionManager, session) -> None:
        limit = manager.settings.max_message_bytes
        while True:
            if server.draining:
                self._close_frame("server is draining; reconnect elsewhere")
                return
            try:
                raw = self.rfile.readline(limit + 1)
            except (ConnectionResetError, OSError):
                return
            if not raw:
                # Orderly EOF from the peer — or our own drain shutdown
                # of the read side waking an idle connection.
                if server.draining:
                    self._close_frame("server is draining; reconnect elsewhere")
                return
            if len(raw) > limit:
                PROTOCOL_ERRORS.inc()
                # Framing is lost (the rest of the oversized line would
                # read as garbage statements): refuse and close.
                self._send(_encode_error(ProtocolError(
                    f"request exceeds max_message_bytes ({limit})"
                ), close=True))
                return
            if not raw.endswith(b"\n"):
                # Mid-frame EOF: the peer died inside a line. Never
                # execute a partial statement.
                PROTOCOL_ERRORS.inc()
                self._send(_encode_error(ProtocolError(
                    "mid-frame EOF: partial request discarded"
                ), close=True))
                return
            line = raw.decode("utf-8", "replace").strip()
            if not line:
                continue
            if line in (r"\q", "quit", "exit"):
                return
            try:
                request = _parse_request(line)
            except ProtocolError as exc:
                # The line itself framed correctly, so the connection is
                # still in sync: report and keep serving.
                PROTOCOL_ERRORS.inc()
                if not self._send(_encode_error(exc)):
                    return
                continue
            if request.get("op") == "ping":
                if not self._send('{"ok": true, "pong": true}'):
                    return
                continue
            try:
                result = manager.execute(
                    session,
                    request["sql"],
                    key=request.get("key"),
                    statement_timeout=request.get("timeout"),
                )
            except ServerDrainingError as exc:
                self._send(_encode_error(exc, close=True))
                return
            except Exception as exc:  # noqa: BLE001 - ships to client
                response = _encode_error(exc)
            else:
                response = _encode(result)
            if not self._send(response):
                return


class SQLServer(socketserver.ThreadingTCPServer):
    """Serve the manager's sessions over TCP; one thread per connection."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, manager: SessionManager, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _Handler)
        self.manager = manager
        self._thread: threading.Thread | None = None
        self._draining = False
        self._conns: set[socket.socket] = set()
        self._conns_mu = threading.Lock()

    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[:2]

    @property
    def draining(self) -> bool:
        return self._draining

    def _register(self, conn: socket.socket) -> None:
        with self._conns_mu:
            self._conns.add(conn)

    def _unregister(self, conn: socket.socket) -> None:
        with self._conns_mu:
            self._conns.discard(conn)

    def start(self) -> "SQLServer":
        """Serve in a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-sql-server", daemon=True
        )
        self._thread.start()
        return self

    def drain(self, timeout: float | None = None) -> dict[str, int]:
        """Graceful shutdown: stop accepting, finish or abort, say goodbye.

        1. Stops the accept loop — no new connections.
        2. Wakes idle connections (read-side shutdown) so their handlers
           emit a connection-close frame the pool understands and exit.
        3. Drains the session manager: in-flight statements get up to
           ``timeout`` seconds to finish; stragglers are cleanly aborted
           with :class:`~repro.errors.ServerDrainingError`.
        4. Closes the listener and joins the accept thread.

        Returns the manager's ``{"finished", "aborted"}`` drain stats.
        """
        self._draining = True
        self.shutdown()
        with self._conns_mu:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RD)
            except OSError:
                pass
        stats = self.manager.drain(timeout=timeout)
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            with self._conns_mu:
                if not self._conns:
                    break
            time.sleep(0.005)
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        return stats

    def stop(self) -> None:
        """Stop serving and join the accept thread (abrupt, no goodbyes)."""
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "SQLServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


class SQLClient:
    """A blocking client for the line protocol; re-raises typed errors.

    The bare driver: one socket, no pooling, no retries. The fault-
    tolerant layers live in :mod:`repro.client`, which composes this
    class; application code should normally use
    :class:`repro.client.ResilientClient`.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        #: Set once the server announced it is closing this connection
        #: (a ``"close": true`` frame): the pool must not reuse it.
        self.server_closed = False
        self.max_message_bytes = SETTINGS.max_message_bytes

    def settimeout(self, timeout: float | None) -> None:
        """Bound every subsequent socket read/write."""
        self._sock.settimeout(timeout)

    def execute(
        self,
        sql: str,
        *,
        key: str | None = None,
        timeout: float | None = None,
    ) -> Any:
        """Run one statement; returns rows (list) or a status string.

        ``key`` stamps the statement with an idempotency key; ``timeout``
        propagates a deadline budget (seconds) to the server. Either one
        switches the request to the JSON frame; bare SQL keeps the legacy
        form so old servers still interoperate.
        """
        if key is None and timeout is None:
            frame = sql.strip()
        else:
            payload: dict[str, Any] = {"sql": sql.strip()}
            if key is not None:
                payload["key"] = key
            if timeout is not None:
                payload["timeout"] = timeout
            frame = json.dumps(payload)
        self._write_line(frame)
        return self._read_response()

    def ping(self) -> bool:
        """Health probe: True iff the server answers with a pong."""
        try:
            self._write_line('{"op": "ping"}')
            raw = self._read_line()
        except ReproError:
            return False
        try:
            return bool(json.loads(raw.decode()).get("pong"))
        except ValueError:
            return False

    # -- wire helpers ----------------------------------------------------------

    def _write_line(self, frame: str) -> None:
        try:
            self._file.write((frame + "\n").encode())
            self._file.flush()
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise ConnectionLostError(f"send failed: {exc}") from None

    def _read_line(self) -> bytes:
        try:
            raw = self._file.readline(self.max_message_bytes + 1)
        except socket.timeout:
            raise ConnectionLostError(
                "timed out waiting for a response (outcome unknown)"
            ) from None
        except (ConnectionResetError, OSError) as exc:
            raise ConnectionLostError(f"receive failed: {exc}") from None
        if not raw:
            raise ConnectionLostError("connection closed by server")
        if len(raw) > self.max_message_bytes:
            raise ProtocolError(
                f"response exceeds max_message_bytes ({self.max_message_bytes})"
            )
        if not raw.endswith(b"\n"):
            raise ProtocolError("mid-frame EOF in response")
        return raw

    def _read_response(self) -> Any:
        raw = self._read_line()
        try:
            payload = json.loads(raw.decode())
        except ValueError as exc:
            raise ProtocolError(f"malformed response frame: {exc}") from None
        if not isinstance(payload, dict) or "ok" not in payload:
            raise ProtocolError("response frame is missing 'ok'")
        if payload.get("close"):
            self.server_closed = True
        if payload["ok"]:
            if "rows" in payload:
                return [tuple(row) for row in payload["rows"]]
            return payload["status"]
        exc_class = getattr(_errors, payload.get("error", ""), ServerError)
        if not (isinstance(exc_class, type) and issubclass(exc_class, BaseException)):
            exc_class = ServerError
        raise exc_class(payload.get("message", "server error"))

    def close(self) -> None:
        """Send the quit line and close the socket (rolls back the session)."""
        try:
            self._file.write(b"\\q\n")
            self._file.flush()
        except OSError:
            pass
        try:
            self._file.close()
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "SQLClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
