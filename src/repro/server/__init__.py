"""The concurrent session server: sessions, locks, admission control.

PostgreSQL exercises SP-GiST from many concurrent backends; this package
supplies that serving layer for the reproduction:

- :class:`~repro.server.locks.LockManager` — table- and TID-level
  shared/row/exclusive locks, FIFO-fair queues, wait-for-graph deadlock
  detection with youngest-victim abort, lock-wait and statement deadlines;
- :class:`~repro.server.session.Session` — one connection owning at most
  one open transaction, two-phase-locked DML, typed timeout/deadlock
  errors with clean transaction abort;
- :class:`~repro.server.manager.SessionManager` — a thread-pool of
  workers multiplexed over sessions, a bounded admission queue with
  backpressure (:class:`~repro.errors.ServerOverloadedError`), and
  read-only shedding to lag-bounded standby reads under overload;
- :class:`~repro.server.bridge.ReplicatedDatabase` — the SQL façade over
  a :class:`~repro.replication.ReplicaSet` primary: commits are made
  durable, shipped, and quorum-acknowledged; failover rebinds the façade
  and fences off transactions begun on the old primary;
- :mod:`~repro.server.net` — a line-based text protocol (execute SQL
  string -> rows/error) over TCP, with a tiny blocking client.
"""

from repro.server.bridge import ReplicatedDatabase
from repro.server.locks import LockManager, LockMode, LockOwner
from repro.server.manager import PendingStatement, SessionManager
from repro.server.session import Session

__all__ = [
    "LockManager",
    "LockMode",
    "LockOwner",
    "PendingStatement",
    "ReplicatedDatabase",
    "Session",
    "SessionManager",
]
