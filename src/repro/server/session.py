"""One client connection: a session owning at most one open transaction.

A :class:`Session` wraps the engine's per-session
:class:`~repro.engine.sql.SessionState` with the server-side concerns the
engine deliberately knows nothing about:

- **Two-phase locking.** Before a statement enters the engine the session
  classifies it and takes the table lock it implies (SHARED for reads,
  ROW for DML, EXCLUSIVE for VACUUM/DDL). During DML the engine calls
  back (``row_locker``) for every tuple it is about to claim; the hook
  try-acquires the TID lock and, when it would block, unwinds the
  statement with :class:`~repro.engine.sql.WouldBlock` so the session can
  wait *outside* the engine mutex and retry. All locks are held to
  transaction end (strict 2PL).
- **Deadlines.** Each statement gets an absolute deadline
  (``statement_timeout``) enforced at every lock wait and — via the
  ``deadline_check`` hook — cooperatively inside long scans. Lock waits
  are additionally bounded by ``lock_timeout``. Both surface as typed,
  transaction-aborting errors.
- **Clean abort.** Deadlock/timeout errors abort the open transaction
  exactly like an engine error would: an explicit block enters the
  aborted state ("current transaction is aborted ...") until
  COMMIT/ROLLBACK, and every lock the transaction held is released so
  the rest of the system makes progress.

Sessions are single-threaded by contract: one statement at a time (the
:class:`~repro.server.manager.SessionManager` enforces this). The engine
mutex serializes *physical* engine access across sessions; the lock
manager provides the *logical* interleaving on top.
"""

from __future__ import annotations

import itertools
import re
import threading
import time
from typing import Any

from repro.engine.sql import Database, SessionState, WouldBlock
from repro.engine import sql as _sql
from repro.errors import (
    DeadlockError,
    LockTimeoutError,
    SessionClosedError,
    StatementTimeoutError,
)
from repro.server.locks import LockManager, LockMode, LockOwner, row_key, table_key
from repro.settings import SETTINGS, Settings

#: Transaction birth stamps for deadlock victim selection (younger = higher).
_BIRTHS = itertools.count(1)

_READ_ONLY = re.compile(r"^\s*(?:select|explain)\b", re.I)


def is_read_only(sql_text: str) -> bool:
    """True for statements safe to shed to a standby (SELECT/EXPLAIN)."""
    return bool(_READ_ONLY.match(sql_text))


def _classify(
    sql_text: str, db: Database | None = None
) -> list[tuple[tuple, LockMode]]:
    """The table locks a statement implies, before the engine sees it.

    Mirrors the engine's dispatch order (virtual tables before the
    general SELECT rule). Unrecognized statements lock nothing — the
    engine will reject them with ``SQLError`` anyway. ``db`` resolves
    index names to their owning table (REPACK INDEX); without it such
    statements lock nothing and rely on the engine's own checks.
    """
    if _sql._SELECT_INCIDENTS.match(sql_text) or _sql._SELECT_HEAP_STATS.match(
        sql_text
    ):
        return []
    match = _sql._EXPLAIN_ANALYZE.match(sql_text) or _sql._EXPLAIN.match(sql_text)
    if match:
        return _classify(match.group(1), db)
    match = _sql._SELECT.match(sql_text)
    if match:
        return [(table_key(match.group(2)), LockMode.SHARED)]
    match = _sql._DECLARE_CURSOR.match(sql_text)
    if match:
        # The cursor reads through its inner SELECT; the SHARED lock taken
        # here is held to transaction end (strict 2PL), so in-block FETCHes
        # stream safely while maintenance (VACUUM/REPACK) is kept out.
        return _classify(match.group(2), db)
    if _sql._FETCH.match(sql_text) or _sql._CLOSE.match(sql_text):
        # In a block the DECLARE's lock still protects the scan; held
        # (autocommit) cursors were materialized at DECLARE time.
        return []
    match = _sql._REPACK_INDEX.match(sql_text)
    if match:
        if db is None:
            return []
        try:
            table, _ = db.find_index(match.group(1))
        except Exception:
            return []  # engine will report the unknown index
        return [(table_key(table.name), LockMode.EXCLUSIVE)]
    match = _sql._INSERT.match(sql_text)
    if match:
        return [(table_key(match.group(1)), LockMode.ROW)]
    match = _sql._DELETE.match(sql_text) or _sql._UPDATE.match(sql_text)
    if match:
        return [(table_key(match.group(1)), LockMode.ROW)]
    match = _sql._VACUUM.match(sql_text) or _sql._DROP_TABLE.match(sql_text)
    if match:
        return [(table_key(match.group(1)), LockMode.EXCLUSIVE)]
    match = _sql._CREATE_TABLE.match(sql_text)
    if match:
        return [(table_key(match.group(1)), LockMode.EXCLUSIVE)]
    match = _sql._CREATE_INDEX.match(sql_text) or _sql._DROP_INDEX.match(sql_text)
    if match:
        return [(table_key(match.group(2)), LockMode.EXCLUSIVE)]
    match = _sql._ANALYZE.match(sql_text) or _sql._CHECK_INDEX.match(sql_text)
    if match:
        return [(table_key(match.group(1)), LockMode.SHARED)]
    return []


class Session:
    """One connection's execution context over a shared database."""

    def __init__(
        self,
        name: str,
        db: Database,
        locks: LockManager,
        engine_mutex: threading.RLock | None = None,
        settings: Settings | None = None,
    ) -> None:
        self.name = name
        self.db = db
        self.locks = locks
        self.engine_mutex = engine_mutex if engine_mutex is not None else threading.RLock()
        self.settings = settings
        self.state = SessionState()
        self.closed = False
        self.statements = 0
        self.retries = 0
        self._owner: LockOwner | None = None

    # -- settings resolution (None -> SETTINGS at call time) ------------------

    def _setting(self, name: str, override: float | None) -> float | None:
        if override is not None:
            value = override
        else:
            source = self.settings if self.settings is not None else SETTINGS
            value = getattr(source, name)
        return None if value is None or value <= 0 else value

    # -- transaction-scope lock ownership -------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self.state.current is not None

    @property
    def owner(self) -> LockOwner:
        """The lock identity of the current transaction scope (lazy)."""
        if self._owner is None:
            self._owner = LockOwner(self.name, next(_BIRTHS))
        return self._owner

    def _end_scope_if_over(self) -> None:
        """Release all locks once no engine transaction remains open.

        True both after an autocommit statement and after a block ends
        (COMMIT/ROLLBACK/abort): strict 2PL releases at transaction end.
        """
        if self.state.current is None and self._owner is not None:
            self.locks.release_all(self._owner)
            self._owner = None

    def _abort_open_txn(self) -> None:
        """Abort the open transaction after a lock-layer error.

        Mirrors the engine's own error path: the block enters the aborted
        state until COMMIT/ROLLBACK; the engine transaction is rolled
        back immediately so its locks and snapshot stop blocking others.
        """
        with self.engine_mutex:
            txn = self.state.current
            if txn is not None:
                self.state.current = None
                self.state.failed = True
                self.state.block_tables = set()
                if txn.is_open:
                    self.db.txn.abort(txn)

    # -- statement execution ---------------------------------------------------

    def execute(
        self,
        sql_text: str,
        *,
        statement_timeout: float | None = None,
        lock_timeout: float | None = None,
    ) -> Any:
        """Run one statement with 2PL, deadlines, and clean abort.

        Raises the engine's own errors unchanged, plus
        :class:`DeadlockError` / :class:`LockTimeoutError` /
        :class:`StatementTimeoutError` from the locking layer — all of
        which leave the session in the same state an engine error would
        (autocommit: transaction gone; block: aborted until rollback).
        """
        if self.closed:
            raise SessionClosedError(f"session {self.name} is closed")
        self.statements += 1

        st_timeout = self._setting("statement_timeout", statement_timeout)
        lk_timeout = self._setting("lock_timeout", lock_timeout)
        deadline = None if st_timeout is None else time.monotonic() + st_timeout

        # A statement in a failed block takes no locks: the engine
        # rejects it (TxnAbortedError) or ends the block (COMMIT/ROLLBACK).
        table_locks = [] if self.state.failed else _classify(sql_text, self.db)

        try:
            for key, mode in table_locks:
                self.locks.acquire(
                    self.owner,
                    key,
                    mode,
                    lock_timeout=lk_timeout,
                    deadline=deadline,
                )
            return self._run_with_row_locks(sql_text, lk_timeout, deadline)
        except (DeadlockError, LockTimeoutError, StatementTimeoutError):
            self._abort_open_txn()
            raise
        finally:
            self._end_scope_if_over()

    def _run_with_row_locks(
        self, sql_text: str, lk_timeout: float | None, deadline: float | None
    ) -> Any:
        """The engine-side retry loop: execute, wait on TID locks, retry."""
        owner = self.owner

        def row_locker(table: str, tid: Any) -> None:
            key = row_key(table, tid)
            if not self.locks.try_acquire(owner, key, LockMode.EXCLUSIVE):
                raise WouldBlock(key)

        def deadline_check() -> None:
            if deadline is not None and time.monotonic() >= deadline:
                raise StatementTimeoutError(
                    "canceling statement due to statement timeout"
                )

        while True:
            try:
                with self.engine_mutex:
                    self.state.row_locker = row_locker
                    self.state.deadline_check = deadline_check
                    try:
                        return self.db.execute(sql_text, session=self.state)
                    finally:
                        self.state.row_locker = None
                        self.state.deadline_check = None
            except WouldBlock as blocked:
                # The engine unwound the statement without mutating
                # anything (autocommit: its txn was aborted; block: txn
                # still open, same snapshot). Wait for the contended TID
                # outside the engine mutex, then retry the statement —
                # first-updater-wins then decides if the retry is legal.
                self.retries += 1
                self.locks.acquire(
                    owner,
                    blocked.key,
                    LockMode.EXCLUSIVE,
                    lock_timeout=lk_timeout,
                    deadline=deadline,
                )

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Abort any open transaction, release locks, refuse further work."""
        if self.closed:
            return
        self.closed = True
        self._abort_open_txn()
        self.state.failed = False
        self._end_scope_if_over()
        if self._owner is not None:  # pragma: no cover - defensive
            self.locks.release_all(self._owner)
            self._owner = None
