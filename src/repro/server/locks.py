"""Two-phase locking for concurrent sessions: FIFO-fair, deadlock-aware.

The engine itself stays single-threaded behind the manager's engine mutex;
this lock manager provides the *logical* concurrency control above it.
Sessions take table-level locks per statement (shared for SELECT, row
intent for DML, exclusive for VACUUM/DDL) and TID-level exclusive locks
per would-be-updated tuple, hold them to transaction end (strict 2PL),
and block *outside* the engine mutex when a lock is busy — so a waiter
never stalls the engine for everyone else.

Design points, each covered by tests:

- **Modes.** ``SHARED`` < ``ROW`` < ``EXCLUSIVE`` by strength. SHARED and
  ROW are mutually compatible (readers never block writers — MVCC handles
  visibility; ROW vs ROW conflicts are resolved per-TID); EXCLUSIVE
  conflicts with everything including itself.
- **FIFO fairness.** A request that is compatible with current holders
  still queues behind earlier waiters (no barging), so a stream of
  readers cannot starve a waiting VACUUM. Lock *upgrades* (holder asking
  for a stronger mode) jump to the queue head instead — an upgrader
  waiting behind a fresh request on the same key would deadlock trivially.
- **Deadlock detection.** Every time an owner starts waiting we walk the
  wait-for graph (waiter -> incompatible holders and incompatible earlier
  waiters). Any *new* cycle must pass through the newest waiter, so one
  DFS from it is complete. The youngest transaction in the cycle (highest
  ``birth``) is doomed; doomed waiters wake and raise
  :class:`~repro.errors.DeadlockError`, which is retryable after rollback.
- **Deadlines.** ``acquire`` honours both a relative ``lock_timeout``
  (:class:`~repro.errors.LockTimeoutError`) and an absolute statement
  ``deadline`` (:class:`~repro.errors.StatementTimeoutError`), whichever
  bites first.
- **Dual accounting.** Prometheus gauges/counters are updated alongside a
  plain ``stats()`` dict computed from first-principles state, and a test
  reconciles the two so the metrics can't silently drift.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from enum import Enum
from typing import Any, Hashable, Iterable

from repro.errors import DeadlockError, LockTimeoutError, StatementTimeoutError
from repro.obs import METRICS

LOCKS_HELD = METRICS.gauge(
    "lock_manager_held", "Granted (owner, key) lock pairs currently held."
)
LOCKS_WAITERS = METRICS.gauge(
    "lock_manager_waiters", "Owners currently blocked waiting for a lock."
)
LOCKS_WAIT_EDGES = METRICS.gauge(
    "lock_manager_wait_edges", "Edges in the current wait-for graph."
)
LOCK_ACQUIRES = METRICS.counter(
    "lock_acquires_total", "Lock grants (immediate or after waiting)."
)
LOCK_WAITS = METRICS.counter(
    "lock_waits_total", "Lock requests that had to block before a verdict."
)
LOCK_DEADLOCKS = METRICS.counter(
    "lock_deadlocks_total", "Lock waits aborted as deadlock victims."
)
LOCK_TIMEOUTS = METRICS.counter(
    "lock_timeouts_total", "Lock waits aborted by lock/statement deadlines."
)
LOCK_WAKEUPS = METRICS.counter(
    "lock_wakeups_total", "Times a blocked waiter's wait() returned."
)


class LockMode(Enum):
    """Lock strength; compare via :data:`_STRENGTH`, not enum order."""

    SHARED = "shared"
    ROW = "row"
    EXCLUSIVE = "exclusive"


_STRENGTH = {LockMode.SHARED: 0, LockMode.ROW: 1, LockMode.EXCLUSIVE: 2}


def compatible(a: LockMode, b: LockMode) -> bool:
    """The lock compatibility matrix (symmetric).

    SHARED/ROW coexist in every combination; EXCLUSIVE coexists with
    nothing. Row-vs-row write conflicts are handled one level down by
    per-TID EXCLUSIVE locks, not by the table-level ROW mode.
    """
    return a is not LockMode.EXCLUSIVE and b is not LockMode.EXCLUSIVE


@dataclass(frozen=True)
class LockOwner:
    """The lock-table identity of one session's current transaction.

    ``birth`` is a monotonically increasing stamp (the transaction id):
    higher means younger, and the youngest member of a deadlock cycle is
    the victim — it has done the least work to throw away.
    """

    name: str
    birth: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LockOwner({self.name}, birth={self.birth})"


class _Waiter:
    __slots__ = ("owner", "mode", "upgrade", "granted", "doomed", "cv")

    def __init__(
        self,
        owner: LockOwner,
        mode: LockMode,
        upgrade: bool,
        cv: threading.Condition,
    ) -> None:
        self.owner = owner
        self.mode = mode
        self.upgrade = upgrade
        self.granted = False
        self.doomed = False
        #: condition this waiter blocks on; per-waiter by default so a
        #: grant/doom wakes exactly one thread, shared in broadcast mode.
        self.cv = cv


class LockManager:
    """FIFO-fair shared/row/exclusive locks with deadlock detection.

    Keys are arbitrary hashables; the session layer uses
    ``("table", name)`` and ``("row", name, tid)``. One mutex guards all
    state, but each blocked waiter sleeps on its *own* condition variable
    (sharing that mutex), so a release wakes only the waiters whose
    verdict actually changed — with N sessions parked, a grant is one
    targeted ``notify()``, not an N-thread thundering herd that mostly
    re-checks state and goes back to sleep. Pass ``broadcast=True`` to
    restore the legacy single-condition ``notify_all`` behaviour (kept
    for the wait-path micro-benchmark; see ``bench/bench_8.py``).
    """

    def __init__(self, *, broadcast: bool = False) -> None:
        self._mutex = threading.Lock()
        #: shared condition — broadcast mode only (all waiters park here)
        self._cv = threading.Condition(self._mutex)
        self._broadcast = broadcast
        #: key -> {owner: granted mode}
        self._holders: dict[Hashable, dict[LockOwner, LockMode]] = {}
        #: key -> FIFO list of waiters (upgrades at the head)
        self._queues: dict[Hashable, list[_Waiter]] = {}
        #: owner -> set of keys it holds (release_all index)
        self._owned: dict[LockOwner, set[Hashable]] = {}
        self._deadlocks = 0
        self._timeouts = 0
        self._waits = 0
        self._grants = 0
        self._wakeups = 0

    # -- public API -----------------------------------------------------------

    def try_acquire(self, owner: LockOwner, key: Hashable, mode: LockMode) -> bool:
        """Grant ``(key, mode)`` to ``owner`` iff it needs no waiting.

        Fair: a request that would barge past queued waiters is refused
        even when compatible with the current holders.
        """
        with self._mutex:
            held = self._holders.get(key, {}).get(owner)
            if held is not None and _STRENGTH[held] >= _STRENGTH[mode]:
                return True
            if self._grantable(key, owner, mode, upgrade=held is not None):
                self._grant(key, owner, mode)
                self._refresh_gauges()
                return True
            return False

    def acquire(
        self,
        owner: LockOwner,
        key: Hashable,
        mode: LockMode,
        *,
        lock_timeout: float | None = None,
        deadline: float | None = None,
    ) -> None:
        """Grant ``(key, mode)``, blocking FIFO-fair until possible.

        Raises :class:`DeadlockError` if this wait closes a cycle and the
        owner is its youngest member (or is doomed by a later waiter),
        :class:`LockTimeoutError` after ``lock_timeout`` seconds of
        waiting, and :class:`StatementTimeoutError` once ``deadline``
        (an absolute ``time.monotonic()`` stamp) passes. On any raise the
        request is cleanly dequeued; previously held locks are untouched
        (the caller aborts the transaction and calls :meth:`release_all`).
        """
        with self._mutex:
            held = self._holders.get(key, {}).get(owner)
            if held is not None and _STRENGTH[held] >= _STRENGTH[mode]:
                return
            upgrade = held is not None
            if self._grantable(key, owner, mode, upgrade=upgrade):
                self._grant(key, owner, mode)
                self._refresh_gauges()
                return

            cv = self._cv if self._broadcast else threading.Condition(self._mutex)
            waiter = _Waiter(owner, mode, upgrade, cv)
            queue = self._queues.setdefault(key, [])
            # Upgrades go to the head: the upgrader already holds the key,
            # so anything queued ahead of it could never be granted anyway.
            if upgrade:
                queue.insert(0, waiter)
            else:
                queue.append(waiter)
            self._waits += 1
            LOCK_WAITS.inc()
            self._refresh_gauges()

            victim = self._find_deadlock_victim(owner)
            if victim == owner:
                self._abandon(key, waiter)
                self._deadlocks += 1
                LOCK_DEADLOCKS.inc()
                raise DeadlockError(
                    f"deadlock detected: {owner.name} waiting for {key!r}"
                )
            if victim is not None:
                self._doom(victim)

            lock_deadline = (
                None if lock_timeout is None else time.monotonic() + lock_timeout
            )
            while True:
                if waiter.granted:
                    self._refresh_gauges()
                    return
                if waiter.doomed:
                    self._abandon(key, waiter)
                    self._deadlocks += 1
                    LOCK_DEADLOCKS.inc()
                    raise DeadlockError(
                        f"deadlock detected: {owner.name} chosen as victim"
                        f" while waiting for {key!r}"
                    )
                bounds = [b for b in (lock_deadline, deadline) if b is not None]
                if bounds:
                    now = time.monotonic()
                    cutoff = min(bounds)
                    if now >= cutoff:
                        self._abandon(key, waiter)
                        self._timeouts += 1
                        LOCK_TIMEOUTS.inc()
                        if deadline is not None and cutoff == deadline:
                            raise StatementTimeoutError(
                                f"canceling statement due to statement timeout"
                                f" while {owner.name} waited for {key!r}"
                            )
                        raise LockTimeoutError(
                            f"canceling statement due to lock timeout:"
                            f" {owner.name} could not acquire {key!r}"
                        )
                    waiter.cv.wait(cutoff - now)
                    self._wakeups += 1
                    LOCK_WAKEUPS.inc()
                else:
                    waiter.cv.wait()
                    self._wakeups += 1
                    LOCK_WAKEUPS.inc()

    def release_all(self, owner: LockOwner) -> None:
        """Drop every lock ``owner`` holds and wake newly-grantable waiters.

        Called exactly once per transaction end (commit, rollback, or
        abort) — strict two-phase locking has no mid-transaction release.
        """
        with self._mutex:
            keys = self._owned.pop(owner, set())
            for key in keys:
                holders = self._holders.get(key)
                if holders is not None:
                    holders.pop(owner, None)
                    if not holders:
                        del self._holders[key]
                self._promote(key)
            self._refresh_gauges()

    def held_by(self, owner: LockOwner) -> dict[Hashable, LockMode]:
        """A snapshot of ``owner``'s granted locks (tests/introspection)."""
        with self._mutex:
            return {
                key: self._holders[key][owner]
                for key in self._owned.get(owner, set())
                if owner in self._holders.get(key, {})
            }

    def stats(self) -> dict[str, Any]:
        """First-principles accounting, reconciled against METRICS in tests."""
        with self._mutex:
            edges = self._wait_edges()
            return {
                "held": sum(len(h) for h in self._holders.values()),
                "waiters": sum(
                    1
                    for q in self._queues.values()
                    for w in q
                    if not w.granted and not w.doomed
                ),
                "wait_edges": sum(len(t) for t in edges.values()),
                "deadlocks": self._deadlocks,
                "timeouts": self._timeouts,
                "waits": self._waits,
                "grants": self._grants,
                "wakeups": self._wakeups,
            }

    # -- internals (call with self._mutex held) --------------------------------

    def _notify(self, waiter: _Waiter) -> None:
        """Wake exactly the thread parked on ``waiter`` (all, in broadcast
        mode — every waiter then shares ``self._cv``)."""
        if self._broadcast:
            self._cv.notify_all()
        else:
            waiter.cv.notify()

    def _grantable(
        self, key: Hashable, owner: LockOwner, mode: LockMode, *, upgrade: bool
    ) -> bool:
        for holder, hmode in self._holders.get(key, {}).items():
            if holder != owner and not compatible(mode, hmode):
                return False
        if not upgrade:
            # Fairness: never barge past existing (live) waiters.
            for waiter in self._queues.get(key, ()):
                if not waiter.granted and not waiter.doomed:
                    return False
        return True

    def _grant(self, key: Hashable, owner: LockOwner, mode: LockMode) -> None:
        holders = self._holders.setdefault(key, {})
        prior = holders.get(owner)
        if prior is None or _STRENGTH[mode] > _STRENGTH[prior]:
            holders[owner] = mode
        self._owned.setdefault(owner, set()).add(key)
        self._grants += 1
        LOCK_ACQUIRES.inc()

    def _promote(self, key: Hashable) -> None:
        """Grant queued waiters at ``key`` in FIFO order until one can't."""
        queue = self._queues.get(key)
        if not queue:
            return
        remaining: list[_Waiter] = []
        blocked = False
        for waiter in queue:
            if waiter.granted or waiter.doomed:
                remaining.append(waiter)
                continue
            if blocked:
                remaining.append(waiter)
                continue
            ok = True
            for holder, hmode in self._holders.get(key, {}).items():
                if holder != waiter.owner and not compatible(waiter.mode, hmode):
                    ok = False
                    break
            if ok:
                self._grant(key, waiter.owner, waiter.mode)
                waiter.granted = True
                self._notify(waiter)
                remaining.append(waiter)
            else:
                blocked = True
                remaining.append(waiter)
        self._queues[key] = remaining

    def _abandon(self, key: Hashable, waiter: _Waiter) -> None:
        """Remove a timed-out/doomed waiter and re-run promotion.

        The departing waiter may have been the FIFO head blocking
        compatible requests behind it, so promotion must re-run.
        """
        queue = self._queues.get(key)
        if queue is not None and waiter in queue:
            queue.remove(waiter)
            if not queue:
                del self._queues[key]
        self._promote(key)  # notifies any waiter it grants
        self._refresh_gauges()

    def _wait_edges(self) -> dict[LockOwner, set[LockOwner]]:
        """waiter -> {owners it waits on}: incompatible holders plus
        incompatible earlier (live) waiters, which FIFO order will grant
        first."""
        edges: dict[LockOwner, set[LockOwner]] = {}
        for key, queue in self._queues.items():
            holders = self._holders.get(key, {})
            live_ahead: list[_Waiter] = []
            for waiter in queue:
                if waiter.granted or waiter.doomed:
                    continue
                targets = {
                    holder
                    for holder, hmode in holders.items()
                    if holder != waiter.owner and not compatible(waiter.mode, hmode)
                }
                targets.update(
                    ahead.owner
                    for ahead in live_ahead
                    if ahead.owner != waiter.owner
                    and not compatible(waiter.mode, ahead.mode)
                )
                if targets:
                    edges.setdefault(waiter.owner, set()).update(targets)
                live_ahead.append(waiter)
        return edges

    def _find_deadlock_victim(self, start: LockOwner) -> LockOwner | None:
        """DFS from the newest waiter; return the youngest owner of a
        cycle through it, or None. (Any new cycle contains ``start``.)"""
        edges = self._wait_edges()
        path: list[LockOwner] = [start]
        on_path = {start}
        visited: set[LockOwner] = set()

        def dfs(node: LockOwner) -> list[LockOwner] | None:
            for nxt in sorted(edges.get(node, ()), key=lambda o: (o.birth, o.name)):
                if nxt == start:
                    return list(path)
                if nxt in on_path or nxt in visited:
                    continue
                path.append(nxt)
                on_path.add(nxt)
                cycle = dfs(nxt)
                if cycle is not None:
                    return cycle
                on_path.discard(nxt)
                path.pop()
            visited.add(node)
            return None

        cycle = dfs(start)
        if cycle is None:
            return None
        return max(cycle, key=lambda o: (o.birth, o.name))

    def _doom(self, victim: LockOwner) -> None:
        for queue in self._queues.values():
            for waiter in queue:
                if waiter.owner == victim and not waiter.granted:
                    waiter.doomed = True
                    self._notify(waiter)

    def _refresh_gauges(self) -> None:
        LOCKS_HELD.set(sum(len(h) for h in self._holders.values()))
        LOCKS_WAITERS.set(
            sum(
                1
                for q in self._queues.values()
                for w in q
                if not w.granted and not w.doomed
            )
        )
        LOCKS_WAIT_EDGES.set(sum(len(t) for t in self._wait_edges().values()))


def table_key(name: str) -> tuple[str, str]:
    """The lock key for a whole table."""
    return ("table", name.lower())


def row_key(name: str, tid: Any) -> tuple[str, str, Any]:
    """The lock key for one tuple (TID) of a table."""
    return ("row", name.lower(), tid)


def release_owners(manager: LockManager, owners: Iterable[LockOwner]) -> None:
    """Bulk release (chaos teardown helper)."""
    for owner in owners:
        manager.release_all(owner)
