"""The SQL façade over a replica set: sessions speak SQL, commits replicate.

:class:`ReplicatedDatabase` is a :class:`~repro.engine.sql.Database`
whose engine objects (buffer pool, table, transaction manager) are the
*primary node's* — statements execute directly against the primary's
heap and index, and the ``_on_txn_commit`` hook makes every commit
durable (meta-page snapshot + WAL fsync), ships it, and waits for quorum
acknowledgement, exactly like ``ReplicaSet.client_write`` does for raw
row batches.

Failover is handled by **rebinding**: each statement first checks
whether the replica set's primary changed (a chaos thread crashed it and
``tick()`` promoted a standby). If so, the façade swaps in the new
primary's engine objects and bumps :attr:`Database.epoch`; any session
whose transaction block began under the old epoch is fenced off — its
next statement aborts the block rather than committing against a
transaction manager that no longer exists. An unacknowledged commit
(quorum unreachable) surfaces as :class:`~repro.errors.ReplicationError`
— the classic in-doubt transaction: locally durable, never acked, and
the chaos oracle treats it as allowed-to-disappear.

The bridge also supplies the overload ``shed_reader`` used by
:class:`~repro.server.manager.SessionManager`: a plain indexed SELECT on
the replicated table is answered by ``ReplicaSet.client_read`` from a
lag-bounded standby instead of occupying the primary's queue.
"""

from __future__ import annotations

from typing import Any

from repro.engine import sql as _sql
from repro.engine.sql import Database, SessionState
from repro.engine.txn import Transaction
from repro.replication.replicaset import ReplicaSet


class ReplicatedDatabase(Database):
    """A Database façade bound to the current primary of a ReplicaSet."""

    #: The single replicated table every node carries.
    TABLE = "data"

    def __init__(self, replica_set: ReplicaSet) -> None:
        super().__init__()
        self.rs = replica_set
        self._bound_node = None
        self._bound_table = None
        #: Chaos hook, called after the engine applied a commit but before
        #: it is shipped/acknowledged — the exactly-once window. The
        #: network-edge harness uses it to crash the primary "between
        #: apply and ack"; production leaves it None.
        self.commit_fault: "Any | None" = None
        self._rebind()

    # -- primary binding -------------------------------------------------------

    def _rebind(self) -> None:
        """Point the façade at the current primary; fence on change.

        Cheap when nothing changed (two identity checks). The table
        identity check matters independently of the node check: a
        restarted primary rebuilds its Table object and transaction
        manager, and statements must not keep stale references.
        """
        node = self.rs.primary
        if node is self._bound_node and node.table is self._bound_table:
            return
        self._bound_node = node
        self._bound_table = node.table
        self.buffer = node.pool
        self.tables = {self.TABLE: node.table}
        self.txn = node.txn
        self.epoch += 1

    def execute(self, sql: str, session: SessionState | None = None) -> Any:
        self._rebind()
        return super().execute(sql, session)

    # -- replication hooks -----------------------------------------------------

    def _on_txn_commit(self, txn: Transaction | None) -> None:
        """Make the commit durable, ship it, and wait for quorum.

        Raises :class:`~repro.errors.ReplicationError` when quorum cannot
        be reached: the commit is locally durable but NOT acknowledged
        (in-doubt) — callers must not treat the statement as succeeded.
        """
        if self.commit_fault is not None:
            self.commit_fault()
        self.rs._commit_and_ack()

    # -- overload shedding -----------------------------------------------------

    def standby_reader(self, sql_text: str) -> list | None:
        """Answer a shed-eligible SELECT from a standby, or decline.

        Only ``SELECT * FROM data WHERE key <op> <literal> [LIMIT n]``
        qualifies — exactly the shape ``ReplicaSet.client_read`` routes.
        Returns None for anything else so the manager falls back to
        normal admission.
        """
        match = _sql._SELECT.match(sql_text)
        if match is None:
            return None
        select_list, table_name, column, op, literal, limit = match.groups()
        if (
            table_name.lower() != self.TABLE
            or select_list.strip() != "*"
            or column is None
            or column.lower() != "key"
        ):
            return None
        self._rebind()
        entry_epoch = self.epoch
        table = self.tables[self.TABLE]
        try:
            predicate = self._bind_predicate(table, column, op, literal)
        except Exception:
            return None
        rows = self.rs.client_read(predicate.op, predicate.operand)
        served = self.rs.last_served_by
        # Epoch fence: a failover that completed while the read was in
        # flight may have promoted a primary the serving node trails by
        # more than max_lag — rows from the old epoch's routing decision
        # must not be returned as a bounded-staleness answer. Declining
        # (None) sends the statement through normal admission against the
        # new primary instead.
        self._rebind()
        if self.epoch != entry_epoch:
            try:
                node = self.rs.node(served)
            except Exception:
                return None
            if node.crashed or self.rs.lag_of(node) > self.rs.max_lag:
                return None
        if limit is not None:
            rows = rows[: int(limit)]
        return rows
