"""Concurrency benchmark: throughput and latency vs. session count (BENCH_6.json).

Measures the session server end to end — admission queue, worker pool,
lock manager, engine mutex, MVCC — under a *closed-loop* mixed workload
at 16, 100, and 1000 concurrent sessions. Closed loop means each session
has exactly one statement outstanding at all times: a completion
immediately triggers the session's next submission. That models "N
connected clients each waiting for their answer" (the paper's
heavy-traffic regime) without needing N OS threads: a single driver
thread chains completions, while the manager's fixed worker pool
(``worker_threads``) does the executing — so rising session counts raise
*queueing*, which is exactly the effect the p99 column exists to show.

Workload per statement (seeded per session): 70% indexed SELECT on the
SP-GiST trie key, 25% INSERT of a fresh row, 5% UPDATE of a previously
inserted row (exercising TID locks and first-updater-wins retries).

Reported per session count: completed statements, wall seconds,
throughput (statements/s), and p50/p95/p99 latency in milliseconds from
submission to completion (queueing included — that is the point).
Absolute numbers are machine-dependent; the regression gate
(``tests/bench/test_concurrency_gate.py``) checks structure, sanity
(p50 <= p99, non-zero throughput), and re-runs the 16-session point
in-process against a deliberately loose floor.

CLI::

    PYTHONPATH=src python -m repro.bench.concurrency --out BENCH_6.json
    PYTHONPATH=src python -m repro.bench.concurrency --quick
"""

from __future__ import annotations

import json
import random
import time
from typing import Any

from repro.engine.sql import Database
from repro.errors import ReproError
from repro.server.manager import PendingStatement, SessionManager
from repro.settings import SETTINGS

#: Benchmark schema version stamped into the JSON.
SCHEMA = "bench6-v1"

#: The session counts of the committed headline table.
SESSION_POINTS = (16, 100, 1000)

#: Total statements per point (split across sessions), keeping each
#: point's wall time in the seconds range at every session count.
TOTAL_STATEMENTS = 4000

#: Seed rows loaded before measuring.
SEED_ROWS = 200


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


class _SessionScript:
    """One session's seeded statement stream (closed loop state)."""

    def __init__(self, session, sid: int, seed: int, statements: int) -> None:
        self.session = session
        self.rng = random.Random(seed * 7919 + sid)
        self.sid = sid
        self.remaining = statements
        self.next_row = 0
        self.inserted: list[int] = []
        self.pending: PendingStatement | None = None
        self.started = 0.0

    def next_sql(self) -> str:
        roll = self.rng.random()
        if roll < 0.70:
            probe = self.rng.randrange(SEED_ROWS)
            return f"SELECT * FROM bench WHERE key = 'seed{probe:05d}';"
        if roll < 0.95 or not self.inserted:
            row_id = self.sid * 1000000 + self.next_row
            self.next_row += 1
            self.inserted.append(row_id)
            return f"INSERT INTO bench VALUES ('s{self.sid}x{row_id}', {row_id});"
        victim = self.rng.choice(self.inserted)
        return f"UPDATE bench SET key = 'u{self.sid}' WHERE id = {victim};"


def _run_point(
    sessions: int, statements_per_session: int, seed: int
) -> dict[str, Any]:
    """One closed-loop measurement at ``sessions`` concurrent sessions."""
    settings = SETTINGS.replace(
        # The closed loop legitimately keeps one statement per session in
        # flight; admission control must admit that, not fight the bench.
        max_queue=sessions + 16,
        max_sessions=sessions + 16,
        shed_threshold=sessions + 16,
        statement_timeout=120.0,
        lock_timeout=60.0,
    )
    db = Database(buffer_capacity=512)
    manager = SessionManager(db, settings=settings)
    boot = manager.connect("bench-boot")
    manager.execute(boot, "CREATE TABLE bench (key VARCHAR(24), id INT);")
    manager.execute(
        boot,
        "CREATE INDEX bench_idx ON bench USING SP_GiST (key SP_GiST_trie);",
    )
    rows = ", ".join(f"('seed{i:05d}', {i})" for i in range(SEED_ROWS))
    manager.execute(boot, f"INSERT INTO bench VALUES {rows};")
    manager.disconnect(boot)

    scripts = [
        _SessionScript(manager.connect(f"bench-{i}"), i, seed,
                       statements_per_session)
        for i in range(sessions)
    ]

    latencies: list[float] = []
    errors = 0
    started = time.perf_counter()
    live = list(scripts)
    for script in live:
        script.started = time.perf_counter()
        script.pending = manager.submit(script.session, script.next_sql())
    while live:
        progressed = False
        still: list[_SessionScript] = []
        for script in live:
            pending = script.pending
            assert pending is not None
            if not pending.done():
                still.append(script)
                continue
            progressed = True
            latencies.append(time.perf_counter() - script.started)
            if pending.error is not None:
                if not isinstance(pending.error, ReproError):
                    raise pending.error
                errors += 1
            script.remaining -= 1
            if script.remaining > 0:
                script.started = time.perf_counter()
                script.pending = manager.submit(script.session, script.next_sql())
                still.append(script)
        live = still
        if not progressed:
            time.sleep(0.0005)
    wall = time.perf_counter() - started
    manager.stop()

    latencies.sort()
    completed = len(latencies)
    return {
        "sessions": sessions,
        "statements": completed,
        "errors": errors,
        "wall_seconds": round(wall, 4),
        "throughput_stmts_per_sec": round(completed / wall, 2) if wall else 0.0,
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
        "p95_ms": round(_percentile(latencies, 0.95) * 1000, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
    }


def run(
    session_points: tuple[int, ...] = SESSION_POINTS,
    total_statements: int = TOTAL_STATEMENTS,
    seed: int = 0,
) -> dict[str, Any]:
    """The full benchmark: one closed-loop point per session count."""
    points = []
    for sessions in session_points:
        per_session = max(2, total_statements // sessions)
        points.append(_run_point(sessions, per_session, seed))
    return {
        "schema": SCHEMA,
        "seed": seed,
        "total_statements_target": total_statements,
        "worker_threads": SETTINGS.worker_threads,
        "points": points,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the benchmark and optionally write the JSON."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write the JSON here")
    parser.add_argument(
        "--quick", action="store_true",
        help="small scale (16/100 sessions, fewer statements) for CI smoke",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.quick:
        result = run(session_points=(16, 100), total_statements=600,
                     seed=args.seed)
    else:
        result = run(seed=args.seed)

    for point in result["points"]:
        print(
            f"{point['sessions']:>5} sessions: "
            f"{point['throughput_stmts_per_sec']:>8.1f} stmts/s, "
            f"p50 {point['p50_ms']:.2f} ms, p99 {point['p99_ms']:.2f} ms "
            f"({point['statements']} statements, {point['errors']} errors)"
        )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
