"""Experiment implementations for every table and figure in Section 6.

Each ``figNN_*`` function runs one experiment at the configured (scaled-down)
sizes and returns plain rows; the ``benchmarks/`` suite prints them in the
paper's series format and asserts the shape criteria from DESIGN.md §5.

Methodology (mirrors the paper unless noted):

- Indexes are *built by insertion* for insert-cost figures. For search
  figures the finished build is used: SP-GiST indexes get the offline
  clustering repack (the tail of ``spgistbuild``), the B+-tree is
  bulk-loaded (CREATE INDEX sorts), the R-tree stays insert-built (it has
  no bulk path, as in PostgreSQL).
- Every structure lives on its own disk + small buffer pool ("separate
  index files"), and queries run cold-cache so page reads are observable.
- The cost metric is the modeled disk-access time of
  :class:`repro.bench.harness.Measurement` (random reads ×4 + sequential
  reads ×1 + CPU ops ×0.01); raw reads and wall time ride along.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.baselines import BPlusTree, RTree, substring_scan
from repro.bench.harness import Measurement, Workbench, measure, measure_many
from repro.core.config import PathShrink
from repro.core.nn import nearest
from repro.geometry import Point
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.pmr import PMRQuadtreeIndex
from repro.indexes.pquadtree import PointQuadtreeIndex
from repro.indexes.suffix import SuffixTreeIndex
from repro.indexes.trie import TrieIndex
from repro.storage.heap import HeapFile
from repro.workloads import (
    random_points,
    random_query_boxes,
    random_segments,
    random_words,
    sample_prefixes,
)
from repro.workloads.points import WORLD
from repro.workloads.words import regex_queries

#: Default sweep sizes — the paper's 2M→32M (strings) and 250K→4M (spatial)
#: scaled down by ~1000× with the same doubling structure.
STRING_SIZES = (4000, 8000, 16000)
INSERT_SIZES = (2000, 4000, 8000, 16000)
SPATIAL_SIZES = (2000, 4000, 8000, 16000)
NN_COUNTS = (8, 16, 32, 64, 128, 256, 512, 1024)

#: Scale normalization: datasets are ~1000× smaller than the paper's, so
#: experiment page capacities shrink too, keeping tree heights in the
#: paper's regime (B+-tree and R-tree height 3–4 instead of a degenerate 2).
STRING_PAGE_CAPACITY = 1024
SPATIAL_PAGE_CAPACITY = 2048

#: Spatial coordinates are grid-quantized (integer coordinates on the
#: paper's [0,100]² world). At 1/250th of the paper's data volume, uniform
#: float points produce almost no R-tree MBR overlap; the duplicate-bearing
#: grid restores the overlap regime a 250K–4M-point R-tree lives in, which
#: is the mechanism behind Figure 13.
SPATIAL_DECIMALS = 0

#: Segment endpoints are quantized to one decimal (same rationale,
#: milder: segments rarely coincide exactly even on a grid).
SEGMENT_DECIMALS = 1

#: Buffer pool used for query measurements (small => disk-resident regime).
QUERY_POOL_PAGES = 16

#: Buffer pool for insert streams: tiny, so steady-state eviction traffic is
#: visible at scaled-down sizes (the paper's builds dwarf shared_buffers).
INSERT_POOL_PAGES = 4

#: Trie leaf bucket size used throughout the string experiments ("B").
TRIE_BUCKET = 8

#: Queries per measurement batch.
QUERY_BATCH = 60


@dataclass
class ExperimentRow:
    """One x-axis point of one figure: named series values."""

    size: int
    values: dict[str, float] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def build_trie(words: Sequence[str], bucket_size: int = TRIE_BUCKET,
               repack: bool = True, pool: int = QUERY_POOL_PAGES,
               page_capacity: int = STRING_PAGE_CAPACITY,
               **kwargs: Any) -> tuple[TrieIndex, Workbench]:
    """Insert-build a trie over ``words`` on its own fresh workbench."""
    bench = Workbench(pool_pages=pool)
    trie = TrieIndex(bench.buffer, bucket_size=bucket_size,
                     page_capacity=page_capacity, **kwargs)
    for i, w in enumerate(words):
        trie.insert(w, i)
    if repack:
        trie.repack()
    return trie, bench


def build_btree_bulk(
    words: Sequence[str],
    pool: int = QUERY_POOL_PAGES,
    page_capacity: int = STRING_PAGE_CAPACITY,
) -> tuple[BPlusTree, Workbench]:
    """Bulk-load (CREATE INDEX) a B+-tree over ``words`` on a fresh bench."""
    bench = Workbench(pool_pages=pool)
    tree = BPlusTree(bench.buffer, page_capacity=page_capacity)
    tree.bulk_load([(w, i) for i, w in enumerate(words)])
    return tree, bench


def _measure_batch(
    bench: Workbench, thunks: Sequence[Callable[[], Any]]
) -> Measurement:
    return measure_many(bench.buffer, thunks, cold_each=True)


# ---------------------------------------------------------------------------
# Figures 6-8: trie vs B+-tree search (exact / prefix / regex + stddev)
# ---------------------------------------------------------------------------


def fig6_to_8_string_search(
    sizes: Sequence[int] = STRING_SIZES,
    batch: int = QUERY_BATCH,
) -> list[ExperimentRow]:
    """Search-cost sweep behind Figures 6, 7, and 8.

    Series per size: exact/prefix/regex cost per op for both structures,
    the paper's ratios ``(btree/trie) × 100`` (Fig 6) and the raw regex
    ratio (Fig 7 plots its log10), plus the per-query standard deviation of
    the trie's exact-match cost (Fig 8).
    """
    rows = []
    for size in sizes:
        words = random_words(size, seed=211)
        trie, trie_bench = build_trie(words)
        btree, bt_bench = build_btree_bulk(words)

        probes = [words[i % size] for i in range(0, size, max(1, size // batch))][:batch]
        trie_exact = _measure_batch(
            trie_bench, [lambda w=w: trie.search_equal(w) for w in probes]
        )
        bt_exact = _measure_batch(
            bt_bench, [lambda w=w: btree.search(w) for w in probes]
        )

        # Per-query costs for the stddev series (Fig 8).
        per_query = []
        for w in probes:
            trie_bench.cold()
            one = _measure_batch(trie_bench, [lambda w=w: trie.search_equal(w)])
            per_query.append(one.cost)
        exact_stddev = statistics.pstdev(per_query)

        # Single-letter prefixes: result sets wide enough to span many
        # leaves, which is where the B+-tree's sequential layout pays.
        prefixes = sample_prefixes(words, batch // 2, length=1, seed=212)
        trie_prefix = _measure_batch(
            trie_bench, [lambda p=p: trie.search_prefix(p) for p in prefixes]
        )
        bt_prefix = _measure_batch(
            bt_bench, [lambda p=p: list(btree.prefix_scan(p)) for p in prefixes]
        )

        # The paper stresses the B+-tree's sensitivity to the wildcard
        # position: a leading '?' disables its only narrowing device (the
        # literal prefix), while the trie still filters on every later
        # character. Figure 7's series uses the leading-wildcard patterns;
        # mid-word patterns are kept as the sensitivity side-channel.
        lead_patterns = regex_queries(words, batch // 2, [0], seed=213,
                                      min_length=5)
        mid_patterns = regex_queries(words, batch // 2, [2], seed=214,
                                     min_length=5)
        trie_regex = _measure_batch(
            trie_bench, [lambda p=p: trie.search_regex(p) for p in lead_patterns]
        )
        bt_regex = _measure_batch(
            bt_bench, [lambda p=p: list(btree.regex_scan(p)) for p in lead_patterns]
        )
        trie_regex_mid = _measure_batch(
            trie_bench, [lambda p=p: trie.search_regex(p) for p in mid_patterns]
        )
        bt_regex_mid = _measure_batch(
            bt_bench, [lambda p=p: list(btree.regex_scan(p)) for p in mid_patterns]
        )

        rows.append(
            ExperimentRow(
                size,
                {
                    "trie_exact_cost": trie_exact.cost_per_op,
                    "btree_exact_cost": bt_exact.cost_per_op,
                    "exact_ratio": 100.0 * bt_exact.cost_per_op / trie_exact.cost_per_op,
                    "exact_cpu_ratio": 100.0 * (bt_exact.cpu_ops or 1) / (trie_exact.cpu_ops or 1),
                    "trie_exact_stddev": exact_stddev,
                    "trie_prefix_cost": trie_prefix.cost_per_op,
                    "btree_prefix_cost": bt_prefix.cost_per_op,
                    "prefix_ratio": 100.0 * bt_prefix.cost_per_op / trie_prefix.cost_per_op,
                    "trie_regex_cost": trie_regex.cost_per_op,
                    "btree_regex_cost": bt_regex.cost_per_op,
                    "regex_ratio": bt_regex.cost_per_op / trie_regex.cost_per_op,
                    "regex_read_ratio": bt_regex.io_reads / max(trie_regex.io_reads, 1),
                    "regex_mid_ratio": (
                        bt_regex_mid.cost_per_op / trie_regex_mid.cost_per_op
                    ),
                },
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figures 9-12: insert cost, index size, node/page heights
# ---------------------------------------------------------------------------


def fig9_to_12_insert_size_height(
    sizes: Sequence[int] = INSERT_SIZES,
) -> list[ExperimentRow]:
    """Build-side sweep behind Figures 9 (insert), 10 (size), 11–12 (heights).

    Both structures are built by insertion (the paper's methodology);
    insert cost counts page reads and dirty write-backs per key. Heights
    are taken after the SP-GiST clustering repack (Fig 12's subject).
    """
    rows = []
    for size in sizes:
        words = random_words(size, seed=221)

        trie_bench = Workbench(pool_pages=INSERT_POOL_PAGES)
        trie = TrieIndex(trie_bench.buffer, bucket_size=TRIE_BUCKET,
                         page_capacity=STRING_PAGE_CAPACITY)
        trie_build = measure_many(
            trie_bench.buffer,
            [lambda w=w, i=i: trie.insert(w, i) for i, w in enumerate(words)],
        )
        trie_build += measure(trie_bench.buffer, trie_bench.buffer.flush_all)[1]

        bt_bench = Workbench(pool_pages=INSERT_POOL_PAGES)
        btree = BPlusTree(bt_bench.buffer,
                          page_capacity=STRING_PAGE_CAPACITY)
        bt_build = measure_many(
            bt_bench.buffer,
            [lambda w=w, i=i: btree.insert(w, i) for i, w in enumerate(words)],
        )
        bt_build += measure(bt_bench.buffer, bt_bench.buffer.flush_all)[1]

        node_height_trie = trie.statistics().max_node_height
        trie.repack()
        stats = trie.statistics()

        trie_io = (trie_build.io_reads + trie_build.io_writes) / size
        bt_io = (bt_build.io_reads + bt_build.io_writes) / size
        rows.append(
            ExperimentRow(
                size,
                {
                    "trie_insert_io": trie_io,
                    "btree_insert_io": bt_io,
                    "insert_ratio": 100.0 * bt_io / trie_io if trie_io else 0.0,
                    "trie_pages": stats.pages,
                    "btree_pages": btree.num_pages,
                    "size_ratio": 100.0 * btree.num_pages / stats.pages,
                    "trie_node_height": node_height_trie,
                    "btree_node_height": btree.height,
                    "trie_page_height": stats.max_page_height,
                    "btree_page_height": btree.height,  # 1 node = 1 page
                },
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figures 13-14: kd-tree vs R-tree (points)
# ---------------------------------------------------------------------------


def fig13_14_kdtree_rtree(
    sizes: Sequence[int] = SPATIAL_SIZES,
    batch: int = QUERY_BATCH,
) -> list[ExperimentRow]:
    """Point-data sweep behind Figures 13 (insert/search) and 14 (size)."""
    rows = []
    for size in sizes:
        points = random_points(size, seed=231, decimals=SPATIAL_DECIMALS)

        kd_bench = Workbench(pool_pages=INSERT_POOL_PAGES)
        kd = KDTreeIndex(kd_bench.buffer,
                         page_capacity=SPATIAL_PAGE_CAPACITY)
        kd_build = measure_many(
            kd_bench.buffer,
            [lambda p=p, i=i: kd.insert(p, i) for i, p in enumerate(points)],
        )
        kd_build += measure(kd_bench.buffer, kd_bench.buffer.flush_all)[1]

        # PostgreSQL 8.0's rtree (the paper's baseline) used linear split.
        rt_bench = Workbench(pool_pages=INSERT_POOL_PAGES)
        rt = RTree(rt_bench.buffer, split="linear",
                   page_capacity=SPATIAL_PAGE_CAPACITY)
        rt_build = measure_many(
            rt_bench.buffer,
            [lambda p=p, i=i: rt.insert(p, i) for i, p in enumerate(points)],
        )
        rt_build += measure(rt_bench.buffer, rt_bench.buffer.flush_all)[1]

        kd.repack()
        kd_bench.buffer.capacity = QUERY_POOL_PAGES
        rt_bench.buffer.capacity = QUERY_POOL_PAGES

        probes = points[:: max(1, size // batch)][:batch]
        kd_point = _measure_batch(
            kd_bench, [lambda p=p: kd.search_point(p) for p in probes]
        )
        rt_point = _measure_batch(
            rt_bench, [lambda p=p: rt.search_exact(p) for p in probes]
        )

        boxes = random_query_boxes(batch // 2, side=5.0, seed=232)
        kd_range = _measure_batch(
            kd_bench, [lambda b=b: kd.search_range(b) for b in boxes]
        )
        rt_range = _measure_batch(
            rt_bench, [lambda b=b: rt.range_search(b) for b in boxes]
        )

        kd_ins = (kd_build.io_reads + kd_build.io_writes) / size
        rt_ins = (rt_build.io_reads + rt_build.io_writes) / size
        rows.append(
            ExperimentRow(
                size,
                {
                    "point_ratio": 100.0 * rt_point.cost_per_op / kd_point.cost_per_op,
                    "range_ratio": 100.0 * rt_range.cost_per_op / kd_range.cost_per_op,
                    "insert_ratio": 100.0 * rt_ins / kd_ins if kd_ins else 0.0,
                    "kd_point_cost": kd_point.cost_per_op,
                    "rt_point_cost": rt_point.cost_per_op,
                    "kd_range_cost": kd_range.cost_per_op,
                    "rt_range_cost": rt_range.cost_per_op,
                    "kd_pages": kd.num_pages,
                    "rt_pages": rt.num_pages,
                    "size_ratio": 100.0 * rt.num_pages / kd.num_pages,
                },
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 15: PMR quadtree vs R-tree (segments)
# ---------------------------------------------------------------------------


def fig15_pmr_rtree(
    sizes: Sequence[int] = SPATIAL_SIZES,
    batch: int = QUERY_BATCH,
) -> list[ExperimentRow]:
    """Segment-data sweep behind Figure 15 (ratios < 100: R-tree wins)."""
    rows = []
    for size in sizes:
        segments = random_segments(size, seed=241, decimals=SEGMENT_DECIMALS)

        pmr_bench = Workbench(pool_pages=INSERT_POOL_PAGES)
        pmr = PMRQuadtreeIndex(pmr_bench.buffer, WORLD, threshold=8,
                               page_capacity=SPATIAL_PAGE_CAPACITY)
        pmr_build = measure_many(
            pmr_bench.buffer,
            [lambda s=s, i=i: pmr.insert(s, i) for i, s in enumerate(segments)],
        )
        pmr_build += measure(pmr_bench.buffer, pmr_bench.buffer.flush_all)[1]

        rt_bench = Workbench(pool_pages=INSERT_POOL_PAGES)
        rt = RTree(rt_bench.buffer, split="linear",
                   page_capacity=SPATIAL_PAGE_CAPACITY)
        rt_build = measure_many(
            rt_bench.buffer,
            [lambda s=s, i=i: rt.insert(s, i) for i, s in enumerate(segments)],
        )
        rt_build += measure(rt_bench.buffer, rt_bench.buffer.flush_all)[1]

        pmr.repack()
        pmr_bench.buffer.capacity = QUERY_POOL_PAGES
        rt_bench.buffer.capacity = QUERY_POOL_PAGES

        probes = segments[:: max(1, size // batch)][:batch]
        pmr_exact = _measure_batch(
            pmr_bench, [lambda s=s: pmr.search_exact(s) for s in probes]
        )
        rt_exact = _measure_batch(
            rt_bench, [lambda s=s: rt.search_exact(s) for s in probes]
        )

        boxes = random_query_boxes(batch // 2, side=5.0, seed=242)
        pmr_range = _measure_batch(
            pmr_bench, [lambda b=b: pmr.search_window(b) for b in boxes]
        )
        rt_range = _measure_batch(
            rt_bench, [lambda b=b: rt.range_search(b) for b in boxes]
        )

        pmr_ins = (pmr_build.io_reads + pmr_build.io_writes) / size
        rt_ins = (rt_build.io_reads + rt_build.io_writes) / size
        rows.append(
            ExperimentRow(
                size,
                {
                    "insert_ratio": 100.0 * rt_ins / pmr_ins if pmr_ins else 0.0,
                    "exact_ratio": 100.0 * rt_exact.cost_per_op / pmr_exact.cost_per_op,
                    "range_ratio": 100.0 * rt_range.cost_per_op / pmr_range.cost_per_op,
                    "pmr_pages": pmr.num_pages,
                    "rt_pages": rt.num_pages,
                },
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 16: suffix tree vs sequential scan (substring search)
# ---------------------------------------------------------------------------


def fig16_suffix_vs_seqscan(
    sizes: Sequence[int] = STRING_SIZES,
    batch: int = 30,
) -> list[ExperimentRow]:
    """Substring-search sweep behind Figure 16 (log10 ratio series)."""
    rows = []
    for size in sizes:
        words = random_words(size, seed=251, min_length=3)

        heap_bench = Workbench(pool_pages=QUERY_POOL_PAGES)
        heap = HeapFile(heap_bench.buffer)
        for w in words:
            heap.insert(w)

        sfx_bench = Workbench(pool_pages=QUERY_POOL_PAGES)
        suffix = SuffixTreeIndex(sfx_bench.buffer, bucket_size=32)
        for i, w in enumerate(words):
            suffix.insert_word(w, i)
        suffix.repack()

        needles = []
        step = max(1, size // batch)
        for w in words[::step][:batch]:
            mid = len(w) // 2
            needles.append(w[mid : mid + 3] or w)

        sfx_cost = _measure_batch(
            sfx_bench, [lambda s=s: suffix.search_substring(s) for s in needles]
        )
        scan_cost = _measure_batch(
            heap_bench, [lambda s=s: substring_scan(heap, s) for s in needles]
        )

        rows.append(
            ExperimentRow(
                size,
                {
                    "suffix_cost": sfx_cost.cost_per_op,
                    "seqscan_cost": scan_cost.cost_per_op,
                    "ratio": scan_cost.cost_per_op / sfx_cost.cost_per_op,
                    "read_ratio": scan_cost.io_reads / max(sfx_cost.io_reads, 1),
                    "suffix_pages": suffix.num_pages,
                    "heap_pages": heap.num_pages,
                },
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 17: NN search across instantiations
# ---------------------------------------------------------------------------


def fig17_nn_search(
    nn_counts: Sequence[int] = NN_COUNTS,
    size: int = 20000,
    queries: int = 5,
) -> list[ExperimentRow]:
    """NN-cost sweep behind Figure 17 (kd-tree, point quadtree, trie).

    The paper inserts 2M tuples and varies k from 8 to 1024; we do the same
    at 1/100 scale. Euclidean distance for the spatial trees, Hamming for
    the trie.
    """
    points = random_points(size, seed=261)
    words = random_words(size, seed=262)

    kd_bench = Workbench(pool_pages=QUERY_POOL_PAGES)
    kd = KDTreeIndex(kd_bench.buffer)
    for i, p in enumerate(points):
        kd.insert(p, i)
    kd.repack()

    pq_bench = Workbench(pool_pages=QUERY_POOL_PAGES)
    pq = PointQuadtreeIndex(pq_bench.buffer)
    for i, p in enumerate(points):
        pq.insert(p, i)
    pq.repack()

    trie_bench = Workbench(pool_pages=QUERY_POOL_PAGES)
    trie = TrieIndex(trie_bench.buffer, bucket_size=32)
    for i, w in enumerate(words):
        trie.insert(w, i)
    trie.repack()

    point_queries = random_points(queries, seed=263)
    word_queries = random_words(queries, seed=264, min_length=6)

    rows = []
    for k in nn_counts:
        kd_cost = _measure_batch(
            kd_bench, [lambda q=q: nearest(kd, q, k) for q in point_queries]
        )
        pq_cost = _measure_batch(
            pq_bench, [lambda q=q: nearest(pq, q, k) for q in point_queries]
        )
        trie_cost = _measure_batch(
            trie_bench, [lambda q=q: nearest(trie, q, k) for q in word_queries]
        )
        rows.append(
            ExperimentRow(
                k,
                {
                    "kdtree_cost": kd_cost.cost_per_op,
                    "pquadtree_cost": pq_cost.cost_per_op,
                    "trie_cost": trie_cost.cost_per_op,
                },
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md §3)
# ---------------------------------------------------------------------------


def ablation_bucket_size(
    bucket_sizes: Sequence[int] = (1, 8, 32, 128),
    size: int = 8000,
    batch: int = 40,
) -> list[ExperimentRow]:
    """D1: trie BucketSize vs search cost / size / heights."""
    words = random_words(size, seed=271)
    probes = words[:: max(1, size // batch)][:batch]
    rows = []
    for bucket in bucket_sizes:
        trie, bench = build_trie(words, bucket_size=bucket)
        cost = _measure_batch(
            bench, [lambda w=w: trie.search_equal(w) for w in probes]
        )
        stats = trie.statistics()
        rows.append(
            ExperimentRow(
                bucket,
                {
                    "exact_cost": cost.cost_per_op,
                    "pages": stats.pages,
                    "nodes": stats.total_nodes,
                    "node_height": stats.max_node_height,
                    "page_height": stats.max_page_height,
                },
            )
        )
    return rows


def ablation_path_shrink(size: int = 8000, batch: int = 40) -> list[ExperimentRow]:
    """D2: TreeShrink (patricia) vs NeverShrink trie.

    Uniform random words share almost no long prefixes, so path shrinking
    has nothing to collapse on them; this ablation uses a URL-style
    workload (a long common stem plus a random tail) where single-child
    chains actually occur — the paper's Figure 1 scenario.
    """
    words = [
        "wwwexample" + w
        for w in random_words(size, seed=272, min_length=1, max_length=6)
    ]
    probes = words[:: max(1, size // batch)][:batch]
    rows = []
    for shrink in (PathShrink.TREE_SHRINK, PathShrink.NEVER_SHRINK):
        trie, bench = build_trie(words, path_shrink=shrink)
        cost = _measure_batch(
            bench, [lambda w=w: trie.search_equal(w) for w in probes]
        )
        stats = trie.statistics()
        rows.append(
            ExperimentRow(
                0 if shrink is PathShrink.TREE_SHRINK else 1,
                {
                    "exact_cost": cost.cost_per_op,
                    "nodes": stats.total_nodes,
                    "node_height": stats.max_node_height,
                    "page_height": stats.max_page_height,
                    "pages": stats.pages,
                },
            )
        )
    return rows


def ablation_node_shrink(size: int = 4000) -> list[ExperimentRow]:
    """D3: keeping empty partitions (NodeShrink=False) inflates the trie."""
    words = random_words(size, seed=273)
    rows = []
    for node_shrink in (True, False):
        trie, _bench = build_trie(words, node_shrink=node_shrink)
        stats = trie.statistics()
        rows.append(
            ExperimentRow(
                int(node_shrink),
                {
                    "nodes": stats.total_nodes,
                    "leaves": stats.leaf_nodes,
                    "pages": stats.pages,
                },
            )
        )
    return rows


def ablation_clustering(size: int = 8000, batch: int = 40) -> list[ExperimentRow]:
    """D4: offline clustering repack vs incremental placement only."""
    words = random_words(size, seed=274)
    probes = words[:: max(1, size // batch)][:batch]
    rows = []
    for repack in (False, True):
        trie, bench = build_trie(words, repack=repack)
        cost = _measure_batch(
            bench, [lambda w=w: trie.search_equal(w) for w in probes]
        )
        stats = trie.statistics()
        rows.append(
            ExperimentRow(
                int(repack),
                {
                    "exact_cost": cost.cost_per_op,
                    "page_height": stats.max_page_height,
                    "pages": stats.pages,
                    "fill": stats.fill_factor,
                },
            )
        )
    return rows


def ablation_buffer_pool(
    pool_sizes: Sequence[int] = (4, 16, 64, 256),
    size: int = 8000,
    batch: int = 60,
) -> list[ExperimentRow]:
    """D5: warm-stream search cost vs buffer pool size."""
    words = random_words(size, seed=275)
    probes = words[:: max(1, size // batch)][:batch]
    rows = []
    for pool in pool_sizes:
        trie, bench = build_trie(words, pool=pool)
        bench.cold()
        warm = measure_many(
            bench.buffer, [lambda w=w: trie.search_equal(w) for w in probes]
        )
        rows.append(
            ExperimentRow(
                pool,
                {
                    "reads_per_op": warm.reads_per_op,
                    "hit_ratio": bench.buffer.stats.hit_ratio,
                },
            )
        )
    return rows


def ablation_equality_methods(
    size: int = 8000, batch: int = 60
) -> list[ExperimentRow]:
    """D7: the same equality workload across four access methods.

    Contextualizes the paper's motivation: hash is unbeatable on pure
    equality (flat cost), the B+-tree and trie pay their heights - but only
    the trie/btree also answer prefix/regex queries, which is the
    versatility the paper's index class buys.
    """
    from repro.baselines import HashIndex

    words = random_words(size, seed=278)
    probes = words[:: max(1, size // batch)][:batch]

    trie, trie_bench = build_trie(words)
    btree, bt_bench = build_btree_bulk(words)
    hash_bench = Workbench(pool_pages=QUERY_POOL_PAGES)
    hashed = HashIndex(hash_bench.buffer,
                       page_capacity=STRING_PAGE_CAPACITY)
    for i, w in enumerate(words):
        hashed.insert(w, i)
    heap_bench = Workbench(pool_pages=QUERY_POOL_PAGES)
    heap = HeapFile(heap_bench.buffer)
    for w in words:
        heap.insert(w)

    def seq_equal(word):
        return [r for _t, r in heap.scan() if r == word]

    measurements = [
        ("trie", _measure_batch(
            trie_bench, [lambda w=w: trie.search_equal(w) for w in probes]
        )),
        ("btree", _measure_batch(
            bt_bench, [lambda w=w: btree.search(w) for w in probes]
        )),
        ("hash", _measure_batch(
            hash_bench, [lambda w=w: hashed.search(w) for w in probes]
        )),
        ("seqscan", _measure_batch(
            heap_bench, [lambda w=w: seq_equal(w) for w in probes]
        )),
    ]
    rows = []
    for i, (name, m) in enumerate(measurements):
        row = ExperimentRow(i, {"cost": m.cost_per_op, "reads": m.reads_per_op})
        row.values["label"] = name  # type: ignore[assignment]
        rows.append(row)
    return rows


def ablation_rtree_split(
    size: int = 8000, batch: int = 50
) -> list[ExperimentRow]:
    """D8: Guttman linear vs quadratic split on the Figure 13 workload.

    Quantifies how much of the R-tree's Figure 13 loss is the historical
    linear split (PostgreSQL 8.0's) versus inherent overlap.
    """
    from repro.baselines import RTree

    points = random_points(size, seed=279, decimals=SPATIAL_DECIMALS)
    probes = points[:: max(1, size // batch)][:batch]
    rows = []
    for i, split in enumerate(("linear", "quadratic")):
        bench = Workbench(pool_pages=QUERY_POOL_PAGES)
        tree = RTree(bench.buffer, split=split,
                     page_capacity=SPATIAL_PAGE_CAPACITY)
        for j, p in enumerate(points):
            tree.insert(p, j)
        cost = _measure_batch(
            bench, [lambda p=p: tree.search_exact(p) for p in probes]
        )
        rows.append(
            ExperimentRow(
                i,
                {
                    "point_cost": cost.cost_per_op,
                    "pages": tree.num_pages,
                    "height": tree.height,
                },
            )
        )
    return rows


def ablation_pmr_threshold(
    thresholds: Sequence[int] = (2, 4, 8, 16),
    size: int = 4000,
    batch: int = 40,
) -> list[ExperimentRow]:
    """D6: PMR splitting threshold vs size and window-search cost."""
    segments = random_segments(size, seed=276)
    boxes = random_query_boxes(batch, side=5.0, seed=277)
    rows = []
    for threshold in thresholds:
        bench = Workbench(pool_pages=QUERY_POOL_PAGES)
        pmr = PMRQuadtreeIndex(bench.buffer, WORLD, threshold=threshold)
        for i, s in enumerate(segments):
            pmr.insert(s, i)
        pmr.repack()
        cost = _measure_batch(
            bench, [lambda b=b: pmr.search_window(b) for b in boxes]
        )
        stats = pmr.statistics()
        rows.append(
            ExperimentRow(
                threshold,
                {
                    "window_cost": cost.cost_per_op,
                    "pages": stats.pages,
                    "items_stored": stats.items,  # > size due to spanning
                    "node_height": stats.max_node_height,
                },
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Per-layer breakdown (observability registry columns)
# ---------------------------------------------------------------------------


def layer_breakdown(size: int = 2000, batch: int = 30) -> list[ExperimentRow]:
    """Per-layer cost attribution for each SP-GiST index type.

    One row per index type over the same-sized dataset: the build's WAL
    traffic and the search batch's buffer reads, SP-GiST nodes visited, and
    checksum verifications — the registry columns that attribute where each
    method's cost is paid (tree descent vs. page I/O vs. durability). The
    paper reports these layers separately in its Section 6 discussion; this
    table makes the attribution explicit in results.txt.

    Unlike the figure sweeps, each index lives on a *file-backed* disk
    (with WAL and page checksums), since the durability layers are
    precisely what this table measures.
    """
    import shutil
    import tempfile

    from repro.indexes.prquadtree import PRQuadtreeIndex
    from repro.storage.buffer import BufferPool
    from repro.storage.filedisk import FileDiskManager

    words = random_words(size, seed=281, min_length=3)
    points = random_points(size, seed=282, decimals=SPATIAL_DECIMALS)
    segments = random_segments(size, seed=283, decimals=SEGMENT_DECIMALS)
    boxes = random_query_boxes(batch, side=5.0, seed=284)
    probes = words[:: max(1, size // batch)][:batch]
    needles = [w[len(w) // 2 : len(w) // 2 + 3] or w for w in probes]

    tmpdir = tempfile.mkdtemp(prefix="layer-breakdown-")

    class _FileBench:
        def __init__(self, name: str) -> None:
            self.disk = FileDiskManager(f"{tmpdir}/{name}.pages")
            self.buffer = BufferPool(self.disk, capacity=QUERY_POOL_PAGES)

    def _build(name, make_index, items, insert):
        bench = _FileBench(name)
        index = make_index(bench)
        build = measure_many(
            bench.buffer,
            [lambda item=item, i=i: insert(index, item, i)
             for i, item in enumerate(items)],
        )
        build += measure(bench.buffer, bench.buffer.flush_all)[1]
        index.repack()
        bench.buffer.clear()
        return bench, index, build

    cases = [
        ("trie",
         lambda b: TrieIndex(b.buffer, bucket_size=TRIE_BUCKET),
         words, lambda ix, w, i: ix.insert(w, i),
         lambda ix: [lambda w=w: ix.search_equal(w) for w in probes]),
        ("kdtree",
         lambda b: KDTreeIndex(b.buffer),
         points, lambda ix, p, i: ix.insert(p, i),
         lambda ix: [lambda bx=bx: ix.search_range(bx) for bx in boxes]),
        ("pquadtree",
         lambda b: PointQuadtreeIndex(b.buffer),
         points, lambda ix, p, i: ix.insert(p, i),
         lambda ix: [lambda bx=bx: ix.search_range(bx) for bx in boxes]),
        ("prquadtree",
         lambda b: PRQuadtreeIndex(b.buffer, WORLD),
         points, lambda ix, p, i: ix.insert(p, i),
         lambda ix: [lambda bx=bx: ix.search_range(bx) for bx in boxes]),
        ("pmr",
         lambda b: PMRQuadtreeIndex(b.buffer, WORLD, threshold=8),
         segments, lambda ix, s, i: ix.insert(s, i),
         lambda ix: [lambda bx=bx: ix.search_window(bx) for bx in boxes]),
        ("suffix",
         lambda b: SuffixTreeIndex(b.buffer, bucket_size=32),
         words, lambda ix, w, i: ix.insert_word(w, i),
         lambda ix: [lambda s=s: ix.search_substring(s) for s in needles]),
    ]

    rows = []
    try:
        for name, make_index, items, insert, searches in cases:
            bench, index, build = _build(name, make_index, items, insert)
            search = measure_many(bench.buffer, searches(index),
                                  cold_each=True)
            row = ExperimentRow(
                size,
                {
                    "build_wal_records": build.wal_records,
                    "build_wal_kb": build.wal_bytes / 1024.0,
                    "search_reads": search.io_reads,
                    "search_nodes": search.nodes_visited,
                    "search_checksums": search.checksum_verifications,
                    "search_retries": search.retries,
                },
            )
            row.values["label"] = name  # type: ignore[assignment]
            rows.append(row)
            bench.disk.close()
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    return rows
