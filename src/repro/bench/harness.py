"""Measurement plumbing for the experiments.

The primary cost metric is *buffer misses* (logical page reads hitting the
simulated disk), which is what the paper's relative-performance figures
measure on real hardware; wall-clock time is recorded as a secondary,
machine-dependent signal. See DESIGN.md substitution #2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.storage.buffer import BufferPool, DEFAULT_POOL_SIZE
from repro.storage.disk import DiskManager


#: PostgreSQL cost weights: a random page read costs 4 sequential ones.
SEQ_PAGE_COST = 1.0
RANDOM_PAGE_COST = 4.0

#: One key comparison / consistent() call relative to a sequential page
#: read (CPU is cheap next to I/O but not free; see EXPERIMENTS.md).
CPU_OP_COST = 0.01


@dataclass(frozen=True)
class Measurement:
    """Cost of one measured operation (or batch).

    ``cost`` is the modeled disk-access time in sequential-page-read units:
    ``random_reads × 4 + seq_reads × 1 + cpu_ops × 0.01`` — the same cost
    model PostgreSQL's planner uses, applied to the *measured* counts. It is
    the primary series of every experiment; raw counts and wall time ride
    along.
    """

    io_reads: int  # buffer misses = pages fetched from disk
    io_writes: int  # dirty page write-backs
    wall_seconds: float
    operations: int = 1
    seq_reads: int = 0
    random_reads: int = 0
    cpu_ops: int = 0
    retries: int = 0  # transient-fault retries absorbed by the buffer pool
    # Per-layer columns from the observability registry (repro.obs): what
    # each layer under the buffer pool did during the measured operation.
    wal_records: int = 0
    wal_bytes: int = 0
    checksum_verifications: int = 0
    nodes_visited: int = 0  # SP-GiST tree nodes read (descents + NN)

    @property
    def cost(self) -> float:
        return (
            self.random_reads * RANDOM_PAGE_COST
            + self.seq_reads * SEQ_PAGE_COST
            + self.cpu_ops * CPU_OP_COST
        )

    @property
    def cost_per_op(self) -> float:
        return self.cost / self.operations if self.operations else 0.0

    @property
    def reads_per_op(self) -> float:
        return self.io_reads / self.operations if self.operations else 0.0

    @property
    def seconds_per_op(self) -> float:
        return self.wall_seconds / self.operations if self.operations else 0.0

    def __add__(self, other: "Measurement") -> "Measurement":
        return Measurement(
            io_reads=self.io_reads + other.io_reads,
            io_writes=self.io_writes + other.io_writes,
            wall_seconds=self.wall_seconds + other.wall_seconds,
            operations=self.operations + other.operations,
            seq_reads=self.seq_reads + other.seq_reads,
            random_reads=self.random_reads + other.random_reads,
            cpu_ops=self.cpu_ops + other.cpu_ops,
            retries=self.retries + other.retries,
            wal_records=self.wal_records + other.wal_records,
            wal_bytes=self.wal_bytes + other.wal_bytes,
            checksum_verifications=(
                self.checksum_verifications + other.checksum_verifications
            ),
            nodes_visited=self.nodes_visited + other.nodes_visited,
        )


class Workbench:
    """A fresh disk + buffer pool pair for one experiment run.

    ``pool_pages`` is deliberately small relative to experiment working sets
    so searches actually miss — the disk-resident regime of the paper.
    """

    def __init__(
        self,
        pool_pages: int = DEFAULT_POOL_SIZE,
        fault_policy: Any | None = None,
    ) -> None:
        self.disk = DiskManager()
        if fault_policy is not None:
            # Optional fault injection (repro.resilience): wrap the disk so
            # experiments can measure retry overhead under flaky I/O.
            from repro.resilience.faults import FaultInjectingDiskManager

            self.disk = FaultInjectingDiskManager(self.disk, fault_policy)
        self.buffer = BufferPool(self.disk, capacity=pool_pages)

    def cold(self) -> None:
        """Flush and empty the buffer pool (cold-cache measurement point)."""
        self.buffer.clear()

    def io_snapshot(self) -> tuple[int, int]:
        """Current (misses, dirty write-backs) counters of the pool."""
        return self.buffer.stats.misses, self.buffer.stats.dirty_writebacks


def measure(
    buffer: BufferPool, operation: Callable[[], Any]
) -> tuple[Any, Measurement]:
    """Run ``operation``; report buffer misses, CPU ops, and wall time.

    Alongside the buffer-pool counters, the observability registry
    (:data:`repro.obs.METRICS`) is snapshotted so each measurement carries
    per-layer columns — WAL records/bytes, checksum verifications, SP-GiST
    nodes visited — attributing the cost below the buffer pool.
    """
    from repro.costmodel import CPU_OPS
    from repro.obs import METRICS

    before = buffer.stats.snapshot()
    metrics_before = METRICS.snapshot()
    ops_before = CPU_OPS.count
    started = time.perf_counter()
    result = operation()
    elapsed = time.perf_counter() - started
    delta = buffer.stats.delta(before)
    layers = METRICS.delta(metrics_before, METRICS.snapshot())

    def layer(prefix: str) -> int:
        return int(sum(
            value
            for name, value in layers.items()
            if name == prefix or name.startswith(prefix + "{")
        ))

    return result, Measurement(
        io_reads=delta.misses,
        io_writes=delta.dirty_writebacks,
        wall_seconds=elapsed,
        operations=1,
        seq_reads=delta.seq_misses,
        random_reads=delta.random_misses,
        cpu_ops=CPU_OPS.count - ops_before,
        retries=delta.retries,
        wal_records=layer("wal_records_total"),
        wal_bytes=layer("wal_bytes_total"),
        checksum_verifications=layer("checksum_verifications_total"),
        nodes_visited=layer("spgist_nodes_visited_total"),
    )


def measure_many(
    buffer: BufferPool,
    operations: Iterable[Callable[[], Any]],
    cold_each: bool = False,
) -> Measurement:
    """Sum :func:`measure` over a batch of operations.

    ``cold_each=True`` clears the pool before every operation, measuring the
    fully-cold per-query cost; the default measures the steady-state cost of
    a query stream against a small warm pool.
    """
    total = Measurement(0, 0, 0.0, operations=0)
    for operation in operations:
        if cold_each:
            buffer.clear()
        _, one = measure(buffer, operation)
        total = total + one
    return total
