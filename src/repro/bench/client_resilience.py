"""Client resilience benchmark: tail latency through a failover (BENCH_9.json).

The question this answers: *what does a server failover cost the
client's p99, with and without the fault-tolerant driver?* Mid-run, the
serving process is gracefully drained and a replacement (sharing the
dedup cache — the exactly-once memory) comes up on a fresh port. Two
client stacks run the identical seeded workload through the event:

- **pooled** — :class:`repro.client.ResilientClient`: bounded pool,
  breaker-gated endpoint re-discovery, idempotency-keyed writes,
  jittered backoff, deadline propagation. The expectation to verify:
  every operation completes (zero ultimate failures) and the restart
  window shows up as a *bounded* latency bump — backoff-until-the-new-
  endpoint-answers — not an unbounded hang.
- **bare** — :class:`repro.server.net.SQLClient` with the naive loop a
  driverless application ends up writing: on any error, reconnect to
  whatever discovery currently returns and resend, a fixed number of
  times, with no backoff, no keys, no breakers. Its failures and tail
  are the cost of not having the driver. (Its resends can also
  double-apply writes — measured separately by the chaos harness's
  oracle; here we only report latency and failures.)

Workload per thread (seeded): 60% keyed INSERT, 40% indexed SELECT,
closed loop. Reported per mode: completed/failed operations, wall
seconds, throughput, and p50/p95/p99/max latency in milliseconds. The
regression gate (``tests/bench/test_client_resilience_gate.py``) checks
structure and re-runs a small pooled point in-process, asserting zero
failures and a finite tail through the restart.

CLI::

    PYTHONPATH=src python -m repro.bench.client_resilience --out BENCH_9.json
    PYTHONPATH=src python -m repro.bench.client_resilience --quick
"""

from __future__ import annotations

import json
import random
import threading
import time
from typing import Any, Callable

from repro.client import ResilientClient, RetryPolicy
from repro.engine.sql import Database
from repro.server.manager import DedupCache, SessionManager
from repro.server.net import SQLClient, SQLServer
from repro.settings import SETTINGS

#: Benchmark schema version stamped into the JSON.
SCHEMA = "bench9-v1"

#: Client threads per mode.
THREADS = 4

#: Operations per thread.
OPS_PER_THREAD = 80

#: Reconnect attempts the bare client's naive loop makes per operation.
BARE_RETRIES = 3


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


class _Cluster:
    """One server process-equivalent plus the machinery to fail it over."""

    def __init__(self, seed: int) -> None:
        self.settings = SETTINGS.replace(
            worker_threads=4, max_queue=128, shed_threshold=128,
            drain_timeout=0.5,
        )
        self.db = Database(buffer_capacity=512)
        self.dedup = DedupCache(self.settings.dedup_cache_size)
        self.manager = SessionManager(
            self.db, settings=self.settings, dedup=self.dedup
        )
        boot = self.manager.connect("bench-boot")
        self.manager.execute(
            boot, "CREATE TABLE bench (key VARCHAR(24), id INT);"
        )
        self.manager.execute(
            boot,
            "CREATE INDEX bench_idx ON bench USING SP_GiST "
            "(key SP_GiST_trie);",
        )
        rows = ", ".join(f"('seed{i:05d}', {i})" for i in range(100))
        self.manager.execute(boot, f"INSERT INTO bench VALUES {rows};")
        self.manager.disconnect(boot)
        self.server = SQLServer(self.manager).start()

    def endpoint(self) -> tuple[str, int]:
        return self.server.address

    def failover(self) -> dict[str, int]:
        """Drain the serving side; bring up a successor sharing the dedup."""
        stats = self.server.drain(timeout=0.5)
        self.manager = SessionManager(
            self.db, settings=self.settings, dedup=self.dedup
        )
        self.server = SQLServer(self.manager).start()
        return stats

    def stop(self) -> None:
        self.server.stop()
        self.manager.stop()


class _BareLoop:
    """The naive reconnect-and-resend loop an undriven application writes."""

    def __init__(self, discover: Callable[[], tuple[str, int]]) -> None:
        self._discover = discover
        self._conn: SQLClient | None = None

    def execute(self, sql: str) -> Any:
        last: Exception | None = None
        for _ in range(1 + BARE_RETRIES):
            try:
                if self._conn is None:
                    host, port = self._discover()
                    self._conn = SQLClient(host, port, timeout=2.0)
                return self._conn.execute(sql)
            except Exception as exc:  # noqa: BLE001 - naive by design
                last = exc
                if self._conn is not None:
                    try:
                        self._conn.close()
                    except Exception:  # noqa: BLE001
                        pass
                    self._conn = None
        assert last is not None
        raise last

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except Exception:  # noqa: BLE001
                pass


def _workload(
    execute: Callable[[str], Any],
    cid: int,
    ops: int,
    seed: int,
    latencies: list[float],
    lock: threading.Lock,
    failures: list[int],
) -> None:
    rng = random.Random(seed * 7919 + cid)
    for j in range(ops):
        if rng.random() < 0.6:
            sql = f"INSERT INTO bench VALUES ('b{cid}x{j}', {cid * 100000 + j});"
        else:
            probe = rng.randrange(100)
            sql = f"SELECT * FROM bench WHERE key = 'seed{probe:05d}';"
        started = time.perf_counter()
        try:
            execute(sql)
        except Exception:  # noqa: BLE001 - counted, not raised
            with lock:
                failures[0] += 1
        finally:
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)


def _run_mode(
    mode: str, threads: int, ops: int, seed: int
) -> dict[str, Any]:
    """One measured run of ``mode`` ('pooled'|'bare') through a failover."""
    cluster = _Cluster(seed)
    endpoint_holder = {"ep": cluster.endpoint()}
    discover = lambda: [endpoint_holder["ep"]]  # noqa: E731

    closers: list[Callable[[], None]] = []
    if mode == "pooled":
        client = ResilientClient(
            discover=discover,
            policy=RetryPolicy(
                max_retries=40, backoff_base=0.005, backoff_cap=0.1,
                rng=random.Random(seed),
            ),
            op_timeout=30.0,
            pool_size=threads,
            connect_timeout=1.0,
            breaker_failure_threshold=4,
            breaker_reset_timeout=0.05,
        )
        closers.append(client.close)
        executors = [client.execute] * threads
    else:
        loops = [
            _BareLoop(lambda: endpoint_holder["ep"]) for _ in range(threads)
        ]
        closers.extend(loop.close for loop in loops)
        executors = [loop.execute for loop in loops]

    latencies: list[float] = []
    failures = [0]
    lock = threading.Lock()
    workers = [
        threading.Thread(
            target=_workload,
            args=(executors[i], i, ops, seed, latencies, lock, failures),
            daemon=True,
        )
        for i in range(threads)
    ]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    # Inject the failover once the run is warmed up.
    time.sleep(max(0.2, ops * threads * 0.0015))
    drain_stats = cluster.failover()
    endpoint_holder["ep"] = cluster.endpoint()
    for worker in workers:
        worker.join(timeout=120)
    wall = time.perf_counter() - started

    for close in closers:
        close()
    cluster.stop()

    latencies.sort()
    completed = len(latencies) - failures[0]
    return {
        "mode": mode,
        "threads": threads,
        "operations": len(latencies),
        "completed": completed,
        "failed": failures[0],
        "drain": drain_stats,
        "wall_seconds": round(wall, 4),
        "throughput_ops_per_sec": (
            round(len(latencies) / wall, 2) if wall else 0.0
        ),
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
        "p95_ms": round(_percentile(latencies, 0.95) * 1000, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
        "max_ms": round((latencies[-1] if latencies else 0.0) * 1000, 3),
    }


def run(
    threads: int = THREADS,
    ops_per_thread: int = OPS_PER_THREAD,
    seed: int = 0,
) -> dict[str, Any]:
    """Both modes through the same injected failover; pooled runs last so
    a bare-mode meltdown cannot skew its measurement."""
    bare = _run_mode("bare", threads, ops_per_thread, seed)
    pooled = _run_mode("pooled", threads, ops_per_thread, seed)
    return {
        "schema": SCHEMA,
        "seed": seed,
        "threads": threads,
        "ops_per_thread": ops_per_thread,
        "modes": [pooled, bare],
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the benchmark and optionally write the JSON."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write the JSON here")
    parser.add_argument(
        "--quick", action="store_true",
        help="small scale (3 threads, 25 ops) for CI smoke",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.quick:
        report = run(threads=3, ops_per_thread=25, seed=args.seed)
    else:
        report = run(seed=args.seed)
    for point in report["modes"]:
        print(
            f"{point['mode']:>7}: {point['completed']}/{point['operations']} ok, "
            f"{point['failed']} failed, p50 {point['p50_ms']}ms, "
            f"p99 {point['p99_ms']}ms, max {point['max_ms']}ms "
            f"({point['throughput_ops_per_sec']} ops/s)"
        )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
