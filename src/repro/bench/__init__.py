"""Benchmark harness: I/O-accounted measurement and paper-style reporting.

Everything the ``benchmarks/`` suite uses lives here so the experiments are
importable (and unit-testable) outside pytest: a :class:`Workbench` bundling
a fresh disk + buffer pool, :func:`measure` for counting buffer misses and
wall time around an operation, and text-table rendering that prints the same
series the paper's figures plot.
"""

from repro.bench.harness import Measurement, Workbench, measure, measure_many
from repro.bench.report import ascii_chart, format_table, log10, ratio_percent

__all__ = [
    "Measurement",
    "Workbench",
    "measure",
    "measure_many",
    "ascii_chart",
    "format_table",
    "log10",
    "ratio_percent",
]
