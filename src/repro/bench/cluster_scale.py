"""Cluster scale-out macro-benchmark and regression gate (BENCH_10.json).

Measures routed read throughput against the same logical dataset
partitioned across 1, 2, and 4 shards, plus the router's single-shard
point-lookup overhead versus a direct table plan.

**Why sharding wins here (the honest mechanism).** Every storage node
gets a *fixed, small* buffer pool (``POOL_PAGES`` frames over a real
file-backed, checksummed disk) — the scale-out premise that each machine
has a fixed amount of RAM. Unsharded, the whole index lives behind one
pool, the working set does not fit, and every query pays page misses
with real file I/O and checksum verification. At four shards each
quarter-sized index sits behind its *own* pool, the per-shard working
sets fit, and the same queries run mostly from cache. Aggregate cache
capacity — not parallelism — is what this single-threaded benchmark
measures, which is exactly the component of scale-out speedup that
survives on any machine. The page-miss counters are reported alongside
wall time so the mechanism is visible in the artifact.

**Router overhead.** A sharded deployment must not tax the common case:
a single-shard point lookup through the shard map + router must stay
within 20% of planning the same query directly against the one shard's
table. Both sides run against the identical 1-shard deployment.

CLI::

    PYTHONPATH=src python -m repro.bench.cluster_scale --out BENCH_10.json
    PYTHONPATH=src python -m repro.bench.cluster_scale --quick
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any

from repro.engine.executor import execute_plan_batches
from repro.engine.planner import Predicate, plan_query
from repro.geometry.box import Box
from repro.workloads import random_points

#: Benchmark schema version stamped into the JSON.
SCHEMA = "bench10-v1"

#: Shard counts compared. 1 is the unsharded baseline.
SHARD_COUNTS = (1, 2, 4)

#: ``pool_pages`` is the per-NODE buffer pool — fixed regardless of shard
#: count, the "each machine has the same RAM" scale-out premise. Sized so
#: the unsharded working set does NOT fit (the 1-shard baseline thrashes
#: with real file I/O) while a quarter of it does.
SCALES = {
    "quick": {
        "items": 1500, "point_queries": 60, "window_queries": 12,
        "pool_pages": 32,
    },
    "full": {
        "items": 3000, "point_queries": 100, "window_queries": 20,
        "pool_pages": 64,
    },
}


def _cluster(directory: str, shards: int, pool_pages: int):
    from repro.cluster import Cluster

    return Cluster(
        directory,
        kind="kdtree",
        shards=shards,
        replicas=1,
        quorum=1,
        fsync=False,
        pool_pages=pool_pages,
    )


def _pool_misses(cluster) -> int:
    """Aggregate page misses across every node's buffer pool."""
    total = 0
    for shard in cluster.shards.values():
        for node in shard.rs.nodes:
            total += node.pool.stats.misses
    return total


def _load(cluster, rows: list[tuple], batch: int = 512) -> None:
    for start in range(0, len(rows), batch):
        cluster.insert(rows[start:start + batch])


def _read_workload(rows: list[tuple], scale: dict, seed: int):
    """The fixed query mix, identical for every shard count."""
    import random

    rng = random.Random(seed * 97 + 3)
    points = [rng.choice(rows)[0] for _ in range(scale["point_queries"])]
    windows = []
    for _ in range(scale["window_queries"]):
        x, y = rng.uniform(0, 80), rng.uniform(0, 80)
        windows.append(Box(x, y, x + 12.0, y + 12.0))
    return points, windows


def run_shard_count(
    shards: int, rows: list[tuple], scale: dict, dir_path: str, seed: int
) -> dict[str, Any]:
    """Load ``rows`` into a ``shards``-way cluster; run the read mix."""
    cluster = _cluster(
        os.path.join(dir_path, f"shards-{shards}"), shards, scale["pool_pages"]
    )
    try:
        _load(cluster, rows)
        points, windows = _read_workload(rows, scale, seed)
        # one warm-less pass: start cold-ish but identical across counts
        misses0 = _pool_misses(cluster)
        answered = 0
        start = time.perf_counter()
        for p in points:
            answered += len(cluster.search("@", p))
        for box in windows:
            answered += len(cluster.search("^", box))
        wall = time.perf_counter() - start
        queries = len(points) + len(windows)
        return {
            "shards": shards,
            "items": len(rows),
            "queries": queries,
            "matches": answered,
            "wall_seconds": round(wall, 4),
            "queries_per_sec": round(queries / wall, 2),
            "pages_read": _pool_misses(cluster) - misses0,
        }
    finally:
        cluster.close()


def run_router_overhead(
    rows: list[tuple], scale: dict, dir_path: str, seed: int
) -> dict[str, Any]:
    """Point-lookup latency: router path vs direct plan, same 1-shard data.

    The pool is large enough to hold the index so both sides measure CPU
    path length (map lookup + plan + execute vs plan + execute), not I/O.
    """
    from repro.cluster import Cluster

    cluster = Cluster(
        os.path.join(dir_path, "overhead"),
        kind="kdtree",
        shards=1,
        replicas=1,
        quorum=1,
        fsync=False,
        pool_pages=4096,
    )
    try:
        _load(cluster, rows)
        points, _ = _read_workload(rows, scale, seed)
        table = cluster.shards[0].table

        def direct(p) -> int:
            plan = plan_query(table, Predicate("key", "@", p))
            return sum(len(b) for b in execute_plan_batches(plan))

        # warm both paths, then interleave timed passes so drift is fair
        for p in points[:20]:
            cluster.search("@", p)
            direct(p)
        start = time.perf_counter()
        for p in points:
            cluster.search("@", p)
        router_wall = time.perf_counter() - start
        start = time.perf_counter()
        for p in points:
            direct(p)
        direct_wall = time.perf_counter() - start
        n = len(points)
        return {
            "lookups": n,
            "router_us": round(router_wall / n * 1e6, 2),
            "direct_us": round(direct_wall / n * 1e6, 2),
            "ratio": round(router_wall / direct_wall, 4),
        }
    finally:
        cluster.close()


def run_scale(scale_name: str, dir_path: str, seed: int = 0) -> dict[str, Any]:
    """Run one scale preset across every shard count + the overhead bench."""
    scale = SCALES[scale_name]
    points = random_points(scale["items"], seed=seed * 11 + 7)
    rows = [(p, i) for i, p in enumerate(points)]
    by_count: dict[str, Any] = {}
    for shards in SHARD_COUNTS:
        by_count[str(shards)] = run_shard_count(
            shards, rows, scale, dir_path, seed
        )
    speedup = round(
        by_count["4"]["queries_per_sec"] / by_count["1"]["queries_per_sec"], 3
    )
    return {
        "scale": scale_name,
        "items": scale["items"],
        "pool_pages_per_node": scale["pool_pages"],
        "shard_counts": by_count,
        "speedup_4_vs_1": speedup,
        "point_overhead": run_router_overhead(rows, scale, dir_path, seed),
    }


def run(quick_only: bool = False, seed: int = 0) -> dict[str, Any]:
    """Produce the full BENCH_10 report dict."""
    report: dict[str, Any] = {
        "schema": SCHEMA,
        "seed": seed,
        "shard_counts": list(SHARD_COUNTS),
    }
    for scale_name in ("quick",) if quick_only else ("quick", "full"):
        with tempfile.TemporaryDirectory(prefix="cluster-scale-") as tmp:
            report[scale_name] = run_scale(scale_name, tmp, seed=seed)
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.bench.cluster_scale``)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="quick scale only (the CI smoke configuration)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    report = run(quick_only=args.quick, seed=args.seed)
    for scale_name in ("quick", "full"):
        if scale_name not in report:
            continue
        entry = report[scale_name]
        counts = entry["shard_counts"]
        line = ", ".join(
            f"{s} shard(s): {counts[str(s)]['queries_per_sec']} q/s "
            f"({counts[str(s)]['pages_read']} page misses)"
            for s in SHARD_COUNTS
        )
        print(f"{scale_name}: {line}")
        print(
            f"{scale_name}: speedup 4-vs-1 = {entry['speedup_4_vs_1']}x, "
            f"router point overhead = {entry['point_overhead']['ratio']}x "
            f"({entry['point_overhead']['router_us']}us vs "
            f"{entry['point_overhead']['direct_us']}us)"
        )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
