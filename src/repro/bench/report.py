"""Text-table rendering for the experiment reports.

Each benchmark prints the same series the paper's figure plots — e.g.
``(B-tree/trie) x 100`` per relation size — so EXPERIMENTS.md can be filled
by running the suite and reading the captured output.
"""

from __future__ import annotations

import math
from typing import Any, Sequence


def ratio_percent(numerator: float, denominator: float) -> float:
    """The paper's relative-performance metric: ``(a/b) × 100``."""
    if denominator == 0:
        return math.inf if numerator > 0 else 100.0
    return 100.0 * numerator / denominator


def log10(value: float) -> float:
    """log10 with a floor for zero values (used by Figures 7 and 16)."""
    return math.log10(value) if value > 0 else 0.0


def ascii_chart(
    title: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[float]],
    width: int = 48,
    log_scale: bool = False,
) -> str:
    """Render one-or-more series as horizontal ASCII bars per x value.

    The textual stand-in for the paper's figures: every x gets one bar per
    series, scaled to the global maximum (or its log10 when ``log_scale``).
    """
    marks = "█▓▒░▪o*x"
    values = [v for vs in series.values() for v in vs]
    if log_scale:
        transform = lambda v: math.log10(v) if v > 0 else 0.0  # noqa: E731
    else:
        transform = lambda v: v  # noqa: E731
    peak = max((transform(v) for v in values), default=1.0) or 1.0
    label_width = max(len(str(x)) for x in x_values) if x_values else 1
    name_width = max((len(name) for name in series), default=1)

    lines = [title]
    for i, x in enumerate(x_values):
        for s, (name, vs) in enumerate(series.items()):
            scaled = max(0, int(round(width * transform(vs[i]) / peak)))
            bar = marks[s % len(marks)] * scaled
            lines.append(
                f"{str(x).rjust(label_width)} {name.ljust(name_width)} "
                f"|{bar} {vs[i]:.2f}"
            )
        if i != len(x_values) - 1:
            lines.append("")
    return "\n".join(lines)


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """Render an aligned, boxless text table with a title line."""
    def render(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    text_rows = [[render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
