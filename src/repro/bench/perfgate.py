"""Hot-path macro-benchmark and regression gate (BENCH_3.json).

Measures the mixed insert+search macro workload for the paper's five index
instantiations (trie, suffix, kd-tree, point quadtree, PMR quadtree) under
two configurations:

- ``baseline`` — the pre-optimization write path: per-item inserts with a
  WAL commit per statement, write-through WAL (no group commit), and no
  deserialized-node cache. This is how the engine executed an
  autocommitted single-row INSERT stream before the hot-path overhaul.
- ``optimized`` — the overhauled path: batched ``insert_many`` statements
  (one WAL commit per batch), WAL group commit, and the node cache.

Both configurations run the identical logical workload — load N items,
then answer Q equality searches — against a file-backed, WAL-protected
disk and a small (disk-resident regime) buffer pool, with fixed seeds.

Reported per workload and configuration: wall time, ops/sec, pages
read/written through the buffer pool, and WAL records/bytes/commits. The
wall-clock *ratio* between the two configurations is machine-independent
enough to gate on, because both sides are always measured on the same
machine in the same process; the page and WAL counters are fully
deterministic given the fixed seeds, so the regression test
(``tests/bench/test_perf_gate.py``) compares them against the committed
``BENCH_3.json`` with a small tolerance.

CLI::

    PYTHONPATH=src python -m repro.bench.perfgate --out BENCH_3.json
    PYTHONPATH=src python -m repro.bench.perfgate --quick   # quick scale only
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Callable

from repro.core.external import Query
from repro.geometry.box import Box
from repro.indexes import (
    KDTreeIndex,
    PMRQuadtreeIndex,
    PointQuadtreeIndex,
    SuffixTreeIndex,
    TrieIndex,
)
from repro.settings import SETTINGS
from repro.storage.buffer import BufferPool
from repro.storage.filedisk import FileDiskManager
from repro.workloads import random_points, random_segments, random_words

#: Benchmark schema version stamped into the JSON.
SCHEMA = "bench3-v1"

#: Buffer pool frames: small relative to the working sets, the paper's
#: disk-resident regime.
POOL_PAGES = 64

#: Scale presets. ``quick`` is what the CI gate re-runs in-process; ``full``
#: is the committed headline number. The multi-row INSERT batch size is the
#: engine-wide ``SETTINGS.batch_size`` (``REPRO_BATCH_SIZE``), resolved at
#: run time rather than pinned per scale, so the benchmark always measures
#: the configuration the executor actually runs with.
SCALES = {
    "quick": {"items": 400, "searches": 200},
    "full": {"items": 2400, "searches": 800},
}

#: The five paper index types benchmarked.
WORKLOADS = ("trie", "suffix", "kdtree", "pquad", "pmr")

_WORLD = Box(0.0, 0.0, 100.0, 100.0)


def _make_index(kind: str, pool: BufferPool) -> Any:
    if kind == "trie":
        return TrieIndex(pool, bucket_size=4)
    if kind == "suffix":
        return SuffixTreeIndex(pool, bucket_size=4)
    if kind == "kdtree":
        return KDTreeIndex(pool)
    if kind == "pquad":
        return PointQuadtreeIndex(pool, bucket_size=4)
    if kind == "pmr":
        return PMRQuadtreeIndex(pool, _WORLD, threshold=8)
    raise ValueError(f"unknown workload kind {kind!r}")


def _make_items(kind: str, count: int, seed: int = 0) -> list[Any]:
    """Workload items for ``kind``; ``seed`` offsets the per-kind base seed.

    ``seed=0`` (the default) reproduces the committed BENCH_3.json inputs
    exactly; any other value derives a fresh-but-deterministic workload,
    which the chaos/robustness tooling uses to vary data without losing
    reproducibility.
    """
    if kind == "trie":
        return random_words(count, seed=301 + seed)
    if kind == "suffix":
        # Suffix trees fan each word into its suffixes internally on
        # insert_word; here words are indexed directly (as in the recovery
        # suite) so item count stays comparable across kinds.
        return random_words(count, seed=302 + seed)
    if kind == "kdtree":
        return random_points(count, seed=303 + seed)
    if kind == "pquad":
        return random_points(count, seed=304 + seed)
    if kind == "pmr":
        return random_segments(max(count // 2, 50), seed=305 + seed)
    raise ValueError(f"unknown workload kind {kind!r}")


def _disable_node_cache(index: Any) -> None:
    """Put an index into the pre-overhaul (cacheless) configuration."""
    index.store.detach()
    index.store.cache = None


def _chunks(seq: list, size: int) -> list[list]:
    return [seq[i:i + size] for i in range(0, len(seq), size)]


def run_workload(
    kind: str,
    optimized: bool,
    scale: dict[str, int],
    dir_path: str,
    seed: int = 0,
) -> dict[str, Any]:
    """Run one index type's mixed macro under one configuration."""
    items = _make_items(kind, scale["items"], seed=seed)
    # Search probes: every k-th inserted key, cycled to the probe count.
    probes = [items[i % len(items)] for i in range(0, scale["searches"] * 3, 3)]

    suffix = "opt" if optimized else "base"
    path = os.path.join(dir_path, f"{kind}-{suffix}.dat")
    disk = FileDiskManager(path, group_commit=optimized)
    pool = BufferPool(disk, capacity=POOL_PAGES)
    index = _make_index(kind, pool)
    if not optimized:
        _disable_node_cache(index)

    reads0 = pool.stats.misses
    writes0 = pool.stats.dirty_writebacks
    pairs = [(key, i) for i, key in enumerate(items)]

    started = time.perf_counter()
    if optimized:
        for chunk in _chunks(pairs, SETTINGS.batch_size):
            index.insert_many(chunk)
            pool.flush_all()
            disk.sync()  # one commit per multi-row INSERT statement
    else:
        for key, value in pairs:
            index.insert(key, value)
            pool.flush_all()
            disk.sync()  # one commit per single-row INSERT statement
    insert_wall = time.perf_counter() - started

    equality = index.methods.equality_operator
    started = time.perf_counter()
    matched = 0
    for probe in probes:
        for _key, _value in index.search(Query(equality, probe)):
            matched += 1
    search_wall = time.perf_counter() - started

    wall = insert_wall + search_wall
    ops = len(pairs) + len(probes)
    cache_stats = index.store.cache.stats if index.store.cache else None
    result = {
        "items": len(pairs),
        "searches": len(probes),
        "matches": matched,
        "wall_seconds": wall,
        "insert_seconds": insert_wall,
        "search_seconds": search_wall,
        "ops_per_sec": ops / wall if wall > 0 else 0.0,
        "pages_read": pool.stats.misses - reads0,
        "pages_written": pool.stats.dirty_writebacks - writes0,
        "wal_records": disk.wal.stats.records_appended,
        "wal_bytes": disk.wal.stats.bytes_appended,
        "wal_commits": disk.wal.stats.commits,
        "wal_group_flushes": disk.wal.stats.group_flushes,
        "node_cache_hits": cache_stats.hits if cache_stats else 0,
        "node_cache_hit_ratio": (
            round(cache_stats.hit_ratio, 4) if cache_stats else 0.0
        ),
    }
    disk.close()
    return result


def run_scale(scale_name: str, dir_path: str, seed: int = 0) -> dict[str, Any]:
    """Run every workload at one scale; returns the per-scale report."""
    scale = SCALES[scale_name]
    workloads: dict[str, Any] = {}
    base_wall = opt_wall = 0.0
    for kind in WORKLOADS:
        baseline = run_workload(kind, False, scale, dir_path, seed=seed)
        optimized = run_workload(kind, True, scale, dir_path, seed=seed)
        speedup = (
            baseline["wall_seconds"] / optimized["wall_seconds"]
            if optimized["wall_seconds"] > 0
            else 0.0
        )
        workloads[kind] = {
            "baseline": baseline,
            "optimized": optimized,
            "speedup": round(speedup, 3),
        }
        base_wall += baseline["wall_seconds"]
        opt_wall += optimized["wall_seconds"]
    return {
        "scale": dict(scale) | {"batch": SETTINGS.batch_size},
        "workloads": workloads,
        "mixed": {
            "baseline_wall_seconds": base_wall,
            "optimized_wall_seconds": opt_wall,
            "speedup": round(base_wall / opt_wall, 3) if opt_wall else 0.0,
        },
    }


def run(quick_only: bool = False, seed: int = 0) -> dict[str, Any]:
    """Run the full benchmark matrix; returns the BENCH_3 report dict.

    ``seed`` offsets the workload-generation seeds; 0 is the committed
    baseline. The regression gate only compares deterministic counters
    (pages, WAL records) against BENCH_3.json when the seed is 0.
    """
    report: dict[str, Any] = {
        "schema": SCHEMA,
        "pool_pages": POOL_PAGES,
        "seed": seed,
    }
    with tempfile.TemporaryDirectory(prefix="perfgate-") as dir_path:
        report["quick"] = run_scale("quick", dir_path, seed=seed)
        if not quick_only:
            report["full"] = run_scale("full", dir_path, seed=seed)
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the suite and write/print the JSON report."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write the JSON report here")
    parser.add_argument(
        "--quick", action="store_true", help="run only the quick scale"
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload seed offset (0 = the committed BENCH_3 baseline)",
    )
    args = parser.parse_args(argv)

    report = run(quick_only=args.quick, seed=args.seed)
    for scale_name in ("quick", "full"):
        if scale_name not in report:
            continue
        mixed = report[scale_name]["mixed"]
        print(f"[{scale_name}] mixed macro speedup: {mixed['speedup']:.2f}x")
        for kind, entry in report[scale_name]["workloads"].items():
            base, opt = entry["baseline"], entry["optimized"]
            print(
                f"  {kind:7s} {entry['speedup']:5.2f}x  "
                f"wall {base['wall_seconds']:.3f}s -> {opt['wall_seconds']:.3f}s  "
                f"wal {base['wal_bytes']} -> {opt['wal_bytes']} B  "
                f"cache hit {opt['node_cache_hit_ratio']:.0%}"
            )
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
